# ctest script for the persistent DesignStore contract: the same CLI command
# run twice with --store must emit a byte-identical run log (warm-start
# determinism), the warm run must actually be served from disk
# (engine.store.persist.hits > 0), and the `aapx library` tooling chain
# (build -> query -> info -> merge) must round-trip the built library file.
# Invoked as: cmake -DAAPX_BIN=<aapx> -DWORKDIR=<scratch> -P cli_store_test.cmake
if(NOT DEFINED AAPX_BIN OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "pass -DAAPX_BIN=<path to aapx> -DWORKDIR=<scratch dir>")
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")
set(store "${WORKDIR}/store.aapx")
set(log "${WORKDIR}/run.jsonl")
set(metrics "${WORKDIR}/run_metrics.json")

function(check_contains text pattern what)
  if(NOT text MATCHES "${pattern}")
    message(FATAL_ERROR "${what}: expected to match '${pattern}', got:\n${text}")
  endif()
endfunction()

# The invocation under test. Cold and warm runs use the *identical* argv —
# the run-log manifest records the command line, so any difference there
# would break the byte-identity comparison for a trivial reason.
set(cmd "${AAPX_BIN}" characterize --kind adder --width 8 --arch ripple
        --years 1,10 --store "${store}" --log "${log}" --metrics "${metrics}")

# --- 1. cold run: builds everything, saves the store ------------------------
execute_process(COMMAND ${cmd}
  RESULT_VARIABLE rc OUTPUT_VARIABLE cold_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold characterize failed (rc=${rc}):\n${cold_out}\n${err}")
endif()
if(NOT EXISTS "${store}")
  message(FATAL_ERROR "cold run did not write the store file ${store}")
endif()
file(COPY_FILE "${log}" "${WORKDIR}/cold.jsonl")
file(READ "${metrics}" cold_metrics)
check_contains("${cold_metrics}" "\"engine.store.persist.hits\":0"
               "cold metrics (no disk hits on a cold start)")

# --- 2. warm run: identical argv, served from the snapshot ------------------
execute_process(COMMAND ${cmd}
  RESULT_VARIABLE rc OUTPUT_VARIABLE warm_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm characterize failed (rc=${rc}):\n${warm_out}\n${err}")
endif()
if(NOT cold_out STREQUAL warm_out)
  message(FATAL_ERROR "warm stdout differs from cold stdout:\n--- cold ---\n${cold_out}\n--- warm ---\n${warm_out}")
endif()

# --- 3. the warm run log is byte-identical to the cold one ------------------
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${WORKDIR}/cold.jsonl" "${log}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm run log is not byte-identical to the cold one "
                      "(cmp ${WORKDIR}/cold.jsonl ${log})")
endif()

# --- 4. the warm run was actually served from disk --------------------------
file(READ "${metrics}" warm_metrics)
check_contains("${warm_metrics}" "\"engine.store.persist.hits\":[1-9]"
               "warm metrics (persist hits)")
check_contains("${warm_metrics}" "\"engine.store.persist.loads\":1"
               "warm metrics (store loaded once)")

# --- 5. library build -> query -> info -------------------------------------
set(lib "${WORKDIR}/lib.aapx")
execute_process(
  COMMAND "${AAPX_BIN}" library build --out "${lib}" --kinds adder
          --widths 6,8 --arch ripple --years 1,10
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "library build failed (rc=${rc}):\n${out}\n${err}")
endif()
check_contains("${out}" "library with 2 surface" "library build")

execute_process(
  COMMAND "${AAPX_BIN}" library query --store "${lib}" --kind adder --width 6
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "library query failed (rc=${rc}):\n${out}\n${err}")
endif()
check_contains("${out}" "1 surface\\(s\\) matched" "library query")
check_contains("${out}" "precision" "library query table")

execute_process(
  COMMAND "${AAPX_BIN}" library info --store "${lib}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "library info failed (rc=${rc}):\n${out}\n${err}")
endif()
check_contains("${out}" "format version: 1" "library info")
check_contains("${out}" "surface" "library info census")

# --- 6. merge the library with the characterize store -----------------------
set(merged "${WORKDIR}/merged.aapx")
execute_process(
  COMMAND "${AAPX_BIN}" library merge --out "${merged}"
          --inputs "${lib},${store}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "library merge failed (rc=${rc}):\n${out}\n${err}")
endif()
check_contains("${out}" "from 2 file\\(s\\)" "library merge")
execute_process(
  COMMAND "${AAPX_BIN}" library info --store "${merged}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "info on merged file failed (rc=${rc}):\n${out}\n${err}")
endif()

# --- 7. a damaged store degrades to a cold run, not a failure ---------------
file(WRITE "${store}" "this is not a store file")
execute_process(COMMAND ${cmd}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "characterize over a damaged store failed (rc=${rc}):\n${out}\n${err}")
endif()
check_contains("${err}" "aapx store:" "damaged-store warning")
if(NOT cold_out STREQUAL out)
  message(FATAL_ERROR "damaged-store run output differs from cold output")
endif()

message(STATUS "cli_store_test: all stages passed")
