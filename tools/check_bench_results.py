#!/usr/bin/env python3
"""Compare emitted BENCH_*.json files against checked-in baselines.

The benches reproduce paper tables/figures, so their *result* fields
(error counts, precision settings, PSNR values, event totals) are
deterministic and must match the baselines in bench/results/ exactly.
Timing-dependent fields (wall time, throughput, speedups) and
environment-dependent ones (thread count, the metrics-registry snapshot)
legitimately vary between machines and are ignored.

Usage:
    check_bench_results.py [--baseline-dir bench/results] BENCH_a.json ...

Exit status 0 when every compared field matches, 1 on any mismatch or a
missing/unreadable file. Intended for the CI bench-regression job.
"""

import argparse
import json
import math
import os
import sys

# Fields that depend on the machine or the clock, not on the computation.
# The serve-bench request totals are here too: the server sheds load under
# deadline pressure, so how many requests complete (and therefore the error
# count and the checksum over the surfaces that DID come back) depends on
# machine speed, not on the computation. They stay in the JSON as
# informational fields.
IGNORED_FIELDS = {
    "wall_s",
    "events_per_sec",
    "speedup_vs_baseline",
    "baseline_wall_s",
    "threads",
    "metrics_registry",
    "requests_total",
    "request_errors",
    "gates_checksum",
}

# Field-name prefixes with the same timing-dependent character: the serve
# bench reports queries-per-second as qps_<phase>_<clients> and its
# mid-pass admin-scrape count as scrapes_<clients>, the surrogate bench
# reports its exact-vs-fast-path ratio as speedup_<stat>, and the cost
# breakdown benches report per-phase seconds as *_s.
IGNORED_PREFIXES = ("qps_", "scrapes_", "speedup_")


def is_timing_suffix(key):
    # Per-phase wall-clock fields (sim_s, sta_s, store_s, ...) are
    # informational like wall_s itself, and so are the service latency
    # quantiles (*_p50_ms/_p95_ms/_p99_ms) derived from them.
    return key.endswith(("_s", "_p50_ms", "_p95_ms", "_p99_ms"))


def is_ignored(key):
    # MTTF means from the lifetime Monte-Carlo are informational: the MC is
    # deterministic (its checksum/dies/phases fields ARE compared), but the
    # means are %.6g-serialized derived statistics that would only duplicate
    # what the checksum already pins down bit-exactly.
    if key.startswith("mttf_") and key.endswith("_years"):
        return True
    return (
        key in IGNORED_FIELDS
        or key.startswith(IGNORED_PREFIXES)
        or is_timing_suffix(key)
    )

# Numeric results are serialized with %.6g; comparing at a slightly looser
# relative tolerance keeps the check robust to libc printf rounding while
# still catching any real drift in the reproduced numbers.
REL_TOL = 1e-4


def values_match(a, b):
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return math.isclose(float(a), float(b), rel_tol=REL_TOL, abs_tol=1e-9)
    return a == b


def check_file(emitted_path, baseline_dir):
    name = os.path.basename(emitted_path)
    baseline_path = os.path.join(baseline_dir, name)
    problems = []
    try:
        with open(emitted_path) as f:
            emitted = json.load(f)
    except (OSError, ValueError) as e:
        return ["{}: cannot read emitted file: {}".format(name, e)]
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        return ["{}: cannot read baseline {}: {}".format(name, baseline_path, e)]

    compared = 0
    for key, expected in baseline.items():
        if is_ignored(key):
            continue
        if key not in emitted:
            problems.append("{}: missing field '{}'".format(name, key))
            continue
        compared += 1
        if not values_match(emitted[key], expected):
            problems.append(
                "{}: field '{}' = {!r}, baseline {!r}".format(
                    name, key, emitted[key], expected
                )
            )
    for key in emitted:
        if key not in baseline and not is_ignored(key):
            problems.append(
                "{}: unexpected new field '{}' (update the baseline?)".format(
                    name, key
                )
            )
    if not problems:
        print("{}: OK ({} result fields match baseline)".format(name, compared))
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        default="bench/results",
        help="directory holding the baseline BENCH_*.json files",
    )
    parser.add_argument("emitted", nargs="+", help="emitted BENCH_*.json files")
    args = parser.parse_args()

    problems = []
    for path in args.emitted:
        problems.extend(check_file(path, args.baseline_dir))
    for p in problems:
        print("MISMATCH: " + p, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
