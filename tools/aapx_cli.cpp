// aapx — command-line front end to the aging-induced-approximation flow.
//
//   aapx characterize --kind adder --width 32 --arch cla4 --years 1,10
//   aapx flow --width 32 --years 10 --mode worst
//   aapx schedule --kind multiplier --width 32 --grid 0.5,1,2,5,10
//   aapx export-liberty [--years 10 --stress worst] --out lib.lib
//   aapx export-verilog --kind adder --width 16 --trunc 4 --out adder.v
//   aapx export-sdf --kind adder --width 16 [--years 10] --out adder.sdf
//   aapx faultsim --width 16 --arch ripple --accel 1.5 --sensor-gain 0.6
//   aapx faultsim ... --log run.jsonl --trace run.trace --metrics run.json
//   aapx report --log run.jsonl --trace run.trace --metrics run.json
//   aapx serve --listen tcp:7471 --store lib.aapx --snapshot-interval 30
//   aapx client --connect tcp:7471 --op characterize --width 16
//   aapx servesim --scenario all
//
// Every subcommand builds the generated NanGate-45-like library and the
// calibrated BTI model; see `aapx help` for the full option list.
//
// Signal discipline: SIGINT/SIGTERM trip a process-wide CancelToken that
// long-running flows (characterize sweeps, faultsim epochs) check
// cooperatively. The interrupted run saves its warmed --store snapshot,
// prints a one-line diagnostic and exits 128+signum — never a lost store,
// never a torn file (snapshots are temp+rename). `aapx serve` instead
// drains gracefully and exits 0: shutdown is its normal lifecycle.
//
// Global instrumentation options (any subcommand):
//   --trace <file>    Chrome trace-event JSON (load in Perfetto)
//   --metrics <file>  metrics-registry snapshot as JSON
//   --log <file>      structured JSONL run log (manifest + flow records)
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aging/aging_model.hpp"
#include "cell/liberty.hpp"
#include "core/adaptive.hpp"
#include "engine/binio.hpp"
#include "engine/context.hpp"
#include "engine/design_store.hpp"
#include "engine/key.hpp"
#include "engine/persist.hpp"
#include "core/microarch.hpp"
#include "netlist/stats.hpp"
#include "netlist/verilog.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/runlog.hpp"
#include "obs/trace.hpp"
#include "runtime/runtime.hpp"
#include "service/chaos.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "sta/sdf.hpp"
#include "surrogate/surrogate.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace aapx;

/// The process-wide cancellation token SIGINT/SIGTERM trip. Long-running
/// flows observe it through the process-default Context; `aapx serve`
/// additionally gets its graceful-drain request. The handler body is two
/// atomic stores — strictly async-signal-safe.
CancelToken g_cancel;                              // NOLINT
std::atomic<service::Server*> g_server{nullptr};   // NOLINT
std::atomic<int> g_signal{0};                      // NOLINT

extern "C" void handle_shutdown_signal(int signum) {
  g_signal.store(signum, std::memory_order_relaxed);
  g_cancel.cancel();
  if (service::Server* server = g_server.load(std::memory_order_relaxed)) {
    server->request_stop();
  }
}

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

/// Strict numeric conversion: the whole string must be consumed, so
/// "--width banana" and "--years 1x" are one-line errors, not zeros.
int to_int_strict(const std::string& text, const std::string& what) {
  std::size_t used = 0;
  int value = 0;
  try {
    value = std::stoi(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used == 0 || used != text.size()) {
    throw std::runtime_error("bad " + what + " value '" + text + "'");
  }
  return value;
}

double to_double_strict(const std::string& text, const std::string& what) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used == 0 || used != text.size()) {
    throw std::runtime_error("bad " + what + " value '" + text + "'");
  }
  return value;
}

struct Args {
  std::string command;
  std::string action;  ///< positional sub-action ("library build" etc.)
  std::map<std::string, std::string> options;
  /// argv index where each option appeared, for parser-style diagnostics
  /// ("argv[3]: unknown option '--foo'" mirrors "verilog:12: ...").
  std::map<std::string, int> arg_index;

  bool has(const std::string& key) const {
    return options.find(key) != options.end();
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  int get_int(const std::string& key, int fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback
                               : to_int_strict(it->second, "--" + key);
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback
                               : to_double_strict(it->second, "--" + key);
  }
  /// Like get_double but additionally rejects negative values.
  double get_years(const std::string& key, double fallback) const {
    const double y = get_double(key, fallback);
    if (y < 0.0) {
      throw std::runtime_error("--" + key + " must be non-negative, got " +
                               get(key, ""));
    }
    return y;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) return args;
  args.command = argv[1];
  int i = 2;
  // `library` and `surrogate` take one positional action before options.
  if ((args.command == "library" || args.command == "surrogate") && i < argc &&
      std::strncmp(argv[i], "--", 2) != 0) {
    args.action = argv[i++];
  }
  for (; i < argc; ++i) {
    std::string key = argv[i];
    if (key == "-j") key = "--threads";  // make-style worker-count shorthand
    if (key.rfind("--", 0) != 0) {
      throw std::runtime_error("argv[" + std::to_string(i) +
                               "]: expected --option, got '" + key + "'");
    }
    key = key.substr(2);
    args.arg_index[key] = i;
    if (key == "diff" && args.command == "report") {
      // `report --diff A B` (or `--diff A,B`) compares two artifacts, so
      // this one option consumes up to two values, joined comma-style.
      std::string joined;
      while (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        if (!joined.empty()) joined += ',';
        joined += argv[++i];
      }
      args.options[key] = joined;
      continue;
    }
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "";
    }
  }
  return args;
}

std::uint64_t to_u64_strict(const std::string& text, const std::string& what) {
  std::size_t used = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used == 0 || used != text.size()) {
    throw std::runtime_error("bad " + what + " value '" + text + "'");
  }
  return value;
}

/// Rejects options the selected command does not understand — silently
/// ignored flags hide typos ("--mim-precision") until the results look
/// wrong. Diagnostics carry the argv position, like the liberty/verilog
/// parsers carry line numbers. Unknown *commands* fall through: dispatch()
/// reports those.
void reject_unknown_options(const Args& args) {
  static const std::set<std::string> kGlobal = {"threads", "trace", "metrics",
                                               "log", "store"};
  static const std::map<std::string, std::set<std::string>> kByCommand = {
      {"characterize",
       {"kind", "width", "trunc", "arch", "mult-arch", "min-precision", "mode",
        "years", "save", "mechanisms", "hci-a", "hci-exp", "em-eta", "em-beta",
        "tddb-eta", "tddb-beta", "surrogate"}},
      {"flow",
       {"width", "years", "mode", "min-precision", "mechanisms", "hci-a",
        "hci-exp", "em-eta", "em-beta", "tddb-eta", "tddb-beta", "surrogate"}},
      {"schedule",
       {"kind", "width", "trunc", "arch", "mult-arch", "min-precision", "mode",
        "grid", "mechanisms", "hci-a", "hci-exp", "em-eta", "em-beta",
        "tddb-eta", "tddb-beta", "surrogate"}},
      {"export-liberty", {"out", "years", "stress"}},
      {"export-verilog", {"kind", "width", "trunc", "arch", "mult-arch",
                          "out"}},
      {"export-sdf", {"kind", "width", "trunc", "arch", "mult-arch", "years",
                      "stress", "out"}},
      {"faultsim",
       {"kind", "width", "trunc", "arch", "mult-arch", "min-precision", "grid",
        "accel", "temp-step", "temp-from", "outlier-frac", "outlier-factor",
        "sensor-gain", "sensor-offset", "sensor-noise", "seed", "years",
        "epochs", "vectors", "verify-vectors", "open-loop", "canary-margin",
        "canary-trip", "mechanisms", "hci-a", "hci-exp", "em-eta", "em-beta",
        "tddb-eta", "tddb-beta", "hazard-failover", "surrogate"}},
      {"report",
       {"trace", "log", "metrics", "check", "top", "diff", "log-dir"}},
      {"serve",
       {"listen", "workers", "sweep-threads", "queue", "retry-hint-ms",
        "snapshot-interval", "log-dir", "admin", "request-trace",
        "request-trace-rotate-kb", "slow-ring", "surrogate"}},
      {"client",
       {"connect", "op", "kind", "width", "trunc", "arch", "mult-arch",
        "min-precision", "step", "mode", "years", "deadline-ms", "attempts",
        "trace-id"}},
      {"top", {"connect", "interval", "once", "attempts"}},
      {"servesim", {"scenario", "work-dir", "self-exe", "verbose"}},
      {"help", {}},
  };
  static const std::map<std::string, std::set<std::string>> kLibraryActions = {
      {"build", {"out", "kinds", "widths", "arch", "mult-arch",
                 "min-precision", "mode", "years", "mechanisms", "hci-a",
                 "hci-exp", "em-eta", "em-beta", "tddb-eta", "tddb-beta"}},
      {"query", {"kind", "width"}},
      {"info", {}},
      {"merge", {"out", "inputs"}},
  };
  static const std::map<std::string, std::set<std::string>> kSurrogateActions =
      {
          {"train", {"lambda", "mechanisms", "hci-a", "hci-exp", "em-eta",
                     "em-beta", "tddb-eta", "tddb-beta"}},
          {"info", {"mechanisms", "hci-a", "hci-exp", "em-eta", "em-beta",
                    "tddb-eta", "tddb-beta"}},
      };

  const std::set<std::string>* allowed = nullptr;
  std::string label = args.command;
  if (args.command == "library") {
    const auto it = kLibraryActions.find(args.action);
    if (it == kLibraryActions.end()) return;  // cmd_library reports it
    allowed = &it->second;
    label += " " + args.action;
  } else if (args.command == "surrogate") {
    const auto it = kSurrogateActions.find(args.action);
    if (it == kSurrogateActions.end()) return;  // cmd_surrogate reports it
    allowed = &it->second;
    label += " " + args.action;
  } else {
    const auto it = kByCommand.find(args.command);
    if (it == kByCommand.end()) return;  // dispatch reports it
    allowed = &it->second;
  }
  // Report the *first* offending token on the command line, not map order.
  const std::string* worst_key = nullptr;
  int worst_index = 0;
  for (const auto& [key, index] : args.arg_index) {
    if (kGlobal.count(key) != 0 || allowed->count(key) != 0) continue;
    if (worst_key == nullptr || index < worst_index) {
      worst_key = &key;
      worst_index = index;
    }
  }
  if (worst_key != nullptr) {
    throw std::runtime_error("argv[" + std::to_string(worst_index) +
                             "]: unknown option '--" + *worst_key + "' for '" +
                             label + "' (try 'aapx help')");
  }
}

std::vector<double> parse_list(const std::string& csv, const std::string& what) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(to_double_strict(item, what));
  }
  if (out.empty()) {
    throw std::runtime_error(what + " list is empty");
  }
  return out;
}

ComponentKind parse_kind(const std::string& s) {
  if (s == "adder") return ComponentKind::adder;
  if (s == "multiplier" || s == "mult") return ComponentKind::multiplier;
  if (s == "mac") return ComponentKind::mac;
  if (s == "clamp") return ComponentKind::clamp;
  throw std::runtime_error("unknown --kind " + s);
}

AdderArch parse_adder_arch(const std::string& s) {
  if (s == "ripple") return AdderArch::ripple;
  if (s == "cla4") return AdderArch::cla4;
  if (s == "kogge-stone" || s == "kogge_stone") return AdderArch::kogge_stone;
  throw std::runtime_error("unknown --arch " + s);
}

StressMode parse_mode(const std::string& s) {
  if (s == "worst") return StressMode::worst;
  if (s == "balanced") return StressMode::balanced;
  throw std::runtime_error("unknown --mode " + s + " (worst|balanced)");
}

/// Builds the aging model a command runs under: `--mechanisms bti,hci,em,tddb`
/// selects the mechanism set (default the historic BTI-only model — same
/// numerics, same store keys, same bytes), and per-mechanism knobs override
/// the calibrated defaults. Errors surface as one-line parse diagnostics.
AgingModel model_from(const Args& args) {
  AgingParams params;
  if (args.has("mechanisms")) {
    params.mechanisms.clear();
    std::stringstream ss(args.get("mechanisms", "bti"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (item.empty()) continue;
      try {
        params.mechanisms.push_back(mechanism_from_string(item));
      } catch (const std::invalid_argument& e) {
        throw std::runtime_error("--mechanisms: " + std::string(e.what()));
      }
    }
  }
  params.hci.a_hci = args.get_double("hci-a", params.hci.a_hci);
  params.hci.activity_exponent =
      args.get_double("hci-exp", params.hci.activity_exponent);
  params.em.eta_ref_years = args.get_double("em-eta", params.em.eta_ref_years);
  params.em.beta = args.get_double("em-beta", params.em.beta);
  params.tddb.eta_ref_years =
      args.get_double("tddb-eta", params.tddb.eta_ref_years);
  params.tddb.beta = args.get_double("tddb-beta", params.tddb.beta);
  try {
    return AgingModel(params);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("--mechanisms: " + std::string(e.what()));
  }
}

/// Parse-time guard for the BTI power law's validity horizon: past the age
/// where dVth reaches the full gate overdrive (vdd - vth0) the delay model
/// has no solution, and the failure used to surface as a std::domain_error
/// from deep inside degradation-grid construction. Reject the horizon up
/// front with the actionable limit instead.
void validate_aging_horizon(const AgingModel& model, double years) {
  const BtiParams& p = model.params().bti;
  const double overdrive = p.vdd - p.vth0;
  for (const TransistorType t : {TransistorType::pMos, TransistorType::nMos}) {
    if (model.delta_vth(t, 1.0, years) < overdrive) continue;
    const double dvth_ref = model.delta_vth(t, 1.0, p.t_ref_years);
    const double limit =
        dvth_ref > 0.0
            ? p.t_ref_years *
                  std::pow(overdrive / dvth_ref, 1.0 / p.time_exponent)
            : 0.0;
    std::ostringstream os;
    os << "--years " << years
       << " is beyond the aging model's validity: dVth consumes the full "
          "gate overdrive (vdd - vth0 = "
       << overdrive << " V) at roughly " << limit
       << " years under worst-case stress";
    throw std::runtime_error(os.str());
  }
}

ComponentSpec spec_from(const Args& args) {
  ComponentSpec spec;
  spec.kind = parse_kind(args.get("kind", "adder"));
  spec.width = args.get_int("width", 32);
  spec.truncated_bits = args.get_int("trunc", 0);
  spec.adder_arch = parse_adder_arch(args.get("arch", "cla4"));
  spec.mult_arch =
      args.get("mult-arch", "array") == "wallace" ? MultArch::wallace
                                                  : MultArch::array;
  return spec;
}

std::ofstream open_out(const Args& args) {
  const std::string path = args.get("out", "");
  if (path.empty()) throw std::runtime_error("--out <file> is required");
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path);
  return os;
}

int cmd_characterize(const Context& ctx, const Args& args) {
  const CellLibrary lib = make_nangate45_like();
  const ComponentSpec spec = spec_from(args);
  CharacterizerOptions copt;
  copt.min_precision =
      args.get_int("min-precision", std::max(1, spec.width - 10));
  const AgingModel model = model_from(args);
  const ComponentCharacterizer ch(ctx, lib, model, copt);
  const StressMode mode = parse_mode(args.get("mode", "worst"));
  std::vector<AgingScenario> scenarios;
  for (const double y : parse_list(args.get("years", "1,10"), "--years")) {
    if (y < 0.0) {
      throw std::runtime_error("--years entries must be non-negative");
    }
    validate_aging_horizon(model, y);
    scenarios.push_back({mode, y});
  }
  const ComponentCharacterization c = ch.characterize(spec, scenarios);

  std::vector<std::string> header = {"precision", "fresh [ps]", "area [um^2]"};
  for (const AgingScenario& s : scenarios) header.push_back(s.label() + " [ps]");
  TextTable table(header);
  for (const PrecisionPoint& p : c.points) {
    std::vector<std::string> row = {std::to_string(p.precision),
                                    TextTable::num(p.fresh_delay, 1),
                                    TextTable::num(p.area, 1)};
    for (const double d : p.aged_delay) row.push_back(TextTable::num(d, 1));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const int k = c.required_precision(i);
    std::printf("%s: guardband-free precision = %s\n",
                scenarios[i].label().c_str(),
                k > 0 ? std::to_string(k).c_str() : "unreachable");
  }
  const std::string save = args.get("save", "");
  if (!save.empty()) {
    ApproximationLibrary out;
    out.add(c);
    std::ofstream os(save);
    if (!os) throw std::runtime_error("cannot open " + save);
    out.save(os);
    std::printf("approximation library written to %s\n", save.c_str());
  }
  return 0;
}

int cmd_flow(const Context& ctx, const Args& args) {
  const CellLibrary lib = make_nangate45_like();
  const int width = args.get_int("width", 32);
  CharacterizerOptions copt;
  copt.min_precision = args.get_int("min-precision", std::max(1, width - 8));
  const AgingModel model = model_from(args);
  MicroarchApproximator flow(ctx, lib, model, copt);
  MicroarchSpec design;
  design.name = "idct";
  design.blocks = {
      {"mult", {ComponentKind::multiplier, width, 0, AdderArch::cla4,
                MultArch::array}, false},
      {"acc", {ComponentKind::adder, width, 0, AdderArch::cla4, MultArch::array},
       false},
  };
  FlowOptions fopt;
  fopt.scenario = {parse_mode(args.get("mode", "worst")),
                   args.get_years("years", 10.0)};
  validate_aging_horizon(model, fopt.scenario.years);
  const FlowResult plan = flow.run(design, fopt);
  std::printf("constraint t_CP(noAging) = %.1f ps, timing %s\n",
              plan.timing_constraint, plan.timing_met ? "met" : "NOT met");
  TextTable table({"block", "fresh [ps]", "aged [ps]", "rel. slack",
                   "precision", "meets"});
  for (const BlockPlan& b : plan.blocks) {
    table.add_row({b.spec.name, TextTable::num(b.fresh_delay, 1),
                   TextTable::num(b.aged_delay_full, 1),
                   TextTable::pct(b.rel_slack),
                   std::to_string(b.chosen_precision), b.meets ? "yes" : "NO"});
  }
  table.print(std::cout);
  return plan.timing_met ? 0 : 1;
}

int cmd_schedule(const Context& ctx, const Args& args) {
  const CellLibrary lib = make_nangate45_like();
  const ComponentSpec spec = spec_from(args);
  CharacterizerOptions copt;
  copt.min_precision =
      args.get_int("min-precision", std::max(1, spec.width - 10));
  const AgingModel model = model_from(args);
  const ComponentCharacterizer ch(ctx, lib, model, copt);
  const AdaptiveScheduler scheduler(ch);
  const std::vector<double> grid =
      parse_list(args.get("grid", "1,2,5,10"), "--grid");
  for (const double y : grid) validate_aging_horizon(model, y);
  const AdaptiveSchedule plan = scheduler.plan(
      spec, parse_mode(args.get("mode", "worst")), grid);
  std::printf("%s, constraint %.1f ps, schedule %s\n", spec.name().c_str(),
              plan.timing_constraint, plan.feasible ? "feasible" : "INFEASIBLE");
  TextTable table({"from [y]", "precision", "aged delay [ps]",
                   "guardband avoided [ps]"});
  for (const ScheduleStep& step : plan.steps) {
    table.add_row({TextTable::num(step.from_years, 1),
                   std::to_string(step.precision),
                   TextTable::num(step.aged_delay, 1),
                   TextTable::num(step.guardband_if_unapproximated, 1)});
  }
  table.print(std::cout);
  return plan.feasible ? 0 : 1;
}

int cmd_export_liberty(const Args& args) {
  const CellLibrary lib = make_nangate45_like();
  std::ofstream os = open_out(args);
  const double years = args.get_years("years", 0.0);
  if (years > 0.0) {
    const AgingModel model;
    validate_aging_horizon(model, years);
    const DegradationAwareLibrary aged(lib, model, years);
    const StressMode mode = parse_mode(args.get("stress", "worst"));
    const StressPair stress =
        mode == StressMode::worst ? kWorstCaseStress : kBalancedStress;
    write_aged_liberty(aged, stress, os);
    std::printf("aged liberty (%g years, %s stress) written to %s\n", years,
                to_string(mode).c_str(), args.get("out", "").c_str());
  } else {
    write_liberty(lib, os);
    std::printf("fresh liberty written to %s\n", args.get("out", "").c_str());
  }
  return 0;
}

int cmd_export_verilog(const Context& ctx, const Args& args) {
  const CellLibrary lib = make_nangate45_like();
  const ComponentSpec spec = spec_from(args);
  const Netlist nl = make_component(ctx, lib, spec);
  std::ofstream os = open_out(args);
  write_verilog(nl, os, spec.name());
  std::printf("%s: %zu gates, %.1f um^2 -> %s\n", spec.name().c_str(),
              nl.num_gates(), compute_stats(nl).cell_area,
              args.get("out", "").c_str());
  return 0;
}

int cmd_export_sdf(const Context& ctx, const Args& args) {
  const CellLibrary lib = make_nangate45_like();
  const ComponentSpec spec = spec_from(args);
  const Netlist nl = make_component(ctx, lib, spec);
  std::ofstream os = open_out(args);
  SdfWriteOptions sopt;
  sopt.design_name = spec.name();
  const double years = args.get_years("years", 0.0);
  if (years > 0.0) {
    const AgingModel model;
    validate_aging_horizon(model, years);
    const DegradationAwareLibrary aged(lib, model, years);
    const StressProfile stress = StressProfile::uniform(
        parse_mode(args.get("stress", "worst")), nl.num_gates());
    write_aged_sdf(nl, aged, stress, os, sopt);
  } else {
    write_sdf(nl, os, sopt);
  }
  std::printf("SDF for %s (%s) written to %s\n", spec.name().c_str(),
              years > 0.0 ? "aged" : "fresh", args.get("out", "").c_str());
  return 0;
}

int cmd_faultsim(const Context& ctx, const Args& args) {
  const CellLibrary lib = make_nangate45_like();

  RuntimeOptions ropt;
  ropt.component = spec_from(args);
  if (!args.has("arch")) ropt.component.adder_arch = AdderArch::ripple;
  if (!args.has("width")) ropt.component.width = 16;
  ropt.min_precision =
      args.get_int("min-precision", std::max(1, ropt.component.width - 10));
  ropt.schedule_grid = parse_list(args.get("grid", "0.5,1,2,5,10"), "--grid");
  const AgingModel model = model_from(args);
  const ClosedLoopRuntime runtime(ctx, lib, model, ropt);

  FaultScenario fault;
  fault.aging_acceleration = args.get_double("accel", 1.0);
  fault.temp_step_kelvin = args.get_double("temp-step", 0.0);
  fault.temp_step_from_years = args.get_years("temp-from", 0.0);
  fault.gate_outlier_fraction = args.get_double("outlier-frac", 0.0);
  fault.gate_outlier_factor = args.get_double("outlier-factor", 1.0);
  fault.sensor_gain = args.get_double("sensor-gain", 1.0);
  fault.sensor_offset_years = args.get_double("sensor-offset", 0.0);
  fault.sensor_noise_sigma_years = args.get_double("sensor-noise", 0.0);
  fault.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const FaultInjector faults(ctx, lib, model, fault);

  CampaignOptions copt;
  copt.lifetime_years = args.get_years("years", 10.0);
  copt.epochs = args.get_int("epochs", 16);
  copt.vectors_per_epoch =
      static_cast<std::size_t>(args.get_int("vectors", 96));
  copt.verify_vectors =
      static_cast<std::size_t>(args.get_int("verify-vectors", 48));
  copt.closed_loop = !args.has("open-loop");
  copt.monitor.window = copt.vectors_per_epoch;
  copt.monitor.canary_margin = args.get_double("canary-margin", 0.97);
  copt.monitor.canary_trip =
      static_cast<std::size_t>(args.get_int("canary-trip", 2));
  copt.controller.hazard_failover_threshold =
      args.get_double("hazard-failover", 0.0);

  // The campaign's ground truth runs on the *faulted* model, so the horizon
  // guard must hold for it too (an acceleration of r moves the domain edge
  // r^(1/n) years closer).
  AgingParams faulted = model.params();
  faulted.bti.a_pmos *= fault.aging_acceleration;
  faulted.bti.a_nmos *= fault.aging_acceleration;
  faulted.bti.temp_kelvin += fault.temp_step_kelvin;
  validate_aging_horizon(AgingModel(faulted), copt.lifetime_years);

  const CampaignResult r = runtime.run(faults, copt);

  std::printf("%s, constraint %.1f ps, %s campaign, %d epochs / %.1f years\n",
              ropt.component.name().c_str(), r.timing_constraint,
              copt.closed_loop ? "closed-loop" : "open-loop", copt.epochs,
              copt.lifetime_years);
  TextTable table({"epoch", "age [y]", "sensor [y]", "precision", "errors",
                   "canary", "max settle [ps]"});
  for (const EpochReport& e : r.epochs) {
    table.add_row({std::to_string(e.epoch), TextTable::num(e.years, 2),
                   TextTable::num(e.sensor_years, 2),
                   std::to_string(e.precision), std::to_string(e.errors),
                   std::to_string(e.canary_hits),
                   TextTable::num(e.max_settle_ps, 1)});
  }
  table.print(std::cout);
  for (const ControlEvent& e : r.events) {
    std::printf("  %s\n", to_string(e).c_str());
  }
  std::printf(
      "total %llu errors / %llu vectors, %zu reconfigurations, "
      "final precision %d, %s\n",
      static_cast<unsigned long long>(r.total_errors),
      static_cast<unsigned long long>(r.total_vectors), r.reconfigurations,
      r.final_precision,
      r.converged_clean() ? "converged clean" : "NOT converged");
  if (r.failed_over) {
    std::printf("hard-failure hazard crossed at epoch %d: failed over to the "
                "spare\n",
                r.failover_epoch);
  }
  return r.converged_clean() ? 0 : 1;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::stringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

std::vector<std::string> split_csv(const std::string& csv);

/// `aapx report --diff A B`: per-metric comparison of two JSON artifacts
/// (metrics snapshots or BENCH_*.json files) — absolute and relative deltas,
/// with metrics present on only one side called out.
int cmd_report_diff(const std::string& spec) {
  const std::vector<std::string> paths = split_csv(spec);
  if (paths.size() != 2) {
    throw std::runtime_error("report: --diff needs exactly two files, got " +
                             std::to_string(paths.size()));
  }
  std::vector<obs::JsonValue> docs;
  for (const std::string& path : paths) {
    std::string err;
    auto doc = obs::json_parse(read_file(path), &err);
    if (!doc) {
      throw std::runtime_error("report: " + path + ": " + err);
    }
    docs.push_back(std::move(*doc));
  }
  const std::vector<obs::MetricDelta> deltas =
      obs::diff_numeric(docs[0], docs[1]);
  std::printf("diff: A = %s, B = %s\n", paths[0].c_str(), paths[1].c_str());
  TextTable table({"metric", "A", "B", "delta", "%"});
  std::size_t changed = 0;
  for (const obs::MetricDelta& d : deltas) {
    if (!d.in_a) {
      table.add_row({d.name, "-", TextTable::num(d.b, 6), "(new in B)", "-"});
      ++changed;
    } else if (!d.in_b) {
      table.add_row({d.name, TextTable::num(d.a, 6), "-", "(gone in B)", "-"});
      ++changed;
    } else {
      if (d.delta() != 0.0) ++changed;
      table.add_row({d.name, TextTable::num(d.a, 6), TextTable::num(d.b, 6),
                     TextTable::num(d.delta(), 6),
                     d.a != 0.0 ? TextTable::num(d.pct(), 2)
                                : std::string("-")});
    }
  }
  table.print(std::cout);
  std::printf("%zu of %zu metric(s) differ\n", changed, deltas.size());
  return 0;
}

/// `aapx report --log-dir DIR`: aggregate the per-request run logs a server
/// wrote (`aapx serve --log-dir`) into op/outcome tallies, validating every
/// record on the way. Returns the validation-failure count.
std::size_t report_log_dir(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("req_", 0) == 0 &&
        name.size() > 6 && name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  std::size_t failures = 0;
  std::vector<obs::JsonValue> records;
  for (const std::string& file : files) {
    std::ifstream is(file);
    if (!is) {
      std::printf("log-dir %s: cannot open\n", file.c_str());
      ++failures;
      continue;
    }
    std::vector<std::string> errors;
    std::vector<obs::JsonValue> recs = obs::parse_jsonl(is, &errors);
    for (std::size_t i = 0; i < recs.size(); ++i) {
      for (const std::string& e : obs::validate_log_record(recs[i])) {
        errors.push_back("record " + std::to_string(i + 1) + ": " + e);
      }
    }
    for (const std::string& e : errors) {
      std::printf("log-dir %s: %s\n", file.c_str(), e.c_str());
    }
    failures += errors.size();
    for (obs::JsonValue& r : recs) records.push_back(std::move(r));
  }
  const obs::ServiceLogSummary s = obs::summarize_service_log(records);
  std::printf("service logs: %zu file(s), %llu request(s), %llu cancelled\n",
              files.size(), static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.cancelled));
  if (!s.ops.empty()) {
    TextTable ops({"op", "requests"});
    for (const auto& [op, count] : s.ops) {
      ops.add_row({op, std::to_string(count)});
    }
    ops.print(std::cout);
  }
  if (!s.outcomes.empty()) {
    TextTable outcomes({"outcome", "count"});
    for (const auto& [outcome, count] : s.outcomes) {
      outcomes.add_row({outcome, std::to_string(count)});
    }
    outcomes.print(std::cout);
  }
  return failures;
}

int cmd_report(const Args& args) {
  if (args.has("diff")) return cmd_report_diff(args.get("diff", ""));
  const std::string trace_path = args.get("trace", "");
  const std::string log_path = args.get("log", "");
  const std::string metrics_path = args.get("metrics", "");
  const std::string log_dir = args.get("log-dir", "");
  if (trace_path.empty() && log_path.empty() && metrics_path.empty() &&
      log_dir.empty()) {
    throw std::runtime_error(
        "report: pass at least one of --trace, --log, --metrics, --log-dir, "
        "--diff");
  }
  const bool check = args.has("check");
  const int top = args.get_int("top", 15);
  if (top < 1) throw std::runtime_error("--top must be >= 1");
  std::size_t failures = 0;

  if (!trace_path.empty()) {
    std::string err;
    const auto doc = obs::json_parse(read_file(trace_path), &err);
    if (!doc) {
      std::printf("trace %s: JSON parse error: %s\n", trace_path.c_str(),
                  err.c_str());
      ++failures;
    } else {
      const std::vector<std::string> errors = obs::validate_trace(*doc);
      for (const std::string& e : errors) {
        std::printf("trace %s: %s\n", trace_path.c_str(), e.c_str());
      }
      failures += errors.size();
      const obs::TraceSummary s = obs::summarize_trace(*doc);
      std::printf("trace: %zu span events on %zu threads, %.3f ms wall\n",
                  s.events, s.threads, s.wall_us / 1000.0);
      std::printf("top spans by inclusive time:\n");
      TextTable table({"span", "count", "incl [ms]", "max [ms]"});
      for (std::size_t i = 0;
           i < s.spans.size() && i < static_cast<std::size_t>(top); ++i) {
        const obs::SpanStat& sp = s.spans[i];
        table.add_row({sp.name, std::to_string(sp.count),
                       TextTable::num(sp.incl_us / 1000.0, 3),
                       TextTable::num(sp.max_us / 1000.0, 3)});
      }
      table.print(std::cout);
    }
  }

  if (!log_path.empty()) {
    std::ifstream is(log_path);
    if (!is) throw std::runtime_error("cannot open " + log_path);
    std::vector<std::string> errors;
    const std::vector<obs::JsonValue> records = obs::parse_jsonl(is, &errors);
    for (std::size_t i = 0; i < records.size(); ++i) {
      for (const std::string& e : obs::validate_log_record(records[i])) {
        errors.push_back("record " + std::to_string(i + 1) + ": " + e);
      }
    }
    for (const std::string& e : errors) {
      std::printf("log %s: %s\n", log_path.c_str(), e.c_str());
    }
    failures += errors.size();
    const obs::LogSummary ls = obs::summarize_log(records);
    std::printf("run log: %zu records\n", records.size());
    TextTable types({"record type", "count"});
    for (const auto& [type, count] : ls.type_counts) {
      types.add_row({type, std::to_string(count)});
    }
    types.print(std::cout);
    if (!ls.decisions.empty()) {
      std::printf("controller decision timeline:\n");
      TextTable t({"epoch", "age [y]", "sensor [y]", "trigger", "outcome",
                   "precision", "sta [ps]"});
      for (const obs::DecisionRow& d : ls.decisions) {
        t.add_row({std::to_string(d.epoch), TextTable::num(d.years, 2),
                   TextTable::num(d.sensor_years, 2), d.trigger, d.outcome,
                   std::to_string(d.from_precision) + " -> " +
                       std::to_string(d.to_precision),
                   d.sta_delay_ps > 0.0 ? TextTable::num(d.sta_delay_ps, 1)
                                        : std::string("-")});
      }
      t.print(std::cout);
    }
  }

  if (!metrics_path.empty()) {
    std::string err;
    const auto doc = obs::json_parse(read_file(metrics_path), &err);
    if (!doc) {
      std::printf("metrics %s: JSON parse error: %s\n", metrics_path.c_str(),
                  err.c_str());
      ++failures;
    } else {
      const std::vector<obs::CacheRate> rates =
          obs::cache_rates_from_metrics(*doc);
      std::printf("cache hit rates:\n");
      TextTable t({"cache", "hits", "misses", "hit rate"});
      for (const obs::CacheRate& r : rates) {
        t.add_row({r.name, std::to_string(r.hits), std::to_string(r.misses),
                   TextTable::pct(r.rate())});
      }
      t.print(std::cout);
      const obs::IncrementalStaStats inc =
          obs::incremental_sta_from_metrics(*doc);
      if (inc.present) {
        std::printf("incremental STA:\n");
        TextTable it({"incremental queries", "full fallbacks", "dirty gates",
                      "avg dirty gates/query"});
        const double avg =
            inc.hits == 0 ? 0.0
                          : static_cast<double>(inc.dirty_gates) /
                                static_cast<double>(inc.hits);
        it.add_row({std::to_string(inc.hits),
                    std::to_string(inc.full_fallbacks),
                    std::to_string(inc.dirty_gates), TextTable::num(avg, 1)});
        it.print(std::cout);
      }
      const obs::SurrogateStats sg = obs::surrogate_from_metrics(*doc);
      if (sg.present) {
        std::printf("surrogate fast path:\n");
        TextTable st({"surrogate hits", "exact fallbacks", "hit rate",
                      "models trained"});
        st.add_row({std::to_string(sg.hits), std::to_string(sg.fallbacks),
                    TextTable::pct(sg.hit_rate()),
                    std::to_string(sg.models)});
        st.print(std::cout);
      }
      const std::vector<obs::AgingCounterRow> aging =
          obs::aging_counters_from_metrics(*doc);
      if (!aging.empty()) {
        std::printf("aging mechanisms (drift/hazard evaluations, lifetime "
                    "MC dies, failover decisions):\n");
        TextTable at({"counter", "count"});
        for (const obs::AgingCounterRow& row : aging) {
          at.add_row({row.name, std::to_string(row.value)});
        }
        at.print(std::cout);
      }
      const std::vector<obs::HistogramRow> hists =
          obs::histograms_from_metrics(*doc);
      if (!hists.empty()) {
        std::printf("histograms (exact count/sum/min/max, "
                    "bucket-interpolated quantiles):\n");
        TextTable ht({"histogram", "count", "mean", "min", "max", "p50",
                      "p95", "p99"});
        for (const obs::HistogramRow& h : hists) {
          ht.add_row({h.name, std::to_string(h.count),
                      TextTable::num(h.mean(), 1), TextTable::num(h.min, 1),
                      TextTable::num(h.max, 1), TextTable::num(h.p50, 1),
                      TextTable::num(h.p95, 1), TextTable::num(h.p99, 1)});
        }
        ht.print(std::cout);
      }
    }
  }

  if (!log_dir.empty()) failures += report_log_dir(log_dir);

  if (check) {
    if (failures == 0) {
      std::printf("report: all artifacts valid\n");
      return 0;
    }
    std::printf("report: %zu validation failure(s)\n", failures);
    return 1;
  }
  return 0;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Prints one persisted characterization surface as the same table
/// `aapx characterize` prints — but straight from the file, no synthesis.
void print_surface(const engine::SurfacePayload& p) {
  const ComponentCharacterization& c = p.surface;
  std::printf("%s (min precision %d, step %d)\n", c.base.name().c_str(),
              p.min_precision, p.precision_step);
  std::vector<std::string> header = {"precision", "fresh [ps]", "area [um^2]"};
  for (const AgingScenario& s : c.scenarios) {
    header.push_back(s.label() + " [ps]");
  }
  TextTable table(header);
  for (const PrecisionPoint& pt : c.points) {
    std::vector<std::string> row = {std::to_string(pt.precision),
                                    TextTable::num(pt.fresh_delay, 1),
                                    TextTable::num(pt.area, 1)};
    for (const double d : pt.aged_delay) row.push_back(TextTable::num(d, 1));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

/// `aapx library build`: characterize a cross-product of components into the
/// Context's DesignStore and save it as one distributable store file — the
/// materialized form of the paper's aging-induced approximation library.
int cmd_library_build(const Context& ctx, const Args& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) throw std::runtime_error("--out <file> is required");
  const CellLibrary lib = make_nangate45_like();
  const StressMode mode = parse_mode(args.get("mode", "worst"));
  const AgingModel model = model_from(args);
  std::vector<AgingScenario> scenarios;
  for (const double y : parse_list(args.get("years", "1,10"), "--years")) {
    if (y < 0.0) {
      throw std::runtime_error("--years entries must be non-negative");
    }
    validate_aging_horizon(model, y);
    scenarios.push_back({mode, y});
  }
  std::vector<ComponentKind> kinds;
  for (const std::string& k : split_csv(args.get("kinds", "adder"))) {
    kinds.push_back(parse_kind(k));
  }
  if (kinds.empty()) throw std::runtime_error("--kinds list is empty");
  std::vector<int> widths;
  for (const double w : parse_list(args.get("widths", "8"), "--widths")) {
    widths.push_back(static_cast<int>(w));
  }

  std::size_t surfaces = 0;
  for (const ComponentKind kind : kinds) {
    for (const int width : widths) {
      ComponentSpec spec;
      spec.kind = kind;
      spec.width = width;
      spec.adder_arch = parse_adder_arch(args.get("arch", "cla4"));
      spec.mult_arch = args.get("mult-arch", "array") == "wallace"
                           ? MultArch::wallace
                           : MultArch::array;
      CharacterizerOptions copt;
      copt.min_precision =
          args.get_int("min-precision", std::max(1, width - 10));
      const ComponentCharacterizer ch(ctx, lib, model, copt);
      (void)ch.characterize(spec, scenarios);
      ++surfaces;
      std::printf("characterized %s\n", spec.name().c_str());
    }
  }
  if (!ctx.store().save(out)) {
    throw std::runtime_error("cannot write store file " + out);
  }
  std::printf("library with %zu surface(s) (%zu store entries) -> %s\n",
              surfaces, ctx.store().entries(), out.c_str());
  return 0;
}

/// `aapx library query`: print surfaces straight out of a store file.
int cmd_library_query(const Args& args) {
  const std::string path = args.get("store", "");
  if (path.empty()) throw std::runtime_error("--store <file> is required");
  engine::StoreFileData data = engine::load_store_file(path);
  if (!data.file_found) throw std::runtime_error("cannot open " + path);
  for (const std::string& w : data.warnings) {
    std::fprintf(stderr, "aapx store: %s\n", w.c_str());
  }
  const bool filter_kind = args.has("kind");
  const ComponentKind kind =
      filter_kind ? parse_kind(args.get("kind", "")) : ComponentKind::adder;
  const int width = args.get_int("width", 0);

  std::size_t shown = 0;
  for (const engine::RawRecord& rec : data.records) {
    if (rec.kind != engine::RecordKind::surface) continue;
    engine::SurfacePayload p;
    try {
      p = engine::decode_surface_payload(rec.payload);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "aapx store: skipping surface record: %s\n",
                   e.what());
      continue;
    }
    if (filter_kind && p.surface.base.kind != kind) continue;
    if (width > 0 && p.surface.base.width != width) continue;
    print_surface(p);
    ++shown;
  }
  std::printf("%zu surface(s) matched in %s\n", shown, path.c_str());
  return shown > 0 ? 0 : 1;
}

/// `aapx library info`: header + per-kind record census. The header is
/// decoded by hand so a file from a *different* build still reports itself.
int cmd_library_info(const Args& args) {
  const std::string path = args.get("store", "");
  if (path.empty()) throw std::runtime_error("--store <file> is required");
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string bytes = buf.str();
  if (bytes.size() < engine::kHeaderSize ||
      std::memcmp(bytes.data(), engine::kStoreMagic, 8) != 0) {
    throw std::runtime_error(path + " is not an aapx store file");
  }
  engine::BinReader r(std::string_view(bytes).substr(8));  // past the magic
  const std::uint32_t version = r.u32();
  const std::uint64_t build_fp = r.u64();
  const std::uint64_t count = r.u64();
  std::printf("store file:     %s (%zu bytes)\n", path.c_str(), bytes.size());
  std::printf("format version: %u (this binary: %u)\n", version,
              engine::kStoreFormatVersion);
  std::printf("build:          %016llx (this binary: %016llx)%s\n",
              static_cast<unsigned long long>(build_fp),
              static_cast<unsigned long long>(engine::build_fingerprint()),
              build_fp == engine::build_fingerprint()
                  ? ""
                  : "  [foreign build: records unusable here]");
  std::printf("records:        %llu\n",
              static_cast<unsigned long long>(count));

  engine::StoreFileData data = engine::load_store_file(path);
  for (const std::string& w : data.warnings) {
    std::fprintf(stderr, "aapx store: %s\n", w.c_str());
  }
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> census;
  for (const engine::RawRecord& rec : data.records) {
    auto& [n, payload_bytes] = census[engine::to_string(rec.kind)];
    ++n;
    payload_bytes += rec.payload.size();
  }
  TextTable table({"kind", "records", "payload bytes"});
  for (const auto& [name, stat] : census) {
    table.add_row({name, std::to_string(stat.first),
                   std::to_string(stat.second)});
  }
  table.print(std::cout);
  if (data.records_dropped > 0) {
    std::printf("%llu record(s) dropped as damaged\n",
                static_cast<unsigned long long>(data.records_dropped));
  }
  return 0;
}

/// `aapx library merge`: union several store files into one, first-wins on
/// conflicting payloads for the same key.
int cmd_library_merge(const Args& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) throw std::runtime_error("--out <file> is required");
  const std::vector<std::string> inputs = split_csv(args.get("inputs", ""));
  if (inputs.empty()) {
    throw std::runtime_error("--inputs <a.aapx,b.aapx,...> is required");
  }
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::string> merged;
  std::size_t conflicts = 0;
  for (const std::string& input : inputs) {
    engine::StoreFileData data = engine::load_store_file(input);
    if (!data.file_found) throw std::runtime_error("cannot open " + input);
    for (const std::string& w : data.warnings) {
      std::fprintf(stderr, "aapx store: %s\n", w.c_str());
    }
    for (engine::RawRecord& rec : data.records) {
      const std::pair<std::uint32_t, std::uint64_t> key = {
          static_cast<std::uint32_t>(rec.kind), rec.key};
      const auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, std::move(rec.payload));
      } else if (it->second != rec.payload) {
        std::fprintf(stderr,
                     "aapx store: %s: conflicting %s record %016llx "
                     "(keeping first)\n",
                     input.c_str(), engine::to_string(rec.kind),
                     static_cast<unsigned long long>(rec.key));
        ++conflicts;
      }
    }
  }
  std::vector<engine::RawRecord> records;
  records.reserve(merged.size());
  for (auto& [key, payload] : merged) {
    records.push_back({static_cast<engine::RecordKind>(key.first), key.second,
                       std::move(payload)});
  }
  // std::map iterates (kind, key)-sorted already — write is deterministic.
  if (engine::write_store_file(out, records) == 0) {
    throw std::runtime_error("cannot write store file " + out);
  }
  std::printf("%zu record(s) from %zu file(s) -> %s (%zu conflict(s))\n",
              records.size(), inputs.size(), out.c_str(), conflicts);
  return 0;
}

int cmd_library(const Context& ctx, const Args& args) {
  if (args.action == "build") return cmd_library_build(ctx, args);
  if (args.action == "query") return cmd_library_query(args);
  if (args.action == "info") return cmd_library_info(args);
  if (args.action == "merge") return cmd_library_merge(args);
  throw std::runtime_error("library: unknown action '" + args.action +
                           "' (build|query|info|merge)");
}

/// `aapx surrogate train`: fit the learned aging surrogate from the
/// characterization surfaces already in the attached --store, validate it on
/// the held-out split and persist it into the same store (its own record
/// family — a surrogate can never alias an exact artifact). The samples come
/// from surfaces computed under THIS command's model configuration: pass the
/// same --mechanisms/knobs the surfaces were characterized with.
int cmd_surrogate_train(const Context& ctx, const Args& args) {
  const CellLibrary lib = make_nangate45_like();
  const AgingModel model = model_from(args);
  const StaOptions sta;  // every CLI characterization runs under defaults
  engine::DesignStore& store = ctx.store();
  const std::uint64_t lib_fp = engine::fingerprint(lib);
  const std::uint64_t params_key = engine::key_of(model.params());
  const std::uint64_t sta_key = engine::key_of(sta);

  std::vector<surrogate::TrainingSample> samples;
  std::size_t surfaces_used = 0;
  std::size_t surfaces_skipped = 0;
  for (const engine::SurfacePayload& p : store.surface_snapshot()) {
    if (p.lib_fp != lib_fp || engine::key_of(p.params) != params_key ||
        engine::key_of(p.sta) != sta_key) {
      ++surfaces_skipped;  // different model/STA family — not this model's
      continue;            // labels
    }
    ++surfaces_used;
    for (const PrecisionPoint& pt : p.surface.points) {
      ComponentSpec spec = p.surface.base;
      spec.truncated_bits = p.surface.base.width - pt.precision;
      samples.push_back({spec, StressMode::worst, 0.0, pt.fresh_delay});
      const std::size_t n =
          std::min(p.scenarios.size(), pt.aged_delay.size());
      for (std::size_t si = 0; si < n; ++si) {
        const AgingScenario& s = p.scenarios[si];
        // Measured-mode labels depend on a stimulus set the feature map
        // cannot see; the surrogate never serves (or learns from) them.
        if (!s.is_fresh() && s.mode == StressMode::measured) continue;
        samples.push_back({spec, s.mode, s.is_fresh() ? 0.0 : s.years,
                           pt.aged_delay[si]});
      }
    }
  }
  if (samples.empty()) {
    throw std::runtime_error(
        "surrogate train: no characterization surfaces for this model "
        "configuration in the store — run `aapx characterize --store <file>` "
        "first (and pass the same --mechanisms knobs here)");
  }

  surrogate::TrainOptions topt;
  topt.ridge_lambda = args.get_double("lambda", topt.ridge_lambda);
  if (!(topt.ridge_lambda > 0.0)) {
    throw std::runtime_error("--lambda must be > 0");
  }
  surrogate::SurrogateModel fit =
      surrogate::SurrogateModel::train(samples, model, topt);

  std::printf(
      "aapx surrogate: trained on %llu sample(s) from %zu surface(s)%s "
      "(lambda %g)\n",
      static_cast<unsigned long long>(fit.train_samples()), surfaces_used,
      surfaces_skipped > 0
          ? (" [" + std::to_string(surfaces_skipped) +
             " foreign surface(s) skipped]")
                .c_str()
          : "",
      fit.ridge_lambda());
  std::printf(
      "aapx surrogate: held-out validation over %llu sample(s): "
      "p50 %.4f ps, p95 %.4f ps, p99 %.4f ps, max %.4f ps\n",
      static_cast<unsigned long long>(fit.holdout_samples()),
      fit.err_p50_ps(), fit.err_p95_ps(), fit.err_p99_ps(), fit.err_max_ps());
  std::printf(
      "aapx surrogate: serves `--surrogate <bound>` runs with bound >= "
      "%.4f ps (validated p99); out-of-hull queries fall back to exact\n",
      fit.err_p99_ps());
  const std::uint64_t key = store.put_surrogate(lib, model, sta,
                                                std::move(fit));
  std::printf("aapx surrogate: model stored under key %016llx\n",
              static_cast<unsigned long long>(key));
  return 0;
}

/// `aapx surrogate info`: report the trained model (if any) for this model
/// configuration's store family.
int cmd_surrogate_info(const Context& ctx, const Args& args) {
  const CellLibrary lib = make_nangate45_like();
  const AgingModel model = model_from(args);
  const StaOptions sta;
  const surrogate::SurrogateModel* m =
      ctx.store().surrogate_model(lib, model, sta);
  if (m == nullptr) {
    std::printf(
        "aapx surrogate: no trained model for this configuration in the "
        "store (run `aapx surrogate train --store <file>`)\n");
    return 1;
  }
  std::printf("aapx surrogate: model for the default library/STA family\n");
  std::printf("  features        %zu (layout v%u)\n", surrogate::kNumFeatures,
              surrogate::kFeatureVersion);
  std::printf("  trained on      %llu sample(s)\n",
              static_cast<unsigned long long>(m->train_samples()));
  std::printf("  held out        %llu sample(s)\n",
              static_cast<unsigned long long>(m->holdout_samples()));
  std::printf("  ridge lambda    %g\n", m->ridge_lambda());
  std::printf("  err p50         %.4f ps\n", m->err_p50_ps());
  std::printf("  err p95         %.4f ps\n", m->err_p95_ps());
  std::printf("  err p99         %.4f ps\n", m->err_p99_ps());
  std::printf("  err max         %.4f ps\n", m->err_max_ps());
  return 0;
}

int cmd_surrogate(const Context& ctx, const Args& args) {
  if (args.action == "train") return cmd_surrogate_train(ctx, args);
  if (args.action == "info") return cmd_surrogate_info(ctx, args);
  throw std::runtime_error("surrogate: unknown action '" + args.action +
                           "' (train|info)");
}

/// `aapx serve`: long-running characterization service over the Context's
/// DesignStore. Shutdown is SIGINT/SIGTERM → graceful drain → snapshot →
/// exit 128+signal, the same convention as every other interrupted
/// subcommand (see src/service/server.hpp for the robustness contract).
int cmd_serve(const Context& ctx, const Args& args,
              const std::string& store_path) {
  service::ServerOptions sopts;
  sopts.listen = args.get("listen", "tcp:0");
  sopts.workers = args.get_int("workers", 2);
  if (sopts.workers < 1) throw std::runtime_error("--workers must be >= 1");
  sopts.sweep_threads = args.get_int("sweep-threads", 1);
  const int queue = args.get_int("queue", 64);
  if (queue < 1) throw std::runtime_error("--queue must be >= 1");
  sopts.queue_capacity = static_cast<std::size_t>(queue);
  sopts.retry_hint_ms =
      static_cast<std::uint32_t>(args.get_int("retry-hint-ms", 50));
  sopts.snapshot_interval_s = args.get_double("snapshot-interval", 0.0);
  sopts.store_path = store_path;
  sopts.log_dir = args.get("log-dir", "");
  sopts.admin = args.get("admin", "");
  sopts.request_trace_path = args.get("request-trace", "");
  if (args.has("request-trace-rotate-kb")) {
    const int kb = args.get_int("request-trace-rotate-kb", 0);
    if (kb < 1) {
      throw std::runtime_error("--request-trace-rotate-kb must be >= 1");
    }
    sopts.request_trace_rotate_bytes = static_cast<std::size_t>(kb) * 1024;
  }
  const int slow_ring = args.get_int("slow-ring", 16);
  if (slow_ring < 0) throw std::runtime_error("--slow-ring must be >= 0");
  sopts.slow_ring = static_cast<std::size_t>(slow_ring);

  service::Server server(ctx, sopts);
  std::string err;
  if (!server.start(&err)) throw std::runtime_error("serve: " + err);
  g_server.store(&server);
  std::printf("aapx serve: listening on %s (%d workers, queue %d%s)\n",
              server.endpoint().c_str(), sopts.workers, queue,
              store_path.empty() ? "" : (", store " + store_path).c_str());
  if (!server.admin_endpoint().empty()) {
    std::printf("aapx serve: admin on %s (GET /metrics, GET /healthz)\n",
                server.admin_endpoint().c_str());
  }
  if (!sopts.request_trace_path.empty()) {
    std::printf("aapx serve: request traces -> %s\n",
                sopts.request_trace_path.c_str());
  }
  std::fflush(stdout);
  server.serve_forever();
  g_server.store(nullptr);

  const service::Server::Stats s = server.stats();
  std::printf(
      "aapx serve: drained after signal %d — %llu connection(s), "
      "%llu request(s): %llu ok, %llu shed, %llu deduped, %llu cancelled, "
      "%llu protocol error(s), %llu snapshot(s)\n",
      g_signal.load(), static_cast<unsigned long long>(s.connections),
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.deduped),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.protocol_errors),
      static_cast<unsigned long long>(s.snapshots));
  const int signum = g_signal.load();
  return signum > 0 ? 128 + signum : 0;
}

/// Renders one StatsResponse as the operator-facing dashboard `aapx top`
/// refreshes and `aapx client --op stats` prints once. `qps` < 0 = unknown
/// (first poll has no delta to rate from).
void print_stats(const service::StatsResponse& s, const std::string& endpoint,
                 double qps) {
  std::printf("aapx serve @ %s — up %.1f s", endpoint.c_str(), s.uptime_s);
  if (qps >= 0.0) std::printf(" — %.1f done/s", qps);
  std::printf("\n");
  const std::string snap_note =
      s.snapshot_age_s >= 0.0
          ? "   snapshot " + TextTable::num(s.snapshot_age_s, 1) + " s ago"
          : std::string();
  std::printf(
      "connections %llu (%llu live)   queue %llu   inflight %llu%s\n",
      static_cast<unsigned long long>(s.connections),
      static_cast<unsigned long long>(s.live_connections),
      static_cast<unsigned long long>(s.queue_depth),
      static_cast<unsigned long long>(s.inflight), snap_note.c_str());
  std::printf(
      "requests %llu   completed %llu   shed %llu   deduped %llu   "
      "cancelled %llu   protocol errors %llu   snapshots %llu\n",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.deduped),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.protocol_errors),
      static_cast<unsigned long long>(s.snapshots));
  if (!s.ops.empty()) {
    TextTable lat({"op", "count", "mean [ms]", "p50 [ms]", "p95 [ms]",
                   "p99 [ms]", "min [ms]", "max [ms]"});
    for (const service::StatsResponse::OpLatency& op : s.ops) {
      obs::HistogramSample sample;
      sample.count = op.count;
      sample.sum = op.sum_us;
      sample.min = op.min_us;
      sample.max = op.max_us;
      for (const auto& [index, n] : op.buckets) {
        sample.buckets.emplace_back(index, n);
      }
      const double mean =
          op.count == 0 ? 0.0 : op.sum_us / static_cast<double>(op.count);
      lat.add_row(
          {to_string(static_cast<service::MsgType>(op.op)),
           std::to_string(op.count), TextTable::num(mean / 1000.0, 2),
           TextTable::num(obs::histogram_quantile(sample, 0.50) / 1000.0, 2),
           TextTable::num(obs::histogram_quantile(sample, 0.95) / 1000.0, 2),
           TextTable::num(obs::histogram_quantile(sample, 0.99) / 1000.0, 2),
           TextTable::num(op.min_us / 1000.0, 2),
           TextTable::num(op.max_us / 1000.0, 2)});
    }
    lat.print(std::cout);
  }
  if (!s.slow.empty()) {
    std::printf("slowest requests:\n");
    TextTable slow({"seq", "op", "trace", "latency [ms]"});
    for (const service::StatsResponse::SlowRequest& r : s.slow) {
      char trace[24];
      std::snprintf(trace, sizeof(trace), "%016llx",
                    static_cast<unsigned long long>(r.trace_id));
      slow.add_row({std::to_string(r.seq),
                    to_string(static_cast<service::MsgType>(r.op)),
                    r.trace_id == 0 ? "-" : trace,
                    TextTable::num(r.latency_us / 1000.0, 2)});
    }
    slow.print(std::cout);
  }
}

/// `aapx client`: one request against a running `aapx serve`, with the
/// ServiceClient's full retry/backoff behavior.
int cmd_client(const Args& args) {
  const std::string endpoint = args.get("connect", "");
  if (endpoint.empty()) {
    throw std::runtime_error("--connect unix:<path>|tcp:<port> is required");
  }
  service::ClientOptions copt;
  copt.max_attempts = args.get_int("attempts", 8);
  service::ServiceClient client(endpoint, copt);
  if (args.has("trace-id")) {
    client.set_trace_id(to_u64_strict(args.get("trace-id", ""), "--trace-id"));
  }
  const std::string op = args.get("op", "ping");
  std::string err;

  if (op == "stats") {
    const auto stats = client.stats(&err);
    if (!stats.has_value()) throw std::runtime_error("stats: " + err);
    print_stats(*stats, endpoint, -1.0);
    return 0;
  }
  if (op == "ping") {
    if (!client.ping(&err)) throw std::runtime_error("ping: " + err);
    std::printf("pong from %s\n", endpoint.c_str());
    return 0;
  }
  if (op == "characterize") {
    service::CharacterizeRequest req;
    req.spec = spec_from(args);
    req.min_precision =
        args.get_int("min-precision", std::max(1, req.spec.width - 10));
    req.precision_step = args.get_int("step", 1);
    const StressMode mode = parse_mode(args.get("mode", "worst"));
    for (const double y : parse_list(args.get("years", "1,10"), "--years")) {
      if (y < 0.0) {
        throw std::runtime_error("--years entries must be non-negative");
      }
      req.scenarios.push_back({mode, y});
    }
    req.deadline_ms =
        static_cast<std::uint32_t>(args.get_int("deadline-ms", 0));
    const auto surface = client.characterize(req, &err);
    if (!surface.has_value()) throw std::runtime_error("characterize: " + err);
    print_surface(*surface);
    if (client.retries() > 0) {
      std::fprintf(stderr, "aapx client: %llu retry attempt(s)\n",
                   static_cast<unsigned long long>(client.retries()));
    }
    return 0;
  }
  if (op == "aged-delay") {
    service::AgedDelayRequest req;
    req.spec = spec_from(args);
    req.mode = parse_mode(args.get("mode", "worst"));
    req.years = args.get_years("years", 10.0);
    req.deadline_ms =
        static_cast<std::uint32_t>(args.get_int("deadline-ms", 0));
    const auto delay = client.aged_delay(req, &err);
    if (!delay.has_value()) throw std::runtime_error("aged-delay: " + err);
    std::printf("%s @ %s/%.3gy: %.3f ps\n", req.spec.name().c_str(),
                to_string(req.mode).c_str(), req.years, *delay);
    return 0;
  }
  if (op == "query") {
    service::LibraryQueryRequest req;
    if (args.has("kind")) {
      req.kind = static_cast<std::int32_t>(parse_kind(args.get("kind", "")));
    }
    req.width = args.get_int("width", 0);
    const auto surfaces = client.library_query(req, &err);
    if (!surfaces.has_value()) throw std::runtime_error("query: " + err);
    for (const engine::SurfacePayload& p : *surfaces) print_surface(p);
    std::printf("%zu surface(s) on %s\n", surfaces->size(), endpoint.c_str());
    return 0;
  }
  throw std::runtime_error("unknown --op " + op +
                           " (ping|characterize|aged-delay|query|stats)");
}

/// `aapx top`: a refreshing operational dashboard over the in-band stats
/// op — poll, render, sleep, repeat until SIGINT/SIGTERM (or once with
/// --once). Rates are completed-count deltas between polls.
int cmd_top(const Args& args) {
  const std::string endpoint = args.get("connect", "");
  if (endpoint.empty()) {
    throw std::runtime_error("--connect unix:<path>|tcp:<port> is required");
  }
  const double interval_s = args.get_double("interval", 2.0);
  if (interval_s <= 0.0) throw std::runtime_error("--interval must be > 0");
  const bool once = args.has("once");
  service::ClientOptions copt;
  copt.max_attempts = args.get_int("attempts", 8);
  service::ServiceClient client(endpoint, copt);

  std::uint64_t prev_completed = 0;
  auto prev_time = std::chrono::steady_clock::now();
  bool have_prev = false;
  while (true) {
    std::string err;
    const auto stats = client.stats(&err);
    if (!stats.has_value()) throw std::runtime_error("top: " + err);
    const auto now = std::chrono::steady_clock::now();
    double qps = -1.0;
    if (have_prev) {
      const double dt = std::chrono::duration<double>(now - prev_time).count();
      qps = dt > 0.0 ? static_cast<double>(stats->completed - prev_completed) /
                           dt
                     : 0.0;
    }
    if (!once) std::printf("\033[H\033[2J");  // home + clear, like top(1)
    print_stats(*stats, endpoint, qps);
    std::fflush(stdout);
    if (once) return 0;
    prev_completed = stats->completed;
    prev_time = now;
    have_prev = true;
    // Sleep in short slices so a shutdown signal ends the loop promptly.
    const auto wake = now + std::chrono::duration<double>(interval_s);
    while (std::chrono::steady_clock::now() < wake) {
      if (g_signal.load() != 0) {
        std::printf("\n");
        return 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (g_signal.load() != 0) return 0;
  }
}

/// `aapx servesim`: the chaos harness (src/service/chaos.hpp).
int cmd_servesim(const Args& args) {
  service::ChaosOptions copt;
  copt.work_dir = args.get("work-dir", ".");
  copt.self_exe = args.get("self-exe", "/proc/self/exe");
  copt.verbose = args.has("verbose");
  const std::string scenario = args.get("scenario", "all");
  if (scenario != "all") return service::run_chaos_scenario(scenario, copt);
  int rc = 0;
  for (const std::string& name : service::chaos_scenarios()) {
    rc |= service::run_chaos_scenario(name, copt);
  }
  return rc;
}

int cmd_help() {
  std::printf(R"(aapx — aging-induced approximations toolkit

commands:
  characterize    delay-vs-precision-vs-aging surface of one component
      --kind adder|multiplier|mac|clamp  --width N  --arch ripple|cla4|kogge-stone
      --mult-arch array|wallace  --min-precision K  --mode worst|balanced
      --years 1,10  [--save lib.txt]
      --mechanisms bti,hci,em,tddb     aging mechanism set (default bti —
                                       bit-identical to the historic model)
      --hci-a A --hci-exp M            HCI drift prefactor / activity exponent
      --em-eta Y --em-beta B           EM Weibull scale [years] / shape
      --tddb-eta Y --tddb-beta B       TDDB Weibull scale [years] / shape
      --surrogate BOUND_PS             answer aged-delay queries from the
                                       store's trained surrogate when its
                                       validated p99 error fits the bound
                                       (also: flow, schedule, faultsim, serve)
  flow            run the microarchitecture flow on an IDCT-shaped design
      --width N  --years Y  --mode worst|balanced  [--min-precision K]
  schedule        adaptive lifetime precision schedule
      --kind ... --width N  --grid 0.5,1,2,5,10  --mode worst|balanced
  export-liberty  write the cell library as Liberty
      --out f.lib  [--years Y --stress worst|balanced]
  export-verilog  write a synthesized component as structural Verilog
      --kind ... --width N  [--trunc K]  --out f.v
  export-sdf      write per-gate delays as SDF
      --kind ... --width N  [--years Y --stress ...]  --out f.sdf
  faultsim        fault-injection campaign on the closed-loop runtime
      --kind ... --width N  --arch ...  --grid 0.5,1,2,5,10  --years Y
      --epochs N  --vectors N  --verify-vectors N  [--open-loop]
      --accel R  --temp-step K --temp-from Y  --outlier-frac F --outlier-factor R
      --sensor-gain G --sensor-offset Y --sensor-noise SIGMA  --seed S
      --canary-margin M --canary-trip N
      --mechanisms bti,hci,em,tddb  [--hazard-failover H]  fail over to a
                                    spare when cumulative EM/TDDB hazard
                                    crosses H (0 = disabled)
  library         build / inspect / merge persistent store files
      build  --out lib.aapx  --kinds adder,multiplier  --widths 8,16
             --arch ... --mult-arch ... --mode worst|balanced --years 1,10
             [--min-precision K]
      query  --store lib.aapx  [--kind adder --width 8]
      info   --store lib.aapx
      merge  --out all.aapx  --inputs a.aapx,b.aapx
  surrogate       train / inspect the learned aging surrogate of a store
      train  --store lib.aapx  [--lambda L]  [--mechanisms ...]
             fit a ridge model over the store's characterization surfaces,
             validate it held-out, and persist it into the same store
      info   --store lib.aapx  [--mechanisms ...]
  report          summarize instrumentation artifacts from a previous run
      --trace f.trace     top spans by inclusive time, thread/wall stats
      --log f.jsonl       record-type counts + controller decision timeline
      --metrics f.json    cache hit rates, histogram quantiles (exact
                          count/sum/min/max) from the metrics snapshot
      --log-dir DIR       aggregate a server's per-request run logs
      --diff A B          per-metric delta/percent between two artifacts
                          (metrics snapshots or BENCH_*.json files)
      [--top N]           span rows to print (default 15)
      [--check]           exit nonzero if any artifact fails validation
  serve           characterization-as-a-service daemon (SIGTERM = drain)
      --listen unix:<path>|tcp:<port>   (tcp:0 = ephemeral, printed at start)
      --workers N  --sweep-threads N  --queue N  --retry-hint-ms MS
      --snapshot-interval SECONDS      periodic atomic --store snapshots
      --log-dir DIR                    per-request JSONL run logs
      --admin unix:<path>|tcp:<port>   HTTP plane: GET /metrics (Prometheus
                                       text), GET /healthz
      --request-trace FILE             stream per-request span trees (Chrome
                                       trace) with rotation
      --request-trace-rotate-kb KB     rotation threshold (default 8192)
      --slow-ring N                    slowest-requests ring size (default 16)
  client          one request against a running server (retry + backoff)
      --connect unix:<path>|tcp:<port>
      --op ping|characterize|aged-delay|query|stats
      --kind ... --width N --arch ...  --years 1,10  --mode worst|balanced
      --min-precision K --step S  --deadline-ms MS  --attempts N
      --trace-id ID       stamp a fixed trace id for request correlation
  top             live dashboard over a running server's stats op
      --connect unix:<path>|tcp:<port>
      --interval SECONDS  poll/refresh period (default 2)
      --once              print one snapshot and exit
  servesim        chaos harness for the service layer
      --scenario all|drop|slowloris|malformed|storm|kill|scrape
      --work-dir DIR  --self-exe PATH  --verbose
  help            this text

global options:
  --threads N | -j N   worker threads for parallel sweeps (default: all
                       cores, or the AAPX_THREADS environment variable)
  --store <file>       persistent DesignStore: warm this run from the file
                       if it exists, save the warmed store back on exit
                       (default: the AAPX_STORE environment variable)
  --trace <file>       write a Chrome trace-event JSON of this run
                       (chrome://tracing or Perfetto)
  --metrics <file>     write the metrics-registry snapshot as JSON
  --log <file>         write the structured JSONL run log (manifest,
                       campaign/epoch/control_event/sweep/sta records)
)");
  return 0;
}

}  // namespace

namespace {

int dispatch(const Context& ctx, const Args& args,
             const std::string& store_path) {
  if (args.command == "characterize") return cmd_characterize(ctx, args);
  if (args.command == "flow") return cmd_flow(ctx, args);
  if (args.command == "schedule") return cmd_schedule(ctx, args);
  if (args.command == "export-liberty") return cmd_export_liberty(args);
  if (args.command == "export-verilog") return cmd_export_verilog(ctx, args);
  if (args.command == "export-sdf") return cmd_export_sdf(ctx, args);
  if (args.command == "faultsim") return cmd_faultsim(ctx, args);
  if (args.command == "library") return cmd_library(ctx, args);
  if (args.command == "surrogate") return cmd_surrogate(ctx, args);
  if (args.command == "report") return cmd_report(args);
  if (args.command == "serve") return cmd_serve(ctx, args, store_path);
  if (args.command == "client") return cmd_client(args);
  if (args.command == "top") return cmd_top(args);
  if (args.command == "servesim") return cmd_servesim(args);
  if (args.command.empty() || args.command == "help" ||
      args.command == "--help") {
    return cmd_help();
  }
  std::fprintf(stderr, "aapx: unknown command '%s' (try 'aapx help')\n",
               args.command.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    reject_unknown_options(args);
    // The CLI is a single-tenant process: it runs on the process-default
    // Context, whose metrics/run-log sinks are the global instances the
    // --metrics/--log flags have always driven. --threads/-j keeps its
    // historic meaning by setting the global default worker count, which a
    // Context with no explicit thread count falls through to.
    Context& ctx = Context::process_default();
    // SIGINT/SIGTERM become cooperative cancellation: sweeps and campaign
    // epochs observe the token and unwind cleanly instead of the process
    // dying with an unsaved store. `report` keeps default signal behavior
    // (it only reads artifacts; instant death loses nothing).
    if (args.command != "report") {
      install_signal_handlers();
      ctx.set_cancel_token(&g_cancel);
    }
    if (args.has("threads")) {
      const int threads = args.get_int("threads", 0);
      if (threads < 1) throw std::runtime_error("--threads must be >= 1");
      set_num_threads(threads);
    }
    // `--surrogate <bound_ps>` arms the learned fast path on this process's
    // store: aged-delay queries whose validated surrogate error fits the
    // bound are answered by the model, everything else falls back to exact.
    // For `aapx serve` the bound is armed on the root Context, so every
    // served characterize/aged-delay request inherits it.
    if (args.has("surrogate")) {
      const double bound = args.get_double("surrogate", 0.0);
      if (!(bound > 0.0)) {
        throw std::runtime_error(
            "--surrogate must be a positive delay-error bound in ps");
      }
      ctx.set_surrogate_bound(bound);
    }

    const std::string trace_path = args.get("trace", "");
    const std::string metrics_path = args.get("metrics", "");
    const std::string log_path = args.get("log", "");
    // `report` reads these paths as inputs; every other command writes them.
    const bool instrumented = args.command != "report";
    if (instrumented && !log_path.empty()) {
      if (!ctx.runlog().open(log_path)) {
        throw std::runtime_error("cannot open --log file " + log_path);
      }
      std::string argline = args.command;
      for (int i = 2; i < argc; ++i) {
        argline += ' ';
        argline += argv[i];
      }
      obs::JsonWriter mf;
      mf.field("command", args.command)
          .field("argv", argline)
          .field("threads", ctx.num_threads());
      obs::emit_manifest(mf);
    }
    if (instrumented && !trace_path.empty()) obs::Tracer::instance().start();

    // Persistent store (`--store` / AAPX_STORE): warm the Context's
    // DesignStore before dispatch and save the warmed store back after, so
    // a second identical invocation is served from disk. Opened *after* the
    // run log so the store_load record lands in it — identically whether
    // the file exists yet or not. `report` only reads artifacts and
    // `library` manages store files explicitly; neither attaches one.
    std::string store_path = args.get("store", "");
    if (store_path.empty()) {
      if (const char* env = std::getenv("AAPX_STORE")) store_path = env;
    }
    static const std::set<std::string> kStoreCommands = {
        "characterize", "flow",       "schedule", "export-liberty",
        "export-verilog", "export-sdf", "faultsim", "serve", "surrogate"};
    const bool uses_store =
        !store_path.empty() && kStoreCommands.count(args.command) != 0;
    if (uses_store) ctx.store().open(store_path);

    int rc = 0;
    try {
      rc = dispatch(ctx, args, uses_store ? store_path : std::string());
    } catch (const CancelledError& e) {
      // A shutdown signal unwound the flow mid-sweep/mid-epoch. The store
      // holds only fully-built artifacts (insertions are transactional),
      // so snapshotting the partial progress is always safe — the next
      // run warm-starts from whatever completed.
      const int signum = g_signal.load();
      const bool saved = uses_store && ctx.store().save(store_path);
      std::fprintf(stderr,
                   "aapx: interrupted by signal %d (%s)%s\n", signum,
                   e.what(),
                   saved ? (", warm store snapshot saved to " + store_path)
                               .c_str()
                         : "");
      return signum > 0 ? 128 + signum : 1;
    }

    if (uses_store && !ctx.store().save(store_path)) {
      return rc != 0 ? rc : 1;
    }

    if (instrumented && !trace_path.empty()) {
      if (obs::Tracer::instance().stop_and_write_file(trace_path)) {
        std::fprintf(stderr, "aapx: trace written to %s\n", trace_path.c_str());
      } else {
        std::fprintf(stderr, "aapx: cannot write --trace file %s\n",
                     trace_path.c_str());
        return 1;
      }
    }
    if (instrumented && !metrics_path.empty()) {
      std::ofstream os(metrics_path);
      if (!os) {
        std::fprintf(stderr, "aapx: cannot write --metrics file %s\n",
                     metrics_path.c_str());
        return 1;
      }
      ctx.metrics().write_json(os);
      std::fprintf(stderr, "aapx: metrics written to %s\n",
                   metrics_path.c_str());
    }
    if (instrumented && !log_path.empty()) {
      ctx.runlog().close();
      std::fprintf(stderr, "aapx: run log written to %s\n", log_path.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aapx: %s\n", e.what());
    return 1;
  }
}
