# ctest script chaining the instrumented CLI end to end: an accelerated
# faultsim campaign writes all three artifacts (--log/--trace/--metrics),
# `aapx report` renders the decision timeline, span table and cache hit
# rates from them, and `aapx report --check` certifies them schema-valid.
# Invoked as: cmake -DAAPX_BIN=<aapx> -DWORKDIR=<scratch> -P cli_obs_test.cmake
if(NOT DEFINED AAPX_BIN OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "pass -DAAPX_BIN=<path to aapx> -DWORKDIR=<scratch dir>")
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")
set(log "${WORKDIR}/run.jsonl")
set(trace "${WORKDIR}/run.trace")
set(metrics "${WORKDIR}/run_metrics.json")

function(check_contains text pattern what)
  if(NOT text MATCHES "${pattern}")
    message(FATAL_ERROR "${what}: expected to match '${pattern}', got:\n${text}")
  endif()
endfunction()

# --- 1. instrumented campaign (accelerated die => control events fire) ------
execute_process(
  COMMAND "${AAPX_BIN}" faultsim --width 12 --arch ripple --grid 1,5,10
          --epochs 8 --vectors 32 --verify-vectors 24 --accel 1.7
          --log "${log}" --trace "${trace}" --metrics "${metrics}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "faultsim failed (rc=${rc}):\n${out}\n${err}")
endif()
foreach(artifact "${log}" "${trace}" "${metrics}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "faultsim did not write ${artifact}")
  endif()
endforeach()
check_contains("${err}" "run log written to" "faultsim stderr")

# --- 2. report renders all three sections -----------------------------------
execute_process(
  COMMAND "${AAPX_BIN}" report --log "${log}" --trace "${trace}"
          --metrics "${metrics}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report failed (rc=${rc}):\n${out}\n${err}")
endif()
check_contains("${out}" "top spans by inclusive time" "report")
check_contains("${out}" "campaign" "report span table")
check_contains("${out}" "controller decision timeline" "report")
check_contains("${out}" "cache hit rates" "report")
# The unified DesignStore must be serving cross-layer hits: the characterizer
# warms entries during planning, the campaign's runtime + fault injector then
# hit them — all through one engine.store.* counter family.
check_contains("${out}" "engine\\.store\\.library" "report")
check_contains("${out}" "engine\\.store\\.netlist" "report")

# --- 3. --check certifies the artifacts against the bundled validators ------
execute_process(
  COMMAND "${AAPX_BIN}" report --log "${log}" --trace "${trace}"
          --metrics "${metrics}" --check
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report --check failed (rc=${rc}):\n${out}\n${err}")
endif()
check_contains("${out}" "report: all artifacts valid" "report --check")

# --- 4. --check rejects a corrupted log -------------------------------------
file(APPEND "${log}" "{\"type\":\"epoch\",\"epoch\":\"not-a-number\"}\n")
execute_process(
  COMMAND "${AAPX_BIN}" report --log "${log}" --check
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "report --check accepted a corrupted log:\n${out}")
endif()
check_contains("${out}" "validation failure" "report --check (corrupt)")

message(STATUS "cli_obs_test: all stages passed")
