// Factories behind the WideSim facade: the always-available backends (u64
// and the portable multi-uint64 words) live here; the AVX backends live in
// packedsim_avx2.cpp / packedsim_avx512.cpp so only those translation units
// carry vector-ISA code, and are reached only after a cpuid check.
#include "gatesim/widesim_impl.hpp"

namespace aapx {

std::unique_ptr<WideSim> make_wide_sim(const Netlist& nl,
                                       simd::SimdBackend backend) {
  const auto available = [&] {
    for (const simd::SimdBackend b : simd::compiled_backends()) {
      if (b == backend) return simd::backend_runnable(backend);
    }
    return false;
  };
  if (!available()) {
    throw std::invalid_argument(
        std::string("make_wide_sim: backend '") + simd::to_string(backend) +
        "' is not compiled into this binary or not supported by this CPU");
  }
  switch (backend) {
    case simd::SimdBackend::u64:
      return std::make_unique<detail::WideSimT<simd::SimWord64>>(nl, backend);
    case simd::SimdBackend::portable256:
      return std::make_unique<detail::WideSimT<simd::SimWord256P>>(nl,
                                                                   backend);
    case simd::SimdBackend::portable512:
      return std::make_unique<detail::WideSimT<simd::SimWord512P>>(nl,
                                                                   backend);
    case simd::SimdBackend::avx2:
#ifdef AAPX_SIMD_HAVE_AVX2
      return detail::make_wide_sim_avx2(nl);
#else
      break;
#endif
    case simd::SimdBackend::avx512:
#ifdef AAPX_SIMD_HAVE_AVX512
      return detail::make_wide_sim_avx512(nl);
#else
      break;
#endif
  }
  throw std::logic_error("make_wide_sim: unreachable backend");
}

std::unique_ptr<WideSim> make_wide_sim(const Netlist& nl) {
  return make_wide_sim(nl, simd::simd_dispatch());
}

}  // namespace aapx
