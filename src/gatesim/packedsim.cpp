#include "gatesim/packedsim.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace aapx {
namespace {

/// Bitwise 64-lane form of each logic function. Must match fn_eval bit for
/// bit; PackedFuncSimTest.MatchesFnEvalExhaustively holds it to that.
std::uint64_t eval_packed(LogicFn fn, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) {
  switch (fn) {
    case LogicFn::kBuf:   return a;
    case LogicFn::kInv:   return ~a;
    case LogicFn::kAnd2:  return a & b;
    case LogicFn::kNand2: return ~(a & b);
    case LogicFn::kOr2:   return a | b;
    case LogicFn::kNor2:  return ~(a | b);
    case LogicFn::kXor2:  return a ^ b;
    case LogicFn::kXnor2: return ~(a ^ b);
    case LogicFn::kAnd3:  return a & b & c;
    case LogicFn::kNand3: return ~(a & b & c);
    case LogicFn::kOr3:   return a | b | c;
    case LogicFn::kNor3:  return ~(a | b | c);
    case LogicFn::kAoi21: return ~((a & b) | c);
    case LogicFn::kOai21: return ~((a | b) & c);
    case LogicFn::kMux2:  return (c & b) | (~c & a);
    case LogicFn::kMaj3:  return (a & b) | (a & c) | (b & c);
  }
  throw std::logic_error("eval_packed: unknown logic function");
}

}  // namespace

PackedFuncSim::PackedFuncSim(const Netlist& nl)
    : nl_(&nl), values_(nl.num_nets(), 0) {
  values_[nl.const1()] = ~std::uint64_t{0};
  gates_.reserve(nl.num_gates());
  for (const GateId gid : nl.topo_order()) {
    const Gate& g = nl.gate(gid);
    PackedGate pg;
    // Unused fanin slots point at const0 so every gate can be evaluated as
    // 3-input without branching on pin count.
    for (std::size_t p = 0; p < pg.fanin.size(); ++p) {
      pg.fanin[p] = g.fanin[p] == kInvalidNet ? nl.const0() : g.fanin[p];
    }
    pg.fanout = g.fanout;
    pg.fn = nl.lib().cell(g.cell).fn;
    gates_.push_back(pg);
  }
}

void PackedFuncSim::set_input_lanes(NetId net, std::uint64_t lanes) {
  if (nl_->driver(net) != kInvalidGate || nl_->is_constant(net)) {
    throw std::invalid_argument(
        "PackedFuncSim::set_input_lanes: net is not a primary input");
  }
  values_[net] = lanes;
}

PackedFuncSim::~PackedFuncSim() {
  static obs::Counter& evals = obs::metrics().counter("packedsim.evals");
  static obs::Counter& lanes = obs::metrics().counter("packedsim.lanes_used");
  evals.add(evals_);
  lanes.add(lanes_used_);
}

void PackedFuncSim::set_bus(const std::string& bus,
                            std::span<const std::uint64_t> lane_values) {
  if (lane_values.size() > static_cast<std::size_t>(kLanes)) {
    throw std::invalid_argument("PackedFuncSim::set_bus: more than 64 lanes");
  }
  last_staged_lanes_ = static_cast<int>(lane_values.size());
  const auto& nets = nl_->input_bus(bus);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (nl_->is_constant(nets[i])) continue;  // truncated LSBs stay constant
    std::uint64_t word = 0;
    if (i < 64) {
      for (std::size_t lane = 0; lane < lane_values.size(); ++lane) {
        word |= ((lane_values[lane] >> i) & 1u) << lane;
      }
    }
    values_[nets[i]] = word;
  }
}

void PackedFuncSim::eval() {
  ++evals_;
  lanes_used_ += static_cast<std::uint64_t>(last_staged_lanes_);
  std::uint64_t* const v = values_.data();
  for (const PackedGate& g : gates_) {
    v[g.fanout] =
        eval_packed(g.fn, v[g.fanin[0]], v[g.fanin[1]], v[g.fanin[2]]);
  }
}

std::uint64_t PackedFuncSim::lanes(NetId net) const {
  if (net >= values_.size()) throw std::out_of_range("PackedFuncSim::lanes");
  return values_[net];
}

std::uint64_t PackedFuncSim::bus_value(const std::string& output_bus,
                                       int lane) const {
  return word_value(nl_->output_bus(output_bus), lane);
}

std::uint64_t PackedFuncSim::word_value(const std::vector<NetId>& nets,
                                        int lane) const {
  if (nets.size() > 64) {
    throw std::invalid_argument("PackedFuncSim::word_value: bus too wide");
  }
  if (lane < 0 || lane >= kLanes) {
    throw std::out_of_range("PackedFuncSim::word_value: bad lane");
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if ((values_[nets[i]] >> lane) & 1u) v |= std::uint64_t{1} << i;
  }
  return v;
}

}  // namespace aapx
