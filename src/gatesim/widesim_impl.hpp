// Shared implementation template behind the WideSim facade. Included by
// packedsim.cpp (u64 + portable words) and by the per-ISA translation units
// packedsim_avx2.cpp / packedsim_avx512.cpp, which instantiate it with the
// AVX words only their compile flags make available.
#pragma once

#include <bit>

#include "gatesim/packedsim.hpp"

namespace aapx::detail {

template <simd::SimWord W>
class WideSimT final : public WideSim {
 public:
  WideSimT(const Netlist& nl, simd::SimdBackend backend)
      : sim_(nl), backend_(backend) {}

  int lanes() const noexcept override { return W::kLanes; }
  simd::SimdBackend backend() const noexcept override { return backend_; }
  const Netlist& netlist() const noexcept override { return sim_.netlist(); }

  void set_bus(const std::string& bus,
               std::span<const std::uint64_t> lane_values) override {
    sim_.set_bus(bus, lane_values);
  }

  void eval() override { sim_.eval(); }

  std::uint64_t lanes_chunk(NetId net, int chunk) const override {
    return sim_.lanes_chunk(net, chunk);
  }

  std::uint64_t word_value(const std::vector<NetId>& nets,
                           int lane) const override {
    return sim_.word_value(nets, lane);
  }

  void add_high_popcounts(std::span<const NetId> nets, int lane_limit,
                          std::uint64_t* sums) const override {
    if (lane_limit < 0 || lane_limit > W::kLanes) {
      throw std::out_of_range("WideSim::add_high_popcounts: bad lane limit");
    }
    const std::vector<W>& values = sim_.values();
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const W& w = values[nets[i]];
      std::uint64_t high = 0;
      for (int chunk = 0; chunk * 64 < lane_limit; ++chunk) {
        const int valid = lane_limit - chunk * 64;
        const std::uint64_t mask = valid >= 64
                                       ? ~std::uint64_t{0}
                                       : (std::uint64_t{1} << valid) - 1;
        high += static_cast<std::uint64_t>(std::popcount(w.chunk(chunk) & mask));
      }
      sums[i] += high;
    }
  }

 private:
  BasicPackedFuncSim<W> sim_;
  simd::SimdBackend backend_;
};

// Per-ISA factories. The AVX ones are defined only when their translation
// units are compiled (gatesim/CMakeLists.txt sets AAPX_SIMD_HAVE_AVX2 /
// AAPX_SIMD_HAVE_AVX512 to match, so packedsim.cpp never references an
// undefined symbol).
std::unique_ptr<WideSim> make_wide_sim_avx2(const Netlist& nl);
std::unique_ptr<WideSim> make_wide_sim_avx512(const Netlist& nl);

}  // namespace aapx::detail
