// AVX-512 wide-sim backend: 512 lanes per __m512i word, one vpternlog per
// gate (detail::eval_ternlog bakes each gate function's truth table into
// the instruction immediate). This translation unit is compiled with
// -mavx512f (see gatesim/CMakeLists.txt); make_wide_sim only calls in here
// after __builtin_cpu_supports("avx512f").
#include "gatesim/widesim_impl.hpp"

#ifndef __AVX512F__
#error "packedsim_avx512.cpp must be compiled with -mavx512f"
#endif

namespace aapx::detail {

std::unique_ptr<WideSim> make_wide_sim_avx512(const Netlist& nl) {
  return std::make_unique<WideSimT<simd::SimWordAvx512>>(
      nl, simd::SimdBackend::avx512);
}

}  // namespace aapx::detail
