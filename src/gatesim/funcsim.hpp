// Zero-delay functional netlist evaluation.
//
// Used for correctness checks of the generators, leakage-state sampling, and
// as the settled-value reference for the timed simulator.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace aapx {

class FuncSim {
 public:
  explicit FuncSim(const Netlist& nl);

  /// Sets a primary input net's value (must be a PI).
  void set_input(NetId net, bool value);

  /// Sets an input bus (LSB-first) from the low bits of `value`.
  void set_bus(const std::string& bus, std::uint64_t value);

  /// Evaluates all gates in topological order.
  void eval();

  bool value(NetId net) const;

  /// Reads an output bus into a uint64 (bus width must be <= 64).
  std::uint64_t bus_value(const std::string& output_bus) const;

  /// Reads any net collection as an LSB-first word.
  std::uint64_t word_value(const std::vector<NetId>& nets) const;

  const std::vector<char>& values() const noexcept { return values_; }

 private:
  /// Per-gate truth table + fanins flattened at construction (same layout as
  /// TimedSim/PackedFuncSim) so eval() walks flat arrays only.
  struct FlatGate {
    std::array<NetId, 3> fanin;
    NetId fanout;
    std::uint8_t tt;
  };

  const Netlist* nl_;
  std::vector<FlatGate> gates_;  ///< in topological order
  std::vector<char> values_;
};

}  // namespace aapx
