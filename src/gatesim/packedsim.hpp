// Bit-parallel (wide-lane) zero-delay functional simulation.
//
// Packs W::kLanes independent stimulus vectors into one SimWord per net —
// lane j of a net's word is the net's logic value in stimulus j — and
// evaluates each gate once per word with the bitwise form of its logic
// function (derived from the same fn_eval truth tables the scalar FuncSim
// uses). One pass over the topo order therefore simulates kLanes vectors,
// which turns the inner loops of measured-stress extraction
// (measure_gate_duty), error-bounds sampling and the image-campaign duty
// traces from per-vector walks into per-word ones.
//
// The simulator is a template over the lane word (gatesim/simd.hpp):
// `PackedFuncSim` stays the 64-lane uint64_t instantiation with its PR 2
// API; `WideSim` is the type-erased facade whose factory picks the widest
// backend the CPU supports at runtime (AVX-512 / AVX2 / portable multi-u64),
// overridable with AAPX_SIMD. PackedFuncSimTest + the wide-backend suite pin
// every compiled backend lane-exact against FuncSim on every component
// generator.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "gatesim/simd.hpp"
#include "netlist/netlist.hpp"
#include "obs/metrics.hpp"

namespace aapx {

namespace detail {

/// Bitwise lane-parallel form of each logic function. Must match fn_eval
/// bit for bit; PackedFuncSimTest.EveryFunctionMatchesFnEval holds it to
/// that.
template <simd::SimWord W>
constexpr W eval_packed(LogicFn fn, W a, W b, W c) {
  switch (fn) {
    case LogicFn::kBuf:   return a;
    case LogicFn::kInv:   return ~a;
    case LogicFn::kAnd2:  return a & b;
    case LogicFn::kNand2: return ~(a & b);
    case LogicFn::kOr2:   return a | b;
    case LogicFn::kNor2:  return ~(a | b);
    case LogicFn::kXor2:  return a ^ b;
    case LogicFn::kXnor2: return ~(a ^ b);
    case LogicFn::kAnd3:  return a & b & c;
    case LogicFn::kNand3: return ~(a & b & c);
    case LogicFn::kOr3:   return a | b | c;
    case LogicFn::kNor3:  return ~(a | b | c);
    case LogicFn::kAoi21: return ~((a & b) | c);
    case LogicFn::kOai21: return ~((a | b) & c);
    case LogicFn::kMux2:  return (c & b) | (~c & a);
    case LogicFn::kMaj3:  return (a & b) | (a & c) | (b & c);
  }
  throw std::logic_error("eval_packed: unknown logic function");
}

/// Truth table of `fn` as a vpternlog immediate: result bit =
/// imm[(a << 2) | (b << 1) | c]. Derived from eval_packed itself so the
/// single-instruction AVX-512 path cannot drift from the switch above.
constexpr std::uint8_t ternlog_imm(LogicFn fn) {
  std::uint8_t imm = 0;
  for (int i = 0; i < 8; ++i) {
    const auto bcast = [](bool bit) {
      return simd::SimWord64{bit ? ~std::uint64_t{0} : 0};
    };
    const std::uint64_t r =
        eval_packed(fn, bcast(i & 4), bcast(i & 2), bcast(i & 1)).v;
    if (r & 1) imm |= static_cast<std::uint8_t>(1u << i);
  }
  return imm;
}

/// Single-instruction gate evaluation for ternlog-capable words: each case
/// bakes the function's truth table into the vpternlog immediate at compile
/// time (ternlog_imm is constexpr).
template <simd::SimWord W>
  requires simd::HasTernlog<W>
W eval_ternlog(LogicFn fn, W a, W b, W c) {
  switch (fn) {
    case LogicFn::kBuf:
      return W::template ternlog<ternlog_imm(LogicFn::kBuf)>(a, b, c);
    case LogicFn::kInv:
      return W::template ternlog<ternlog_imm(LogicFn::kInv)>(a, b, c);
    case LogicFn::kAnd2:
      return W::template ternlog<ternlog_imm(LogicFn::kAnd2)>(a, b, c);
    case LogicFn::kNand2:
      return W::template ternlog<ternlog_imm(LogicFn::kNand2)>(a, b, c);
    case LogicFn::kOr2:
      return W::template ternlog<ternlog_imm(LogicFn::kOr2)>(a, b, c);
    case LogicFn::kNor2:
      return W::template ternlog<ternlog_imm(LogicFn::kNor2)>(a, b, c);
    case LogicFn::kXor2:
      return W::template ternlog<ternlog_imm(LogicFn::kXor2)>(a, b, c);
    case LogicFn::kXnor2:
      return W::template ternlog<ternlog_imm(LogicFn::kXnor2)>(a, b, c);
    case LogicFn::kAnd3:
      return W::template ternlog<ternlog_imm(LogicFn::kAnd3)>(a, b, c);
    case LogicFn::kNand3:
      return W::template ternlog<ternlog_imm(LogicFn::kNand3)>(a, b, c);
    case LogicFn::kOr3:
      return W::template ternlog<ternlog_imm(LogicFn::kOr3)>(a, b, c);
    case LogicFn::kNor3:
      return W::template ternlog<ternlog_imm(LogicFn::kNor3)>(a, b, c);
    case LogicFn::kAoi21:
      return W::template ternlog<ternlog_imm(LogicFn::kAoi21)>(a, b, c);
    case LogicFn::kOai21:
      return W::template ternlog<ternlog_imm(LogicFn::kOai21)>(a, b, c);
    case LogicFn::kMux2:
      return W::template ternlog<ternlog_imm(LogicFn::kMux2)>(a, b, c);
    case LogicFn::kMaj3:
      return W::template ternlog<ternlog_imm(LogicFn::kMaj3)>(a, b, c);
  }
  throw std::logic_error("eval_ternlog: unknown logic function");
}

}  // namespace detail

/// Packed functional simulator over lane word `W`. See file comment; the
/// 64-lane `PackedFuncSim` alias below is the default instantiation.
template <simd::SimWord W>
class BasicPackedFuncSim {
 public:
  /// Stimulus vectors evaluated per eval() call.
  static constexpr int kLanes = W::kLanes;

  explicit BasicPackedFuncSim(const Netlist& nl)
      : nl_(&nl), values_(nl.num_nets(), W::zero()) {
    values_[nl.const1()] = W::ones();
    gates_.reserve(nl.num_gates());
    for (const GateId gid : nl.topo_order()) {
      const Gate& g = nl.gate(gid);
      PackedGate pg;
      // Unused fanin slots point at const0 so every gate can be evaluated as
      // 3-input without branching on pin count.
      for (std::size_t p = 0; p < pg.fanin.size(); ++p) {
        pg.fanin[p] = g.fanin[p] == kInvalidNet ? nl.const0() : g.fanin[p];
      }
      pg.fanout = g.fanout;
      pg.fn = nl.lib().cell(g.cell).fn;
      gates_.push_back(pg);
    }
  }

  /// Flushes per-instance statistics (evals, lane utilization) into the
  /// process metrics registry — one registry touch per sim lifetime.
  ~BasicPackedFuncSim() {
    static obs::Counter& evals = obs::metrics().counter("packedsim.evals");
    static obs::Counter& lanes = obs::metrics().counter("packedsim.lanes_used");
    evals.add(evals_);
    lanes.add(lanes_used_);
  }

  BasicPackedFuncSim(const BasicPackedFuncSim&) = delete;
  BasicPackedFuncSim& operator=(const BasicPackedFuncSim&) = delete;

  /// Sets a primary input net's value in the first 64 lanes at once
  /// (bit j = value in lane j); any wider lanes are driven 0.
  void set_input_lanes(NetId net, std::uint64_t lanes) {
    if (nl_->driver(net) != kInvalidGate || nl_->is_constant(net)) {
      throw std::invalid_argument(
          "PackedFuncSim::set_input_lanes: net is not a primary input");
    }
    W w = W::zero();
    w.set_chunk(0, lanes);
    values_[net] = w;
  }

  /// Stages an input bus (LSB-first) from per-lane bus words: lane j takes
  /// the low bits of `lane_values[j]`. At most kLanes values; lanes beyond
  /// lane_values.size() are driven 0. Bus bits tied to constants (truncated
  /// LSBs) are left untouched, matching FuncSim::set_bus.
  void set_bus(const std::string& bus,
               std::span<const std::uint64_t> lane_values) {
    if (lane_values.size() > static_cast<std::size_t>(kLanes)) {
      throw std::invalid_argument(
          "PackedFuncSim::set_bus: more lanes than the backend word holds");
    }
    last_staged_lanes_ = static_cast<int>(lane_values.size());
    const auto& nets = nl_->input_bus(bus);
    // Stage chunk by chunk: transpose 64 per-lane bus words into 64 per-bit
    // lane words (6*64 word ops instead of width*64 bit probes), then
    // scatter row i into bit i's net. Lanes beyond lane_values.size() and
    // bus bits >= 64 transpose to zero rows, preserving the scalar
    // semantics.
    std::uint64_t m[64];
    for (int chunk = 0; chunk < W::kChunks; ++chunk) {
      const std::size_t base = static_cast<std::size_t>(chunk) * 64;
      for (std::size_t lane = 0; lane < 64; ++lane) {
        m[lane] =
            base + lane < lane_values.size() ? lane_values[base + lane] : 0;
      }
      simd::transpose64(m);
      for (std::size_t i = 0; i < nets.size(); ++i) {
        if (nl_->is_constant(nets[i])) continue;  // truncated LSBs stay const
        values_[nets[i]].set_chunk(chunk, i < 64 ? m[i] : 0);
      }
    }
  }

  /// Evaluates all gates in topological order, kLanes lanes per gate.
  void eval() {
    ++evals_;
    lanes_used_ += static_cast<std::uint64_t>(last_staged_lanes_);
    W* const v = values_.data();
    for (const PackedGate& g : gates_) {
      if constexpr (simd::HasTernlog<W>) {
        // Any 3-input function is one vpternlog with the gate's truth table
        // as the immediate.
        v[g.fanout] = detail::eval_ternlog(g.fn, v[g.fanin[0]], v[g.fanin[1]],
                                           v[g.fanin[2]]);
      } else {
        v[g.fanout] =
            detail::eval_packed(g.fn, v[g.fanin[0]], v[g.fanin[1]],
                                v[g.fanin[2]]);
      }
    }
  }

  /// Lane word of one net (bit j = value in lane j), 64-lane words only.
  std::uint64_t lanes(NetId net) const
    requires(W::kChunks == 1)
  {
    return lanes_chunk(net, 0);
  }

  /// 64-lane chunk of one net's lane word: bit j = value in lane
  /// 64 * chunk + j.
  std::uint64_t lanes_chunk(NetId net, int chunk) const {
    if (net >= values_.size()) throw std::out_of_range("PackedFuncSim::lanes");
    if (chunk < 0 || chunk >= W::kChunks) {
      throw std::out_of_range("PackedFuncSim::lanes_chunk: bad chunk");
    }
    return values_[net].chunk(chunk);
  }

  /// Reads an output bus in one lane back into a uint64 (width <= 64).
  std::uint64_t bus_value(const std::string& output_bus, int lane) const {
    return word_value(nl_->output_bus(output_bus), lane);
  }

  /// Reads any net collection as an LSB-first word in one lane.
  std::uint64_t word_value(const std::vector<NetId>& nets, int lane) const {
    if (nets.size() > 64) {
      throw std::invalid_argument("PackedFuncSim::word_value: bus too wide");
    }
    if (lane < 0 || lane >= kLanes) {
      throw std::out_of_range("PackedFuncSim::word_value: bad lane");
    }
    const int chunk = lane / 64;
    const int bit = lane % 64;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if ((values_[nets[i]].chunk(chunk) >> bit) & 1u) {
        v |= std::uint64_t{1} << i;
      }
    }
    return v;
  }

  const std::vector<W>& values() const noexcept { return values_; }

  const Netlist& netlist() const noexcept { return *nl_; }

 private:
  /// Flattened gate record: logic function plus fanin/fanout nets, hoisted
  /// out of Netlist/CellLibrary once so eval() touches only flat arrays.
  struct PackedGate {
    std::array<NetId, 3> fanin;
    NetId fanout;
    LogicFn fn;
  };

  const Netlist* nl_;
  std::vector<PackedGate> gates_;  ///< in topological order
  std::vector<W> values_;          ///< per net, one bit per lane
  /// Lane-utilization accounting (plain members, flushed at destruction):
  /// evals_ counts eval() calls; lanes_used_ sums the staged lane count of
  /// the most recent set_bus before each eval (kLanes when inputs were set
  /// via set_input_lanes only — a full word is in flight either way).
  std::uint64_t evals_ = 0;
  std::uint64_t lanes_used_ = 0;
  int last_staged_lanes_ = kLanes;
};

/// The default 64-lane instantiation — the PR 2 class, API unchanged.
using PackedFuncSim = BasicPackedFuncSim<simd::SimWord64>;

/// Type-erased wide packed simulator. Concrete lane width is a runtime
/// property (lanes()); staging and readout speak 64-bit chunks so callers
/// stay width-agnostic. Instances come from make_wide_sim(), which picks
/// the widest compiled backend the CPU supports (see gatesim/simd.hpp).
class WideSim {
 public:
  virtual ~WideSim() = default;

  /// Stimulus vectors evaluated per eval() call for this backend.
  virtual int lanes() const noexcept = 0;
  virtual simd::SimdBackend backend() const noexcept = 0;
  virtual const Netlist& netlist() const noexcept = 0;

  /// As BasicPackedFuncSim::set_bus — at most lanes() values.
  virtual void set_bus(const std::string& bus,
                       std::span<const std::uint64_t> lane_values) = 0;
  virtual void eval() = 0;

  /// 64-lane chunk `chunk` of `net`'s lane word (lane = 64 * chunk + bit).
  virtual std::uint64_t lanes_chunk(NetId net, int chunk) const = 0;

  /// Reads any net collection as an LSB-first word in one lane.
  virtual std::uint64_t word_value(const std::vector<NetId>& nets,
                                   int lane) const = 0;

  /// Duty-extraction readout: for each nets[i], adds the number of lanes
  /// below `lane_limit` in which the net is high into sums[i]. One virtual
  /// call per eval instead of one per net.
  virtual void add_high_popcounts(std::span<const NetId> nets, int lane_limit,
                                  std::uint64_t* sums) const = 0;

  /// Reads an output bus in one lane back into a uint64 (width <= 64).
  std::uint64_t bus_value(const std::string& output_bus, int lane) const {
    return word_value(netlist().output_bus(output_bus), lane);
  }
};

/// Wide simulator on the runtime-dispatched backend (simd_dispatch()).
std::unique_ptr<WideSim> make_wide_sim(const Netlist& nl);

/// Wide simulator on a specific backend. Throws std::invalid_argument if
/// the backend is not compiled into this binary or not runnable on this
/// CPU — test code iterates compiled_backends()/backend_runnable() instead
/// of guessing.
std::unique_ptr<WideSim> make_wide_sim(const Netlist& nl,
                                       simd::SimdBackend backend);

}  // namespace aapx
