// Bit-parallel (64-lane) zero-delay functional simulation.
//
// Packs 64 independent stimulus vectors into one uint64_t per net — lane j
// of a net's word is the net's logic value in stimulus j — and evaluates
// each gate once per word with the bitwise form of its logic function
// (derived from the same fn_eval truth tables the scalar FuncSim uses).
// One pass over the topo order therefore simulates 64 vectors, which turns
// the inner loops of measured-stress extraction (measure_gate_duty),
// error-bounds sampling and the image-quality campaigns from per-vector
// walks into per-word ones. PackedFuncSimTest pins lane-exact equivalence
// against FuncSim on every component generator.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace aapx {

class PackedFuncSim {
 public:
  /// Stimulus vectors evaluated per eval() call.
  static constexpr int kLanes = 64;

  explicit PackedFuncSim(const Netlist& nl);
  /// Flushes per-instance statistics (evals, lane utilization) into the
  /// process metrics registry — one registry touch per sim lifetime.
  ~PackedFuncSim();

  /// Sets a primary input net's value in all 64 lanes at once
  /// (bit j = value in lane j).
  void set_input_lanes(NetId net, std::uint64_t lanes);

  /// Stages an input bus (LSB-first) from per-lane bus words: lane j takes
  /// the low bits of `lane_values[j]`. At most kLanes values; lanes beyond
  /// lane_values.size() are driven 0. Bus bits tied to constants (truncated
  /// LSBs) are left untouched, matching FuncSim::set_bus.
  void set_bus(const std::string& bus, std::span<const std::uint64_t> lane_values);

  /// Evaluates all gates in topological order, 64 lanes per gate.
  void eval();

  /// Lane word of one net (bit j = value in lane j).
  std::uint64_t lanes(NetId net) const;

  /// Reads an output bus in one lane back into a uint64 (width <= 64).
  std::uint64_t bus_value(const std::string& output_bus, int lane) const;

  /// Reads any net collection as an LSB-first word in one lane.
  std::uint64_t word_value(const std::vector<NetId>& nets, int lane) const;

  const std::vector<std::uint64_t>& values() const noexcept { return values_; }

  const Netlist& netlist() const noexcept { return *nl_; }

 private:
  /// Flattened gate record: logic function plus fanin/fanout nets, hoisted
  /// out of Netlist/CellLibrary once so eval() touches only flat arrays.
  struct PackedGate {
    std::array<NetId, 3> fanin;
    NetId fanout;
    LogicFn fn;
  };

  const Netlist* nl_;
  std::vector<PackedGate> gates_;        ///< in topological order
  std::vector<std::uint64_t> values_;    ///< per net, one bit per lane
  /// Lane-utilization accounting (plain members, flushed at destruction):
  /// evals_ counts eval() calls; lanes_staged_ sums the staged lane count of
  /// the most recent set_bus before each eval (kLanes when inputs were set
  /// via set_input_lanes only — a full word is in flight either way).
  std::uint64_t evals_ = 0;
  std::uint64_t lanes_used_ = 0;
  int last_staged_lanes_ = kLanes;
};

}  // namespace aapx
