#include "gatesim/timedsim.hpp"

#include <algorithm>
#include <stdexcept>

#include "gatesim/funcsim.hpp"
#include "obs/metrics.hpp"

namespace aapx {

double Activity::duty_high(NetId net) const {
  if (cycles == 0) return 0.0;
  return static_cast<double>(high_cycles.at(net)) / static_cast<double>(cycles);
}

double Activity::toggle_rate(NetId net) const {
  if (cycles == 0) return 0.0;
  return static_cast<double>(toggles.at(net)) / static_cast<double>(cycles);
}

std::vector<double> Activity::gate_output_duty(const Netlist& nl) const {
  std::vector<double> duty;
  duty.reserve(nl.num_gates());
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    duty.push_back(duty_high(nl.gate(static_cast<GateId>(g)).fanout));
  }
  return duty;
}

TimedSim::TimedSim(const Netlist& nl, Sta::GateDelays delays, DelayModel model)
    : nl_(&nl), delays_(std::move(delays)), model_(model) {
  if (delays_.rise.size() != nl.num_gates() ||
      delays_.fall.size() != nl.num_gates()) {
    throw std::invalid_argument("TimedSim: delay vector size mismatch");
  }
  value_.assign(nl.num_nets(), 0);
  value_[nl.const1()] = 1;
  pending_ = value_;
  sampled_ = value_;
  generation_.assign(nl.num_nets(), 0);
  applied_generation_.assign(nl.num_nets(), 0);
  staged_pi_.assign(nl.inputs().size(), 0);
  change_time_.assign(nl.num_nets(), 0.0);
  change_step_.assign(nl.num_nets(), 0);
  is_output_.assign(nl.num_nets(), 0);
  for (const NetId po : nl.outputs()) is_output_[po] = 1;
  activity_.toggles.assign(nl.num_nets(), 0);
  activity_.high_cycles.assign(nl.num_nets(), 0);
  high_sync_.assign(nl.num_nets(), 0);

  // Flatten gate functions, fanins and delays so the event loop never chases
  // Gate/Cell indirections, and the reader lists into one CSR array.
  gate_info_.reserve(nl.num_gates());
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(static_cast<GateId>(g));
    GateInfo info;
    for (std::size_t p = 0; p < info.fanin.size(); ++p) {
      info.fanin[p] = gate.fanin[p] == kInvalidNet ? nl.const0() : gate.fanin[p];
    }
    info.fanout = gate.fanout;
    info.rise = delays_.rise[g];
    info.fall = delays_.fall[g];
    const LogicFn fn = nl.lib().cell(gate.cell).fn;
    info.tt = 0;
    for (unsigned m = 0; m < 8; ++m) {
      if (fn_eval(fn, m)) info.tt |= static_cast<std::uint8_t>(1u << m);
    }
    gate_info_.push_back(info);
  }
  reader_offset_.assign(nl.num_nets() + 1, 0);
  for (std::size_t n = 0; n < nl.num_nets(); ++n) {
    reader_offset_[n + 1] =
        reader_offset_[n] +
        static_cast<std::uint32_t>(nl.readers(static_cast<NetId>(n)).size());
  }
  reader_gate_.resize(reader_offset_.back());
  for (std::size_t n = 0; n < nl.num_nets(); ++n) {
    std::uint32_t at = reader_offset_[n];
    for (const NetReader& r : nl.readers(static_cast<NetId>(n))) {
      reader_gate_[at++] = r.gate;
    }
  }
  reset();
}

TimedSim::~TimedSim() {
  static obs::Counter& events = obs::metrics().counter("timedsim.events");
  static obs::Counter& steps = obs::metrics().counter("timedsim.steps");
  static obs::Gauge& depth = obs::metrics().gauge("timedsim.max_queue_depth");
  events.add(events_processed_);
  steps.add(step_id_);
  depth.update_max(static_cast<double>(max_queue_depth_));
}

void TimedSim::push_event(Event ev) {
  heap_.push_back(ev);
  if (heap_.size() > max_queue_depth_) max_queue_depth_ = heap_.size();
  std::push_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
}

TimedSim::Event TimedSim::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
  const Event ev = heap_.back();
  heap_.pop_back();
  return ev;
}

void TimedSim::reset() { reset(std::vector<char>(nl_->inputs().size(), 0)); }

void TimedSim::reset(const std::vector<char>& pi_values) {
  if (pi_values.size() != nl_->inputs().size()) {
    throw std::invalid_argument("TimedSim::reset: PI vector size mismatch");
  }
  // Values are about to change without events; settle the duty books first.
  sync_high_cycles();
  FuncSim settle(*nl_);
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    settle.set_input(nl_->inputs()[i], pi_values[i] != 0);
  }
  settle.eval();
  for (std::size_t n = 0; n < value_.size(); ++n) {
    value_[n] = settle.values()[n];
  }
  pending_ = value_;
  sampled_ = value_;
  staged_pi_ = pi_values;
}

void TimedSim::stage_bus(const std::string& bus, std::uint64_t v) {
  stage_word(nl_->input_bus(bus), v);
}

void TimedSim::stage_word(const std::vector<NetId>& nets, std::uint64_t v) {
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (nl_->is_constant(nets[i])) continue;
    const bool bit = i < 64 && ((v >> i) & 1u) != 0;
    const NetId pi = nl_->pi_index(nets[i]);
    if (pi == kInvalidNet) continue;  // bus member rewritten off the PI list
    staged_pi_[pi] = bit ? 1 : 0;
  }
}

bool TimedSim::step_staged(double t_clock_ps) {
  return step(staged_pi_, t_clock_ps);
}

bool TimedSim::step(const std::vector<char>& pi_values, double t_clock_ps) {
  if (pi_values.size() != nl_->inputs().size()) {
    throw std::invalid_argument("TimedSim::step: PI vector size mismatch");
  }
  heap_.clear();
  seq_ = 0;
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    const NetId net = nl_->inputs()[i];
    const char v = pi_values[i] ? 1 : 0;
    if (pending_[net] != v) {
      pending_[net] = v;
      push_event({0.0, seq_++, net, ++generation_[net], v});
    }
  }
  staged_pi_ = pi_values;

  bool snapshotted = false;
  std::uint64_t guard = 0;
  last_settle_time_ = 0.0;
  last_output_settle_time_ = 0.0;
  ++step_id_;
  while (!heap_.empty()) {
    const Event ev = pop_event();
    if (++guard > 50'000'000ULL) {
      throw std::runtime_error("TimedSim::step: event budget exceeded");
    }
    // Inertial-delay semantics: a transition superseded by a newer decision
    // for the same net was a sub-delay pulse and is swallowed. Transport mode
    // keeps pulses but must drop events arriving out of order (a later
    // decision can land earlier when rise and fall delays differ), or a stale
    // value would stick as the final state.
    if (model_ == DelayModel::inertial && ev.generation != generation_[ev.net]) {
      continue;
    }
    if (model_ == DelayModel::transport &&
        ev.generation < applied_generation_[ev.net]) {
      continue;
    }
    if (!snapshotted && ev.time > t_clock_ps) {
      sampled_ = value_;
      snapshotted = true;
    }
    applied_generation_[ev.net] = ev.generation;
    if (value_[ev.net] == ev.value) continue;
    // Fold the cycles the old value was held into the duty account before
    // overwriting it (lazy replacement for a per-step sweep of all nets).
    if (value_[ev.net]) {
      activity_.high_cycles[ev.net] += activity_.cycles - high_sync_[ev.net];
    }
    high_sync_[ev.net] = activity_.cycles;
    value_[ev.net] = ev.value;
    ++activity_.toggles[ev.net];
    ++events_processed_;
    last_settle_time_ = ev.time;
    change_time_[ev.net] = ev.time;
    change_step_[ev.net] = step_id_;
    if (is_output_[ev.net]) last_output_settle_time_ = ev.time;
    // Propagate to reader gates (flat CSR + per-gate truth tables; no
    // Gate/Cell lookups on the hot path).
    const std::uint32_t rbegin = reader_offset_[ev.net];
    const std::uint32_t rend = reader_offset_[ev.net + 1];
    for (std::uint32_t r = rbegin; r < rend; ++r) {
      const GateId gid = reader_gate_[r];
      const GateInfo& g = gate_info_[gid];
      const unsigned mask = static_cast<unsigned>(value_[g.fanin[0]]) |
                            (static_cast<unsigned>(value_[g.fanin[1]]) << 1) |
                            (static_cast<unsigned>(value_[g.fanin[2]]) << 2);
      const char out = static_cast<char>((g.tt >> mask) & 1u);
      if (pending_[g.fanout] == out) continue;
      pending_[g.fanout] = out;
      ++generation_[g.fanout];  // cancels in-flight transitions (inertial)
      if (model_ == DelayModel::inertial && out == value_[g.fanout]) {
        continue;  // pulse swallowed entirely
      }
      const double delay = out ? g.rise : g.fall;
      push_event({ev.time + delay, seq_++, g.fanout, generation_[g.fanout], out});
    }
  }
  if (!snapshotted) sampled_ = value_;

  ++activity_.cycles;

  for (const NetId po : nl_->outputs()) {
    if (sampled_[po] != value_[po]) return true;
  }
  return false;
}

std::uint64_t TimedSim::word(const std::vector<NetId>& nets,
                             const std::vector<char>& vals) const {
  if (nets.size() > 64) throw std::invalid_argument("TimedSim: bus too wide");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (vals[nets[i]]) v |= std::uint64_t{1} << i;
  }
  return v;
}

std::uint64_t TimedSim::sampled_bus(const std::string& bus) const {
  return word(nl_->output_bus(bus), sampled_);
}

std::uint64_t TimedSim::settled_bus(const std::string& bus) const {
  return word(nl_->output_bus(bus), value_);
}

std::uint64_t TimedSim::sampled_word(const std::vector<NetId>& nets) const {
  return word(nets, sampled_);
}

std::uint64_t TimedSim::settled_word(const std::vector<NetId>& nets) const {
  return word(nets, value_);
}

bool TimedSim::sampled(NetId net) const { return sampled_[net] != 0; }
bool TimedSim::settled(NetId net) const { return value_[net] != 0; }

double TimedSim::settle_time(NetId net) const {
  if (net >= change_time_.size()) throw std::out_of_range("TimedSim::settle_time");
  return change_step_[net] == step_id_ ? change_time_[net] : 0.0;
}

void TimedSim::sync_high_cycles() const {
  for (std::size_t n = 0; n < value_.size(); ++n) {
    if (value_[n]) {
      activity_.high_cycles[n] += activity_.cycles - high_sync_[n];
    }
    high_sync_[n] = activity_.cycles;
  }
}

const Activity& TimedSim::activity() const {
  sync_high_cycles();
  return activity_;
}

void TimedSim::clear_activity() {
  activity_.toggles.assign(nl_->num_nets(), 0);
  activity_.high_cycles.assign(nl_->num_nets(), 0);
  high_sync_.assign(nl_->num_nets(), 0);
  activity_.cycles = 0;
}

}  // namespace aapx
