#include "gatesim/timedsim.hpp"

#include <algorithm>
#include <limits>
#include <bit>
#include <stdexcept>

#include "gatesim/funcsim.hpp"
#include "obs/metrics.hpp"

namespace aapx {

double Activity::duty_high(NetId net) const {
  if (cycles == 0) return 0.0;
  return static_cast<double>(high_cycles.at(net)) / static_cast<double>(cycles);
}

double Activity::toggle_rate(NetId net) const {
  if (cycles == 0) return 0.0;
  return static_cast<double>(toggles.at(net)) / static_cast<double>(cycles);
}

std::vector<double> Activity::gate_output_duty(const Netlist& nl) const {
  std::vector<double> duty;
  duty.reserve(nl.num_gates());
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    duty.push_back(duty_high(nl.gate(static_cast<GateId>(g)).fanout));
  }
  return duty;
}

TimedSim::TimedSim(const Netlist& nl, Sta::GateDelays delays, DelayModel model)
    : nl_(&nl), delays_(std::move(delays)), model_(model) {
  if (delays_.rise.size() != nl.num_gates() ||
      delays_.fall.size() != nl.num_gates()) {
    throw std::invalid_argument("TimedSim: delay vector size mismatch");
  }
  if (nl.num_nets() < 2) {
    throw std::invalid_argument("TimedSim: netlist missing constant nets");
  }
  net_.assign(nl.num_nets(), NetHot{0, 0, 0, 0, 0});
  net_[nl.const1()].value = 1;
  net_[nl.const1()].pending = 1;
  sampled_.assign(nl.num_nets(), 0);
  sampled_[nl.const1()] = 1;
  staged_pi_.assign(nl.inputs().size(), 0);
  change_.assign(nl.num_nets(), Change{0.0, 0});
  for (const NetId po : nl.outputs()) net_[po].is_output = 1;
  activity_.toggles.assign(nl.num_nets(), 0);
  activity_.high_cycles.assign(nl.num_nets(), 0);
  high_sync_.assign(nl.num_nets(), 0);

  // Flatten gate functions, fanins and delays so the event loop never chases
  // Gate/Cell indirections, and the reader lists into one CSR array.
  gate_info_.reserve(nl.num_gates());
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(static_cast<GateId>(g));
    GateInfo info;
    for (std::size_t p = 0; p < info.fanin.size(); ++p) {
      info.fanin[p] = gate.fanin[p] == kInvalidNet ? nl.const0() : gate.fanin[p];
    }
    info.fanout = gate.fanout;
    info.rise = delays_.rise[g];
    info.fall = delays_.fall[g];
    const LogicFn fn = nl.lib().cell(gate.cell).fn;
    info.tt = 0;
    for (unsigned m = 0; m < 8; ++m) {
      if (fn_eval(fn, m)) info.tt |= static_cast<std::uint8_t>(1u << m);
    }
    gate_info_.push_back(info);
  }
  reader_offset_.assign(nl.num_nets() + 1, 0);
  for (std::size_t n = 0; n < nl.num_nets(); ++n) {
    reader_offset_[n + 1] =
        reader_offset_[n] +
        static_cast<std::uint32_t>(nl.readers(static_cast<NetId>(n)).size());
  }
  reader_gate_.resize(reader_offset_.back());
  for (std::size_t n = 0; n < nl.num_nets(); ++n) {
    std::uint32_t at = reader_offset_[n];
    for (const NetReader& r : nl.readers(static_cast<NetId>(n))) {
      reader_gate_[at++] = r.gate;
    }
  }

  // Calendar-queue horizon: the topo longest-path delay is a hard upper
  // bound on any event time within a step (every event time is a sum of
  // gate delays along a path from a t=0 input transition).
  double horizon = 0.0;
  {
    std::vector<double> arrive(nl.num_nets(), 0.0);
    for (const GateId gid : nl.topo_order()) {
      const GateInfo& g = gate_info_[gid];
      double in = 0.0;
      for (const NetId f : g.fanin) in = std::max(in, arrive[f]);
      arrive[g.fanout] = in + std::max(g.rise, g.fall);
      horizon = std::max(horizon, arrive[g.fanout]);
    }
  }
  if (horizon <= 0.0) horizon = 1.0;
  // ~1 bucket per couple of gate delays on typical components; bounded so
  // tiny netlists don't pay a big sweep and huge ones don't blow memory.
  n_buckets_ = static_cast<std::uint32_t>(
      std::clamp<std::size_t>(nl.num_gates() * 2, 64, 4096));
  inv_bucket_width_ = static_cast<double>(n_buckets_) / (horizon * (1.0 + 1e-9));
  buckets_.resize(n_buckets_);
  occupied_.assign((n_buckets_ + 63) / 64, 0);
  reset();
}

TimedSim::~TimedSim() {
  static obs::Counter& events = obs::metrics().counter("timedsim.events");
  static obs::Counter& steps = obs::metrics().counter("timedsim.steps");
  static obs::Gauge& depth = obs::metrics().gauge("timedsim.max_queue_depth");
  events.add(events_processed_);
  steps.add(step_id_);
  depth.update_max(static_cast<double>(max_queue_depth_));
}

inline __attribute__((always_inline)) void TimedSim::push_event(Event ev) {
  std::uint32_t idx = static_cast<std::uint32_t>(ev.time * inv_bucket_width_);
  if (idx >= n_buckets_) idx = n_buckets_ - 1;  // float-rounding clamp only
  std::vector<Event>& b = buckets_[idx];
  // Sorted insert; upper_bound lands after equal times, preserving FIFO among
  // ties. Pushes arrive in pop order plus a positive delay, so the common
  // case is a plain append. Inserting into the bucket being drained is safe:
  // ev.time >= the current pop time, so the position is >= drain_pos_.
  if (b.empty() || !(ev.time < b.back().time)) {
    b.push_back(ev);
  } else {
    const auto from = b.begin() + static_cast<std::ptrdiff_t>(
                                      idx == cur_bucket_ ? drain_pos_ : 0);
    b.insert(std::upper_bound(from, b.end(), ev.time,
                              [](double t, const Event& e) { return t < e.time; }),
             ev);
  }
  occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  if (++queue_size_ > max_queue_depth_) max_queue_depth_ = queue_size_;
}

void TimedSim::clear_queue() {
  for (std::size_t w = 0; w < occupied_.size(); ++w) {
    std::uint64_t bits = occupied_[w];
    while (bits) {
      buckets_[(w << 6) + static_cast<std::size_t>(std::countr_zero(bits))]
          .clear();
      bits &= bits - 1;
    }
    occupied_[w] = 0;
  }
  cur_bucket_ = 0;
  drain_pos_ = 0;
  queue_size_ = 0;
}

void TimedSim::reset() { reset(std::vector<char>(nl_->inputs().size(), 0)); }

void TimedSim::reset(const std::vector<char>& pi_values) {
  if (pi_values.size() != nl_->inputs().size()) {
    throw std::invalid_argument("TimedSim::reset: PI vector size mismatch");
  }
  // Values are about to change without events; settle the duty books first.
  sync_high_cycles();
  FuncSim settle(*nl_);
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    settle.set_input(nl_->inputs()[i], pi_values[i] != 0);
  }
  settle.eval();
  for (std::size_t n = 0; n < net_.size(); ++n) {
    net_[n].value = settle.values()[n];
    net_[n].pending = net_[n].value;
    sampled_[n] = net_[n].value;
  }
  sampled_is_settled_ = true;
  staged_pi_ = pi_values;
}

void TimedSim::stage_bus(const std::string& bus, std::uint64_t v) {
  stage_word(nl_->input_bus(bus), v);
}

void TimedSim::stage_word(const std::vector<NetId>& nets, std::uint64_t v) {
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (nl_->is_constant(nets[i])) continue;
    const bool bit = i < 64 && ((v >> i) & 1u) != 0;
    const NetId pi = nl_->pi_index(nets[i]);
    if (pi == kInvalidNet) continue;  // bus member rewritten off the PI list
    staged_pi_[pi] = bit ? 1 : 0;
  }
}

std::vector<NetId> TimedSim::resolve_stage(
    const std::vector<NetId>& nets) const {
  std::vector<NetId> pi_indices(nets.size(), kInvalidNet);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (nl_->is_constant(nets[i])) continue;
    pi_indices[i] = nl_->pi_index(nets[i]);
  }
  return pi_indices;
}

void TimedSim::stage_resolved(const std::vector<NetId>& pi_indices,
                              std::uint64_t v) {
  const std::size_t n = std::min<std::size_t>(pi_indices.size(), 64);
  for (std::size_t i = 0; i < n; ++i) {
    const NetId pi = pi_indices[i];
    if (pi == kInvalidNet) continue;
    staged_pi_[pi] = static_cast<char>((v >> i) & 1u);
  }
  for (std::size_t i = 64; i < pi_indices.size(); ++i) {
    if (pi_indices[i] != kInvalidNet) staged_pi_[pi_indices[i]] = 0;
  }
}

bool TimedSim::step_staged(double t_clock_ps) {
  return step(staged_pi_, t_clock_ps);
}

bool TimedSim::step(const std::vector<char>& pi_values, double t_clock_ps) {
  if (pi_values.size() != nl_->inputs().size()) {
    throw std::invalid_argument("TimedSim::step: PI vector size mismatch");
  }
  clear_queue();
  // Collect the changed PIs (in input order). They are applied inline at the
  // head of step_impl instead of round-tripping through the event queue:
  // every one of them would pop first (t = 0, FIFO) and commit — no gate
  // drives a PI, so nothing can supersede them before the drain starts.
  pi_changed_.clear();
  const NetId* const ins = nl_->inputs().data();
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    NetHot& h = net_[ins[i]];
    const char v = pi_values[i] ? 1 : 0;
    if (h.pending != v) {
      h.pending = v;
      h.generation += 2;
      pi_changed_.push_back(ins[i]);
    }
  }
  if (&pi_values != &staged_pi_) staged_pi_ = pi_values;
  return model_ == DelayModel::inertial
             ? step_impl<DelayModel::inertial>(t_clock_ps)
             : step_impl<DelayModel::transport>(t_clock_ps);
}

template <DelayModel kModel>
bool TimedSim::step_impl(double t_clock_ps) {
  bool snapshotted = false;
  // Single-compare snapshot test: after the snapshot is taken (or when none
  // can ever trigger) the threshold moves to +inf and the branch never fires.
  double snapshot_after = t_clock_ps;
  std::uint64_t guard = 0;
  last_settle_time_ = 0.0;
  last_output_settle_time_ = 0.0;
  ++step_id_;
  // Apply the changed PIs inline, in input order — identical bookkeeping and
  // propagation order to popping them from the queue at t = 0 (see step()),
  // minus ~1/3 of all queue traffic.
  if (!pi_changed_.empty() && 0.0 > t_clock_ps) {  // degenerate clock only
    for (std::size_t n = 0; n < net_.size(); ++n) sampled_[n] = net_[n].value;
    sampled_is_settled_ = false;
    snapshotted = true;
  }
  for (const NetId pi : pi_changed_) {
    NetHot& h = net_[pi];
    ++guard;
    h.applied_generation = h.generation;
    const char v = h.pending;
    if (h.value == v) continue;
    activity_.high_cycles[pi] += (activity_.cycles - high_sync_[pi]) &
                                 (0 - static_cast<std::uint64_t>(h.value));
    high_sync_[pi] = activity_.cycles;
    h.value = v;
    ++activity_.toggles[pi];
    ++events_processed_;
    last_settle_time_ = 0.0;
    change_[pi] = {0.0, step_id_};
    if (h.is_output) last_output_settle_time_ = 0.0;
    const std::uint32_t rbegin = reader_offset_[pi];
    const std::uint32_t rend = reader_offset_[pi + 1];
    for (std::uint32_t r = rbegin; r < rend; ++r) {
      const GateId gid = reader_gate_[r];
      const GateInfo& g = gate_info_[gid];
      const unsigned mask =
          static_cast<unsigned>(net_[g.fanin[0]].value) |
          (static_cast<unsigned>(net_[g.fanin[1]].value) << 1) |
          (static_cast<unsigned>(net_[g.fanin[2]].value) << 2);
      const char out = static_cast<char>((g.tt >> mask) & 1u);
      NetHot& fo = net_[g.fanout];
      if (fo.pending == out) continue;
      fo.pending = out;
      fo.generation += 2;  // cancels in-flight transitions (inertial)
      if constexpr (kModel == DelayModel::inertial) {
        if (out == fo.value) continue;  // pulse swallowed entirely
      }
      const double delay = out ? g.rise : g.fall;
      push_event(
          {delay, g.fanout, fo.generation | static_cast<std::uint32_t>(out)});
    }
  }
  while (queue_size_ > 0) {
    // Advance to the next occupied bucket (monotone: completed buckets can
    // never be repopulated, so cur_bucket_ only moves forward in a step).
    std::vector<Event>* bucket = &buckets_[cur_bucket_];
    while (drain_pos_ >= bucket->size()) {
      bucket->clear();
      occupied_[cur_bucket_ >> 6] &=
          ~(std::uint64_t{1} << (cur_bucket_ & 63));
      drain_pos_ = 0;
      std::uint32_t w = cur_bucket_ >> 6;
      std::uint64_t bits = occupied_[w] & ~((std::uint64_t{1} << (cur_bucket_ & 63)) - 1);
      while (bits == 0) bits = occupied_[++w];
      cur_bucket_ = static_cast<std::uint32_t>(
          (w << 6) + static_cast<std::uint32_t>(std::countr_zero(bits)));
      bucket = &buckets_[cur_bucket_];
    }
    const Event ev = (*bucket)[drain_pos_++];
    --queue_size_;
    if (++guard > 50'000'000ULL) {
      throw std::runtime_error("TimedSim::step: event budget exceeded");
    }
    NetHot& h = net_[ev.net];
    // Inertial-delay semantics: a transition superseded by a newer decision
    // for the same net was a sub-delay pulse and is swallowed. Transport mode
    // keeps pulses but must drop events arriving out of order (a later
    // decision can land earlier when rise and fall delays differ), or a stale
    // value would stick as the final state.
    const std::uint32_t ev_gen = ev.gen_val & ~1u;
    const char ev_value = static_cast<char>(ev.gen_val & 1u);
    if constexpr (kModel == DelayModel::inertial) {
      if (ev_gen != h.generation) continue;
    } else {
      if (ev_gen < h.applied_generation) continue;
    }
    if (ev.time > snapshot_after) {
      for (std::size_t n = 0; n < net_.size(); ++n) sampled_[n] = net_[n].value;
      sampled_is_settled_ = false;
      snapshotted = true;
      snapshot_after = std::numeric_limits<double>::infinity();
    }
    h.applied_generation = ev_gen;
    if (h.value == ev_value) continue;
    // Fold the cycles the old value was held into the duty account before
    // overwriting it (lazy replacement for a per-step sweep of all nets).
    activity_.high_cycles[ev.net] +=
        (activity_.cycles - high_sync_[ev.net]) &
        (0 - static_cast<std::uint64_t>(h.value));
    high_sync_[ev.net] = activity_.cycles;
    h.value = ev_value;
    ++activity_.toggles[ev.net];
    ++events_processed_;
    last_settle_time_ = ev.time;
    change_[ev.net] = {ev.time, step_id_};
    if (h.is_output) last_output_settle_time_ = ev.time;
    // Propagate to reader gates (flat CSR + per-gate truth tables; no
    // Gate/Cell lookups on the hot path).
    const std::uint32_t rbegin = reader_offset_[ev.net];
    const std::uint32_t rend = reader_offset_[ev.net + 1];
    for (std::uint32_t r = rbegin; r < rend; ++r) {
      const GateId gid = reader_gate_[r];
      const GateInfo& g = gate_info_[gid];
      const unsigned mask =
          static_cast<unsigned>(net_[g.fanin[0]].value) |
          (static_cast<unsigned>(net_[g.fanin[1]].value) << 1) |
          (static_cast<unsigned>(net_[g.fanin[2]].value) << 2);
      const char out = static_cast<char>((g.tt >> mask) & 1u);
      NetHot& fo = net_[g.fanout];
      if (fo.pending == out) continue;
      fo.pending = out;
      fo.generation += 2;  // cancels in-flight transitions (inertial)
      if constexpr (kModel == DelayModel::inertial) {
        if (out == fo.value) continue;  // pulse swallowed entirely
      }
      const double delay = out ? g.rise : g.fall;
      push_event(
          {ev.time + delay, g.fanout, fo.generation | static_cast<std::uint32_t>(out)});
    }
  }
  if (cur_bucket_ < n_buckets_) {
    buckets_[cur_bucket_].clear();
    occupied_[cur_bucket_ >> 6] &= ~(std::uint64_t{1} << (cur_bucket_ & 63));
  }
  cur_bucket_ = 0;
  drain_pos_ = 0;

  ++activity_.cycles;

  if (!snapshotted) {
    // No event crossed the clock edge: the sample IS the settled state, so
    // there is nothing to copy and no PO can mismatch.
    sampled_is_settled_ = true;
    return false;
  }
  for (const NetId po : nl_->outputs()) {
    if (sampled_[po] != net_[po].value) return true;
  }
  return false;
}

std::uint64_t TimedSim::word_sampled(const std::vector<NetId>& nets) const {
  if (sampled_is_settled_) return word_settled(nets);
  if (nets.size() > 64) throw std::invalid_argument("TimedSim: bus too wide");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (sampled_[nets[i]]) v |= std::uint64_t{1} << i;
  }
  return v;
}

std::uint64_t TimedSim::word_settled(const std::vector<NetId>& nets) const {
  if (nets.size() > 64) throw std::invalid_argument("TimedSim: bus too wide");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (net_[nets[i]].value) v |= std::uint64_t{1} << i;
  }
  return v;
}

std::uint64_t TimedSim::sampled_bus(const std::string& bus) const {
  return word_sampled(nl_->output_bus(bus));
}

std::uint64_t TimedSim::settled_bus(const std::string& bus) const {
  return word_settled(nl_->output_bus(bus));
}

std::uint64_t TimedSim::sampled_word(const std::vector<NetId>& nets) const {
  return word_sampled(nets);
}

std::uint64_t TimedSim::settled_word(const std::vector<NetId>& nets) const {
  return word_settled(nets);
}

bool TimedSim::sampled(NetId net) const {
  return (sampled_is_settled_ ? net_[net].value : sampled_[net]) != 0;
}
bool TimedSim::settled(NetId net) const { return net_[net].value != 0; }

double TimedSim::settle_time(NetId net) const {
  if (net >= change_.size()) throw std::out_of_range("TimedSim::settle_time");
  return change_[net].step == step_id_ ? change_[net].time : 0.0;
}

void TimedSim::sync_high_cycles() const {
  for (std::size_t n = 0; n < net_.size(); ++n) {
    if (net_[n].value) {
      activity_.high_cycles[n] += activity_.cycles - high_sync_[n];
    }
    high_sync_[n] = activity_.cycles;
  }
}

const Activity& TimedSim::activity() const {
  sync_high_cycles();
  return activity_;
}

void TimedSim::clear_activity() {
  activity_.toggles.assign(nl_->num_nets(), 0);
  activity_.high_cycles.assign(nl_->num_nets(), 0);
  high_sync_.assign(nl_->num_nets(), 0);
  activity_.cycles = 0;
}

}  // namespace aapx
