#include "gatesim/timedsim.hpp"

#include <queue>
#include <stdexcept>

#include "gatesim/funcsim.hpp"

namespace aapx {

double Activity::duty_high(NetId net) const {
  if (cycles == 0) return 0.0;
  return static_cast<double>(high_cycles.at(net)) / static_cast<double>(cycles);
}

double Activity::toggle_rate(NetId net) const {
  if (cycles == 0) return 0.0;
  return static_cast<double>(toggles.at(net)) / static_cast<double>(cycles);
}

std::vector<double> Activity::gate_output_duty(const Netlist& nl) const {
  std::vector<double> duty;
  duty.reserve(nl.num_gates());
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    duty.push_back(duty_high(nl.gate(static_cast<GateId>(g)).fanout));
  }
  return duty;
}

TimedSim::TimedSim(const Netlist& nl, Sta::GateDelays delays, DelayModel model)
    : nl_(&nl), delays_(std::move(delays)), model_(model) {
  if (delays_.rise.size() != nl.num_gates() ||
      delays_.fall.size() != nl.num_gates()) {
    throw std::invalid_argument("TimedSim: delay vector size mismatch");
  }
  value_.assign(nl.num_nets(), 0);
  value_[nl.const1()] = 1;
  pending_ = value_;
  sampled_ = value_;
  generation_.assign(nl.num_nets(), 0);
  applied_generation_.assign(nl.num_nets(), 0);
  staged_pi_.assign(nl.inputs().size(), 0);
  change_time_.assign(nl.num_nets(), 0.0);
  change_step_.assign(nl.num_nets(), 0);
  is_output_.assign(nl.num_nets(), 0);
  for (const NetId po : nl.outputs()) is_output_[po] = 1;
  activity_.toggles.assign(nl.num_nets(), 0);
  activity_.high_cycles.assign(nl.num_nets(), 0);
  reset();
}

void TimedSim::reset() { reset(std::vector<char>(nl_->inputs().size(), 0)); }

void TimedSim::reset(const std::vector<char>& pi_values) {
  if (pi_values.size() != nl_->inputs().size()) {
    throw std::invalid_argument("TimedSim::reset: PI vector size mismatch");
  }
  FuncSim settle(*nl_);
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    settle.set_input(nl_->inputs()[i], pi_values[i] != 0);
  }
  settle.eval();
  for (std::size_t n = 0; n < value_.size(); ++n) {
    value_[n] = settle.values()[n];
  }
  pending_ = value_;
  sampled_ = value_;
  staged_pi_ = pi_values;
}

void TimedSim::stage_bus(const std::string& bus, std::uint64_t v) {
  const auto& nets = nl_->input_bus(bus);
  // Map bus nets back to PI indices once per call; buses are small.
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (nl_->is_constant(nets[i])) continue;
    const bool bit = i < 64 && ((v >> i) & 1u) != 0;
    for (std::size_t pi = 0; pi < nl_->inputs().size(); ++pi) {
      if (nl_->inputs()[pi] == nets[i]) {
        staged_pi_[pi] = bit ? 1 : 0;
        break;
      }
    }
  }
}

bool TimedSim::step_staged(double t_clock_ps) {
  return step(staged_pi_, t_clock_ps);
}

bool TimedSim::step(const std::vector<char>& pi_values, double t_clock_ps) {
  if (pi_values.size() != nl_->inputs().size()) {
    throw std::invalid_argument("TimedSim::step: PI vector size mismatch");
  }
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    const NetId net = nl_->inputs()[i];
    const char v = pi_values[i] ? 1 : 0;
    if (pending_[net] != v) {
      pending_[net] = v;
      queue.push({0.0, seq_++, net, v, ++generation_[net]});
    }
  }
  staged_pi_ = pi_values;

  bool snapshotted = false;
  std::uint64_t guard = 0;
  last_settle_time_ = 0.0;
  last_output_settle_time_ = 0.0;
  ++step_id_;
  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    if (++guard > 50'000'000ULL) {
      throw std::runtime_error("TimedSim::step: event budget exceeded");
    }
    // Inertial-delay semantics: a transition superseded by a newer decision
    // for the same net was a sub-delay pulse and is swallowed. Transport mode
    // keeps pulses but must drop events arriving out of order (a later
    // decision can land earlier when rise and fall delays differ), or a stale
    // value would stick as the final state.
    if (model_ == DelayModel::inertial && ev.generation != generation_[ev.net]) {
      continue;
    }
    if (model_ == DelayModel::transport &&
        ev.generation < applied_generation_[ev.net]) {
      continue;
    }
    if (!snapshotted && ev.time > t_clock_ps) {
      sampled_ = value_;
      snapshotted = true;
    }
    applied_generation_[ev.net] = ev.generation;
    if (value_[ev.net] == ev.value) continue;
    value_[ev.net] = ev.value;
    ++activity_.toggles[ev.net];
    ++events_processed_;
    last_settle_time_ = ev.time;
    change_time_[ev.net] = ev.time;
    change_step_[ev.net] = step_id_;
    if (is_output_[ev.net]) last_output_settle_time_ = ev.time;
    // Propagate to reader gates.
    for (const NetReader& r : nl_->readers(ev.net)) {
      const Gate& g = nl_->gate(r.gate);
      const Cell& cell = nl_->lib().cell(g.cell);
      unsigned mask = 0;
      const int pins = cell.num_inputs();
      for (int p = 0; p < pins; ++p) {
        if (value_[g.fanin[static_cast<std::size_t>(p)]]) mask |= 1u << p;
      }
      const char out = fn_eval(cell.fn, mask) ? 1 : 0;
      if (pending_[g.fanout] == out) continue;
      pending_[g.fanout] = out;
      ++generation_[g.fanout];  // cancels in-flight transitions (inertial)
      if (model_ == DelayModel::inertial && out == value_[g.fanout]) {
        continue;  // pulse swallowed entirely
      }
      const double delay = out ? delays_.rise[r.gate] : delays_.fall[r.gate];
      queue.push({ev.time + delay, seq_++, g.fanout, out, generation_[g.fanout]});
    }
  }
  if (!snapshotted) sampled_ = value_;

  ++activity_.cycles;
  for (std::size_t n = 0; n < value_.size(); ++n) {
    if (value_[n]) ++activity_.high_cycles[n];
  }

  for (const NetId po : nl_->outputs()) {
    if (sampled_[po] != value_[po]) return true;
  }
  return false;
}

std::uint64_t TimedSim::word(const std::vector<NetId>& nets,
                             const std::vector<char>& vals) const {
  if (nets.size() > 64) throw std::invalid_argument("TimedSim: bus too wide");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (vals[nets[i]]) v |= std::uint64_t{1} << i;
  }
  return v;
}

std::uint64_t TimedSim::sampled_bus(const std::string& bus) const {
  return word(nl_->output_bus(bus), sampled_);
}

std::uint64_t TimedSim::settled_bus(const std::string& bus) const {
  return word(nl_->output_bus(bus), value_);
}

bool TimedSim::sampled(NetId net) const { return sampled_[net] != 0; }
bool TimedSim::settled(NetId net) const { return value_[net] != 0; }

double TimedSim::settle_time(NetId net) const {
  if (net >= change_time_.size()) throw std::out_of_range("TimedSim::settle_time");
  return change_step_[net] == step_id_ ? change_time_[net] : 0.0;
}

void TimedSim::clear_activity() {
  activity_.toggles.assign(nl_->num_nets(), 0);
  activity_.high_cycles.assign(nl_->num_nets(), 0);
  activity_.cycles = 0;
}

}  // namespace aapx
