// AVX2 wide-sim backend: 256 lanes per __m256i word. This translation unit
// is compiled with -mavx2 (see gatesim/CMakeLists.txt); make_wide_sim only
// calls in here after __builtin_cpu_supports("avx2").
#include "gatesim/widesim_impl.hpp"

#ifndef __AVX2__
#error "packedsim_avx2.cpp must be compiled with -mavx2"
#endif

namespace aapx::detail {

std::unique_ptr<WideSim> make_wide_sim_avx2(const Netlist& nl) {
  return std::make_unique<WideSimT<simd::SimWordAvx2>>(
      nl, simd::SimdBackend::avx2);
}

}  // namespace aapx::detail
