#include "gatesim/simd.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace aapx::simd {

void transpose64(std::uint64_t m[64]) {
  // Recursive block swap (Hacker's Delight 7-3, LSB-first column
  // convention): at step j, swap the high-column half of rows k with the
  // low-column half of rows k + j.
  std::uint64_t msk = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, msk ^= msk << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((m[k] >> j) ^ m[k + j]) & msk;
      m[k] ^= t << j;
      m[k + j] ^= t;
    }
  }
}

const char* to_string(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::u64:         return "u64";
    case SimdBackend::portable256: return "portable256";
    case SimdBackend::portable512: return "portable512";
    case SimdBackend::avx2:        return "avx2";
    case SimdBackend::avx512:      return "avx512";
  }
  return "?";
}

int backend_lanes(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::u64:         return 64;
    case SimdBackend::portable256: return 256;
    case SimdBackend::portable512: return 512;
    case SimdBackend::avx2:        return 256;
    case SimdBackend::avx512:      return 512;
  }
  return 0;
}

const std::vector<SimdBackend>& compiled_backends() {
  static const std::vector<SimdBackend> backends = [] {
    std::vector<SimdBackend> b{SimdBackend::u64, SimdBackend::portable256,
                               SimdBackend::portable512};
#ifdef AAPX_SIMD_HAVE_AVX2
    b.push_back(SimdBackend::avx2);
#endif
#ifdef AAPX_SIMD_HAVE_AVX512
    b.push_back(SimdBackend::avx512);
#endif
    return b;
  }();
  return backends;
}

bool backend_runnable(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::u64:
    case SimdBackend::portable256:
    case SimdBackend::portable512:
      return true;
    case SimdBackend::avx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdBackend::avx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

bool parse_backend(const std::string& name, SimdBackend& out) {
  if (name == "u64") out = SimdBackend::u64;
  else if (name == "portable256") out = SimdBackend::portable256;
  else if (name == "portable512" || name == "portable") out = SimdBackend::portable512;
  else if (name == "avx2") out = SimdBackend::avx2;
  else if (name == "avx512") out = SimdBackend::avx512;
  else return false;
  return true;
}

namespace {

bool compiled(SimdBackend b) {
  for (const SimdBackend c : compiled_backends()) {
    if (c == b) return true;
  }
  return false;
}

SimdBackend resolve_dispatch() {
  // Widest usable backend wins; AVX words beat the equal-width portable
  // words (one register op vs an unrolled scalar loop).
  static constexpr SimdBackend kPreference[] = {
      SimdBackend::avx512, SimdBackend::avx2, SimdBackend::portable512,
      SimdBackend::portable256, SimdBackend::u64};
  const auto widest_supported = [] {
    for (const SimdBackend b : kPreference) {
      if (compiled(b) && backend_runnable(b)) return b;
    }
    return SimdBackend::u64;
  };
  if (const char* env = std::getenv("AAPX_SIMD"); env && *env) {
    SimdBackend forced;
    if (!parse_backend(env, forced)) {
      std::fprintf(stderr,
                   "aapx: unknown AAPX_SIMD value '%s' "
                   "(want u64|portable|portable256|portable512|avx2|avx512); "
                   "using auto dispatch\n",
                   env);
    } else if (!compiled(forced)) {
      std::fprintf(stderr,
                   "aapx: AAPX_SIMD=%s backend not compiled into this "
                   "binary; using auto dispatch\n",
                   env);
    } else if (!backend_runnable(forced)) {
      std::fprintf(stderr,
                   "aapx: AAPX_SIMD=%s backend not supported by this CPU; "
                   "using auto dispatch\n",
                   env);
    } else {
      return forced;
    }
  }
  return widest_supported();
}

}  // namespace

SimdBackend simd_dispatch() {
  static const SimdBackend backend = resolve_dispatch();
  return backend;
}

}  // namespace aapx::simd
