// Event-driven timed gate-level simulation.
//
// This is the reproduction of the paper's ModelSim + SDF flow: each gate
// carries its (optionally aged) rise/fall delay; input vectors are applied at
// clock edges; outputs are *sampled* at the clock period and compared with
// the *settled* values. A mismatch is exactly an aging-induced timing error
// (paper Sec. II). The simulator also accumulates per-net toggle counts and
// duty cycles, which feed dynamic power analysis and the measured
// ("actual-case") stress profiles of paper Fig. 3c / Fig. 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace aapx {

/// Switching statistics accumulated across simulated cycles.
struct Activity {
  std::vector<std::uint64_t> toggles;    ///< per net, includes glitches
  std::vector<std::uint64_t> high_cycles;///< per net, settled value == 1
  std::uint64_t cycles = 0;

  /// Settled duty cycle (fraction of cycles spent at logic 1).
  double duty_high(NetId net) const;
  /// Average toggles per cycle.
  double toggle_rate(NetId net) const;
  /// Per-gate output duty cycles, ready for StressProfile::measured.
  std::vector<double> gate_output_duty(const Netlist& nl) const;
};

/// Gate delay semantics of the simulator.
///  * inertial  — pulses shorter than the gate delay are swallowed
///                (ModelSim's default for gate primitives); much faster on
///                glitchy structures such as array-multiplier rows.
///  * transport — every scheduled transition is delivered; models wire-like
///                propagation and preserves glitch trains.
enum class DelayModel { inertial, transport };

class TimedSim {
 public:
  /// `delays` come from Sta::gate_delays (fresh or aged).
  TimedSim(const Netlist& nl, Sta::GateDelays delays,
           DelayModel model = DelayModel::inertial);

  /// Initializes the settled state from the given PI assignment
  /// (held "for a long time"; no events are generated).
  void reset(const std::vector<char>& pi_values);
  /// Convenience reset with all inputs low.
  void reset();

  /// Applies a new input vector at t=0, simulates to quiescence, and samples
  /// every net at `t_clock_ps`. Returns true if any primary output sampled a
  /// value different from its settled value (a timing error).
  bool step(const std::vector<char>& pi_values, double t_clock_ps);

  /// Sets one bus of the *next* input vector (staging area), LSB-first.
  void stage_bus(const std::string& bus, std::uint64_t value);
  /// Runs step() with the staged vector.
  bool step_staged(double t_clock_ps);

  /// Sampled (at t_clock) and settled values of an output bus.
  std::uint64_t sampled_bus(const std::string& bus) const;
  std::uint64_t settled_bus(const std::string& bus) const;

  bool sampled(NetId net) const;
  bool settled(NetId net) const;

  const Activity& activity() const noexcept { return activity_; }
  void clear_activity();

  /// Total events processed since construction (simulation cost metric).
  std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// Time of the last applied value change in the most recent step — the
  /// settling time of that input transition (any net, including internal
  /// glitches that never reach an output).
  double last_settle_time() const noexcept { return last_settle_time_; }

  /// Time of the last primary-output value change in the most recent step —
  /// what a downstream register actually needs to wait for.
  double last_output_settle_time() const noexcept {
    return last_output_settle_time_;
  }

  /// Time of the last value change of one specific net in the most recent
  /// step (0 if it did not change). Lets callers constrain only the output
  /// bits a downstream consumer actually reads.
  double settle_time(NetId net) const;

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break for equal times
    NetId net;
    char value;
    std::uint32_t generation;  // stale events are skipped (inertial delay)
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void schedule_fanout(NetId net, double now);
  std::uint64_t word(const std::vector<NetId>& nets,
                     const std::vector<char>& vals) const;

  const Netlist* nl_;
  Sta::GateDelays delays_;
  DelayModel model_;
  std::vector<char> value_;    ///< current waveform value per net
  std::vector<char> pending_;  ///< projected final value per net
  /// Incremented whenever a net's scheduled transition is superseded;
  /// implements inertial-delay pulse cancellation (ModelSim gate semantics).
  std::vector<std::uint32_t> generation_;
  /// Newest generation already applied per net; transport mode uses it to
  /// drop events that arrive out of order (rise/fall delay inversion).
  std::vector<std::uint32_t> applied_generation_;
  std::vector<char> sampled_;  ///< snapshot at t_clock
  std::vector<char> staged_pi_;
  Activity activity_;
  std::uint64_t events_processed_ = 0;
  std::uint64_t seq_ = 0;
  double last_settle_time_ = 0.0;
  double last_output_settle_time_ = 0.0;
  std::vector<char> is_output_;
  std::vector<double> change_time_;        ///< last change time per net
  std::vector<std::uint64_t> change_step_; ///< step id of that change
  std::uint64_t step_id_ = 0;
};

}  // namespace aapx
