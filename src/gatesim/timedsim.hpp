// Event-driven timed gate-level simulation.
//
// This is the reproduction of the paper's ModelSim + SDF flow: each gate
// carries its (optionally aged) rise/fall delay; input vectors are applied at
// clock edges; outputs are *sampled* at the clock period and compared with
// the *settled* values. A mismatch is exactly an aging-induced timing error
// (paper Sec. II). The simulator also accumulates per-net toggle counts and
// duty cycles, which feed dynamic power analysis and the measured
// ("actual-case") stress profiles of paper Fig. 3c / Fig. 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace aapx {

/// Switching statistics accumulated across simulated cycles.
struct Activity {
  std::vector<std::uint64_t> toggles;    ///< per net, includes glitches
  std::vector<std::uint64_t> high_cycles;///< per net, settled value == 1
  std::uint64_t cycles = 0;

  /// Settled duty cycle (fraction of cycles spent at logic 1).
  double duty_high(NetId net) const;
  /// Average toggles per cycle.
  double toggle_rate(NetId net) const;
  /// Per-gate output duty cycles, ready for StressProfile::measured.
  std::vector<double> gate_output_duty(const Netlist& nl) const;
};

/// Gate delay semantics of the simulator.
///  * inertial  — pulses shorter than the gate delay are swallowed
///                (ModelSim's default for gate primitives); much faster on
///                glitchy structures such as array-multiplier rows.
///  * transport — every scheduled transition is delivered; models wire-like
///                propagation and preserves glitch trains.
enum class DelayModel { inertial, transport };

class TimedSim {
 public:
  /// `delays` come from Sta::gate_delays (fresh or aged).
  TimedSim(const Netlist& nl, Sta::GateDelays delays,
           DelayModel model = DelayModel::inertial);
  /// Flushes per-instance statistics (events, steps, peak queue depth) into
  /// the process metrics registry — one registry touch per sim lifetime,
  /// never per event.
  ~TimedSim();

  /// Initializes the settled state from the given PI assignment
  /// (held "for a long time"; no events are generated).
  void reset(const std::vector<char>& pi_values);
  /// Convenience reset with all inputs low.
  void reset();

  /// Applies a new input vector at t=0, simulates to quiescence, and samples
  /// every net at `t_clock_ps`. Returns true if any primary output sampled a
  /// value different from its settled value (a timing error).
  bool step(const std::vector<char>& pi_values, double t_clock_ps);

  /// Sets one bus of the *next* input vector (staging area), LSB-first.
  void stage_bus(const std::string& bus, std::uint64_t value);
  /// stage_bus with the net list already resolved (callers on a hot loop
  /// look the bus up once via Netlist::input_bus instead of per vector).
  void stage_word(const std::vector<NetId>& nets, std::uint64_t value);
  /// Pre-resolves a bus net list into per-bit PI indices for stage_resolved
  /// (kInvalidNet for constant or rewritten bits, which never stage).
  std::vector<NetId> resolve_stage(const std::vector<NetId>& nets) const;
  /// stage_word with the PI lookups hoisted out of the per-vector loop.
  void stage_resolved(const std::vector<NetId>& pi_indices,
                      std::uint64_t value);
  /// Runs step() with the staged vector.
  bool step_staged(double t_clock_ps);

  /// Sampled (at t_clock) and settled values of an output bus.
  std::uint64_t sampled_bus(const std::string& bus) const;
  std::uint64_t settled_bus(const std::string& bus) const;
  /// Same with pre-resolved nets (see stage_word).
  std::uint64_t sampled_word(const std::vector<NetId>& nets) const;
  std::uint64_t settled_word(const std::vector<NetId>& nets) const;

  bool sampled(NetId net) const;
  bool settled(NetId net) const;

  const Activity& activity() const;
  void clear_activity();

  /// Total events processed since construction (simulation cost metric).
  std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// Peak event-queue population since construction.
  std::size_t max_queue_depth() const noexcept { return max_queue_depth_; }

  /// Time of the last applied value change in the most recent step — the
  /// settling time of that input transition (any net, including internal
  /// glitches that never reach an output).
  double last_settle_time() const noexcept { return last_settle_time_; }

  /// Time of the last primary-output value change in the most recent step —
  /// what a downstream register actually needs to wait for.
  double last_output_settle_time() const noexcept {
    return last_output_settle_time_;
  }

  /// Time of the last value change of one specific net in the most recent
  /// step (0 if it did not change). Lets callers constrain only the output
  /// bits a downstream consumer actually reads.
  double settle_time(NetId net) const;

 private:
  /// Queue entry, packed to 16 bytes. No explicit sequence number: the
  /// calendar queue below keeps equal-time events in insertion order, which
  /// IS the FIFO tie-break the old binary heap encoded in a per-event seq
  /// field. gen_val carries the net's generation (NetHot::generation, which
  /// advances in steps of 2 so bit 0 is free) OR'd with the scheduled value
  /// in bit 0; stale events are recognized by comparing the masked field.
  struct Event {
    double time;
    NetId net;
    std::uint32_t gen_val;
  };

  /// Per-gate record flattened out of Netlist/CellLibrary at construction:
  /// the step() inner loop reads only this array, never chasing Cell or
  /// Gate indirections per event. `tt` bit m = fn_eval(fn, m); unused fanin
  /// slots point at const0 so every gate evaluates as 3-input.
  struct GateInfo {
    std::array<NetId, 3> fanin;
    NetId fanout;
    double rise;  ///< ps, output-rise delay of this gate
    double fall;
    std::uint8_t tt;  ///< 8-entry truth table over the 3 fanin values
  };

  void push_event(Event ev);
  void clear_queue();
  template <DelayModel kModel>
  bool step_impl(double t_clock_ps);
  std::uint64_t word_sampled(const std::vector<NetId>& nets) const;
  std::uint64_t word_settled(const std::vector<NetId>& nets) const;
  /// Folds all outstanding cycles into high_cycles (see high_sync_).
  void sync_high_cycles() const;

  const Netlist* nl_;
  Sta::GateDelays delays_;
  DelayModel model_;
  std::vector<GateInfo> gate_info_;  ///< indexed by GateId
  /// Readers of each net as a flat CSR list of gate ids:
  /// gates reader_gate_[reader_offset_[net] .. reader_offset_[net+1]).
  std::vector<std::uint32_t> reader_offset_;
  std::vector<GateId> reader_gate_;
  /// Monotone calendar queue replacing the old binary heap. Buckets span
  /// [0, horizon] where the horizon is the topo longest-path delay bound —
  /// no event in a step can ever land beyond it (times are path-delay sums
  /// from t = 0), so the clamp into the last bucket only absorbs float
  /// rounding. Each bucket is kept sorted by time with FIFO order among
  /// equal times (sorted insertion; appends dominate because pushes arrive
  /// in pop order plus a positive delay). Draining is strictly monotone:
  /// while bucket B drains, new events land at sorted positions >=
  /// drain_pos_ of B or in later buckets, and once B completes nothing can
  /// ever map below B+1 again. Pop order is therefore exactly the old
  /// heap's (time, push-seq) order. The occupied_ bitmask makes skipping
  /// empty buckets O(1) per 64.
  std::vector<std::vector<Event>> buckets_;
  std::vector<std::uint64_t> occupied_;
  double inv_bucket_width_ = 0.0;
  std::uint32_t n_buckets_ = 1;
  std::uint32_t cur_bucket_ = 0;
  std::size_t drain_pos_ = 0;   ///< next index to pop in cur_bucket_
  std::size_t queue_size_ = 0;  ///< live (unpopped) events across buckets
  /// Hot per-net simulation state, packed so one cache line serves the
  /// stale check, the commit and the fanout-pending update of an event.
  struct NetHot {
    /// Advanced by 2 whenever the net's scheduled transition is superseded
    /// (bit 0 is reserved for the value bit inside Event::gen_val);
    /// implements inertial-delay pulse cancellation (ModelSim semantics).
    std::uint32_t generation;
    /// Newest generation already applied; transport mode uses it to drop
    /// events arriving out of order (rise/fall delay inversion).
    std::uint32_t applied_generation;
    char value;    ///< current waveform value
    char pending;  ///< projected final value
    char is_output;
  };
  std::vector<NetHot> net_;
  /// Snapshot at t_clock. Only materialized when an event actually crosses
  /// the clock edge (a timing violation); otherwise sampled == settled and
  /// sampled_is_settled_ short-circuits the copy and the PO comparison.
  std::vector<char> sampled_;
  bool sampled_is_settled_ = true;
  std::vector<char> staged_pi_;
  /// Scratch: PIs whose value changes this step, in input order. Applied
  /// inline at the head of step_impl instead of through the event queue.
  std::vector<NetId> pi_changed_;
  /// Duty accounting is lazy: high_cycles is brought up to date per net on
  /// each committed toggle (and fully on read) instead of sweeping every net
  /// every step. high_sync_[n] = cycle count already folded into
  /// high_cycles[n]; mutable so the const accessor can settle the books.
  mutable Activity activity_;
  mutable std::vector<std::uint64_t> high_sync_;
  std::uint64_t events_processed_ = 0;
  std::size_t max_queue_depth_ = 0;  ///< plain member; flushed at destruction
  double last_settle_time_ = 0.0;
  double last_output_settle_time_ = 0.0;
  /// Last change of each net: time and the step it happened in (one array so
  /// a commit touches a single cache line for both fields).
  struct Change {
    double time;
    std::uint64_t step;
  };
  std::vector<Change> change_;
  std::uint64_t step_id_ = 0;
};

}  // namespace aapx
