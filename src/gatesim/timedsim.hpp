// Event-driven timed gate-level simulation.
//
// This is the reproduction of the paper's ModelSim + SDF flow: each gate
// carries its (optionally aged) rise/fall delay; input vectors are applied at
// clock edges; outputs are *sampled* at the clock period and compared with
// the *settled* values. A mismatch is exactly an aging-induced timing error
// (paper Sec. II). The simulator also accumulates per-net toggle counts and
// duty cycles, which feed dynamic power analysis and the measured
// ("actual-case") stress profiles of paper Fig. 3c / Fig. 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace aapx {

/// Switching statistics accumulated across simulated cycles.
struct Activity {
  std::vector<std::uint64_t> toggles;    ///< per net, includes glitches
  std::vector<std::uint64_t> high_cycles;///< per net, settled value == 1
  std::uint64_t cycles = 0;

  /// Settled duty cycle (fraction of cycles spent at logic 1).
  double duty_high(NetId net) const;
  /// Average toggles per cycle.
  double toggle_rate(NetId net) const;
  /// Per-gate output duty cycles, ready for StressProfile::measured.
  std::vector<double> gate_output_duty(const Netlist& nl) const;
};

/// Gate delay semantics of the simulator.
///  * inertial  — pulses shorter than the gate delay are swallowed
///                (ModelSim's default for gate primitives); much faster on
///                glitchy structures such as array-multiplier rows.
///  * transport — every scheduled transition is delivered; models wire-like
///                propagation and preserves glitch trains.
enum class DelayModel { inertial, transport };

class TimedSim {
 public:
  /// `delays` come from Sta::gate_delays (fresh or aged).
  TimedSim(const Netlist& nl, Sta::GateDelays delays,
           DelayModel model = DelayModel::inertial);
  /// Flushes per-instance statistics (events, steps, peak queue depth) into
  /// the process metrics registry — one registry touch per sim lifetime,
  /// never per event.
  ~TimedSim();

  /// Initializes the settled state from the given PI assignment
  /// (held "for a long time"; no events are generated).
  void reset(const std::vector<char>& pi_values);
  /// Convenience reset with all inputs low.
  void reset();

  /// Applies a new input vector at t=0, simulates to quiescence, and samples
  /// every net at `t_clock_ps`. Returns true if any primary output sampled a
  /// value different from its settled value (a timing error).
  bool step(const std::vector<char>& pi_values, double t_clock_ps);

  /// Sets one bus of the *next* input vector (staging area), LSB-first.
  void stage_bus(const std::string& bus, std::uint64_t value);
  /// stage_bus with the net list already resolved (callers on a hot loop
  /// look the bus up once via Netlist::input_bus instead of per vector).
  void stage_word(const std::vector<NetId>& nets, std::uint64_t value);
  /// Runs step() with the staged vector.
  bool step_staged(double t_clock_ps);

  /// Sampled (at t_clock) and settled values of an output bus.
  std::uint64_t sampled_bus(const std::string& bus) const;
  std::uint64_t settled_bus(const std::string& bus) const;
  /// Same with pre-resolved nets (see stage_word).
  std::uint64_t sampled_word(const std::vector<NetId>& nets) const;
  std::uint64_t settled_word(const std::vector<NetId>& nets) const;

  bool sampled(NetId net) const;
  bool settled(NetId net) const;

  const Activity& activity() const;
  void clear_activity();

  /// Total events processed since construction (simulation cost metric).
  std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// Peak event-queue population since construction.
  std::size_t max_queue_depth() const noexcept { return max_queue_depth_; }

  /// Time of the last applied value change in the most recent step — the
  /// settling time of that input transition (any net, including internal
  /// glitches that never reach an output).
  double last_settle_time() const noexcept { return last_settle_time_; }

  /// Time of the last primary-output value change in the most recent step —
  /// what a downstream register actually needs to wait for.
  double last_output_settle_time() const noexcept {
    return last_output_settle_time_;
  }

  /// Time of the last value change of one specific net in the most recent
  /// step (0 if it did not change). Lets callers constrain only the output
  /// bits a downstream consumer actually reads.
  double settle_time(NetId net) const;

 private:
  /// 24 bytes; seq restarts every step (the heap is drained per step, so
  /// only intra-step ordering matters) which keeps it in 32 bits.
  struct Event {
    double time;
    std::uint32_t seq;  // FIFO tie-break for equal times
    NetId net;
    std::uint32_t generation;  // stale events are skipped (inertial delay)
    char value;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  /// Per-gate record flattened out of Netlist/CellLibrary at construction:
  /// the step() inner loop reads only this array, never chasing Cell or
  /// Gate indirections per event. `tt` bit m = fn_eval(fn, m); unused fanin
  /// slots point at const0 so every gate evaluates as 3-input.
  struct GateInfo {
    std::array<NetId, 3> fanin;
    NetId fanout;
    double rise;  ///< ps, output-rise delay of this gate
    double fall;
    std::uint8_t tt;  ///< 8-entry truth table over the 3 fanin values
  };

  void push_event(Event ev);
  Event pop_event();
  std::uint64_t word(const std::vector<NetId>& nets,
                     const std::vector<char>& vals) const;
  /// Folds all outstanding cycles into high_cycles (see high_sync_).
  void sync_high_cycles() const;

  const Netlist* nl_;
  Sta::GateDelays delays_;
  DelayModel model_;
  std::vector<GateInfo> gate_info_;  ///< indexed by GateId
  /// Readers of each net as a flat CSR list of gate ids:
  /// gates reader_gate_[reader_offset_[net] .. reader_offset_[net+1]).
  std::vector<std::uint32_t> reader_offset_;
  std::vector<GateId> reader_gate_;
  /// Event-queue backing storage, reused across step() calls (a fresh
  /// priority_queue per cycle was one malloc/free per simulated vector).
  std::vector<Event> heap_;
  std::vector<char> value_;    ///< current waveform value per net
  std::vector<char> pending_;  ///< projected final value per net
  /// Incremented whenever a net's scheduled transition is superseded;
  /// implements inertial-delay pulse cancellation (ModelSim gate semantics).
  std::vector<std::uint32_t> generation_;
  /// Newest generation already applied per net; transport mode uses it to
  /// drop events that arrive out of order (rise/fall delay inversion).
  std::vector<std::uint32_t> applied_generation_;
  std::vector<char> sampled_;  ///< snapshot at t_clock
  std::vector<char> staged_pi_;
  /// Duty accounting is lazy: high_cycles is brought up to date per net on
  /// each committed toggle (and fully on read) instead of sweeping every net
  /// every step. high_sync_[n] = cycle count already folded into
  /// high_cycles[n]; mutable so the const accessor can settle the books.
  mutable Activity activity_;
  mutable std::vector<std::uint64_t> high_sync_;
  std::uint64_t events_processed_ = 0;
  std::size_t max_queue_depth_ = 0;  ///< plain member; flushed at destruction
  std::uint32_t seq_ = 0;
  double last_settle_time_ = 0.0;
  double last_output_settle_time_ = 0.0;
  std::vector<char> is_output_;
  std::vector<double> change_time_;        ///< last change time per net
  std::vector<std::uint64_t> change_step_; ///< step id of that change
  std::uint64_t step_id_ = 0;
};

}  // namespace aapx
