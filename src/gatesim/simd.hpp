// SIMD lane words for the packed functional simulator.
//
// A SimWord is a fixed-width bundle of independent simulation lanes — one
// bit per lane — with the bitwise operations a gate evaluation needs. The
// packed simulator is templated over the word type (gatesim/packedsim.hpp),
// so the lane count is a compile-time property:
//
//   SimWord64      64 lanes   plain uint64_t (the PR 2 backend, default alias)
//   SimWord256P   256 lanes   portable 4 x uint64_t
//   SimWord512P   512 lanes   portable 8 x uint64_t
//   SimWordAvx2   256 lanes   __m256i, compiled only under __AVX2__
//   SimWordAvx512 512 lanes   __m512i, compiled only under __AVX512F__
//
// The portable multi-uint64 words guarantee that 256- and 512-lane configs
// exist on every target; the AVX words live in dedicated translation units
// compiled with -mavx2 / -mavx512f (see gatesim/CMakeLists.txt) and are
// selected at runtime only after a cpuid check, so a binary carrying them
// still runs on older hosts. All backends are bit-exact against the scalar
// FuncSim — the lane-exactness suite in tests/gatesim pins every compiled
// backend.
//
// Backend choice: simd_dispatch() returns the widest backend that is both
// compiled in and supported by the running CPU, unless the AAPX_SIMD
// environment variable forces one of u64 | portable | portable256 |
// portable512 | avx2 | avx512.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace aapx::simd {

/// Bitwise lane-parallel word: `kLanes` one-bit lanes, addressable as
/// `kChunks` uint64 chunks for staging and readout (the cold paths). The
/// hot path — gate evaluation — uses only the bitwise operators.
template <typename W>
concept SimWord = requires(W a, W b, std::uint64_t u, int i) {
  { W::kLanes } -> std::convertible_to<int>;
  { W::kChunks } -> std::convertible_to<int>;
  { W::zero() } -> std::same_as<W>;
  { W::ones() } -> std::same_as<W>;
  { a & b } -> std::same_as<W>;
  { a | b } -> std::same_as<W>;
  { a ^ b } -> std::same_as<W>;
  { ~a } -> std::same_as<W>;
  { a.chunk(i) } -> std::same_as<std::uint64_t>;
  { a.set_chunk(i, u) };
};

/// 64 lanes in one uint64_t — the classic PackedFuncSim word.
struct SimWord64 {
  static constexpr int kLanes = 64;
  static constexpr int kChunks = 1;
  std::uint64_t v = 0;

  static constexpr SimWord64 zero() { return {0}; }
  static constexpr SimWord64 ones() { return {~std::uint64_t{0}}; }
  constexpr std::uint64_t chunk(int) const { return v; }
  constexpr void set_chunk(int, std::uint64_t u) { v = u; }

  friend constexpr SimWord64 operator&(SimWord64 a, SimWord64 b) {
    return {a.v & b.v};
  }
  friend constexpr SimWord64 operator|(SimWord64 a, SimWord64 b) {
    return {a.v | b.v};
  }
  friend constexpr SimWord64 operator^(SimWord64 a, SimWord64 b) {
    return {a.v ^ b.v};
  }
  friend constexpr SimWord64 operator~(SimWord64 a) { return {~a.v}; }
};

/// Portable multi-uint64 word: N x 64 lanes with plain scalar ops. The
/// compiler unrolls the fixed-size loops; even without vector units this
/// amortizes the per-gate bookkeeping of the eval loop over more lanes.
template <int N>
struct SimWordN {
  static constexpr int kLanes = 64 * N;
  static constexpr int kChunks = N;
  std::array<std::uint64_t, N> v{};

  static SimWordN zero() { return {}; }
  static SimWordN ones() {
    SimWordN w;
    for (auto& c : w.v) c = ~std::uint64_t{0};
    return w;
  }
  std::uint64_t chunk(int i) const { return v[static_cast<std::size_t>(i)]; }
  void set_chunk(int i, std::uint64_t u) { v[static_cast<std::size_t>(i)] = u; }

  friend SimWordN operator&(SimWordN a, SimWordN b) {
    SimWordN r;
    for (int i = 0; i < N; ++i) r.v[i] = a.v[i] & b.v[i];
    return r;
  }
  friend SimWordN operator|(SimWordN a, SimWordN b) {
    SimWordN r;
    for (int i = 0; i < N; ++i) r.v[i] = a.v[i] | b.v[i];
    return r;
  }
  friend SimWordN operator^(SimWordN a, SimWordN b) {
    SimWordN r;
    for (int i = 0; i < N; ++i) r.v[i] = a.v[i] ^ b.v[i];
    return r;
  }
  friend SimWordN operator~(SimWordN a) {
    SimWordN r;
    for (int i = 0; i < N; ++i) r.v[i] = ~a.v[i];
    return r;
  }
};

using SimWord256P = SimWordN<4>;
using SimWord512P = SimWordN<8>;

#ifdef __AVX2__
/// 256 lanes in one AVX2 register. Compiled only in the -mavx2 translation
/// unit; selected at runtime after __builtin_cpu_supports("avx2").
struct SimWordAvx2 {
  static constexpr int kLanes = 256;
  static constexpr int kChunks = 4;
  __m256i v;

  SimWordAvx2() : v(_mm256_setzero_si256()) {}
  explicit SimWordAvx2(__m256i x) : v(x) {}
  static SimWordAvx2 zero() { return SimWordAvx2(_mm256_setzero_si256()); }
  static SimWordAvx2 ones() {
    return SimWordAvx2(_mm256_set1_epi64x(-1));
  }
  std::uint64_t chunk(int i) const {
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return tmp[i];
  }
  void set_chunk(int i, std::uint64_t u) {
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    tmp[i] = u;
    v = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
  }

  friend SimWordAvx2 operator&(SimWordAvx2 a, SimWordAvx2 b) {
    return SimWordAvx2(_mm256_and_si256(a.v, b.v));
  }
  friend SimWordAvx2 operator|(SimWordAvx2 a, SimWordAvx2 b) {
    return SimWordAvx2(_mm256_or_si256(a.v, b.v));
  }
  friend SimWordAvx2 operator^(SimWordAvx2 a, SimWordAvx2 b) {
    return SimWordAvx2(_mm256_xor_si256(a.v, b.v));
  }
  friend SimWordAvx2 operator~(SimWordAvx2 a) {
    return SimWordAvx2(_mm256_xor_si256(a.v, _mm256_set1_epi64x(-1)));
  }
};
#endif  // __AVX2__

#ifdef __AVX512F__
/// 512 lanes in one AVX-512 register. Any 3-input gate evaluates in a single
/// vpternlogd whose immediate is the gate's truth table (packedsim.hpp uses
/// the `kHasTernlog` hook).
struct SimWordAvx512 {
  static constexpr int kLanes = 512;
  static constexpr int kChunks = 8;
  static constexpr bool kHasTernlog = true;
  __m512i v;

  SimWordAvx512() : v(_mm512_setzero_si512()) {}
  explicit SimWordAvx512(__m512i x) : v(x) {}
  static SimWordAvx512 zero() { return SimWordAvx512(_mm512_setzero_si512()); }
  static SimWordAvx512 ones() {
    return SimWordAvx512(_mm512_set1_epi64(-1));
  }
  std::uint64_t chunk(int i) const {
    alignas(64) std::uint64_t tmp[8];
    _mm512_store_si512(tmp, v);
    return tmp[i];
  }
  void set_chunk(int i, std::uint64_t u) {
    alignas(64) std::uint64_t tmp[8];
    _mm512_store_si512(tmp, v);
    tmp[i] = u;
    v = _mm512_load_si512(tmp);
  }

  /// out bit = Imm[(a<<2) | (b<<1) | c] per lane — one instruction per
  /// 3-input gate. The immediate must be a compile-time constant
  /// (vpternlog encodes it in the instruction), so callers switch on the
  /// gate function (detail::eval_ternlog in packedsim.hpp).
  template <std::uint8_t Imm>
  static SimWordAvx512 ternlog(SimWordAvx512 a, SimWordAvx512 b,
                               SimWordAvx512 c) {
    return SimWordAvx512(_mm512_ternarylogic_epi64(a.v, b.v, c.v, Imm));
  }

  friend SimWordAvx512 operator&(SimWordAvx512 a, SimWordAvx512 b) {
    return SimWordAvx512(_mm512_and_si512(a.v, b.v));
  }
  friend SimWordAvx512 operator|(SimWordAvx512 a, SimWordAvx512 b) {
    return SimWordAvx512(_mm512_or_si512(a.v, b.v));
  }
  friend SimWordAvx512 operator^(SimWordAvx512 a, SimWordAvx512 b) {
    return SimWordAvx512(_mm512_xor_si512(a.v, b.v));
  }
  friend SimWordAvx512 operator~(SimWordAvx512 a) {
    return SimWordAvx512(_mm512_xor_si512(a.v, _mm512_set1_epi64(-1)));
  }
};
#endif  // __AVX512F__

/// Detects whether a word type opts into the single-instruction 3-input
/// truth-table evaluation (AVX-512 vpternlog).
template <typename W>
concept HasTernlog = requires { W::kHasTernlog; } && W::kHasTernlog;

/// In-place transpose of a 64x64 bit matrix (m[i] bit j  <->  m[j] bit i).
/// The staging transpose of set_bus: 64 per-lane bus words become 64
/// per-bit lane words in ~6*64 word ops instead of 64*64 bit probes.
void transpose64(std::uint64_t m[64]);

/// Identity of one compiled packed-simulation backend.
enum class SimdBackend { u64, portable256, portable512, avx2, avx512 };

const char* to_string(SimdBackend backend);

/// Lane count of `backend`'s word type.
int backend_lanes(SimdBackend backend);

/// Every backend compiled into this binary (u64 and the portable words are
/// always present; avx2/avx512 appear when their translation units were
/// built). Order: narrowest first.
const std::vector<SimdBackend>& compiled_backends();

/// True if the running CPU can execute `backend` (cpuid; portable words are
/// always runnable).
bool backend_runnable(SimdBackend backend);

/// The backend the wide simulation path uses: AAPX_SIMD if set (unknown or
/// un-runnable values fall back with a one-time stderr warning), otherwise
/// the widest compiled backend the CPU supports. Resolved once per process.
SimdBackend simd_dispatch();

/// Parses an AAPX_SIMD-style name ("u64", "portable", "portable256",
/// "portable512", "avx2", "avx512"). Returns false on unknown names.
bool parse_backend(const std::string& name, SimdBackend& out);

}  // namespace aapx::simd
