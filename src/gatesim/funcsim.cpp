#include "gatesim/funcsim.hpp"

#include <stdexcept>

namespace aapx {

FuncSim::FuncSim(const Netlist& nl) : nl_(&nl), values_(nl.num_nets(), 0) {
  values_[nl.const1()] = 1;
}

void FuncSim::set_input(NetId net, bool value) {
  if (nl_->driver(net) != kInvalidGate || nl_->is_constant(net)) {
    throw std::invalid_argument("FuncSim::set_input: net is not a primary input");
  }
  values_[net] = value ? 1 : 0;
}

void FuncSim::set_bus(const std::string& bus, std::uint64_t value) {
  const auto& nets = nl_->input_bus(bus);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const bool bit = i < 64 && ((value >> i) & 1u) != 0;
    if (nl_->is_constant(nets[i])) continue;  // truncated LSBs stay constant
    values_[nets[i]] = bit ? 1 : 0;
  }
}

void FuncSim::eval() {
  for (const GateId gid : nl_->topo_order()) {
    const Gate& g = nl_->gate(gid);
    const Cell& cell = nl_->lib().cell(g.cell);
    unsigned mask = 0;
    const int pins = cell.num_inputs();
    for (int p = 0; p < pins; ++p) {
      if (values_[g.fanin[static_cast<std::size_t>(p)]]) mask |= 1u << p;
    }
    values_[g.fanout] = fn_eval(cell.fn, mask) ? 1 : 0;
  }
}

bool FuncSim::value(NetId net) const {
  if (net >= values_.size()) throw std::out_of_range("FuncSim::value");
  return values_[net] != 0;
}

std::uint64_t FuncSim::bus_value(const std::string& output_bus) const {
  return word_value(nl_->output_bus(output_bus));
}

std::uint64_t FuncSim::word_value(const std::vector<NetId>& nets) const {
  if (nets.size() > 64) throw std::invalid_argument("word_value: bus too wide");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (values_[nets[i]]) v |= std::uint64_t{1} << i;
  }
  return v;
}

}  // namespace aapx
