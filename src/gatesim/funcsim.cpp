#include "gatesim/funcsim.hpp"

#include <stdexcept>

namespace aapx {

FuncSim::FuncSim(const Netlist& nl) : nl_(&nl), values_(nl.num_nets(), 0) {
  values_[nl.const1()] = 1;
  gates_.reserve(nl.num_gates());
  for (const GateId gid : nl.topo_order()) {
    const Gate& g = nl.gate(gid);
    FlatGate fg;
    for (std::size_t p = 0; p < fg.fanin.size(); ++p) {
      fg.fanin[p] = g.fanin[p] == kInvalidNet ? nl.const0() : g.fanin[p];
    }
    fg.fanout = g.fanout;
    const LogicFn fn = nl.lib().cell(g.cell).fn;
    fg.tt = 0;
    for (unsigned m = 0; m < 8; ++m) {
      if (fn_eval(fn, m)) fg.tt |= static_cast<std::uint8_t>(1u << m);
    }
    gates_.push_back(fg);
  }
}

void FuncSim::set_input(NetId net, bool value) {
  if (nl_->driver(net) != kInvalidGate || nl_->is_constant(net)) {
    throw std::invalid_argument("FuncSim::set_input: net is not a primary input");
  }
  values_[net] = value ? 1 : 0;
}

void FuncSim::set_bus(const std::string& bus, std::uint64_t value) {
  const auto& nets = nl_->input_bus(bus);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const bool bit = i < 64 && ((value >> i) & 1u) != 0;
    if (nl_->is_constant(nets[i])) continue;  // truncated LSBs stay constant
    values_[nets[i]] = bit ? 1 : 0;
  }
}

void FuncSim::eval() {
  char* const v = values_.data();
  for (const FlatGate& g : gates_) {
    const unsigned mask = static_cast<unsigned>(v[g.fanin[0]]) |
                          (static_cast<unsigned>(v[g.fanin[1]]) << 1) |
                          (static_cast<unsigned>(v[g.fanin[2]]) << 2);
    v[g.fanout] = static_cast<char>((g.tt >> mask) & 1u);
  }
}

bool FuncSim::value(NetId net) const {
  if (net >= values_.size()) throw std::out_of_range("FuncSim::value");
  return values_[net] != 0;
}

std::uint64_t FuncSim::bus_value(const std::string& output_bus) const {
  return word_value(nl_->output_bus(output_bus));
}

std::uint64_t FuncSim::word_value(const std::vector<NetId>& nets) const {
  if (nets.size() > 64) throw std::invalid_argument("word_value: bus too wide");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (values_[nets[i]]) v |= std::uint64_t{1} << i;
  }
  return v;
}

}  // namespace aapx
