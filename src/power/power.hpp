// Power analysis from simulated switching activity.
//
// Mirrors the paper's Synopsys-based power flow: leakage is weighted by the
// probabilistic input-state distribution (independence approximation over
// per-net duty cycles), dynamic power integrates 1/2*C*Vdd^2 over the toggle
// counts the timed simulator recorded (glitches included), and boundary
// registers add their clock and data contributions.
#pragma once

#include "gatesim/timedsim.hpp"
#include "netlist/netlist.hpp"

namespace aapx {

struct PowerOptions {
  double vdd = 1.1;            ///< V
  std::size_t num_registers = 0;  ///< boundary flip-flops owned by the block
  double register_activity = 0.25;///< average D/Q toggle probability per cycle
};

struct PowerReport {
  double leakage_nw = 0.0;     ///< total leakage, nW
  double dynamic_uw = 0.0;     ///< switching power at 1/t_clock, uW
  double total_uw = 0.0;       ///< leakage + dynamic, uW
  double energy_per_cycle_fj = 0.0;  ///< total energy per clock cycle, fJ
};

/// Computes the report for one combinational block given its activity and
/// the clock period it runs at.
PowerReport analyze_power(const Netlist& nl, const Activity& activity,
                          double t_clock_ps, const PowerOptions& options = {});

}  // namespace aapx
