#include "power/power.hpp"

#include <stdexcept>

namespace aapx {

PowerReport analyze_power(const Netlist& nl, const Activity& activity,
                          double t_clock_ps, const PowerOptions& options) {
  if (t_clock_ps <= 0.0) {
    throw std::invalid_argument("analyze_power: t_clock must be positive");
  }
  if (activity.toggles.size() != nl.num_nets()) {
    throw std::invalid_argument("analyze_power: activity size mismatch");
  }
  PowerReport report;

  // --- leakage: state-probability-weighted over each gate's input space ----
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(static_cast<GateId>(g));
    const Cell& cell = nl.lib().cell(gate.cell);
    const int pins = cell.num_inputs();
    double duty[3] = {0.0, 0.0, 0.0};
    for (int p = 0; p < pins; ++p) {
      const NetId in = gate.fanin[static_cast<std::size_t>(p)];
      if (in == nl.const1()) {
        duty[p] = 1.0;
      } else if (in == nl.const0()) {
        duty[p] = 0.0;
      } else {
        duty[p] = activity.cycles > 0 ? activity.duty_high(in) : 0.5;
      }
    }
    double leak = 0.0;
    const unsigned states = 1u << pins;
    for (unsigned s = 0; s < states; ++s) {
      double prob = 1.0;
      for (int p = 0; p < pins; ++p) {
        const bool high = (s >> p) & 1u;
        prob *= high ? duty[p] : 1.0 - duty[p];
      }
      leak += prob * cell.leakage_per_state[s];
    }
    report.leakage_nw += leak;
  }
  report.leakage_nw +=
      nl.lib().dff().leakage * static_cast<double>(options.num_registers);

  // --- dynamic: 1/2 C Vdd^2 per net transition ------------------------------
  const double v2 = options.vdd * options.vdd;
  double switched_energy_fj = 0.0;  // per cycle; fF * V^2 = fJ
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (nl.is_constant(n)) continue;
    const double rate = activity.toggle_rate(n);
    if (rate == 0.0) continue;
    // Net load plus the driving stage's internal/self capacitance.
    double cap = nl.net_load(n);
    const GateId d = nl.driver(n);
    if (d != kInvalidGate) {
      cap += 0.5 * nl.lib().cell(nl.gate(d).cell).drive;
    }
    switched_energy_fj += 0.5 * cap * v2 * rate;
  }
  // Boundary registers: clock pin toggles twice per cycle, data per activity.
  const DffSpec& dff = nl.lib().dff();
  switched_energy_fj += static_cast<double>(options.num_registers) *
                        (0.5 * dff.cap_per_bit * v2 *
                         (2.0 * 0.5 + options.register_activity));

  // fJ per cycle over ps -> mW; convert to uW.
  report.dynamic_uw = switched_energy_fj / t_clock_ps * 1000.0;
  report.total_uw = report.dynamic_uw + report.leakage_nw / 1000.0;
  report.energy_per_cycle_fj =
      switched_energy_fj + report.leakage_nw / 1000.0 * t_clock_ps / 1000.0;
  return report;
}

}  // namespace aapx
