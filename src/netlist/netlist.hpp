// Gate-level netlist: the synthesized form of every RTL component.
//
// A netlist is a DAG of library gates over nets. Primary inputs and outputs
// are named and may be grouped into buses (LSB-first), which is how the
// arithmetic generators expose operands and results. Two constant nets
// (const0/const1) exist from construction; tying an input bus's LSBs to
// const0 is exactly the paper's precision-reduction mechanism, after which
// constant propagation shrinks the logic (see src/synth/passes).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cell/library.hpp"

namespace aapx {

using NetId = std::uint32_t;
using GateId = std::uint32_t;
inline constexpr NetId kInvalidNet = static_cast<NetId>(-1);
inline constexpr GateId kInvalidGate = static_cast<GateId>(-1);

struct Gate {
  CellId cell = kInvalidCell;
  std::array<NetId, 3> fanin{kInvalidNet, kInvalidNet, kInvalidNet};
  NetId fanout = kInvalidNet;
};

/// A (gate, pin) endpoint reading a net.
struct NetReader {
  GateId gate;
  int pin;
};

class Netlist {
 public:
  explicit Netlist(const CellLibrary& lib);

  const CellLibrary& lib() const noexcept { return *lib_; }

  // --- construction -------------------------------------------------------
  NetId add_net();
  NetId add_input(std::string name);
  std::vector<NetId> add_input_bus(const std::string& name, int width);
  void mark_output(NetId net, std::string name);
  void mark_output_bus(std::span<const NetId> nets, const std::string& name);

  /// Instantiates `cell`; returns the freshly created output net.
  NetId add_gate(CellId cell, std::span<const NetId> inputs);

  /// Instantiates `cell` driving an existing net. The net must be driverless
  /// and must not be a primary input or constant. Used by netlist parsers,
  /// which know the wire names before they see the drivers.
  GateId add_gate_driving(CellId cell, std::span<const NetId> inputs,
                          NetId output);

  /// Convenience: instantiate the smallest cell implementing `fn`.
  NetId mk(LogicFn fn, NetId a);
  NetId mk(LogicFn fn, NetId a, NetId b);
  NetId mk(LogicFn fn, NetId a, NetId b, NetId c);

  NetId const0() const noexcept { return 0; }
  NetId const1() const noexcept { return 1; }
  bool is_constant(NetId net) const noexcept { return net <= 1; }

  // --- topology -----------------------------------------------------------
  std::size_t num_nets() const noexcept { return net_driver_.size(); }
  std::size_t num_gates() const noexcept { return gates_.size(); }
  const Gate& gate(GateId id) const;
  int gate_num_inputs(GateId id) const;

  /// Swaps a gate's cell for another implementation of the same function
  /// (drive-strength change). Topology is unchanged.
  void set_gate_cell(GateId id, CellId cell);

  /// Gate driving `net`, or kInvalidGate for PIs/constants.
  GateId driver(NetId net) const;
  const std::vector<NetReader>& readers(NetId net) const;

  const std::vector<NetId>& inputs() const noexcept { return inputs_; }
  const std::vector<NetId>& outputs() const noexcept { return outputs_; }

  /// Index of `net` within inputs(), or kInvalidNet if it is not a primary
  /// input. O(1): maintained at add_input time so bus staging in the
  /// simulators does not scan the PI list per bit.
  NetId pi_index(NetId net) const {
    return net < pi_index_.size() ? pi_index_[net] : kInvalidNet;
  }
  const std::string& input_name(std::size_t i) const { return input_names_[i]; }
  const std::string& output_name(std::size_t i) const { return output_names_[i]; }

  /// Input/output bus by name; throws if unknown. Nets are LSB-first.
  const std::vector<NetId>& input_bus(const std::string& name) const;
  const std::vector<NetId>& output_bus(const std::string& name) const;
  bool has_input_bus(const std::string& name) const;
  std::vector<std::string> input_bus_names() const;
  std::vector<std::string> output_bus_names() const;

  /// Registers an externally built bus grouping over existing input nets
  /// (used by transforms that rewrite bus members to constants).
  void set_input_bus(const std::string& name, std::vector<NetId> nets);

  /// Registers an output bus grouping without re-marking the member nets as
  /// outputs (they must already be marked via mark_output).
  void set_output_bus(const std::string& name, std::vector<NetId> nets);

  /// Gates in topological order (drivers before readers). Cached; invalidated
  /// by construction calls.
  const std::vector<GateId>& topo_order() const;

  /// Sum of pin capacitance of all readers of `net` [fF], plus a wire-cap
  /// estimate proportional to fanout count.
  double net_load(NetId net) const;

  /// Wire capacitance added per fanout pin [fF].
  static constexpr double kWireCapPerFanout = 0.35;

 private:
  const CellLibrary* lib_;
  std::vector<Gate> gates_;
  std::vector<GateId> net_driver_;
  std::vector<std::vector<NetReader>> net_readers_;
  std::vector<NetId> inputs_;
  std::vector<std::string> input_names_;
  std::vector<NetId> pi_index_;  ///< per net: index into inputs_ or kInvalidNet
  std::vector<NetId> outputs_;
  std::vector<std::string> output_names_;
  std::unordered_map<std::string, std::vector<NetId>> input_buses_;
  std::unordered_map<std::string, std::vector<NetId>> output_buses_;
  mutable std::vector<GateId> topo_cache_;
};

}  // namespace aapx
