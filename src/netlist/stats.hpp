// Netlist bookkeeping: area, cell-mix histogram and size summary.
#pragma once

#include <map>
#include <string>

#include "netlist/netlist.hpp"

namespace aapx {

struct NetlistStats {
  std::size_t gates = 0;
  std::size_t nets = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  double cell_area = 0.0;               ///< um^2, combinational cells only
  std::map<std::string, std::size_t> cell_histogram;
};

NetlistStats compute_stats(const Netlist& nl);

/// Total area including `num_registers` boundary flip-flops.
double total_area(const Netlist& nl, std::size_t num_registers = 0);

}  // namespace aapx
