#include "netlist/stats.hpp"

namespace aapx {

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats stats;
  stats.gates = nl.num_gates();
  stats.nets = nl.num_nets();
  stats.inputs = nl.inputs().size();
  stats.outputs = nl.outputs().size();
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    const Cell& cell = nl.lib().cell(nl.gate(static_cast<GateId>(g)).cell);
    stats.cell_area += cell.area;
    ++stats.cell_histogram[cell.name];
  }
  return stats;
}

double total_area(const Netlist& nl, std::size_t num_registers) {
  return compute_stats(nl).cell_area +
         nl.lib().dff().area * static_cast<double>(num_registers);
}

}  // namespace aapx
