// Graphviz export for inspecting small netlists in docs and debugging.
#pragma once

#include <iosfwd>

#include "netlist/netlist.hpp"

namespace aapx {

/// Writes the netlist as a Graphviz digraph. Intended for small components;
/// emits a node per gate and edges along nets.
void write_dot(const Netlist& nl, std::ostream& os, const std::string& title);

}  // namespace aapx
