#include "netlist/verilog.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace aapx {
namespace {

// --- writing ---------------------------------------------------------------

/// Splits "a[3]" into ("a", 3); returns index -1 for scalar names.
std::pair<std::string, int> split_indexed(const std::string& name) {
  const std::size_t lb = name.find('[');
  if (lb == std::string::npos || name.back() != ']') return {name, -1};
  return {name.substr(0, lb),
          std::stoi(name.substr(lb + 1, name.size() - lb - 2))};
}

std::string net_ref(const Netlist& nl, NetId net,
                    const std::map<NetId, std::string>& pi_names) {
  if (net == nl.const0()) return "1'b0";
  if (net == nl.const1()) return "1'b1";
  const auto it = pi_names.find(net);
  if (it != pi_names.end()) return it->second;
  return "n" + std::to_string(net);
}

}  // namespace

void write_verilog(const Netlist& nl, std::ostream& os,
                   const std::string& module_name) {
  std::map<NetId, std::string> pi_names;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    pi_names[nl.inputs()[i]] = nl.input_name(i);
  }

  // Ports: group bused names, keep declaration order stable.
  std::vector<std::string> port_order;
  std::map<std::string, int> port_width;  // name -> width (0 = scalar)
  auto note_port = [&](const std::string& full_name) {
    const auto [base, index] = split_indexed(full_name);
    if (port_width.find(base) == port_width.end()) {
      port_order.push_back(base);
      port_width[base] = 0;
    }
    if (index >= 0) {
      port_width[base] = std::max(port_width[base], index + 1);
    }
  };
  std::vector<std::string> input_bases;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) note_port(nl.input_name(i));
  input_bases = port_order;
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) note_port(nl.output_name(i));

  os << "module " << module_name << " (";
  for (std::size_t i = 0; i < port_order.size(); ++i) {
    os << (i > 0 ? ", " : "") << port_order[i];
  }
  os << ");\n";
  for (const std::string& base : port_order) {
    const bool is_input =
        std::find(input_bases.begin(), input_bases.end(), base) !=
        input_bases.end();
    os << "  " << (is_input ? "input" : "output");
    if (port_width[base] > 0) os << " [" << port_width[base] - 1 << ":0]";
    os << ' ' << base << ";\n";
  }

  if (nl.num_gates() > 0) {
    os << "  wire";
    bool first = true;
    for (std::size_t g = 0; g < nl.num_gates(); ++g) {
      const NetId out = nl.gate(static_cast<GateId>(g)).fanout;
      os << (first ? " " : ", ") << "n" << out;
      first = false;
    }
    os << ";\n";
  }

  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(static_cast<GateId>(g));
    const Cell& cell = nl.lib().cell(gate.cell);
    os << "  " << cell.name << " g" << g << " (";
    for (int p = 0; p < cell.num_inputs(); ++p) {
      os << ".A" << p << '('
         << net_ref(nl, gate.fanin[static_cast<std::size_t>(p)], pi_names)
         << "), ";
    }
    os << ".Y(n" << gate.fanout << "));\n";
  }

  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    os << "  assign " << nl.output_name(i) << " = "
       << net_ref(nl, nl.outputs()[i], pi_names) << ";\n";
  }
  os << "endmodule\n";
}

namespace {

// --- parsing ---------------------------------------------------------------

[[noreturn]] void vfail(int line, const std::string& message) {
  throw std::runtime_error("verilog:" + std::to_string(line) + ": " + message);
}

class VLexer {
 public:
  explicit VLexer(std::istream& is) {
    src_.assign(std::istreambuf_iterator<char>(is), {});
  }

  /// Next token: identifier/number-like chunk or single symbol; empty at EOF.
  std::string next() {
    skip();
    token_line_ = line_;
    if (pos_ >= src_.size()) return {};
    const char c = src_[pos_];
    if (std::strchr("()[];,.=:", c) != nullptr) {
      ++pos_;
      return std::string(1, c);
    }
    std::string tok;
    while (pos_ < src_.size()) {
      const char ch = src_[pos_];
      if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
          ch == '\'') {
        tok += ch;
        ++pos_;
      } else {
        break;
      }
    }
    if (tok.empty()) {
      vfail(line_, std::string("unexpected character '") + c + "'");
    }
    return tok;
  }

  /// Line the most recently returned token started on.
  int token_line() const noexcept { return token_line_; }

 private:
  void skip() {
    while (pos_ < src_.size()) {
      if (std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      } else if (src_[pos_] == '/' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (src_[pos_] == '/' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '*') {
        const std::size_t end = src_.find("*/", pos_ + 2);
        if (end == std::string::npos) {
          vfail(line_, "open comment");
        }
        for (std::size_t i = pos_; i < end; ++i) {
          if (src_[i] == '\n') ++line_;
        }
        pos_ = end + 2;
      } else {
        break;
      }
    }
  }

  std::string src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int token_line_ = 1;
};

class VParser {
 public:
  VParser(std::istream& is, const CellLibrary& lib) : lexer_(is), lib_(&lib) {}

  Netlist parse() {
    Netlist nl(*lib_);
    expect("module");
    (void)token();  // module name
    expect("(");
    while (peek() != ")") {
      (void)token();  // port name
      if (peek() == ",") (void)token();
    }
    expect(")");
    expect(";");

    struct OutputBit {
      std::string name;
      NetId net;
    };
    std::vector<OutputBit> outputs;
    std::map<std::string, std::vector<NetId>> output_buses;
    std::map<std::string, NetId> assigns_pending;  // output bit -> rhs net

    for (std::string tok = token(); tok != "endmodule"; tok = token()) {
      if (tok == "input" || tok == "output") {
        const bool is_input = tok == "input";
        int width = 0;  // 0 = scalar
        if (peek() == "[") {
          (void)token();
          width = number("bus msb") + 1;
          expect(":");
          if (token() != "0") vfail(line(), "bus lsb must be 0");
          expect("]");
        }
        while (true) {
          const std::string name = token();
          if (is_input) {
            if (width == 0) {
              nets_[name] = nl.add_input(name);
            } else {
              const auto bus = nl.add_input_bus(name, width);
              for (int i = 0; i < width; ++i) {
                nets_[name + "[" + std::to_string(i) + "]"] =
                    bus[static_cast<std::size_t>(i)];
              }
            }
          } else {
            const int bits = width == 0 ? 1 : width;
            for (int i = 0; i < bits; ++i) {
              const std::string bit_name =
                  width == 0 ? name : name + "[" + std::to_string(i) + "]";
              const NetId net = nl.add_net();
              nets_[bit_name] = net;
              outputs.push_back({bit_name, net});
              if (width > 0) output_buses[name].push_back(net);
            }
          }
          if (peek() == ",") {
            (void)token();
            continue;
          }
          break;
        }
        expect(";");
      } else if (tok == "wire") {
        while (true) {
          const std::string name = token();
          nets_[name] = nl.add_net();
          if (peek() == ",") {
            (void)token();
            continue;
          }
          break;
        }
        expect(";");
      } else if (tok == "assign") {
        const std::string lhs = resolve_name();
        expect("=");
        const NetId rhs = resolve_net(nl);
        expect(";");
        assigns_pending[lhs] = rhs;
      } else {
        // Cell instance: CELLNAME instname ( .PIN(net), ... ) ;
        const auto cell = lib_->find(tok);
        if (!cell.has_value()) {
          vfail(line(), "unknown cell or keyword " + tok);
        }
        (void)token();  // instance name
        expect("(");
        std::map<std::string, NetId> pins;
        while (peek() != ")") {
          expect(".");
          const std::string pin = token();
          expect("(");
          pins[pin] = resolve_net(nl);
          expect(")");
          if (peek() == ",") (void)token();
        }
        expect(")");
        expect(";");
        const int num_ins = lib_->cell(*cell).num_inputs();
        std::vector<NetId> ins;
        for (int p = 0; p < num_ins; ++p) {
          const auto it = pins.find("A" + std::to_string(p));
          if (it == pins.end()) {
            vfail(line(), "missing pin A" + std::to_string(p) + " on " + tok);
          }
          ins.push_back(it->second);
        }
        const auto y = pins.find("Y");
        if (y == pins.end()) vfail(line(), "missing pin Y on " + tok);
        nl.add_gate_driving(*cell, ins, y->second);
      }
    }

    // Resolve outputs: direct drivers win; otherwise follow the alias assign.
    std::map<std::string, std::vector<NetId>> final_buses;
    for (const OutputBit& out : outputs) {
      NetId net = out.net;
      if (nl.driver(net) == kInvalidGate) {
        const auto it = assigns_pending.find(out.name);
        if (it == assigns_pending.end()) {
          vfail(line(), "undriven output " + out.name);
        }
        net = it->second;
      }
      nl.mark_output(net, out.name);
      const auto [base, index] = split_indexed(out.name);
      if (index >= 0) final_buses[base].push_back(net);
    }
    for (auto& [name, bus] : final_buses) nl.set_output_bus(name, bus);
    return nl;
  }

 private:
  std::string token() {
    if (!lookahead_.empty()) {
      std::string t = std::move(lookahead_);
      lookahead_.clear();
      line_ = lookahead_line_;
      return t;
    }
    const std::string t = lexer_.next();
    line_ = lexer_.token_line();
    if (t.empty()) vfail(line_, "unexpected end of file");
    return t;
  }

  const std::string& peek() {
    if (lookahead_.empty()) {
      lookahead_ = lexer_.next();
      lookahead_line_ = lexer_.token_line();
    }
    return lookahead_;
  }

  /// Line of the most recently consumed token.
  int line() const noexcept { return line_; }

  void expect(const std::string& s) {
    const std::string t = token();
    if (t != s) {
      vfail(line_, "expected '" + s + "', got '" + t + "'");
    }
  }

  /// Reads a token that must be an unsigned decimal number.
  int number(const char* what) {
    const std::string t = token();
    if (t.empty() ||
        t.find_first_not_of("0123456789") != std::string::npos ||
        t.size() > 9) {
      vfail(line_, std::string("bad ") + what + " '" + t + "'");
    }
    return std::stoi(t);
  }

  /// Reads an identifier, optionally followed by [index].
  std::string resolve_name() {
    std::string name = token();
    if (peek() == "[") {
      (void)token();
      name += "[" + std::to_string(number("bit index")) + "]";
      expect("]");
    }
    return name;
  }

  NetId resolve_net(Netlist& nl) {
    const std::string name = resolve_name();
    if (name == "1'b0") return nl.const0();
    if (name == "1'b1") return nl.const1();
    const auto it = nets_.find(name);
    if (it == nets_.end()) {
      vfail(line_, "unknown net " + name);
    }
    return it->second;
  }

  VLexer lexer_;
  const CellLibrary* lib_;
  std::string lookahead_;
  int line_ = 1;
  int lookahead_line_ = 1;
  std::map<std::string, NetId> nets_;
};

}  // namespace

Netlist parse_verilog(std::istream& is, const CellLibrary& lib) {
  return VParser(is, lib).parse();
}

}  // namespace aapx
