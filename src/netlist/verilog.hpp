// Structural Verilog interchange for gate-level netlists.
//
// The synthesized netlists the flow produces are what a real project would
// hand to downstream tools (simulation, P&R) as structural Verilog. The
// writer emits a flat gate-level module over the library cells; the parser
// accepts the same subset (module, input/output with ranges, wire, cell
// instances with named connections, assign aliases, 1'b0/1'b1 constants),
// so netlists survive a round trip.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace aapx {

/// Writes `nl` as a flat structural Verilog module.
void write_verilog(const Netlist& nl, std::ostream& os,
                   const std::string& module_name);

/// Parses a module produced by write_verilog against `lib` (cells are looked
/// up by instance type name). Throws std::runtime_error on malformed input
/// or unknown cells.
Netlist parse_verilog(std::istream& is, const CellLibrary& lib);

}  // namespace aapx
