#include "netlist/netlist.hpp"

#include <stdexcept>

namespace aapx {

Netlist::Netlist(const CellLibrary& lib) : lib_(&lib) {
  // Nets 0 and 1 are the constant-0 and constant-1 rails.
  add_net();
  add_net();
}

NetId Netlist::add_net() {
  net_driver_.push_back(kInvalidGate);
  net_readers_.emplace_back();
  pi_index_.push_back(kInvalidNet);
  topo_cache_.clear();
  return static_cast<NetId>(net_driver_.size() - 1);
}

NetId Netlist::add_input(std::string name) {
  const NetId net = add_net();
  pi_index_[net] = static_cast<NetId>(inputs_.size());
  inputs_.push_back(net);
  input_names_.push_back(std::move(name));
  return net;
}

std::vector<NetId> Netlist::add_input_bus(const std::string& name, int width) {
  if (width <= 0) throw std::invalid_argument("add_input_bus: width must be > 0");
  std::vector<NetId> bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.push_back(add_input(name + "[" + std::to_string(i) + "]"));
  }
  input_buses_[name] = bus;
  return bus;
}

void Netlist::mark_output(NetId net, std::string name) {
  if (net >= num_nets()) throw std::out_of_range("mark_output: bad net");
  outputs_.push_back(net);
  output_names_.push_back(std::move(name));
}

void Netlist::mark_output_bus(std::span<const NetId> nets, const std::string& name) {
  std::vector<NetId> bus(nets.begin(), nets.end());
  for (std::size_t i = 0; i < bus.size(); ++i) {
    mark_output(bus[i], name + "[" + std::to_string(i) + "]");
  }
  output_buses_[name] = std::move(bus);
}

NetId Netlist::add_gate(CellId cell, std::span<const NetId> ins) {
  const NetId out = add_net();
  add_gate_driving(cell, ins, out);
  return out;
}

GateId Netlist::add_gate_driving(CellId cell, std::span<const NetId> ins,
                                 NetId output) {
  const Cell& c = lib_->cell(cell);
  const int pins = c.num_inputs();
  if (static_cast<int>(ins.size()) != pins) {
    throw std::invalid_argument("add_gate: pin count mismatch for " + c.name);
  }
  if (output >= num_nets() || is_constant(output)) {
    throw std::invalid_argument("add_gate_driving: bad output net");
  }
  if (net_driver_[output] != kInvalidGate) {
    throw std::invalid_argument("add_gate_driving: output already driven");
  }
  for (const NetId pi : inputs_) {
    if (pi == output) {
      throw std::invalid_argument("add_gate_driving: output is a primary input");
    }
  }
  Gate g;
  g.cell = cell;
  for (int p = 0; p < pins; ++p) {
    if (ins[static_cast<std::size_t>(p)] >= num_nets()) {
      throw std::out_of_range("add_gate: unknown input net");
    }
    g.fanin[static_cast<std::size_t>(p)] = ins[static_cast<std::size_t>(p)];
  }
  g.fanout = output;
  const auto gid = static_cast<GateId>(gates_.size());
  gates_.push_back(g);
  net_driver_[output] = gid;
  for (int p = 0; p < pins; ++p) {
    net_readers_[ins[static_cast<std::size_t>(p)]].push_back({gid, p});
  }
  topo_cache_.clear();
  return gid;
}

NetId Netlist::mk(LogicFn fn, NetId a) {
  const NetId ins[] = {a};
  return add_gate(lib_->smallest(fn), ins);
}
NetId Netlist::mk(LogicFn fn, NetId a, NetId b) {
  const NetId ins[] = {a, b};
  return add_gate(lib_->smallest(fn), ins);
}
NetId Netlist::mk(LogicFn fn, NetId a, NetId b, NetId c) {
  const NetId ins[] = {a, b, c};
  return add_gate(lib_->smallest(fn), ins);
}

const Gate& Netlist::gate(GateId id) const {
  if (id >= gates_.size()) throw std::out_of_range("Netlist::gate");
  return gates_[id];
}

int Netlist::gate_num_inputs(GateId id) const {
  return lib_->cell(gate(id).cell).num_inputs();
}

void Netlist::set_gate_cell(GateId id, CellId cell) {
  if (id >= gates_.size()) throw std::out_of_range("Netlist::set_gate_cell");
  if (lib_->cell(cell).fn != lib_->cell(gates_[id].cell).fn) {
    throw std::invalid_argument(
        "Netlist::set_gate_cell: replacement implements a different function");
  }
  gates_[id].cell = cell;
}

GateId Netlist::driver(NetId net) const {
  if (net >= num_nets()) throw std::out_of_range("Netlist::driver");
  return net_driver_[net];
}

const std::vector<NetReader>& Netlist::readers(NetId net) const {
  if (net >= num_nets()) throw std::out_of_range("Netlist::readers");
  return net_readers_[net];
}

const std::vector<NetId>& Netlist::input_bus(const std::string& name) const {
  const auto it = input_buses_.find(name);
  if (it == input_buses_.end()) {
    throw std::out_of_range("Netlist::input_bus: unknown bus " + name);
  }
  return it->second;
}

const std::vector<NetId>& Netlist::output_bus(const std::string& name) const {
  const auto it = output_buses_.find(name);
  if (it == output_buses_.end()) {
    throw std::out_of_range("Netlist::output_bus: unknown bus " + name);
  }
  return it->second;
}

bool Netlist::has_input_bus(const std::string& name) const {
  return input_buses_.count(name) != 0;
}

std::vector<std::string> Netlist::input_bus_names() const {
  std::vector<std::string> names;
  names.reserve(input_buses_.size());
  for (const auto& [name, nets] : input_buses_) names.push_back(name);
  return names;
}

std::vector<std::string> Netlist::output_bus_names() const {
  std::vector<std::string> names;
  names.reserve(output_buses_.size());
  for (const auto& [name, nets] : output_buses_) names.push_back(name);
  return names;
}

void Netlist::set_input_bus(const std::string& name, std::vector<NetId> nets) {
  input_buses_[name] = std::move(nets);
}

void Netlist::set_output_bus(const std::string& name, std::vector<NetId> nets) {
  output_buses_[name] = std::move(nets);
}

const std::vector<GateId>& Netlist::topo_order() const {
  if (!topo_cache_.empty() || gates_.empty()) return topo_cache_;
  std::vector<int> pending(gates_.size(), 0);
  std::vector<GateId> ready;
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    int unresolved = 0;
    const int pins = lib_->cell(gates_[g].cell).num_inputs();
    for (int p = 0; p < pins; ++p) {
      const NetId in = gates_[g].fanin[static_cast<std::size_t>(p)];
      if (net_driver_[in] != kInvalidGate) ++unresolved;
    }
    pending[g] = unresolved;
    if (unresolved == 0) ready.push_back(static_cast<GateId>(g));
  }
  topo_cache_.reserve(gates_.size());
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const GateId g = ready[head];
    topo_cache_.push_back(g);
    for (const NetReader& r : net_readers_[gates_[g].fanout]) {
      if (--pending[r.gate] == 0) ready.push_back(r.gate);
    }
  }
  if (topo_cache_.size() != gates_.size()) {
    topo_cache_.clear();
    throw std::logic_error("Netlist::topo_order: combinational cycle detected");
  }
  return topo_cache_;
}

double Netlist::net_load(NetId net) const {
  const auto& rs = readers(net);
  double load = kWireCapPerFanout * static_cast<double>(rs.size());
  for (const NetReader& r : rs) {
    load += lib_->cell(gates_[r.gate].cell).pin_cap;
  }
  return load;
}

}  // namespace aapx
