#include "netlist/dot.hpp"

#include <ostream>

namespace aapx {

void write_dot(const Netlist& nl, std::ostream& os, const std::string& title) {
  os << "digraph \"" << title << "\" {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    os << "  pi" << nl.inputs()[i] << " [shape=triangle,label=\""
       << nl.input_name(i) << "\"];\n";
  }
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(static_cast<GateId>(g));
    os << "  g" << g << " [shape=box,label=\"" << nl.lib().cell(gate.cell).name
       << "\"];\n";
  }
  auto endpoint = [&](NetId net) {
    const GateId d = nl.driver(net);
    if (d != kInvalidGate) return "g" + std::to_string(d);
    if (net == nl.const0()) return std::string("const0");
    if (net == nl.const1()) return std::string("const1");
    return "pi" + std::to_string(net);
  };
  bool used_c0 = false;
  bool used_c1 = false;
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(static_cast<GateId>(g));
    const int pins = nl.gate_num_inputs(static_cast<GateId>(g));
    for (int p = 0; p < pins; ++p) {
      const NetId in = gate.fanin[static_cast<std::size_t>(p)];
      used_c0 |= in == nl.const0();
      used_c1 |= in == nl.const1();
      os << "  " << endpoint(in) << " -> g" << g << ";\n";
    }
  }
  if (used_c0) os << "  const0 [shape=plaintext,label=\"0\"];\n";
  if (used_c1) os << "  const1 [shape=plaintext,label=\"1\"];\n";
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    os << "  po" << i << " [shape=invtriangle,label=\"" << nl.output_name(i)
       << "\"];\n";
    os << "  " << endpoint(nl.outputs()[i]) << " -> po" << i << ";\n";
  }
  os << "}\n";
}

}  // namespace aapx
