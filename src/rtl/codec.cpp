#include "rtl/codec.hpp"

#include <cmath>
#include <stdexcept>

namespace aapx {
namespace {

std::array<std::array<std::int64_t, kDctBlock>, kDctBlock> make_coeff_table(
    int frac_bits) {
  std::array<std::array<std::int64_t, kDctBlock>, kDctBlock> coeff{};
  const double scale = static_cast<double>(std::int64_t{1} << frac_bits);
  for (int k = 0; k < kDctBlock; ++k) {
    for (int n = 0; n < kDctBlock; ++n) {
      coeff[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)] =
          std::llround(dct_basis(k, n) * scale);
    }
  }
  return coeff;
}

void check_config(const CodecConfig& cfg) {
  if (cfg.width <= 8 || cfg.width > 32) {
    throw std::invalid_argument("CodecConfig: width must be in (8, 32]");
  }
  if (cfg.frac_bits <= 0 || cfg.frac_bits >= cfg.width - 2) {
    throw std::invalid_argument("CodecConfig: bad frac_bits");
  }
  if (cfg.quant_step <= 0.0) {
    throw std::invalid_argument("CodecConfig: bad quant_step");
  }
}

/// Product in Q(2*frac) -> Q(frac) with round-to-nearest.
std::int64_t shift_product(std::int64_t p, int frac_bits) {
  return (p + (std::int64_t{1} << (frac_bits - 1))) >> frac_bits;
}

}  // namespace

QuantizedImage encode_and_quantize(const Image& img, const CodecConfig& cfg) {
  check_config(cfg);
  const BlockImage coeffs = encode_image(img);
  QuantizedImage q;
  q.width = coeffs.width;
  q.height = coeffs.height;
  q.blocks_x = coeffs.blocks_x;
  q.blocks_y = coeffs.blocks_y;
  q.quant_step = cfg.quant_step;
  q.blocks.reserve(coeffs.blocks.size());
  for (const DctBlock& blk : coeffs.blocks) {
    std::array<std::int32_t, kDctBlock * kDctBlock> levels{};
    for (std::size_t i = 0; i < blk.size(); ++i) {
      levels[i] = static_cast<std::int32_t>(std::llround(blk[i] / cfg.quant_step));
    }
    q.blocks.push_back(levels);
  }
  return q;
}

FixedPointIdct::FixedPointIdct(const CodecConfig& cfg, ArithBackend& backend)
    : cfg_(cfg), backend_(&backend), coeff_(make_coeff_table(cfg.frac_bits)) {
  check_config(cfg);
  if (backend.width() != cfg.width) {
    throw std::invalid_argument("FixedPointIdct: backend width mismatch");
  }
}

std::array<std::int64_t, kDctBlock> FixedPointIdct::transform_vector(
    const std::array<std::int64_t, kDctBlock>& x, bool inverse) const {
  std::array<std::int64_t, kDctBlock> y{};
  for (int out = 0; out < kDctBlock; ++out) {
    std::int64_t acc = 0;
    for (int in = 0; in < kDctBlock; ++in) {
      const std::int64_t c =
          inverse ? coeff_[static_cast<std::size_t>(in)][static_cast<std::size_t>(out)]
                  : coeff_[static_cast<std::size_t>(out)][static_cast<std::size_t>(in)];
      const std::int64_t p = backend_->multiply(c, x[static_cast<std::size_t>(in)]);
      acc = backend_->add(acc, shift_product(p, cfg_.frac_bits));
    }
    y[static_cast<std::size_t>(out)] = acc;
  }
  return y;
}

std::array<std::int64_t, kDctBlock * kDctBlock> FixedPointIdct::decode_block(
    const std::array<std::int32_t, kDctBlock * kDctBlock>& levels) const {
  const std::int64_t step_q =
      std::llround(cfg_.quant_step *
                   static_cast<double>(std::int64_t{1} << cfg_.frac_bits));
  std::array<std::int64_t, kDctBlock * kDctBlock> data{};
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::int64_t>(levels[i]) * step_q;  // dequantize, Q(frac)
  }
  // Rows, then columns (operating on the transposed intermediate).
  std::array<std::int64_t, kDctBlock * kDctBlock> tmp{};
  for (int row = 0; row < kDctBlock; ++row) {
    std::array<std::int64_t, kDctBlock> v{};
    for (int i = 0; i < kDctBlock; ++i) v[static_cast<std::size_t>(i)] =
        data[static_cast<std::size_t>(row * kDctBlock + i)];
    const auto t = transform_vector(v, true);
    for (int i = 0; i < kDctBlock; ++i) {
      tmp[static_cast<std::size_t>(i * kDctBlock + row)] =
          t[static_cast<std::size_t>(i)];  // store transposed
    }
  }
  std::array<std::int64_t, kDctBlock * kDctBlock> out{};
  for (int row = 0; row < kDctBlock; ++row) {
    std::array<std::int64_t, kDctBlock> v{};
    for (int i = 0; i < kDctBlock; ++i) v[static_cast<std::size_t>(i)] =
        tmp[static_cast<std::size_t>(row * kDctBlock + i)];
    const auto t = transform_vector(v, true);
    for (int i = 0; i < kDctBlock; ++i) {
      out[static_cast<std::size_t>(i * kDctBlock + row)] =
          t[static_cast<std::size_t>(i)];  // transpose back
    }
  }
  return out;
}

Image FixedPointIdct::decode(const QuantizedImage& q) const {
  Image img(q.width, q.height);
  const std::int64_t half = std::int64_t{1} << (cfg_.frac_bits - 1);
  for (int by = 0; by < q.blocks_y; ++by) {
    for (int bx = 0; bx < q.blocks_x; ++bx) {
      const auto& levels =
          q.blocks[static_cast<std::size_t>(by) * static_cast<std::size_t>(q.blocks_x) +
                   static_cast<std::size_t>(bx)];
      const auto spatial = decode_block(levels);
      for (int y = 0; y < kDctBlock; ++y) {
        for (int x = 0; x < kDctBlock; ++x) {
          const int px = bx * kDctBlock + x;
          const int py = by * kDctBlock + y;
          if (px >= q.width || py >= q.height) continue;
          const std::int64_t v =
              ((spatial[static_cast<std::size_t>(y * kDctBlock + x)] + half) >>
               cfg_.frac_bits) +
              128;
          // B3 clamp block: saturate to the 8-bit pixel range.
          img.set_clamped(px, py, static_cast<int>(v));
        }
      }
    }
  }
  return img;
}

FixedPointDct::FixedPointDct(const CodecConfig& cfg, ArithBackend& backend)
    : cfg_(cfg), backend_(&backend), coeff_(make_coeff_table(cfg.frac_bits)) {
  check_config(cfg);
  if (backend.width() != cfg.width) {
    throw std::invalid_argument("FixedPointDct: backend width mismatch");
  }
}

std::array<std::int64_t, kDctBlock> FixedPointDct::transform_vector(
    const std::array<std::int64_t, kDctBlock>& x) const {
  std::array<std::int64_t, kDctBlock> y{};
  for (int k = 0; k < kDctBlock; ++k) {
    std::int64_t acc = 0;
    for (int n = 0; n < kDctBlock; ++n) {
      const std::int64_t p = backend_->multiply(
          coeff_[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)],
          x[static_cast<std::size_t>(n)]);
      acc = backend_->add(acc, shift_product(p, cfg_.frac_bits));
    }
    y[static_cast<std::size_t>(k)] = acc;
  }
  return y;
}

QuantizedImage FixedPointDct::encode(const Image& img) const {
  QuantizedImage q;
  q.width = img.width();
  q.height = img.height();
  q.blocks_x = (img.width() + kDctBlock - 1) / kDctBlock;
  q.blocks_y = (img.height() + kDctBlock - 1) / kDctBlock;
  q.quant_step = cfg_.quant_step;
  const double denom =
      cfg_.quant_step * static_cast<double>(std::int64_t{1} << cfg_.frac_bits);
  for (int by = 0; by < q.blocks_y; ++by) {
    for (int bx = 0; bx < q.blocks_x; ++bx) {
      std::array<std::int64_t, kDctBlock * kDctBlock> data{};
      for (int y = 0; y < kDctBlock; ++y) {
        for (int x = 0; x < kDctBlock; ++x) {
          const int px = std::min(bx * kDctBlock + x, img.width() - 1);
          const int py = std::min(by * kDctBlock + y, img.height() - 1);
          data[static_cast<std::size_t>(y * kDctBlock + x)] =
              (static_cast<std::int64_t>(img.at(px, py)) - 128)
              << cfg_.frac_bits;
        }
      }
      // Rows then columns, as in the inverse path.
      std::array<std::int64_t, kDctBlock * kDctBlock> tmp{};
      for (int row = 0; row < kDctBlock; ++row) {
        std::array<std::int64_t, kDctBlock> v{};
        for (int i = 0; i < kDctBlock; ++i) v[static_cast<std::size_t>(i)] =
            data[static_cast<std::size_t>(row * kDctBlock + i)];
        const auto t = transform_vector(v);
        for (int i = 0; i < kDctBlock; ++i) {
          tmp[static_cast<std::size_t>(i * kDctBlock + row)] =
              t[static_cast<std::size_t>(i)];
        }
      }
      std::array<std::int32_t, kDctBlock * kDctBlock> levels{};
      for (int row = 0; row < kDctBlock; ++row) {
        std::array<std::int64_t, kDctBlock> v{};
        for (int i = 0; i < kDctBlock; ++i) v[static_cast<std::size_t>(i)] =
            tmp[static_cast<std::size_t>(row * kDctBlock + i)];
        const auto t = transform_vector(v);
        for (int i = 0; i < kDctBlock; ++i) {
          levels[static_cast<std::size_t>(i * kDctBlock + row)] =
              static_cast<std::int32_t>(std::llround(
                  static_cast<double>(t[static_cast<std::size_t>(i)]) / denom));
        }
      }
      q.blocks.push_back(levels);
    }
  }
  return q;
}

}  // namespace aapx
