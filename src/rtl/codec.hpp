// RTL-level fixed-point DCT / IDCT codec (the paper's image processing
// microarchitecture).
//
// Datapath organization, mirroring the paper's Sec. V/VI study object:
//   B1  multiplier  : 32x32 -> 64, coefficient x data, product >> frac_bits
//   B2  accumulator : 32-bit adder accumulating the 8 MAC terms
//   B3  clamp       : saturate the reconstructed pixel to [0, 255]
// Registers sit between blocks, so per-block arithmetic backends compose
// exactly. The 2-D transform is the standard row-column decomposition of
// 8x8 blocks; coefficients and data use Q(frac_bits) fixed point.
//
// The encoder additionally quantizes coefficients with a uniform step
// (default 4), which sets the fresh-chain PSNR at the paper's ~45 dB level.
#pragma once

#include <array>
#include <cstdint>

#include "image/dct_ref.hpp"
#include "rtl/backend.hpp"

namespace aapx {

struct CodecConfig {
  int width = 32;       ///< datapath bit width
  int frac_bits = 14;   ///< fixed-point fraction bits (Q14)
  double quant_step = 4.0;  ///< encoder coefficient quantization step
};

/// Quantized integer coefficients of an image (levels, not reconstructed).
struct QuantizedImage {
  int width = 0;
  int height = 0;
  int blocks_x = 0;
  int blocks_y = 0;
  double quant_step = 4.0;
  std::vector<std::array<std::int32_t, kDctBlock * kDctBlock>> blocks;
};

/// Encodes with the floating-point reference DCT, then quantizes.
QuantizedImage encode_and_quantize(const Image& img, const CodecConfig& cfg);

/// Fixed-point 2-D IDCT microarchitecture; all multiplies and adds go
/// through the backend (exact-approximate or gate-timed).
class FixedPointIdct {
 public:
  FixedPointIdct(const CodecConfig& cfg, ArithBackend& backend);

  /// Decodes an entire quantized image to pixels.
  Image decode(const QuantizedImage& q) const;

  /// Decodes one 8x8 block of quantized levels to spatial Q(frac) values.
  std::array<std::int64_t, kDctBlock * kDctBlock> decode_block(
      const std::array<std::int32_t, kDctBlock * kDctBlock>& levels) const;

 private:
  std::array<std::int64_t, kDctBlock> transform_vector(
      const std::array<std::int64_t, kDctBlock>& x, bool inverse) const;

  CodecConfig cfg_;
  ArithBackend* backend_;
  /// Q(frac_bits) basis coefficients c[k][n].
  std::array<std::array<std::int64_t, kDctBlock>, kDctBlock> coeff_;
};

/// Fixed-point forward DCT through a backend (used to age the encoder in the
/// Fig. 2 quality-collapse experiment).
class FixedPointDct {
 public:
  FixedPointDct(const CodecConfig& cfg, ArithBackend& backend);

  QuantizedImage encode(const Image& img) const;

 private:
  std::array<std::int64_t, kDctBlock> transform_vector(
      const std::array<std::int64_t, kDctBlock>& x) const;

  CodecConfig cfg_;
  ArithBackend* backend_;
  std::array<std::array<std::int64_t, kDctBlock>, kDctBlock> coeff_;
};

}  // namespace aapx
