// Arithmetic backends for RTL simulation.
//
// The RTL codec models compute through one of these:
//  * ExactBackend        — bit-accurate two's complement arithmetic with the
//    paper's LSB truncation applied to operands (deterministic
//    approximation). This is the paper's "RTL simulation": seconds per
//    image, quality loss entirely from the *approximation*.
//  * TimedNetlistBackend — every operation is evaluated by the event-driven
//    gate-level simulator on the synthesized component netlist with aged
//    delays, and the *sampled-at-clock* (possibly wrong) result is returned.
//    This is the paper's ModelSim gate-level flow and exhibits the
//    nondeterministic aging-induced timing errors of Figs. 1-2.
//  * RecordingBackend    — delegates to another backend while recording the
//    multiplier operand stream, used to extract application stimuli for
//    actual-case aging characterization (paper Fig. 3c).
//
// Composing per-component timed simulations at register boundaries is exact
// for the paper's microarchitecture because every block is separated by
// registers (see DESIGN.md Sec. 2).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "gatesim/timedsim.hpp"
#include "netlist/netlist.hpp"

namespace aapx {

/// Two's complement wrap of `v` to `bits` bits, returned sign-extended.
std::int64_t wrap_signed(std::int64_t v, int bits);

class ArithBackend {
 public:
  virtual ~ArithBackend() = default;

  /// width x width -> 2*width two's complement product.
  virtual std::int64_t multiply(std::int64_t a, std::int64_t b) = 0;

  /// width + width -> width two's complement sum (wrapping).
  virtual std::int64_t add(std::int64_t a, std::int64_t b) = 0;

  virtual int width() const = 0;
};

/// Deterministic approximation: truncation of operand LSBs, exact otherwise.
class ExactBackend final : public ArithBackend {
 public:
  ExactBackend(int width, int mult_truncated_bits, int add_truncated_bits);

  std::int64_t multiply(std::int64_t a, std::int64_t b) override;
  std::int64_t add(std::int64_t a, std::int64_t b) override;
  int width() const override { return width_; }

 private:
  int width_;
  int mult_trunc_;
  int add_trunc_;
};

/// Range of output-bus bits a downstream consumer actually reads. A fixed-
/// point datapath that wraps the product to `width` bits after a right shift
/// only consumes product bits [frac, frac + width); constraining and
/// checking just those bits models the real register boundary.
struct ObservedWindow {
  int lo = 0;
  int count = -1;  ///< -1 = the whole bus
};

/// Gate-accurate timed evaluation with timing-error capture.
class TimedNetlistBackend final : public ArithBackend {
 public:
  /// `mult` must expose buses a, b -> y; `adder` buses a, b -> y.
  /// `t_clock_ps` is the sampling clock; delays carry the aging.
  TimedNetlistBackend(const Netlist& mult, Sta::GateDelays mult_delays,
                      const Netlist& adder, Sta::GateDelays adder_delays,
                      int width, double t_clock_ps,
                      DelayModel model = DelayModel::transport,
                      ObservedWindow mult_window = {});

  std::int64_t multiply(std::int64_t a, std::int64_t b) override;
  std::int64_t add(std::int64_t a, std::int64_t b) override;
  int width() const override { return width_; }

  std::uint64_t mult_errors() const noexcept { return mult_errors_; }
  std::uint64_t add_errors() const noexcept { return add_errors_; }
  std::uint64_t mult_ops() const noexcept { return mult_ops_; }
  std::uint64_t add_ops() const noexcept { return add_ops_; }

  /// Worst observed output settling times across all operations — used to
  /// speed-bin the fresh design's clock before injecting aged delays.
  double max_mult_settle() const noexcept { return max_mult_settle_; }
  double max_add_settle() const noexcept { return max_add_settle_; }

  TimedSim& mult_sim() noexcept { return mult_sim_; }
  TimedSim& adder_sim() noexcept { return adder_sim_; }

 private:
  const Netlist* mult_;
  const Netlist* adder_;
  TimedSim mult_sim_;
  TimedSim adder_sim_;
  int width_;
  double t_clock_;
  ObservedWindow mult_window_;
  std::uint64_t mult_errors_ = 0;
  std::uint64_t add_errors_ = 0;
  std::uint64_t mult_ops_ = 0;
  std::uint64_t add_ops_ = 0;
  double max_mult_settle_ = 0.0;
  double max_add_settle_ = 0.0;
};

/// Records the operand stream feeding the multiplier (and optionally adds).
class RecordingBackend final : public ArithBackend {
 public:
  explicit RecordingBackend(ArithBackend& inner);

  std::int64_t multiply(std::int64_t a, std::int64_t b) override;
  std::int64_t add(std::int64_t a, std::int64_t b) override;
  int width() const override { return inner_->width(); }

  const std::vector<std::pair<std::int64_t, std::int64_t>>& mult_ops() const {
    return mult_ops_;
  }
  const std::vector<std::pair<std::int64_t, std::int64_t>>& add_ops() const {
    return add_ops_;
  }

 private:
  ArithBackend* inner_;
  std::vector<std::pair<std::int64_t, std::int64_t>> mult_ops_;
  std::vector<std::pair<std::int64_t, std::int64_t>> add_ops_;
};

}  // namespace aapx
