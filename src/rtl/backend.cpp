#include "rtl/backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "approx/error_bounds.hpp"
#include "engine/context.hpp"

namespace aapx {

std::int64_t wrap_signed(std::int64_t v, int bits) {
  if (bits <= 0 || bits > 64) throw std::invalid_argument("wrap_signed: bad bits");
  if (bits == 64) return v;
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
  if (u & (std::uint64_t{1} << (bits - 1))) u |= ~mask;  // sign-extend
  return static_cast<std::int64_t>(u);
}

ExactBackend::ExactBackend(int width, int mult_truncated_bits,
                           int add_truncated_bits)
    : width_(width), mult_trunc_(mult_truncated_bits), add_trunc_(add_truncated_bits) {
  if (width <= 1 || width > 32) {
    throw std::invalid_argument("ExactBackend: width must be in (1, 32]");
  }
  if (mult_trunc_ < 0 || mult_trunc_ >= width || add_trunc_ < 0 ||
      add_trunc_ >= width) {
    throw std::invalid_argument("ExactBackend: truncation out of range");
  }
}

std::int64_t ExactBackend::multiply(std::int64_t a, std::int64_t b) {
  const std::int64_t ta = truncate_lsbs(wrap_signed(a, width_), mult_trunc_);
  const std::int64_t tb = truncate_lsbs(wrap_signed(b, width_), mult_trunc_);
  return wrap_signed(ta * tb, 2 * width_);
}

std::int64_t ExactBackend::add(std::int64_t a, std::int64_t b) {
  const std::int64_t ta = truncate_lsbs(wrap_signed(a, width_), add_trunc_);
  const std::int64_t tb = truncate_lsbs(wrap_signed(b, width_), add_trunc_);
  return wrap_signed(ta + tb, width_);
}

TimedNetlistBackend::TimedNetlistBackend(const Netlist& mult,
                                         Sta::GateDelays mult_delays,
                                         const Netlist& adder,
                                         Sta::GateDelays adder_delays, int width,
                                         double t_clock_ps, DelayModel model,
                                         ObservedWindow mult_window)
    : mult_(&mult),
      adder_(&adder),
      mult_sim_(mult, std::move(mult_delays), model),
      adder_sim_(adder, std::move(adder_delays), model),
      width_(width),
      t_clock_(t_clock_ps),
      mult_window_(mult_window) {
  if (width <= 1 || width > 32) {
    throw std::invalid_argument("TimedNetlistBackend: width must be in (1, 32]");
  }
  if (t_clock_ps <= 0.0) {
    throw std::invalid_argument("TimedNetlistBackend: bad clock period");
  }
}

std::int64_t TimedNetlistBackend::multiply(std::int64_t a, std::int64_t b) {
  // One gate-level simulation is the cooperative cancellation grain of every
  // sim-heavy workload (image benches, faultsim campaigns). Backends are
  // constructed without a Context, so the check goes against the
  // process-default one — exactly the token the bench/CLI signal handlers
  // arm; an untripped check is two relaxed loads, invisible next to an
  // event-driven multiply.
  Context::process_default().check_cancelled("gatesim.multiply");
  const std::uint64_t mask = width_ == 64 ? ~std::uint64_t{0}
                                          : (std::uint64_t{1} << width_) - 1;
  mult_sim_.stage_bus("a", static_cast<std::uint64_t>(a) & mask);
  mult_sim_.stage_bus("b", static_cast<std::uint64_t>(b) & mask);
  mult_sim_.step_staged(t_clock_);
  ++mult_ops_;
  // Only the observed bit window gates the error count and the settle time:
  // unconsumed product bits never reach a register in the real datapath.
  const auto& y = mult_->output_bus("y");
  const std::size_t lo = static_cast<std::size_t>(mult_window_.lo);
  const std::size_t hi = mult_window_.count < 0
                             ? y.size()
                             : std::min(y.size(),
                                        lo + static_cast<std::size_t>(
                                                 mult_window_.count));
  bool error = false;
  for (std::size_t i = lo; i < hi; ++i) {
    max_mult_settle_ = std::max(max_mult_settle_, mult_sim_.settle_time(y[i]));
    if (mult_sim_.sampled(y[i]) != mult_sim_.settled(y[i])) error = true;
  }
  if (error) ++mult_errors_;
  return wrap_signed(static_cast<std::int64_t>(mult_sim_.sampled_bus("y")),
                     2 * width_);
}

std::int64_t TimedNetlistBackend::add(std::int64_t a, std::int64_t b) {
  Context::process_default().check_cancelled("gatesim.add");
  const std::uint64_t mask = (std::uint64_t{1} << width_) - 1;
  adder_sim_.stage_bus("a", static_cast<std::uint64_t>(a) & mask);
  adder_sim_.stage_bus("b", static_cast<std::uint64_t>(b) & mask);
  const bool error = adder_sim_.step_staged(t_clock_);
  ++add_ops_;
  if (error) ++add_errors_;
  max_add_settle_ = std::max(max_add_settle_, adder_sim_.last_output_settle_time());
  // The adder output bus has width+1 bits; wrap to the datapath width.
  return wrap_signed(static_cast<std::int64_t>(adder_sim_.sampled_bus("y")), width_);
}

RecordingBackend::RecordingBackend(ArithBackend& inner) : inner_(&inner) {}

std::int64_t RecordingBackend::multiply(std::int64_t a, std::int64_t b) {
  mult_ops_.emplace_back(a, b);
  return inner_->multiply(a, b);
}

std::int64_t RecordingBackend::add(std::int64_t a, std::int64_t b) {
  add_ops_.emplace_back(a, b);
  return inner_->add(a, b);
}

}  // namespace aapx
