#include "sta/sta.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "engine/context.hpp"
#include "obs/metrics.hpp"
#include "obs/runlog.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace aapx {
namespace {

constexpr double kNeverArrives = -std::numeric_limits<double>::infinity();

/// Back-pointer for critical-path extraction: which input pin and input
/// transition produced a net's worst rise/fall arrival.
struct Origin {
  GateId gate = kInvalidGate;
  int pin = -1;
  bool input_rising = false;
};

}  // namespace

double StaResult::net_arrival(NetId net) const {
  const double r = arrival_rise[net];
  const double f = arrival_fall[net];
  const double worst = std::max(r, f);
  return worst == kNeverArrives ? 0.0 : worst;
}

Sta::Sta(const Netlist& nl, StaOptions options, const Context* ctx)
    : nl_(&nl), options_(options) {
  obs::MetricsRegistry& registry =
      ctx != nullptr ? ctx->metrics() : obs::metrics();
  fresh_runs_ = &registry.counter("sta.fresh_runs");
  aged_runs_ = &registry.counter("sta.aged_runs");
  runlog_ = ctx != nullptr ? &ctx->runlog() : &obs::RunLog::instance();
}

StaResult Sta::run_fresh() const { return run(nullptr, nullptr); }

StaResult Sta::run_aged(const DegradationAwareLibrary& aged,
                        const StressProfile& stress) const {
  if (stress.gate_count() != nl_->num_gates()) {
    throw std::invalid_argument("Sta::run_aged: stress profile size mismatch");
  }
  return run(&aged, &stress);
}

Sta::GateDelays Sta::gate_delays(const DegradationAwareLibrary* aged,
                                 const StressProfile* stress) const {
  const Netlist& nl = *nl_;
  GateDelays gd;
  gd.rise.reserve(nl.num_gates());
  gd.fall.reserve(nl.num_gates());
  const double slew = options_.primary_input_slew;
  std::vector<char> is_po(nl.num_nets(), 0);
  for (const NetId po : nl.outputs()) is_po[po] = 1;
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    const auto gid = static_cast<GateId>(g);
    const Gate& gate = nl.gate(gid);
    const Cell& cell = nl.lib().cell(gate.cell);
    // Primary outputs additionally drive the next pipeline stage's registers.
    double load = nl.net_load(gate.fanout);
    if (is_po[gate.fanout]) load += options_.primary_output_load;

    double rise_factor = 1.0;
    double fall_factor = 1.0;
    if (aged != nullptr && stress != nullptr) {
      const StressPair sp = stress->gate(gid);
      rise_factor = aged->rise_factor(gate.cell, sp);
      fall_factor = aged->fall_factor(gate.cell, sp);
    }
    double rise = 0.0;
    double fall = 0.0;
    for (const TimingArc& arc : cell.arcs) {
      rise = std::max(rise, arc.rise_delay.lookup(slew, load));
      fall = std::max(fall, arc.fall_delay.lookup(slew, load));
    }
    gd.rise.push_back(rise * rise_factor);
    gd.fall.push_back(fall * fall_factor);
  }
  return gd;
}

StaResult Sta::run(const DegradationAwareLibrary* aged,
                   const StressProfile* stress) const {
  obs::Span span("sta.run");
  (aged != nullptr ? aged_runs_ : fresh_runs_)->add();

  const Netlist& nl = *nl_;
  const std::size_t nets = nl.num_nets();

  // STA and the event-driven simulator share one delay model (per gate and
  // transition direction, at a nominal boundary slew). This makes the STA
  // max delay a strict upper bound on any simulated settling time, which is
  // the property behind paper Eq. 1: tCP <= tclock implies no timing errors.
  const GateDelays gd = gate_delays(aged, stress);

  StaResult res;
  res.arrival_rise.assign(nets, kNeverArrives);
  res.arrival_fall.assign(nets, kNeverArrives);
  std::vector<Origin> origin_rise(nets);
  std::vector<Origin> origin_fall(nets);

  for (const NetId pi : nl.inputs()) {
    res.arrival_rise[pi] = 0.0;
    res.arrival_fall[pi] = 0.0;
  }

  for (const GateId gid : nl.topo_order()) {
    const Gate& g = nl.gate(gid);
    const int pins = nl.gate_num_inputs(gid);
    for (int p = 0; p < pins; ++p) {
      const NetId in = g.fanin[static_cast<std::size_t>(p)];
      // Non-unate treatment: either input transition may cause either output
      // transition; take the worst combination per output edge.
      for (const bool input_rising : {false, true}) {
        const double in_arr =
            input_rising ? res.arrival_rise[in] : res.arrival_fall[in];
        if (in_arr == kNeverArrives) continue;
        const double a_rise = in_arr + gd.rise[gid];
        if (a_rise > res.arrival_rise[g.fanout]) {
          res.arrival_rise[g.fanout] = a_rise;
          origin_rise[g.fanout] = {gid, p, input_rising};
        }
        const double a_fall = in_arr + gd.fall[gid];
        if (a_fall > res.arrival_fall[g.fanout]) {
          res.arrival_fall[g.fanout] = a_fall;
          origin_fall[g.fanout] = {gid, p, input_rising};
        }
      }
    }
  }

  res.output_delay.reserve(nl.outputs().size());
  res.max_delay = 0.0;
  res.critical_output = 0;
  bool critical_rising = true;
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    const NetId po = nl.outputs()[i];
    const double r = res.arrival_rise[po];
    const double f = res.arrival_fall[po];
    const double worst = std::max({r, f, 0.0});
    res.output_delay.push_back(worst);
    if (worst > res.max_delay) {
      res.max_delay = worst;
      res.critical_output = i;
      critical_rising = r >= f;
    }
  }

  // Critical-path walk-back from the worst output.
  if (res.max_delay > 0.0 && !nl.outputs().empty()) {
    NetId net = nl.outputs()[res.critical_output];
    bool rising = critical_rising;
    while (true) {
      const Origin& o = rising ? origin_rise[net] : origin_fall[net];
      if (o.gate == kInvalidGate) break;
      const double arrival = rising ? res.arrival_rise[net] : res.arrival_fall[net];
      res.critical_path.push_back({o.gate, o.pin, rising, arrival});
      net = nl.gate(o.gate).fanin[static_cast<std::size_t>(o.pin)];
      rising = o.input_rising;
    }
    std::reverse(res.critical_path.begin(), res.critical_path.end());
  }

  // Serial-spine queries only: runs launched from parallel_for workers stay
  // out of the log so its byte content is independent of the thread count
  // (the serial fallback marks the region too, so 1 thread matches N).
  obs::RunLog& log = *runlog_;
  if (log.enabled() && !in_parallel_region()) {
    obs::JsonWriter w;
    w.field("kind", aged != nullptr ? "aged" : "fresh")
        .field("gates", static_cast<std::uint64_t>(nl.num_gates()))
        .field("max_delay_ps", res.max_delay);
    log.emit("sta_query", w);
  }
  return res;
}

}  // namespace aapx
