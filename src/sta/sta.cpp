#include "sta/sta.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string_view>

#include "engine/context.hpp"
#include "obs/metrics.hpp"
#include "obs/runlog.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace aapx {
namespace {

constexpr double kNeverArrives = -std::numeric_limits<double>::infinity();

/// Back-pointer for critical-path extraction: which input pin and input
/// transition produced a net's worst rise/fall arrival.
struct Origin {
  GateId gate = kInvalidGate;
  int pin = -1;
  bool input_rising = false;
};

}  // namespace

double StaResult::net_arrival(NetId net) const {
  const double r = arrival_rise[net];
  const double f = arrival_fall[net];
  const double worst = std::max(r, f);
  return worst == kNeverArrives ? 0.0 : worst;
}

Sta::Sta(const Netlist& nl, StaOptions options, const Context* ctx)
    : nl_(&nl), options_(options) {
  obs::MetricsRegistry& registry =
      ctx != nullptr ? ctx->metrics() : obs::metrics();
  fresh_runs_ = &registry.counter("sta.fresh_runs");
  aged_runs_ = &registry.counter("sta.aged_runs");
  runlog_ = ctx != nullptr ? &ctx->runlog() : &obs::RunLog::instance();
  metrics_ = &registry;
}

StaResult Sta::run_fresh() const { return run(nullptr, nullptr); }

StaResult Sta::run_aged(const DegradationAwareLibrary& aged,
                        const StressProfile& stress) const {
  if (stress.gate_count() != nl_->num_gates()) {
    throw std::invalid_argument("Sta::run_aged: stress profile size mismatch");
  }
  return run(&aged, &stress);
}

Sta::GateDelays Sta::gate_delays(const DegradationAwareLibrary* aged,
                                 const StressProfile* stress) const {
  const Netlist& nl = *nl_;
  GateDelays gd;
  gd.rise.reserve(nl.num_gates());
  gd.fall.reserve(nl.num_gates());
  const double slew = options_.primary_input_slew;
  std::vector<char> is_po(nl.num_nets(), 0);
  for (const NetId po : nl.outputs()) is_po[po] = 1;
  // HCI drift is activity-driven, not duty-driven, so it cannot live in the
  // 11x11 stress-factor grids; it multiplies the fall factor per gate here.
  // The counter is resolved only for HCI-enabled models so that BTI-only
  // runs register no new metrics keys.
  const bool hci =
      aged != nullptr && stress != nullptr && aged->model().has_hci();
  obs::Counter* hci_evals =
      hci ? &metrics_->counter("aging.mechanism.hci.drift_evals") : nullptr;
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    const auto gid = static_cast<GateId>(g);
    const Gate& gate = nl.gate(gid);
    const Cell& cell = nl.lib().cell(gate.cell);
    // Primary outputs additionally drive the next pipeline stage's registers.
    double load = nl.net_load(gate.fanout);
    if (is_po[gate.fanout]) load += options_.primary_output_load;

    double rise_factor = 1.0;
    double fall_factor = 1.0;
    if (aged != nullptr && stress != nullptr) {
      const StressPair sp = stress->gate(gid);
      rise_factor = aged->rise_factor(gate.cell, sp);
      fall_factor = aged->fall_factor(gate.cell, sp);
      if (hci) {
        // HCI wears the nMOS pull-down network, so only output falls slow
        // down; the factor composes multiplicatively with the BTI grid's.
        const double dvth =
            aged->model().hci_delta_vth(stress->gate_activity(g),
                                        aged->years()) *
            cell.aging_sensitivity;
        fall_factor *= aged->model().delay_factor_from_dvth(dvth);
      }
    }
    double rise = 0.0;
    double fall = 0.0;
    for (const TimingArc& arc : cell.arcs) {
      rise = std::max(rise, arc.rise_delay.lookup(slew, load));
      fall = std::max(fall, arc.fall_delay.lookup(slew, load));
    }
    gd.rise.push_back(rise * rise_factor);
    gd.fall.push_back(fall * fall_factor);
  }
  if (hci_evals != nullptr) hci_evals->add(nl.num_gates());
  return gd;
}

StaResult Sta::run_truncated(const DegradationAwareLibrary* aged,
                             const StressProfile* stress,
                             const std::vector<NetId>& truncated_pis) const {
  if (aged != nullptr && stress != nullptr &&
      stress->gate_count() != nl_->num_gates()) {
    throw std::invalid_argument(
        "Sta::run_truncated: stress profile size mismatch");
  }
  std::vector<char> blocked(nl_->num_nets(), 0);
  for (const NetId pi : truncated_pis) {
    if (nl_->pi_index(pi) == kInvalidNet) {
      throw std::invalid_argument(
          "Sta::run_truncated: net is not a primary input");
    }
    blocked[pi] = 1;
  }
  return run_impl(aged, stress, &blocked);
}

StaResult Sta::run(const DegradationAwareLibrary* aged,
                   const StressProfile* stress) const {
  obs::Span span("sta.run");
  (aged != nullptr ? aged_runs_ : fresh_runs_)->add();
  StaResult res = run_impl(aged, stress, nullptr);

  // Serial-spine queries only: runs launched from parallel_for workers stay
  // out of the log so its byte content is independent of the thread count
  // (the serial fallback marks the region too, so 1 thread matches N).
  obs::RunLog& log = *runlog_;
  if (log.enabled() && !in_parallel_region()) {
    obs::JsonWriter w;
    w.field("kind", aged != nullptr ? "aged" : "fresh")
        .field("gates", static_cast<std::uint64_t>(nl_->num_gates()))
        .field("max_delay_ps", res.max_delay);
    log.emit("sta_query", w);
  }
  return res;
}

StaResult Sta::run_impl(const DegradationAwareLibrary* aged,
                        const StressProfile* stress,
                        const std::vector<char>* blocked) const {
  const Netlist& nl = *nl_;
  const std::size_t nets = nl.num_nets();

  // STA and the event-driven simulator share one delay model (per gate and
  // transition direction, at a nominal boundary slew). This makes the STA
  // max delay a strict upper bound on any simulated settling time, which is
  // the property behind paper Eq. 1: tCP <= tclock implies no timing errors.
  const GateDelays gd = gate_delays(aged, stress);

  StaResult res;
  res.arrival_rise.assign(nets, kNeverArrives);
  res.arrival_fall.assign(nets, kNeverArrives);
  std::vector<Origin> origin_rise(nets);
  std::vector<Origin> origin_fall(nets);

  for (const NetId pi : nl.inputs()) {
    if (blocked != nullptr && (*blocked)[pi] != 0) continue;  // never arrives
    res.arrival_rise[pi] = 0.0;
    res.arrival_fall[pi] = 0.0;
  }

  for (const GateId gid : nl.topo_order()) {
    const Gate& g = nl.gate(gid);
    const int pins = nl.gate_num_inputs(gid);
    for (int p = 0; p < pins; ++p) {
      const NetId in = g.fanin[static_cast<std::size_t>(p)];
      // Non-unate treatment: either input transition may cause either output
      // transition; take the worst combination per output edge.
      for (const bool input_rising : {false, true}) {
        const double in_arr =
            input_rising ? res.arrival_rise[in] : res.arrival_fall[in];
        if (in_arr == kNeverArrives) continue;
        const double a_rise = in_arr + gd.rise[gid];
        if (a_rise > res.arrival_rise[g.fanout]) {
          res.arrival_rise[g.fanout] = a_rise;
          origin_rise[g.fanout] = {gid, p, input_rising};
        }
        const double a_fall = in_arr + gd.fall[gid];
        if (a_fall > res.arrival_fall[g.fanout]) {
          res.arrival_fall[g.fanout] = a_fall;
          origin_fall[g.fanout] = {gid, p, input_rising};
        }
      }
    }
  }

  res.output_delay.reserve(nl.outputs().size());
  res.max_delay = 0.0;
  res.critical_output = 0;
  bool critical_rising = true;
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    const NetId po = nl.outputs()[i];
    const double r = res.arrival_rise[po];
    const double f = res.arrival_fall[po];
    const double worst = std::max({r, f, 0.0});
    res.output_delay.push_back(worst);
    if (worst > res.max_delay) {
      res.max_delay = worst;
      res.critical_output = i;
      critical_rising = r >= f;
    }
  }

  // Critical-path walk-back from the worst output.
  if (res.max_delay > 0.0 && !nl.outputs().empty()) {
    NetId net = nl.outputs()[res.critical_output];
    bool rising = critical_rising;
    while (true) {
      const Origin& o = rising ? origin_rise[net] : origin_fall[net];
      if (o.gate == kInvalidGate) break;
      const double arrival = rising ? res.arrival_rise[net] : res.arrival_fall[net];
      res.critical_path.push_back({o.gate, o.pin, rising, arrival});
      net = nl.gate(o.gate).fanin[static_cast<std::size_t>(o.pin)];
      rising = o.input_rising;
    }
    std::reverse(res.critical_path.begin(), res.critical_path.end());
  }
  return res;
}

IncrementalSta::IncrementalSta(const Netlist& nl, StaOptions options,
                               const Context* ctx)
    : nl_(&nl), sta_(nl, options, ctx) {
  const char* env = std::getenv("AAPX_STA_FULL");
  full_override_ =
      env != nullptr && *env != '\0' && std::string_view(env) != "0";
  obs::MetricsRegistry& registry =
      ctx != nullptr ? ctx->metrics() : obs::metrics();
  hits_ = &registry.counter("engine.sta.incremental.hits");
  dirty_gates_ = &registry.counter("engine.sta.incremental.dirty_gates");
  full_fallbacks_ = &registry.counter("engine.sta.incremental.full_fallbacks");
  mask_words_ = (nl.inputs().size() + 63) / 64;
  blocked_.assign(mask_words_, 0);
}

double IncrementalSta::max_delay(const DegradationAwareLibrary* aged,
                                 const StressProfile* stress,
                                 const std::vector<NetId>& truncated_pis) {
  if (aged != nullptr && stress != nullptr &&
      stress->gate_count() != nl_->num_gates()) {
    throw std::invalid_argument(
        "IncrementalSta: stress profile size mismatch");
  }
  std::vector<std::uint64_t> req(mask_words_, 0);
  for (const NetId pi : truncated_pis) {
    const NetId idx = nl_->pi_index(pi);
    if (idx == kInvalidNet) {
      throw std::invalid_argument(
          "IncrementalSta: net is not a primary input");
    }
    req[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }

  // Delay identity: equal (aged, stress) inputs yield bit-identical delay
  // vectors, so an exact compare detects a scenario switch without the
  // caller having to thread a scenario key through.
  Sta::GateDelays gd = sta_.gate_delays(aged, stress);
  const bool same_delays =
      valid_ && gd.rise == gd_.rise && gd.fall == gd_.fall;
  bool superset = same_delays;
  bool unchanged = same_delays;
  for (std::size_t w = 0; superset && w < mask_words_; ++w) {
    if ((blocked_[w] & ~req[w]) != 0) superset = false;
    if (req[w] != blocked_[w]) unchanged = false;
  }

  last_dirty_gates_ = 0;
  if (full_override_ || !superset) {
    full_fallbacks_->add();
    gd_ = std::move(gd);
    blocked_ = req;
    full_propagate();
    valid_ = true;
  } else if (unchanged) {
    hits_->add();  // served entirely from the cached arrivals
  } else {
    hits_->add();
    std::vector<std::uint64_t> dirty(mask_words_);
    for (std::size_t w = 0; w < mask_words_; ++w) {
      dirty[w] = req[w] & ~blocked_[w];
    }
    blocked_ = req;
    repropagate(dirty);
    dirty_gates_->add(last_dirty_gates_);
  }
  return max_delay_;
}

void IncrementalSta::build_masks() {
  const Netlist& nl = *nl_;
  // Per-net PI-dependency masks flow forward over the topo order; only the
  // per-gate masks are kept (the query loop tests gates, not nets).
  std::vector<std::uint64_t> net_mask(nl.num_nets() * mask_words_, 0);
  const std::vector<NetId>& pis = nl.inputs();
  for (std::size_t p = 0; p < pis.size(); ++p) {
    net_mask[pis[p] * mask_words_ + (p >> 6)] |= std::uint64_t{1} << (p & 63);
  }
  depends_.assign(nl.num_gates() * mask_words_, 0);
  for (const GateId gid : nl.topo_order()) {
    const Gate& g = nl.gate(gid);
    std::uint64_t* dep = &depends_[gid * mask_words_];
    const int pins = nl.gate_num_inputs(gid);
    for (int p = 0; p < pins; ++p) {
      const std::uint64_t* in =
          &net_mask[g.fanin[static_cast<std::size_t>(p)] * mask_words_];
      for (std::size_t w = 0; w < mask_words_; ++w) dep[w] |= in[w];
    }
    std::uint64_t* out = &net_mask[g.fanout * mask_words_];
    for (std::size_t w = 0; w < mask_words_; ++w) out[w] = dep[w];
  }
  masks_built_ = true;
}

void IncrementalSta::recompute_gate(GateId gid) {
  // Identical arithmetic and pin order to Sta::run_impl — a recomputed gate
  // whose fanin arrivals are bit-identical produces bit-identical outputs.
  const Netlist& nl = *nl_;
  const Gate& g = nl.gate(gid);
  double rise = kNeverArrives;
  double fall = kNeverArrives;
  const int pins = nl.gate_num_inputs(gid);
  for (int p = 0; p < pins; ++p) {
    const NetId in = g.fanin[static_cast<std::size_t>(p)];
    for (const bool input_rising : {false, true}) {
      const double in_arr =
          input_rising ? arrival_rise_[in] : arrival_fall_[in];
      if (in_arr == kNeverArrives) continue;
      rise = std::max(rise, in_arr + gd_.rise[gid]);
      fall = std::max(fall, in_arr + gd_.fall[gid]);
    }
  }
  arrival_rise_[g.fanout] = rise;
  arrival_fall_[g.fanout] = fall;
}

void IncrementalSta::full_propagate() {
  const Netlist& nl = *nl_;
  arrival_rise_.assign(nl.num_nets(), kNeverArrives);
  arrival_fall_.assign(nl.num_nets(), kNeverArrives);
  const std::vector<NetId>& pis = nl.inputs();
  for (std::size_t p = 0; p < pis.size(); ++p) {
    if ((blocked_[p >> 6] >> (p & 63)) & 1) continue;  // never arrives
    arrival_rise_[pis[p]] = 0.0;
    arrival_fall_[pis[p]] = 0.0;
  }
  for (const GateId gid : nl.topo_order()) recompute_gate(gid);
  reduce_outputs();
}

void IncrementalSta::repropagate(const std::vector<std::uint64_t>& dirty) {
  if (!masks_built_) build_masks();
  const Netlist& nl = *nl_;
  const std::vector<NetId>& pis = nl.inputs();
  for (std::size_t w = 0; w < mask_words_; ++w) {
    std::uint64_t bits = dirty[w];
    while (bits != 0) {
      const std::size_t p = (w << 6) + static_cast<std::size_t>(
                                           std::countr_zero(bits));
      bits &= bits - 1;
      arrival_rise_[pis[p]] = kNeverArrives;
      arrival_fall_[pis[p]] = kNeverArrives;
    }
  }
  // Dirty-cone invariant: a gate outside the union of the newly-truncated
  // PIs' cones has bit-identical fanin arrivals, so only cone members are
  // recomputed — in topo order, so dirty fanins settle before their readers.
  for (const GateId gid : nl.topo_order()) {
    const std::uint64_t* dep = &depends_[gid * mask_words_];
    bool in_cone = false;
    for (std::size_t w = 0; w < mask_words_; ++w) {
      if ((dep[w] & dirty[w]) != 0) {
        in_cone = true;
        break;
      }
    }
    if (!in_cone) continue;
    ++last_dirty_gates_;
    recompute_gate(gid);
  }
  reduce_outputs();
}

void IncrementalSta::reduce_outputs() {
  max_delay_ = 0.0;
  for (const NetId po : nl_->outputs()) {
    max_delay_ = std::max(
        {max_delay_, arrival_rise_[po], arrival_fall_[po]});
  }
}

}  // namespace aapx
