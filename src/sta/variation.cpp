#include "sta/variation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace aapx {
namespace {

/// Longest-path analysis over explicit per-gate delays — the same
/// rise/fall propagation the Sta uses, minus path extraction.
double max_delay_with(const Netlist& nl, const Sta::GateDelays& gd) {
  constexpr double kNever = -std::numeric_limits<double>::infinity();
  std::vector<double> rise(nl.num_nets(), kNever);
  std::vector<double> fall(nl.num_nets(), kNever);
  for (const NetId pi : nl.inputs()) {
    rise[pi] = 0.0;
    fall[pi] = 0.0;
  }
  for (const GateId gid : nl.topo_order()) {
    const Gate& g = nl.gate(gid);
    const int pins = nl.gate_num_inputs(gid);
    double worst_in = kNever;
    for (int p = 0; p < pins; ++p) {
      const NetId in = g.fanin[static_cast<std::size_t>(p)];
      worst_in = std::max({worst_in, rise[in], fall[in]});
    }
    if (worst_in == kNever) continue;
    rise[g.fanout] = std::max(rise[g.fanout], worst_in + gd.rise[gid]);
    fall[g.fanout] = std::max(fall[g.fanout], worst_in + gd.fall[gid]);
  }
  double max_delay = 0.0;
  for (const NetId po : nl.outputs()) {
    max_delay = std::max({max_delay, rise[po], fall[po]});
  }
  return max_delay;
}

}  // namespace

double VariationResult::mean() const {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double VariationResult::quantile(double q) const {
  if (samples.empty()) throw std::logic_error("VariationResult: empty");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q in [0,1]");
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

double VariationResult::guardband(double nominal, double q) const {
  return std::max(0.0, quantile(q) - nominal);
}

MonteCarloSta::MonteCarloSta(const Netlist& nl, VariationParams params,
                             StaOptions sta_options)
    : nl_(&nl), params_(params), sta_options_(sta_options) {
  if (params_.local_sigma < 0.0 || params_.global_sigma < 0.0) {
    throw std::invalid_argument("MonteCarloSta: negative sigma");
  }
}

VariationResult MonteCarloSta::run_fresh(int samples) const {
  const Sta sta(*nl_, sta_options_);
  return run(sta.gate_delays(nullptr, nullptr), samples);
}

VariationResult MonteCarloSta::run_aged(const DegradationAwareLibrary& aged,
                                        const StressProfile& stress,
                                        int samples) const {
  const Sta sta(*nl_, sta_options_);
  return run(sta.gate_delays(&aged, &stress), samples);
}

VariationResult MonteCarloSta::run(const Sta::GateDelays& base,
                                   int samples) const {
  if (samples <= 0) throw std::invalid_argument("MonteCarloSta: samples > 0");
  Rng rng(params_.seed);
  VariationResult result;
  const std::size_t n = static_cast<std::size_t>(samples);
  const std::size_t gates = base.rise.size();
  result.samples.resize(n);
  // Mean-one lognormal: exp(sigma*z - sigma^2/2).
  const auto lognormal = [&](double sigma) {
    return std::exp(sigma * rng.next_normal() - 0.5 * sigma * sigma);
  };
  // Factors are drawn serially in blocks — the RNG stream is consumed in
  // exactly the sequential order — then the longest-path analyses run in
  // parallel into index-owned slots, so the distribution is bit-identical
  // to a serial run at any thread count.
  constexpr std::size_t kBlock = 64;
  std::vector<double> factors;
  for (std::size_t first = 0; first < n; first += kBlock) {
    const std::size_t count = std::min(kBlock, n - first);
    factors.assign(count * gates, 1.0);
    for (std::size_t s = 0; s < count; ++s) {
      const double global = lognormal(params_.global_sigma);
      for (std::size_t g = 0; g < gates; ++g) {
        factors[s * gates + g] = global * lognormal(params_.local_sigma);
      }
    }
    parallel_for(count, [&](std::size_t s) {
      Sta::GateDelays die = base;
      for (std::size_t g = 0; g < gates; ++g) {
        die.rise[g] = base.rise[g] * factors[s * gates + g];
        die.fall[g] = base.fall[g] * factors[s * gates + g];
      }
      result.samples[first + s] = max_delay_with(*nl_, die);
    });
  }
  std::sort(result.samples.begin(), result.samples.end());
  return result;
}

}  // namespace aapx
