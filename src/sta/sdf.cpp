#include "sta/sdf.hpp"

#include <ostream>

namespace aapx {
namespace {

void write_file(const Netlist& nl, const DegradationAwareLibrary* aged,
                const StressProfile* stress, std::ostream& os,
                const SdfWriteOptions& options) {
  const Sta sta(nl, options.sta);
  const Sta::GateDelays gd = sta.gate_delays(aged, stress);

  os << "(DELAYFILE\n";
  os << "  (SDFVERSION \"3.0\")\n";
  os << "  (DESIGN \"" << options.design_name << "\")\n";
  os << "  (TIMESCALE 1ps)\n";
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    const auto gid = static_cast<GateId>(g);
    const Gate& gate = nl.gate(gid);
    const Cell& cell = nl.lib().cell(gate.cell);
    os << "  (CELL\n";
    os << "    (CELLTYPE \"" << cell.name << "\")\n";
    os << "    (INSTANCE g" << g << ")\n";
    os << "    (DELAY (ABSOLUTE\n";
    for (int p = 0; p < cell.num_inputs(); ++p) {
      // The simulator's per-gate delay model assigns one rise/fall pair per
      // gate (worst arc at the real load); every IOPATH carries it.
      os << "      (IOPATH A" << p << " Y (" << gd.rise[gid] << ") ("
         << gd.fall[gid] << "))\n";
    }
    os << "    ))\n";
    os << "  )\n";
  }
  os << ")\n";
}

}  // namespace

void write_sdf(const Netlist& nl, std::ostream& os,
               const SdfWriteOptions& options) {
  write_file(nl, nullptr, nullptr, os, options);
}

void write_aged_sdf(const Netlist& nl, const DegradationAwareLibrary& aged,
                    const StressProfile& stress, std::ostream& os,
                    const SdfWriteOptions& options) {
  write_file(nl, &aged, &stress, os, options);
}

}  // namespace aapx
