// SDF (Standard Delay Format) export of annotated gate delays.
//
// The paper's flow runs "gate-level simulations of the analyzed circuit
// under aging" by handing the STA's aged delays to ModelSim as an .sdf file.
// This writer produces the same artifact from our STA: one CELL entry per
// gate instance with IOPATH absolute delays per input pin, fresh or aged.
// Instance names match the Verilog writer's (g0, g1, ...), so the pair of
// files is a complete hand-off to an external simulator.
#pragma once

#include <iosfwd>
#include <string>

#include "cell/degradation.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace aapx {

struct SdfWriteOptions {
  std::string design_name = "aapx_design";
  StaOptions sta;
};

/// Writes fresh delays.
void write_sdf(const Netlist& nl, std::ostream& os,
               const SdfWriteOptions& options = {});

/// Writes aged delays for the given degradation library and stress profile.
void write_aged_sdf(const Netlist& nl, const DegradationAwareLibrary& aged,
                    const StressProfile& stress, std::ostream& os,
                    const SdfWriteOptions& options = {});

}  // namespace aapx
