// Monte-Carlo statistical timing under process variation.
//
// Real guardbands cover process variation as well as aging (paper Sec. I
// cites both as reliability costs). This module samples per-gate delay
// multipliers from a lognormal distribution (local/random variation) plus a
// global corner factor (die-to-die), runs the shared STA delay model per
// sample, and reports the resulting max-delay distribution. Combined with
// the degradation library it answers: how much of the combined
// variation+aging guardband can precision reduction absorb?
#pragma once

#include <vector>

#include "cell/degradation.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace aapx {

struct VariationParams {
  double local_sigma = 0.04;   ///< sigma of per-gate lognormal delay factor
  double global_sigma = 0.03;  ///< sigma of the per-die global factor
  std::uint64_t seed = 1;
};

struct VariationResult {
  std::vector<double> samples;  ///< max delay per Monte-Carlo die, sorted

  double mean() const;
  double quantile(double q) const;  ///< q in [0, 1]
  /// Guardband above `nominal` needed to cover quantile q of dies.
  double guardband(double nominal, double q) const;
};

class MonteCarloSta {
 public:
  MonteCarloSta(const Netlist& nl, VariationParams params = {},
                StaOptions sta_options = {});

  /// Fresh variation-only analysis over `samples` dies.
  VariationResult run_fresh(int samples) const;

  /// Variation on top of aged delays (stress applied uniformly per mode).
  VariationResult run_aged(const DegradationAwareLibrary& aged,
                           const StressProfile& stress, int samples) const;

 private:
  VariationResult run(const Sta::GateDelays& base, int samples) const;

  const Netlist* nl_;
  VariationParams params_;
  StaOptions sta_options_;
};

}  // namespace aapx
