// Static timing analysis with optional aging awareness.
//
// Arrival times and slews propagate in topological order through the NLDM
// tables, separately for rising and falling output transitions (arcs are
// treated as non-unate, the conservative convention for max-delay analysis).
// The aged variant multiplies each arc delay/slew by the degradation-aware
// library's factor for the gate's stress pair — the paper's "aging-aware STA"
// (Fig. 3b / Fig. 6).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "aging/stress.hpp"
#include "cell/degradation.hpp"
#include "netlist/netlist.hpp"

namespace aapx::obs {
class Counter;
class MetricsRegistry;
class RunLog;
}  // namespace aapx::obs

namespace aapx {

class Context;

struct StaOptions {
  double primary_input_slew = 20.0;  ///< ps, driven by boundary registers
  double primary_output_load = 4.0;  ///< fF, next-stage register D pins
};

/// One step of an extracted critical path.
struct PathStep {
  GateId gate;
  int input_pin;
  bool output_rising;
  double arrival;  ///< ps at the gate output
};

struct StaResult {
  /// Per-net worst arrival times [ps]; -inf for nets that never transition.
  std::vector<double> arrival_rise;
  std::vector<double> arrival_fall;

  double max_delay = 0.0;             ///< worst PO arrival (>= 0)
  std::size_t critical_output = 0;    ///< PO index achieving max_delay
  std::vector<PathStep> critical_path;  ///< PI-side first

  /// Worst arrival per primary output index (0 for constant outputs).
  std::vector<double> output_delay;

  double net_arrival(NetId net) const;
};

class Sta {
 public:
  /// `ctx` scopes the instrumentation sinks (run counters, sta_query log
  /// records); nullptr routes to the process-default registry/log, which is
  /// what existing call sites get. Timing results never depend on `ctx`.
  explicit Sta(const Netlist& nl, StaOptions options = {},
               const Context* ctx = nullptr);

  /// Fresh (no-aging) max-delay analysis — paper's t(noAging).
  StaResult run_fresh() const;

  /// Aging-aware analysis. The stress profile must cover every gate
  /// (uniform profiles for worst/balanced, measured profiles from simulation).
  StaResult run_aged(const DegradationAwareLibrary& aged,
                     const StressProfile& stress) const;

  /// Boundary-condition analysis: the given primary inputs are held constant
  /// ("truncated away"), so they never arrive and their exclusive fanout
  /// cones relax. This is the reference algorithm behind IncrementalSta and
  /// deliberately differs from analyzing a re-synthesized truncated netlist
  /// (which constant-propagates gates away and changes loads) — the
  /// DesignStore keys the two families separately. Pass aged == nullptr for
  /// fresh timing. Emits no run-log records and bumps no run counters: the
  /// store's truncated-delay family reports these queries warmth- and
  /// algorithm-invariantly.
  StaResult run_truncated(const DegradationAwareLibrary* aged,
                          const StressProfile* stress,
                          const std::vector<NetId>& truncated_pis) const;

  /// Per-gate aged delays for the event-driven simulator: worst rise/fall arc
  /// delay of each gate at its actual load and a nominal input slew.
  struct GateDelays {
    std::vector<double> rise;  ///< ps, indexed by GateId
    std::vector<double> fall;
  };
  GateDelays gate_delays(const DegradationAwareLibrary* aged,
                         const StressProfile* stress) const;

 private:
  StaResult run(const DegradationAwareLibrary* aged,
                const StressProfile* stress) const;
  /// Shared propagation core: `blocked` (per net, may be nullptr) marks
  /// primary inputs that never arrive. Pure — no logging, no counters.
  StaResult run_impl(const DegradationAwareLibrary* aged,
                     const StressProfile* stress,
                     const std::vector<char>* blocked) const;

  const Netlist* nl_;
  StaOptions options_;
  /// Instrumentation handles resolved once at construction against the
  /// context's sinks (a per-instance cache; never static, so each Context's
  /// registry sees its own sta.* counts).
  obs::Counter* fresh_runs_;
  obs::Counter* aged_runs_;
  obs::RunLog* runlog_;
  /// Kept for mechanism counters that must be registered lazily: BTI-only
  /// runs never look them up, so their metrics snapshots carry no new keys.
  obs::MetricsRegistry* metrics_;
};

/// Incremental cone-limited aged STA over ONE netlist (paper-flow use: the
/// characterizer's precision sweep, where point K+1 -> K only *adds* to the
/// set of truncated inputs).
///
/// Truncation is modeled as a boundary condition — truncated PIs never
/// arrive — so consecutive queries whose truncated set grows are answered by
/// re-propagating only the union of the newly-truncated PIs' fanout cones.
/// Cone membership is precomputed once per instance as per-gate PI-dependency
/// bitmasks over the topo order; a gate outside every dirty cone provably
/// keeps its arrival (its fanin arrivals are untouched), and gates inside are
/// recomputed in topo order from a mix of dirty and settled arrivals, which
/// reproduces the full propagation bit-exactly.
///
/// Queries that cannot be served incrementally — the first one, a changed
/// delay scenario (different aged library/stress), a shrinking or disjoint
/// truncated set, or the AAPX_STA_FULL=1 escape hatch — fall back to a full
/// propagation and are counted in engine.sta.incremental.full_fallbacks.
/// Not thread-safe; callers sequence queries (the sweep is serial anyway).
class IncrementalSta {
 public:
  explicit IncrementalSta(const Netlist& nl, StaOptions options = {},
                          const Context* ctx = nullptr);

  /// Worst primary-output arrival (>= 0) with `truncated_pis` held constant.
  /// Pass aged == nullptr for fresh timing. Bit-exact against
  /// Sta::run_truncated with the same arguments, by either path.
  double max_delay(const DegradationAwareLibrary* aged,
                   const StressProfile* stress,
                   const std::vector<NetId>& truncated_pis);

  /// Gates re-propagated by the most recent incremental query (0 after a
  /// full propagation or an unchanged-set repeat). Test/diagnostic hook.
  std::size_t last_dirty_gates() const noexcept { return last_dirty_gates_; }

 private:
  void build_masks();
  void full_propagate();
  void repropagate(const std::vector<std::uint64_t>& dirty);
  void recompute_gate(GateId gid);
  void reduce_outputs();

  const Netlist* nl_;
  Sta sta_;  ///< delay-model provider (gate_delays) and reference options
  bool full_override_;  ///< AAPX_STA_FULL=1: always take the full path
  /// Per-gate PI-dependency masks, gate-major [gid * mask_words_ + w]:
  /// bit p set iff the gate lies in the fanout cone of primary input p.
  /// Built lazily on the first incremental query.
  std::vector<std::uint64_t> depends_;
  std::size_t mask_words_ = 0;
  bool masks_built_ = false;
  /// Cached state of the last answered query.
  bool valid_ = false;
  Sta::GateDelays gd_;
  std::vector<double> arrival_rise_;
  std::vector<double> arrival_fall_;
  std::vector<std::uint64_t> blocked_;  ///< truncated set, PI-index bitmask
  double max_delay_ = 0.0;
  std::size_t last_dirty_gates_ = 0;
  obs::Counter* hits_;
  obs::Counter* dirty_gates_;
  obs::Counter* full_fallbacks_;
};

}  // namespace aapx
