// Static timing analysis with optional aging awareness.
//
// Arrival times and slews propagate in topological order through the NLDM
// tables, separately for rising and falling output transitions (arcs are
// treated as non-unate, the conservative convention for max-delay analysis).
// The aged variant multiplies each arc delay/slew by the degradation-aware
// library's factor for the gate's stress pair — the paper's "aging-aware STA"
// (Fig. 3b / Fig. 6).
#pragma once

#include <optional>
#include <vector>

#include "aging/stress.hpp"
#include "cell/degradation.hpp"
#include "netlist/netlist.hpp"

namespace aapx::obs {
class Counter;
class RunLog;
}  // namespace aapx::obs

namespace aapx {

class Context;

struct StaOptions {
  double primary_input_slew = 20.0;  ///< ps, driven by boundary registers
  double primary_output_load = 4.0;  ///< fF, next-stage register D pins
};

/// One step of an extracted critical path.
struct PathStep {
  GateId gate;
  int input_pin;
  bool output_rising;
  double arrival;  ///< ps at the gate output
};

struct StaResult {
  /// Per-net worst arrival times [ps]; -inf for nets that never transition.
  std::vector<double> arrival_rise;
  std::vector<double> arrival_fall;

  double max_delay = 0.0;             ///< worst PO arrival (>= 0)
  std::size_t critical_output = 0;    ///< PO index achieving max_delay
  std::vector<PathStep> critical_path;  ///< PI-side first

  /// Worst arrival per primary output index (0 for constant outputs).
  std::vector<double> output_delay;

  double net_arrival(NetId net) const;
};

class Sta {
 public:
  /// `ctx` scopes the instrumentation sinks (run counters, sta_query log
  /// records); nullptr routes to the process-default registry/log, which is
  /// what existing call sites get. Timing results never depend on `ctx`.
  explicit Sta(const Netlist& nl, StaOptions options = {},
               const Context* ctx = nullptr);

  /// Fresh (no-aging) max-delay analysis — paper's t(noAging).
  StaResult run_fresh() const;

  /// Aging-aware analysis. The stress profile must cover every gate
  /// (uniform profiles for worst/balanced, measured profiles from simulation).
  StaResult run_aged(const DegradationAwareLibrary& aged,
                     const StressProfile& stress) const;

  /// Per-gate aged delays for the event-driven simulator: worst rise/fall arc
  /// delay of each gate at its actual load and a nominal input slew.
  struct GateDelays {
    std::vector<double> rise;  ///< ps, indexed by GateId
    std::vector<double> fall;
  };
  GateDelays gate_delays(const DegradationAwareLibrary* aged,
                         const StressProfile* stress) const;

 private:
  StaResult run(const DegradationAwareLibrary* aged,
                const StressProfile* stress) const;

  const Netlist* nl_;
  StaOptions options_;
  /// Instrumentation handles resolved once at construction against the
  /// context's sinks (a per-instance cache; never static, so each Context's
  /// registry sees its own sta.* counts).
  obs::Counter* fresh_runs_;
  obs::Counter* aged_runs_;
  obs::RunLog* runlog_;
};

}  // namespace aapx
