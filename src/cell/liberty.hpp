// Liberty (.lib) interchange for the cell library.
//
// The paper's degradation-aware cell libraries [9] are distributed as
// Liberty files compatible with the Synopsys flow. This module writes our
// generated library in a faithful Liberty subset — library header with unit
// attributes, lu_table templates, per-cell area/leakage/function, pins with
// capacitance, and NLDM timing groups (cell_rise/cell_fall/rise_transition/
// fall_transition) — and parses that subset back, so libraries survive a
// round trip and aged variants can be inspected with standard EDA tooling.
//
// Aged export: `write_aged_liberty` emits the library with every delay table
// pre-scaled by the degradation factors of a chosen stress pair and lifetime
// (one stress corner per file, the way [9] ships 11x11 corner files).
#pragma once

#include <iosfwd>
#include <string>

#include "cell/degradation.hpp"
#include "cell/library.hpp"

namespace aapx {

struct LibertyWriteOptions {
  std::string library_name = "aapx_nangate45_like";
  std::string time_unit = "1ps";
  std::string cap_unit = "1ff";
};

/// Writes the fresh library.
void write_liberty(const CellLibrary& lib, std::ostream& os,
                   const LibertyWriteOptions& options = {});

/// Writes an aged corner: all delay/slew tables scaled by the degradation
/// factors for `stress` at the library's lifetime.
void write_aged_liberty(const DegradationAwareLibrary& aged, StressPair stress,
                        std::ostream& os, const LibertyWriteOptions& options = {});

/// Parses the subset produced by write_liberty. Throws std::runtime_error on
/// malformed input. The parser is resilient to whitespace/comments but only
/// understands the groups the writer emits.
CellLibrary parse_liberty(std::istream& is);

}  // namespace aapx
