// Degradation-aware cell library (reproduction of [4]/[9] from the paper).
//
// The paper's aging-aware STA consumes a released cell library that stores,
// for every cell, delay information under an 11x11 grid of pMOS/nMOS stress
// factors (0%, 10%, ..., 100%). We regenerate that artifact: for a chosen
// lifetime, each cell gets an 11x11 table of *delay scale factors* per
// transition direction, derived from the BTI model. STA multiplies the fresh
// NLDM delay by the bilinear-interpolated factor for the gate's stress pair.
//
// A rising output is driven by the pull-up pMOS network, so its factor is
// dominated by NBTI at stress S_p; symmetrically the falling output by PBTI
// at S_n. A small cross term models the slew interaction of the opposing
// network, which is what makes the grid genuinely two-dimensional.
#pragma once

#include <vector>

#include "aging/aging_model.hpp"
#include "aging/stress.hpp"
#include "cell/library.hpp"
#include "util/interp.hpp"

namespace aapx {

class DegradationAwareLibrary {
 public:
  /// Precomputes 11x11 factor grids for every cell at the given lifetime.
  /// years == 0 produces the identity library (all factors 1). The grids
  /// hold the model's duty-driven (BTI) drift; activity-driven HCI drift is
  /// applied per gate by the STA on top (it needs the gate's activity, which
  /// is not a grid axis). Historic BtiModel call sites convert implicitly.
  DegradationAwareLibrary(const CellLibrary& lib, const AgingModel& model,
                          double years);

  /// Adopts precomputed factor grids instead of rebuilding them — the
  /// deserialization path of the persistent DesignStore (engine/persist).
  /// Both grid vectors must hold one table per cell of `lib`.
  DegradationAwareLibrary(const CellLibrary& lib, const AgingModel& model,
                          double years, std::vector<Table2D> rise_grid,
                          std::vector<Table2D> fall_grid);

  /// Delay scale factor (>= 1) for an output-rise transition of `cell`
  /// under the given stress pair, bilinear over the 11x11 grid.
  double rise_factor(CellId cell, StressPair stress) const;
  /// Same for an output-fall transition.
  double fall_factor(CellId cell, StressPair stress) const;

  double years() const noexcept { return years_; }
  const CellLibrary& base() const noexcept { return *lib_; }
  const AgingModel& model() const noexcept { return model_; }

  /// Number of grid points per stress axis (the "11" in 11x11).
  static constexpr int kGridPoints = 11;

  /// Raw factor grids of one cell, exposed for serialization. axis1 = S_p,
  /// axis2 = S_n.
  const Table2D& rise_grid(CellId cell) const;
  const Table2D& fall_grid(CellId cell) const;
  /// Number of cells covered (== size of the library this was built from,
  /// without touching it — serialization may outlive the library object).
  std::size_t num_cells() const noexcept { return rise_grid_.size(); }

 private:
  const CellLibrary* lib_;
  AgingModel model_;
  double years_;
  std::vector<Table2D> rise_grid_;  ///< per cell; axis1 = S_p, axis2 = S_n
  std::vector<Table2D> fall_grid_;
};

}  // namespace aapx
