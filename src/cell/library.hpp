// Cell library container and the parametric NanGate-45-like generator.
//
// Substitution note (DESIGN.md Sec. 2): the paper uses the NanGate 45nm open
// cell library. Its Liberty data is not redistributable here, so we generate
// a library with the same *structure* (NLDM tables over a slew x load grid,
// three drive strengths per function, state-dependent leakage) from a
// parametric RC gate model with NanGate-magnitude constants. Everything
// downstream (STA, simulation, power, the aging flow) consumes only the
// Liberty-shaped interface, so swapping in real vendor data would be a
// drop-in replacement.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cell/cell.hpp"

namespace aapx {

using CellId = std::uint32_t;
inline constexpr CellId kInvalidCell = static_cast<CellId>(-1);

class CellLibrary {
 public:
  CellId add(Cell cell);

  const Cell& cell(CellId id) const;
  std::size_t size() const noexcept { return cells_.size(); }

  /// Finds a cell by exact name ("NAND2_X2"); nullopt if absent.
  std::optional<CellId> find(const std::string& name) const;

  /// Finds the cell implementing `fn` at the given drive strength.
  std::optional<CellId> find(LogicFn fn, int drive) const;

  /// Cheapest (smallest-area) cell implementing `fn`.
  CellId smallest(LogicFn fn) const;

  /// All drive variants of `fn`, sorted ascending by drive strength.
  std::vector<CellId> drive_variants(LogicFn fn) const;

  const DffSpec& dff() const noexcept { return dff_; }
  void set_dff(DffSpec spec) { dff_ = std::move(spec); }

  const std::vector<Cell>& cells() const noexcept { return cells_; }

 private:
  std::vector<Cell> cells_;
  DffSpec dff_;
};

/// Characterization grid + electrical constants of the generated library.
struct LibraryGenParams {
  std::vector<double> slew_axis = {5, 10, 20, 40, 80, 160, 300};     // ps
  std::vector<double> load_axis = {0.5, 1, 2, 4, 8, 16, 32};         // fF
  std::vector<int> drives = {1, 2, 4, 8};
  double slew_to_delay = 0.12;  ///< delay contribution per ps of input slew
  double slew_gain = 0.9;       ///< output slew per ps of R*C
};

/// Builds the NanGate-45-like library (16 functions x 3 strengths + DFF).
CellLibrary make_nangate45_like(const LibraryGenParams& params = {});

}  // namespace aapx
