// Standard-cell model: logic function, NLDM timing arcs, power and area.
//
// The library mirrors the structure of a Liberty (.lib) characterization of
// the NanGate 45nm open cell library the paper synthesizes against: per-arc
// 2-D delay and output-slew tables indexed by input slew and output load,
// state-dependent leakage, pin capacitance and area per drive strength.
// Units: time ps, capacitance fF, area um^2, leakage nW.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/interp.hpp"

namespace aapx {

/// Combinational logic functions offered by the library (plus DFF for the
/// sequential boundary element).
enum class LogicFn : std::uint8_t {
  kBuf,
  kInv,
  kAnd2,
  kNand2,
  kOr2,
  kNor2,
  kXor2,
  kXnor2,
  kAnd3,
  kNand3,
  kOr3,
  kNor3,
  kAoi21,  ///< !((a & b) | c)
  kOai21,  ///< !((a | b) & c)
  kMux2,   ///< sel ? b : a  (pins: 0=a, 1=b, 2=sel)
  kMaj3,   ///< majority — the carry function of a full adder
};

/// Number of input pins of a logic function.
int fn_num_inputs(LogicFn fn);

/// Evaluates `fn` on an input bitmask (bit i = logic value of pin i).
bool fn_eval(LogicFn fn, unsigned input_mask);

/// True if toggling pin `pin` from the given input mask flips the output.
/// (Used by the timed simulator for event filtering and by power analysis.)
bool fn_pin_controls(LogicFn fn, unsigned input_mask, int pin);

std::string to_string(LogicFn fn);

/// One combinational timing arc: input pin -> output, with separate tables
/// for output-rise and output-fall transitions.
struct TimingArc {
  int input_pin = 0;
  Table2D rise_delay;   ///< ps = f(input slew ps, output load fF)
  Table2D fall_delay;   ///< ps
  Table2D rise_slew;    ///< output slew ps
  Table2D fall_slew;    ///< output slew ps
};

struct Cell {
  std::string name;          ///< e.g. "NAND2_X2"
  LogicFn fn = LogicFn::kInv;
  int drive = 1;             ///< drive strength (1, 2, 4)
  double area = 0.0;         ///< um^2
  double pin_cap = 0.0;      ///< input capacitance per pin, fF
  double max_load = 0.0;     ///< fF, capacitance limit used by sizing
  std::vector<double> leakage_per_state;  ///< nW, indexed by input mask
  std::vector<TimingArc> arcs;            ///< one per input pin

  /// Relative BTI sensitivity of this topology (stacked pull-ups age
  /// differently from single transistors); scales dVth in the degradation
  /// library.  1.0 = inverter-like.
  double aging_sensitivity = 1.0;

  int num_inputs() const { return fn_num_inputs(fn); }
  double avg_leakage() const;
  const TimingArc& arc(int input_pin) const;
};

/// Sequential boundary element (D flip-flop). The microarchitecture flow
/// places these between RTL blocks; they contribute area/power and a fixed
/// clk->q plus setup overhead to each block's timing budget.
struct DffSpec {
  std::string name = "DFF_X1";
  double area = 4.52;       ///< um^2
  double pin_cap = 1.0;     ///< fF on D
  double leakage = 48.0;    ///< nW
  double clk_to_q = 55.0;   ///< ps
  double setup = 30.0;      ///< ps
  double cap_per_bit = 1.2; ///< fF internal switched cap per toggle
};

}  // namespace aapx
