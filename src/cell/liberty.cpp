#include "cell/liberty.hpp"

#include <cctype>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace aapx {
namespace {

// --- writing ---------------------------------------------------------------

std::string fn_expression(LogicFn fn) {
  // Liberty boolean expression over pins A0, A1, A2 (pin i = Ai).
  switch (fn) {
    case LogicFn::kBuf: return "A0";
    case LogicFn::kInv: return "!A0";
    case LogicFn::kAnd2: return "(A0 A1)";
    case LogicFn::kNand2: return "!(A0 A1)";
    case LogicFn::kOr2: return "(A0+A1)";
    case LogicFn::kNor2: return "!(A0+A1)";
    case LogicFn::kXor2: return "(A0^A1)";
    case LogicFn::kXnor2: return "!(A0^A1)";
    case LogicFn::kAnd3: return "(A0 A1 A2)";
    case LogicFn::kNand3: return "!(A0 A1 A2)";
    case LogicFn::kOr3: return "(A0+A1+A2)";
    case LogicFn::kNor3: return "!(A0+A1+A2)";
    case LogicFn::kAoi21: return "!((A0 A1)+A2)";
    case LogicFn::kOai21: return "!((A0+A1) A2)";
    case LogicFn::kMux2: return "((A0 !A2)+(A1 A2))";
    case LogicFn::kMaj3: return "((A0 A1)+(A0 A2)+(A1 A2))";
  }
  return "A0";
}

std::string join(const std::vector<double>& values) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << values[i];
  }
  return os.str();
}

void write_table(std::ostream& os, const std::string& group,
                 const Table2D& table, double scale, const char* indent) {
  os << indent << group << " (delay_template) {\n";
  os << indent << "  values ( \\\n";
  const std::size_t rows = table.axis1().size();
  const std::size_t cols = table.axis2().size();
  for (std::size_t r = 0; r < rows; ++r) {
    os << indent << "    \"";
    for (std::size_t c = 0; c < cols; ++c) {
      if (c > 0) os << ", ";
      os << table.at(r, c) * scale;
    }
    os << '"' << (r + 1 == rows ? " \\" : ", \\") << '\n';
  }
  os << indent << "  );\n" << indent << "}\n";
}

void write_library(const CellLibrary& lib, std::ostream& os,
                   const LibertyWriteOptions& options,
                   const DegradationAwareLibrary* aged, StressPair stress) {
  if (lib.size() == 0) throw std::invalid_argument("write_liberty: empty library");
  os.precision(17);  // lossless double round trip
  os << "library (" << options.library_name << ") {\n";
  os << "  time_unit : \"" << options.time_unit << "\";\n";
  os << "  capacitive_load_unit (1, ff);\n";
  os << "  leakage_power_unit : \"1nW\";\n";
  os << "  default_max_transition : 300;\n";

  // All arcs share the generator's characterization grid; emit it once.
  const Cell& first = lib.cell(0);
  const Table2D& proto = first.arc(0).rise_delay;
  os << "  lu_table_template (delay_template) {\n";
  os << "    variable_1 : input_net_transition;\n";
  os << "    variable_2 : total_output_net_capacitance;\n";
  os << "    index_1 (\"" << join(proto.axis1()) << "\");\n";
  os << "    index_2 (\"" << join(proto.axis2()) << "\");\n";
  os << "  }\n";

  for (CellId id = 0; id < lib.size(); ++id) {
    const Cell& cell = lib.cell(id);
    double rise_scale = 1.0;
    double fall_scale = 1.0;
    if (aged != nullptr) {
      rise_scale = aged->rise_factor(id, stress);
      fall_scale = aged->fall_factor(id, stress);
    }
    os << "  cell (" << cell.name << ") {\n";
    os << "    area : " << cell.area << ";\n";
    os << "    cell_leakage_power : " << cell.avg_leakage() << ";\n";
    os << "    aapx_function : " << to_string(cell.fn) << ";\n";
    os << "    aapx_drive : " << cell.drive << ";\n";
    os << "    aapx_aging_sensitivity : " << cell.aging_sensitivity << ";\n";
    {
      std::ostringstream states;
      states.precision(17);
      for (std::size_t s = 0; s < cell.leakage_per_state.size(); ++s) {
        if (s > 0) states << ", ";
        states << cell.leakage_per_state[s];
      }
      os << "    aapx_leakage_states : \"" << states.str() << "\";\n";
    }
    const int pins = cell.num_inputs();
    for (int p = 0; p < pins; ++p) {
      os << "    pin (A" << p << ") {\n";
      os << "      direction : input;\n";
      os << "      capacitance : " << cell.pin_cap << ";\n";
      os << "    }\n";
    }
    os << "    pin (Y) {\n";
    os << "      direction : output;\n";
    os << "      max_capacitance : " << cell.max_load << ";\n";
    os << "      function : \"" << fn_expression(cell.fn) << "\";\n";
    for (int p = 0; p < pins; ++p) {
      const TimingArc& arc = cell.arc(p);
      os << "      timing () {\n";
      os << "        related_pin : \"A" << p << "\";\n";
      write_table(os, "cell_rise", arc.rise_delay, rise_scale, "        ");
      write_table(os, "rise_transition", arc.rise_slew, rise_scale, "        ");
      write_table(os, "cell_fall", arc.fall_delay, fall_scale, "        ");
      write_table(os, "fall_transition", arc.fall_slew, fall_scale, "        ");
      os << "      }\n";
    }
    os << "    }\n";
    os << "  }\n";
  }
  os << "}\n";
}

// --- parsing ---------------------------------------------------------------

enum class TokKind { ident, string, symbol, eof };

struct Token {
  TokKind kind = TokKind::eof;
  std::string text;
  int line = 0;  ///< 1-based source line the token starts on
};

[[noreturn]] void fail_at(int line, const std::string& message) {
  throw std::runtime_error("liberty:" + std::to_string(line) + ": " + message);
}

class Lexer {
 public:
  explicit Lexer(std::istream& is) { src_.assign(std::istreambuf_iterator<char>(is), {}); }

  Token next() {
    skip_ws_and_comments();
    Token tok;
    tok.line = line_;
    if (pos_ >= src_.size()) return tok;
    const char c = src_[pos_];
    if (c == '"') {
      ++pos_;
      tok.kind = TokKind::string;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
          pos_ += 2;  // line continuation inside a string
          ++line_;
          continue;
        }
        if (src_[pos_] == '\n') ++line_;
        tok.text += src_[pos_++];
      }
      if (pos_ >= src_.size()) fail_at(tok.line, "unterminated string");
      ++pos_;
      return tok;
    }
    if (std::strchr("(){}:;,", c) != nullptr) {
      tok.kind = TokKind::symbol;
      tok.text = std::string(1, c);
      ++pos_;
      return tok;
    }
    tok.kind = TokKind::ident;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            std::strchr("._+-", src_[pos_]) != nullptr)) {
      tok.text += src_[pos_++];
    }
    if (tok.text.empty()) {
      fail_at(line_, std::string("unexpected character '") + c + "'");
    }
    return tok;
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '\\') {
        if (c == '\n') ++line_;
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        const std::size_t end = src_.find("*/", pos_ + 2);
        if (end == std::string::npos) fail_at(line_, "open comment");
        for (std::size_t i = pos_; i < end; ++i) {
          if (src_[i] == '\n') ++line_;
        }
        pos_ = end + 2;
      } else {
        break;
      }
    }
  }

  std::string src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Generic in-memory Liberty group tree.
struct Group {
  std::string type;                 // e.g. "cell"
  int line = 0;                     // source line the group starts on
  std::vector<std::string> args;    // e.g. {"NAND2_X1"}
  std::map<std::string, std::string> attrs;          // simple attributes
  std::vector<std::pair<std::string, std::vector<std::string>>> complex;
  std::vector<Group> children;
};

/// Required attribute lookup with a located diagnostic instead of the bare
/// std::out_of_range a map::at would give on truncated input.
const std::string& require_attr(const Group& group, const char* name) {
  const auto it = group.attrs.find(name);
  if (it == group.attrs.end()) {
    fail_at(group.line, "missing attribute '" + std::string(name) + "' in " +
                            group.type + " group");
  }
  return it->second;
}

class Parser {
 public:
  explicit Parser(std::istream& is) : lexer_(is) { advance(); }

  Group parse_group() {
    Group group;
    expect(TokKind::ident);
    group.type = tok_.text;
    group.line = tok_.line;
    advance();
    expect_symbol("(");
    advance();
    while (!is_symbol(")")) {
      if (tok_.kind == TokKind::ident || tok_.kind == TokKind::string) {
        group.args.push_back(tok_.text);
        advance();
      } else if (is_symbol(",")) {
        advance();
      } else {
        fail_at(tok_.line, "bad group argument list near '" + tok_.text + "'");
      }
    }
    advance();  // ')'
    expect_symbol("{");
    advance();
    while (!is_symbol("}")) {
      parse_statement(group);
    }
    advance();  // '}'
    return group;
  }

 private:
  void parse_statement(Group& group) {
    expect(TokKind::ident);
    const std::string name = tok_.text;
    const int name_line = tok_.line;
    advance();
    if (is_symbol(":")) {
      advance();
      std::string value;
      if (tok_.kind == TokKind::ident || tok_.kind == TokKind::string) {
        value = tok_.text;
        advance();
      }
      expect_symbol(";");
      advance();
      group.attrs[name] = value;
      return;
    }
    if (is_symbol("(")) {
      // Either a child group or a complex attribute; decide by what follows
      // the closing parenthesis.
      advance();
      std::vector<std::string> args;
      while (!is_symbol(")")) {
        if (tok_.kind == TokKind::ident || tok_.kind == TokKind::string) {
          args.push_back(tok_.text);
          advance();
        } else if (is_symbol(",")) {
          advance();
        } else {
          fail_at(tok_.line, "bad argument list for " + name);
        }
      }
      advance();  // ')'
      if (is_symbol("{")) {
        Group child;
        child.type = name;
        child.line = name_line;
        child.args = std::move(args);
        advance();
        while (!is_symbol("}")) parse_statement(child);
        advance();
        group.children.push_back(std::move(child));
        return;
      }
      if (is_symbol(";")) advance();  // complex attribute terminator
      group.complex.emplace_back(name, std::move(args));
      return;
    }
    fail_at(tok_.line, "unexpected token after " + name);
  }

  void advance() { tok_ = lexer_.next(); }
  void expect(TokKind kind) {
    if (tok_.kind != kind) {
      if (tok_.kind == TokKind::eof) {
        fail_at(tok_.line, "unexpected end of input");
      }
      fail_at(tok_.line, "unexpected token '" + tok_.text + "'");
    }
  }
  bool is_symbol(const char* s) const {
    return tok_.kind == TokKind::symbol && tok_.text == s;
  }
  void expect_symbol(const char* s) {
    if (!is_symbol(s)) {
      if (tok_.kind == TokKind::eof) {
        fail_at(tok_.line, std::string("expected '") + s +
                               "' before end of input");
      }
      fail_at(tok_.line,
              std::string("expected '") + s + "' near '" + tok_.text + "'");
    }
  }

  Lexer lexer_;
  Token tok_;
};

double to_double(const std::string& text, int line, const char* what) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    fail_at(line, std::string("bad ") + what + " value '" + text + "'");
  }
  if (used != text.size()) {
    fail_at(line, std::string("bad ") + what + " value '" + text + "'");
  }
  return value;
}

double attr_double(const Group& group, const char* name) {
  return to_double(require_attr(group, name), group.line, name);
}

int attr_int(const Group& group, const char* name) {
  const double value = to_double(require_attr(group, name), group.line, name);
  const int as_int = static_cast<int>(value);
  if (static_cast<double>(as_int) != value) {
    fail_at(group.line, std::string("bad ") + name + " value (not an integer)");
  }
  return as_int;
}

std::vector<double> parse_number_list(const std::string& csv, int line) {
  std::vector<double> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    const std::size_t first = item.find_first_not_of(" \t\n");
    if (first == std::string::npos) continue;
    const std::size_t last = item.find_last_not_of(" \t\n");
    out.push_back(to_double(item.substr(first, last - first + 1), line,
                            "number list"));
  }
  return out;
}

LogicFn parse_fn(const std::string& name) {
  static const std::map<std::string, LogicFn> kMap = {
      {"BUF", LogicFn::kBuf},     {"INV", LogicFn::kInv},
      {"AND2", LogicFn::kAnd2},   {"NAND2", LogicFn::kNand2},
      {"OR2", LogicFn::kOr2},     {"NOR2", LogicFn::kNor2},
      {"XOR2", LogicFn::kXor2},   {"XNOR2", LogicFn::kXnor2},
      {"AND3", LogicFn::kAnd3},   {"NAND3", LogicFn::kNand3},
      {"OR3", LogicFn::kOr3},     {"NOR3", LogicFn::kNor3},
      {"AOI21", LogicFn::kAoi21}, {"OAI21", LogicFn::kOai21},
      {"MUX2", LogicFn::kMux2},   {"MAJ3", LogicFn::kMaj3},
  };
  const auto it = kMap.find(name);
  if (it == kMap.end()) throw std::runtime_error("unknown function " + name);
  return it->second;
}

Table2D parse_values(const Group& table_group, const std::vector<double>& axis1,
                     const std::vector<double>& axis2) {
  for (const auto& [name, args] : table_group.complex) {
    if (name != "values") continue;
    std::vector<double> flat;
    for (const std::string& row : args) {
      for (const double v : parse_number_list(row, table_group.line)) {
        flat.push_back(v);
      }
    }
    if (flat.size() != axis1.size() * axis2.size()) {
      fail_at(table_group.line, "table " + table_group.type + " has " +
                                    std::to_string(flat.size()) +
                                    " values, template wants " +
                                    std::to_string(axis1.size() * axis2.size()));
    }
    return Table2D(axis1, axis2, std::move(flat));
  }
  fail_at(table_group.line, "table group " + table_group.type +
                                " without values()");
}

}  // namespace

void write_liberty(const CellLibrary& lib, std::ostream& os,
                   const LibertyWriteOptions& options) {
  write_library(lib, os, options, nullptr, kWorstCaseStress);
}

void write_aged_liberty(const DegradationAwareLibrary& aged, StressPair stress,
                        std::ostream& os, const LibertyWriteOptions& options) {
  write_library(aged.base(), os, options, &aged, stress);
}

CellLibrary parse_liberty(std::istream& is) {
  Parser parser(is);
  const Group root = parser.parse_group();
  if (root.type != "library") {
    throw std::runtime_error("liberty: top-level group must be library");
  }

  // Template axes.
  std::vector<double> axis1;
  std::vector<double> axis2;
  for (const Group& child : root.children) {
    if (child.type != "lu_table_template") continue;
    for (const auto& [name, args] : child.complex) {
      if (name == "index_1" && !args.empty()) {
        axis1 = parse_number_list(args[0], child.line);
      }
      if (name == "index_2" && !args.empty()) {
        axis2 = parse_number_list(args[0], child.line);
      }
    }
  }
  if (axis1.empty() || axis2.empty()) {
    throw std::runtime_error("liberty: missing lu_table_template axes");
  }

  CellLibrary lib;
  for (const Group& cg : root.children) {
    if (cg.type != "cell") continue;
    if (cg.args.empty()) fail_at(cg.line, "unnamed cell");
    Cell cell;
    cell.name = cg.args[0];
    try {
      cell.fn = parse_fn(require_attr(cg, "aapx_function"));
    } catch (const std::runtime_error& e) {
      fail_at(cg.line, std::string(e.what()) + " in cell " + cell.name);
    }
    cell.drive = attr_int(cg, "aapx_drive");
    cell.area = attr_double(cg, "area");
    cell.aging_sensitivity = attr_double(cg, "aapx_aging_sensitivity");
    for (const double v : parse_number_list(
             require_attr(cg, "aapx_leakage_states"), cg.line)) {
      cell.leakage_per_state.push_back(v);
    }
    const int pins = cell.num_inputs();
    if (cell.leakage_per_state.size() != std::size_t{1} << pins) {
      fail_at(cg.line, "leakage state count mismatch in " + cell.name);
    }
    for (const Group& pin : cg.children) {
      if (pin.type != "pin" || pin.args.empty()) continue;
      if (pin.attrs.count("capacitance") != 0) {
        cell.pin_cap = attr_double(pin, "capacitance");
      }
      if (pin.args[0] == "Y") {
        if (pin.attrs.count("max_capacitance") != 0) {
          cell.max_load = attr_double(pin, "max_capacitance");
        }
        for (const Group& timing : pin.children) {
          if (timing.type != "timing") continue;
          TimingArc arc;
          const std::string related = require_attr(timing, "related_pin");
          if (related.size() < 2 || related[0] != 'A') {
            fail_at(timing.line, "bad related_pin " + related);
          }
          arc.input_pin =
              static_cast<int>(to_double(related.substr(1), timing.line,
                                         "related_pin index"));
          for (const Group& tbl : timing.children) {
            if (tbl.type == "cell_rise") arc.rise_delay = parse_values(tbl, axis1, axis2);
            if (tbl.type == "cell_fall") arc.fall_delay = parse_values(tbl, axis1, axis2);
            if (tbl.type == "rise_transition") arc.rise_slew = parse_values(tbl, axis1, axis2);
            if (tbl.type == "fall_transition") arc.fall_slew = parse_values(tbl, axis1, axis2);
          }
          if (arc.rise_delay.empty() || arc.fall_delay.empty()) {
            fail_at(timing.line, "incomplete timing arc in " + cell.name);
          }
          cell.arcs.push_back(std::move(arc));
        }
      }
    }
    if (cell.arcs.size() != static_cast<std::size_t>(pins)) {
      fail_at(cg.line, "arc count mismatch in " + cell.name);
    }
    lib.add(std::move(cell));
  }
  if (lib.size() == 0) throw std::runtime_error("liberty: no cells parsed");
  return lib;
}

}  // namespace aapx
