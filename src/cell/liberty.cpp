#include "cell/liberty.hpp"

#include <cctype>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace aapx {
namespace {

// --- writing ---------------------------------------------------------------

std::string fn_expression(LogicFn fn) {
  // Liberty boolean expression over pins A0, A1, A2 (pin i = Ai).
  switch (fn) {
    case LogicFn::kBuf: return "A0";
    case LogicFn::kInv: return "!A0";
    case LogicFn::kAnd2: return "(A0 A1)";
    case LogicFn::kNand2: return "!(A0 A1)";
    case LogicFn::kOr2: return "(A0+A1)";
    case LogicFn::kNor2: return "!(A0+A1)";
    case LogicFn::kXor2: return "(A0^A1)";
    case LogicFn::kXnor2: return "!(A0^A1)";
    case LogicFn::kAnd3: return "(A0 A1 A2)";
    case LogicFn::kNand3: return "!(A0 A1 A2)";
    case LogicFn::kOr3: return "(A0+A1+A2)";
    case LogicFn::kNor3: return "!(A0+A1+A2)";
    case LogicFn::kAoi21: return "!((A0 A1)+A2)";
    case LogicFn::kOai21: return "!((A0+A1) A2)";
    case LogicFn::kMux2: return "((A0 !A2)+(A1 A2))";
    case LogicFn::kMaj3: return "((A0 A1)+(A0 A2)+(A1 A2))";
  }
  return "A0";
}

std::string join(const std::vector<double>& values) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << values[i];
  }
  return os.str();
}

void write_table(std::ostream& os, const std::string& group,
                 const Table2D& table, double scale, const char* indent) {
  os << indent << group << " (delay_template) {\n";
  os << indent << "  values ( \\\n";
  const std::size_t rows = table.axis1().size();
  const std::size_t cols = table.axis2().size();
  for (std::size_t r = 0; r < rows; ++r) {
    os << indent << "    \"";
    for (std::size_t c = 0; c < cols; ++c) {
      if (c > 0) os << ", ";
      os << table.at(r, c) * scale;
    }
    os << '"' << (r + 1 == rows ? " \\" : ", \\") << '\n';
  }
  os << indent << "  );\n" << indent << "}\n";
}

void write_library(const CellLibrary& lib, std::ostream& os,
                   const LibertyWriteOptions& options,
                   const DegradationAwareLibrary* aged, StressPair stress) {
  if (lib.size() == 0) throw std::invalid_argument("write_liberty: empty library");
  os.precision(17);  // lossless double round trip
  os << "library (" << options.library_name << ") {\n";
  os << "  time_unit : \"" << options.time_unit << "\";\n";
  os << "  capacitive_load_unit (1, ff);\n";
  os << "  leakage_power_unit : \"1nW\";\n";
  os << "  default_max_transition : 300;\n";

  // All arcs share the generator's characterization grid; emit it once.
  const Cell& first = lib.cell(0);
  const Table2D& proto = first.arc(0).rise_delay;
  os << "  lu_table_template (delay_template) {\n";
  os << "    variable_1 : input_net_transition;\n";
  os << "    variable_2 : total_output_net_capacitance;\n";
  os << "    index_1 (\"" << join(proto.axis1()) << "\");\n";
  os << "    index_2 (\"" << join(proto.axis2()) << "\");\n";
  os << "  }\n";

  for (CellId id = 0; id < lib.size(); ++id) {
    const Cell& cell = lib.cell(id);
    double rise_scale = 1.0;
    double fall_scale = 1.0;
    if (aged != nullptr) {
      rise_scale = aged->rise_factor(id, stress);
      fall_scale = aged->fall_factor(id, stress);
    }
    os << "  cell (" << cell.name << ") {\n";
    os << "    area : " << cell.area << ";\n";
    os << "    cell_leakage_power : " << cell.avg_leakage() << ";\n";
    os << "    aapx_function : " << to_string(cell.fn) << ";\n";
    os << "    aapx_drive : " << cell.drive << ";\n";
    os << "    aapx_aging_sensitivity : " << cell.aging_sensitivity << ";\n";
    {
      std::ostringstream states;
      states.precision(17);
      for (std::size_t s = 0; s < cell.leakage_per_state.size(); ++s) {
        if (s > 0) states << ", ";
        states << cell.leakage_per_state[s];
      }
      os << "    aapx_leakage_states : \"" << states.str() << "\";\n";
    }
    const int pins = cell.num_inputs();
    for (int p = 0; p < pins; ++p) {
      os << "    pin (A" << p << ") {\n";
      os << "      direction : input;\n";
      os << "      capacitance : " << cell.pin_cap << ";\n";
      os << "    }\n";
    }
    os << "    pin (Y) {\n";
    os << "      direction : output;\n";
    os << "      max_capacitance : " << cell.max_load << ";\n";
    os << "      function : \"" << fn_expression(cell.fn) << "\";\n";
    for (int p = 0; p < pins; ++p) {
      const TimingArc& arc = cell.arc(p);
      os << "      timing () {\n";
      os << "        related_pin : \"A" << p << "\";\n";
      write_table(os, "cell_rise", arc.rise_delay, rise_scale, "        ");
      write_table(os, "rise_transition", arc.rise_slew, rise_scale, "        ");
      write_table(os, "cell_fall", arc.fall_delay, fall_scale, "        ");
      write_table(os, "fall_transition", arc.fall_slew, fall_scale, "        ");
      os << "      }\n";
    }
    os << "    }\n";
    os << "  }\n";
  }
  os << "}\n";
}

// --- parsing ---------------------------------------------------------------

enum class TokKind { ident, string, symbol, eof };

struct Token {
  TokKind kind = TokKind::eof;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::istream& is) { src_.assign(std::istreambuf_iterator<char>(is), {}); }

  Token next() {
    skip_ws_and_comments();
    Token tok;
    if (pos_ >= src_.size()) return tok;
    const char c = src_[pos_];
    if (c == '"') {
      ++pos_;
      tok.kind = TokKind::string;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
          pos_ += 2;  // line continuation inside a string
          continue;
        }
        tok.text += src_[pos_++];
      }
      if (pos_ >= src_.size()) throw std::runtime_error("liberty: unterminated string");
      ++pos_;
      return tok;
    }
    if (std::strchr("(){}:;,", c) != nullptr) {
      tok.kind = TokKind::symbol;
      tok.text = std::string(1, c);
      ++pos_;
      return tok;
    }
    tok.kind = TokKind::ident;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            std::strchr("._+-", src_[pos_]) != nullptr)) {
      tok.text += src_[pos_++];
    }
    if (tok.text.empty()) {
      throw std::runtime_error(std::string("liberty: unexpected character '") +
                               c + "'");
    }
    return tok;
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '\\') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        const std::size_t end = src_.find("*/", pos_ + 2);
        if (end == std::string::npos) throw std::runtime_error("liberty: open comment");
        pos_ = end + 2;
      } else {
        break;
      }
    }
  }

  std::string src_;
  std::size_t pos_ = 0;
};

/// Generic in-memory Liberty group tree.
struct Group {
  std::string type;                 // e.g. "cell"
  std::vector<std::string> args;    // e.g. {"NAND2_X1"}
  std::map<std::string, std::string> attrs;          // simple attributes
  std::vector<std::pair<std::string, std::vector<std::string>>> complex;
  std::vector<Group> children;
};

class Parser {
 public:
  explicit Parser(std::istream& is) : lexer_(is) { advance(); }

  Group parse_group() {
    Group group;
    expect(TokKind::ident);
    group.type = tok_.text;
    advance();
    expect_symbol("(");
    advance();
    while (!is_symbol(")")) {
      if (tok_.kind == TokKind::ident || tok_.kind == TokKind::string) {
        group.args.push_back(tok_.text);
        advance();
      } else if (is_symbol(",")) {
        advance();
      } else {
        throw std::runtime_error("liberty: bad group argument list near " +
                                 tok_.text);
      }
    }
    advance();  // ')'
    expect_symbol("{");
    advance();
    while (!is_symbol("}")) {
      parse_statement(group);
    }
    advance();  // '}'
    return group;
  }

 private:
  void parse_statement(Group& group) {
    expect(TokKind::ident);
    const std::string name = tok_.text;
    advance();
    if (is_symbol(":")) {
      advance();
      std::string value;
      if (tok_.kind == TokKind::ident || tok_.kind == TokKind::string) {
        value = tok_.text;
        advance();
      }
      expect_symbol(";");
      advance();
      group.attrs[name] = value;
      return;
    }
    if (is_symbol("(")) {
      // Either a child group or a complex attribute; decide by what follows
      // the closing parenthesis.
      advance();
      std::vector<std::string> args;
      while (!is_symbol(")")) {
        if (tok_.kind == TokKind::ident || tok_.kind == TokKind::string) {
          args.push_back(tok_.text);
          advance();
        } else if (is_symbol(",")) {
          advance();
        } else {
          throw std::runtime_error("liberty: bad argument list for " + name);
        }
      }
      advance();  // ')'
      if (is_symbol("{")) {
        Group child;
        child.type = name;
        child.args = std::move(args);
        advance();
        while (!is_symbol("}")) parse_statement(child);
        advance();
        group.children.push_back(std::move(child));
        return;
      }
      if (is_symbol(";")) advance();  // complex attribute terminator
      group.complex.emplace_back(name, std::move(args));
      return;
    }
    throw std::runtime_error("liberty: unexpected token after " + name);
  }

  void advance() { tok_ = lexer_.next(); }
  void expect(TokKind kind) {
    if (tok_.kind != kind) {
      throw std::runtime_error("liberty: unexpected token '" + tok_.text + "'");
    }
  }
  bool is_symbol(const char* s) const {
    return tok_.kind == TokKind::symbol && tok_.text == s;
  }
  void expect_symbol(const char* s) {
    if (!is_symbol(s)) {
      throw std::runtime_error(std::string("liberty: expected '") + s +
                               "' near '" + tok_.text + "'");
    }
  }

  Lexer lexer_;
  Token tok_;
};

std::vector<double> parse_number_list(const std::string& csv) {
  std::vector<double> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.find_first_not_of(" \t\n") == std::string::npos) continue;
    out.push_back(std::stod(item));
  }
  return out;
}

LogicFn parse_fn(const std::string& name) {
  static const std::map<std::string, LogicFn> kMap = {
      {"BUF", LogicFn::kBuf},     {"INV", LogicFn::kInv},
      {"AND2", LogicFn::kAnd2},   {"NAND2", LogicFn::kNand2},
      {"OR2", LogicFn::kOr2},     {"NOR2", LogicFn::kNor2},
      {"XOR2", LogicFn::kXor2},   {"XNOR2", LogicFn::kXnor2},
      {"AND3", LogicFn::kAnd3},   {"NAND3", LogicFn::kNand3},
      {"OR3", LogicFn::kOr3},     {"NOR3", LogicFn::kNor3},
      {"AOI21", LogicFn::kAoi21}, {"OAI21", LogicFn::kOai21},
      {"MUX2", LogicFn::kMux2},   {"MAJ3", LogicFn::kMaj3},
  };
  const auto it = kMap.find(name);
  if (it == kMap.end()) throw std::runtime_error("liberty: unknown function " + name);
  return it->second;
}

Table2D parse_values(const Group& table_group, const std::vector<double>& axis1,
                     const std::vector<double>& axis2) {
  for (const auto& [name, args] : table_group.complex) {
    if (name != "values") continue;
    std::vector<double> flat;
    for (const std::string& row : args) {
      for (const double v : parse_number_list(row)) flat.push_back(v);
    }
    return Table2D(axis1, axis2, std::move(flat));
  }
  throw std::runtime_error("liberty: table group without values()");
}

}  // namespace

void write_liberty(const CellLibrary& lib, std::ostream& os,
                   const LibertyWriteOptions& options) {
  write_library(lib, os, options, nullptr, kWorstCaseStress);
}

void write_aged_liberty(const DegradationAwareLibrary& aged, StressPair stress,
                        std::ostream& os, const LibertyWriteOptions& options) {
  write_library(aged.base(), os, options, &aged, stress);
}

CellLibrary parse_liberty(std::istream& is) {
  Parser parser(is);
  const Group root = parser.parse_group();
  if (root.type != "library") {
    throw std::runtime_error("liberty: top-level group must be library");
  }

  // Template axes.
  std::vector<double> axis1;
  std::vector<double> axis2;
  for (const Group& child : root.children) {
    if (child.type != "lu_table_template") continue;
    for (const auto& [name, args] : child.complex) {
      if (name == "index_1" && !args.empty()) axis1 = parse_number_list(args[0]);
      if (name == "index_2" && !args.empty()) axis2 = parse_number_list(args[0]);
    }
  }
  if (axis1.empty() || axis2.empty()) {
    throw std::runtime_error("liberty: missing lu_table_template axes");
  }

  CellLibrary lib;
  for (const Group& cg : root.children) {
    if (cg.type != "cell") continue;
    if (cg.args.empty()) throw std::runtime_error("liberty: unnamed cell");
    Cell cell;
    cell.name = cg.args[0];
    cell.fn = parse_fn(cg.attrs.at("aapx_function"));
    cell.drive = std::stoi(cg.attrs.at("aapx_drive"));
    cell.area = std::stod(cg.attrs.at("area"));
    cell.aging_sensitivity = std::stod(cg.attrs.at("aapx_aging_sensitivity"));
    for (const double v :
         parse_number_list(cg.attrs.at("aapx_leakage_states"))) {
      cell.leakage_per_state.push_back(v);
    }
    const int pins = cell.num_inputs();
    if (cell.leakage_per_state.size() != std::size_t{1} << pins) {
      throw std::runtime_error("liberty: leakage state count mismatch in " +
                               cell.name);
    }
    for (const Group& pin : cg.children) {
      if (pin.type != "pin" || pin.args.empty()) continue;
      if (pin.attrs.count("capacitance") != 0) {
        cell.pin_cap = std::stod(pin.attrs.at("capacitance"));
      }
      if (pin.args[0] == "Y") {
        if (pin.attrs.count("max_capacitance") != 0) {
          cell.max_load = std::stod(pin.attrs.at("max_capacitance"));
        }
        for (const Group& timing : pin.children) {
          if (timing.type != "timing") continue;
          TimingArc arc;
          const std::string related = timing.attrs.at("related_pin");
          if (related.size() < 2 || related[0] != 'A') {
            throw std::runtime_error("liberty: bad related_pin " + related);
          }
          arc.input_pin = std::stoi(related.substr(1));
          for (const Group& tbl : timing.children) {
            if (tbl.type == "cell_rise") arc.rise_delay = parse_values(tbl, axis1, axis2);
            if (tbl.type == "cell_fall") arc.fall_delay = parse_values(tbl, axis1, axis2);
            if (tbl.type == "rise_transition") arc.rise_slew = parse_values(tbl, axis1, axis2);
            if (tbl.type == "fall_transition") arc.fall_slew = parse_values(tbl, axis1, axis2);
          }
          if (arc.rise_delay.empty() || arc.fall_delay.empty()) {
            throw std::runtime_error("liberty: incomplete timing arc in " +
                                     cell.name);
          }
          cell.arcs.push_back(std::move(arc));
        }
      }
    }
    if (cell.arcs.size() != static_cast<std::size_t>(pins)) {
      throw std::runtime_error("liberty: arc count mismatch in " + cell.name);
    }
    lib.add(std::move(cell));
  }
  if (lib.size() == 0) throw std::runtime_error("liberty: no cells parsed");
  return lib;
}

}  // namespace aapx
