#include "cell/cell.hpp"

#include <numeric>
#include <stdexcept>

namespace aapx {

int fn_num_inputs(LogicFn fn) {
  switch (fn) {
    case LogicFn::kBuf:
    case LogicFn::kInv:
      return 1;
    case LogicFn::kAnd2:
    case LogicFn::kNand2:
    case LogicFn::kOr2:
    case LogicFn::kNor2:
    case LogicFn::kXor2:
    case LogicFn::kXnor2:
      return 2;
    case LogicFn::kAnd3:
    case LogicFn::kNand3:
    case LogicFn::kOr3:
    case LogicFn::kNor3:
    case LogicFn::kAoi21:
    case LogicFn::kOai21:
    case LogicFn::kMux2:
    case LogicFn::kMaj3:
      return 3;
  }
  throw std::invalid_argument("fn_num_inputs: unknown function");
}

bool fn_eval(LogicFn fn, unsigned m) {
  const bool a = (m & 1u) != 0;
  const bool b = (m & 2u) != 0;
  const bool c = (m & 4u) != 0;
  switch (fn) {
    case LogicFn::kBuf: return a;
    case LogicFn::kInv: return !a;
    case LogicFn::kAnd2: return a && b;
    case LogicFn::kNand2: return !(a && b);
    case LogicFn::kOr2: return a || b;
    case LogicFn::kNor2: return !(a || b);
    case LogicFn::kXor2: return a != b;
    case LogicFn::kXnor2: return a == b;
    case LogicFn::kAnd3: return a && b && c;
    case LogicFn::kNand3: return !(a && b && c);
    case LogicFn::kOr3: return a || b || c;
    case LogicFn::kNor3: return !(a || b || c);
    case LogicFn::kAoi21: return !((a && b) || c);
    case LogicFn::kOai21: return !((a || b) && c);
    case LogicFn::kMux2: return c ? b : a;
    case LogicFn::kMaj3: return (a && b) || (a && c) || (b && c);
  }
  throw std::invalid_argument("fn_eval: unknown function");
}

bool fn_pin_controls(LogicFn fn, unsigned input_mask, int pin) {
  const unsigned flipped = input_mask ^ (1u << pin);
  return fn_eval(fn, input_mask) != fn_eval(fn, flipped);
}

std::string to_string(LogicFn fn) {
  switch (fn) {
    case LogicFn::kBuf: return "BUF";
    case LogicFn::kInv: return "INV";
    case LogicFn::kAnd2: return "AND2";
    case LogicFn::kNand2: return "NAND2";
    case LogicFn::kOr2: return "OR2";
    case LogicFn::kNor2: return "NOR2";
    case LogicFn::kXor2: return "XOR2";
    case LogicFn::kXnor2: return "XNOR2";
    case LogicFn::kAnd3: return "AND3";
    case LogicFn::kNand3: return "NAND3";
    case LogicFn::kOr3: return "OR3";
    case LogicFn::kNor3: return "NOR3";
    case LogicFn::kAoi21: return "AOI21";
    case LogicFn::kOai21: return "OAI21";
    case LogicFn::kMux2: return "MUX2";
    case LogicFn::kMaj3: return "MAJ3";
  }
  return "UNKNOWN";
}

double Cell::avg_leakage() const {
  if (leakage_per_state.empty()) return 0.0;
  const double sum = std::accumulate(leakage_per_state.begin(),
                                     leakage_per_state.end(), 0.0);
  return sum / static_cast<double>(leakage_per_state.size());
}

const TimingArc& Cell::arc(int input_pin) const {
  for (const auto& a : arcs) {
    if (a.input_pin == input_pin) return a;
  }
  throw std::out_of_range("Cell::arc: no arc for pin " + std::to_string(input_pin) +
                          " in " + name);
}

}  // namespace aapx
