#include "cell/library.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace aapx {

CellId CellLibrary::add(Cell cell) {
  cells_.push_back(std::move(cell));
  return static_cast<CellId>(cells_.size() - 1);
}

const Cell& CellLibrary::cell(CellId id) const {
  if (id >= cells_.size()) throw std::out_of_range("CellLibrary::cell");
  return cells_[id];
}

std::optional<CellId> CellLibrary::find(const std::string& name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name == name) return static_cast<CellId>(i);
  }
  return std::nullopt;
}

std::optional<CellId> CellLibrary::find(LogicFn fn, int drive) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].fn == fn && cells_[i].drive == drive) {
      return static_cast<CellId>(i);
    }
  }
  return std::nullopt;
}

CellId CellLibrary::smallest(LogicFn fn) const {
  CellId best = kInvalidCell;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].fn != fn) continue;
    if (best == kInvalidCell || cells_[i].area < cells_[best].area) {
      best = static_cast<CellId>(i);
    }
  }
  if (best == kInvalidCell) {
    throw std::out_of_range("CellLibrary::smallest: no cell for " + to_string(fn));
  }
  return best;
}

std::vector<CellId> CellLibrary::drive_variants(LogicFn fn) const {
  std::vector<CellId> out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].fn == fn) out.push_back(static_cast<CellId>(i));
  }
  for (std::size_t i = 1; i < out.size(); ++i) {
    for (std::size_t j = i; j > 0 && cells_[out[j - 1]].drive > cells_[out[j]].drive;
         --j) {
      std::swap(out[j - 1], out[j]);
    }
  }
  return out;
}

namespace {

/// Per-function electrical prototype at drive X1.
struct Proto {
  LogicFn fn;
  double d0_rise;    ///< intrinsic output-rise delay, ps
  double d0_fall;    ///< intrinsic output-fall delay, ps
  double r_drive;    ///< effective drive resistance, ps/fF
  double pin_cap;    ///< fF
  double area;       ///< um^2
  double leakage;    ///< nW, averaged over states
  double aging_sens; ///< stacked-transistor BTI sensitivity multiplier
};

// NanGate-45-magnitude constants. Stacked-pMOS topologies (NOR-like) get a
// higher aging sensitivity: series pull-up devices see longer effective NBTI
// stress, which is what makes aging non-uniform across paths (paper Sec. I).
// BTI sensitivity is strongly topology dependent: series (stacked) pull-up
// and pull-down networks of AND/OR/NOR-style gates keep individual devices
// conducting for longer effective stress windows, whereas the complementary
// pass-transistor-like XOR/majority topologies distribute stress across
// parallel branches. This asymmetry is what makes aging hit the lookahead
// (AND/OR-chain) adder harder than the XOR/MAJ-dominated multiplier array —
// the per-component difference the paper highlights in Secs. II and VI.
constexpr Proto kProtos[] = {
    {LogicFn::kInv, 8, 7, 2.0, 1.0, 0.53, 10, 1.00},
    {LogicFn::kBuf, 16, 15, 1.8, 1.1, 0.80, 16, 1.00},
    {LogicFn::kNand2, 12, 10, 2.3, 1.1, 0.80, 18, 0.80},
    {LogicFn::kNor2, 14, 12, 2.6, 1.1, 0.80, 16, 1.95},
    {LogicFn::kAnd2, 18, 16, 2.0, 1.1, 1.06, 22, 1.86},
    {LogicFn::kOr2, 20, 17, 2.1, 1.1, 1.06, 20, 2.05},
    {LogicFn::kXor2, 28, 26, 2.8, 1.8, 1.60, 32, 0.52},
    {LogicFn::kXnor2, 28, 26, 2.8, 1.8, 1.60, 32, 0.52},
    {LogicFn::kNand3, 16, 14, 2.6, 1.2, 1.06, 24, 0.85},
    {LogicFn::kNor3, 20, 17, 3.0, 1.2, 1.06, 22, 2.05},
    {LogicFn::kAnd3, 22, 19, 2.1, 1.2, 1.33, 28, 1.90},
    {LogicFn::kOr3, 24, 20, 2.2, 1.2, 1.33, 26, 2.10},
    {LogicFn::kAoi21, 16, 14, 2.7, 1.2, 1.06, 20, 1.30},
    {LogicFn::kOai21, 15, 13, 2.5, 1.2, 1.06, 20, 1.25},
    {LogicFn::kMux2, 26, 24, 2.4, 1.4, 1.86, 30, 0.90},
    {LogicFn::kMaj3, 30, 28, 2.6, 1.5, 2.13, 36, 0.50},
};

/// Deterministic per-state leakage variation (replaces SPICE state tables).
double state_leakage(double base, unsigned state, int pins) {
  const int highs = std::popcount(state);
  const double duty = pins > 0 ? static_cast<double>(highs) / pins : 0.0;
  // More conducting nMOS stacks -> slightly higher subthreshold leakage.
  const unsigned h = (state * 2654435761u) >> 28;  // 0..15 pseudo-jitter
  const double jitter = 0.95 + 0.00625 * static_cast<double>(h);
  return base * (0.80 + 0.40 * duty) * jitter;
}

Table2D make_table(const LibraryGenParams& p, double intrinsic, double r,
                   double slew_coeff) {
  std::vector<double> values;
  values.reserve(p.slew_axis.size() * p.load_axis.size());
  for (const double slew : p.slew_axis) {
    for (const double load : p.load_axis) {
      values.push_back(intrinsic + r * load + slew_coeff * slew);
    }
  }
  return Table2D(p.slew_axis, p.load_axis, std::move(values));
}

Table2D make_slew_table(const LibraryGenParams& p, double intrinsic, double r) {
  std::vector<double> values;
  values.reserve(p.slew_axis.size() * p.load_axis.size());
  for (const double slew : p.slew_axis) {
    for (const double load : p.load_axis) {
      values.push_back(0.5 * intrinsic + p.slew_gain * r * load + 0.10 * slew);
    }
  }
  return Table2D(p.slew_axis, p.load_axis, std::move(values));
}

}  // namespace

CellLibrary make_nangate45_like(const LibraryGenParams& params) {
  CellLibrary lib;
  for (const Proto& proto : kProtos) {
    const int pins = fn_num_inputs(proto.fn);
    for (const int drive : params.drives) {
      Cell cell;
      cell.name = to_string(proto.fn) + "_X" + std::to_string(drive);
      cell.fn = proto.fn;
      cell.drive = drive;
      cell.area = proto.area * (1.0 + 0.55 * (drive - 1));
      cell.pin_cap = proto.pin_cap * std::pow(drive, 0.85);
      cell.max_load = 12.0 * drive;
      cell.aging_sensitivity = proto.aging_sens;

      const unsigned states = 1u << pins;
      cell.leakage_per_state.reserve(states);
      for (unsigned s = 0; s < states; ++s) {
        cell.leakage_per_state.push_back(
            state_leakage(proto.leakage * drive, s, pins));
      }

      // Pull-up networks are typically weaker than pull-down; pins physically
      // closer to the output node switch slightly faster.
      const double r_rise = proto.r_drive * 1.15 / drive;
      const double r_fall = proto.r_drive * 0.90 / drive;
      for (int pin = 0; pin < pins; ++pin) {
        const double pin_factor = 1.0 - 0.06 * pin;
        TimingArc arc;
        arc.input_pin = pin;
        arc.rise_delay = make_table(params, proto.d0_rise * pin_factor, r_rise,
                                    params.slew_to_delay);
        arc.fall_delay = make_table(params, proto.d0_fall * pin_factor, r_fall,
                                    params.slew_to_delay);
        arc.rise_slew = make_slew_table(params, proto.d0_rise, r_rise);
        arc.fall_slew = make_slew_table(params, proto.d0_fall, r_fall);
        cell.arcs.push_back(std::move(arc));
      }
      lib.add(std::move(cell));
    }
  }
  lib.set_dff(DffSpec{});
  return lib;
}

}  // namespace aapx
