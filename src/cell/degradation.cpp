#include "cell/degradation.hpp"

#include <cmath>
#include <stdexcept>

namespace aapx {
namespace {

// Weight of the driving network in the transition's degradation; the
// remainder models the opposing network's slew interaction.
constexpr double kDrivingWeight = 0.92;

}  // namespace

DegradationAwareLibrary::DegradationAwareLibrary(const CellLibrary& lib,
                                                 const AgingModel& model,
                                                 double years)
    : lib_(&lib), model_(model), years_(years) {
  if (years < 0.0) {
    throw std::invalid_argument("DegradationAwareLibrary: negative lifetime");
  }
  std::vector<double> axis(kGridPoints);
  for (int i = 0; i < kGridPoints; ++i) {
    axis[i] = static_cast<double>(i) / (kGridPoints - 1);
  }

  rise_grid_.reserve(lib.size());
  fall_grid_.reserve(lib.size());
  for (const Cell& cell : lib.cells()) {
    std::vector<double> rise_vals;
    std::vector<double> fall_vals;
    rise_vals.reserve(kGridPoints * kGridPoints);
    fall_vals.reserve(kGridPoints * kGridPoints);
    for (int i = 0; i < kGridPoints; ++i) {
      const double dvth_p =
          model_.delta_vth(TransistorType::pMos, axis[i], years) *
          cell.aging_sensitivity;
      const double kp = model_.delay_factor_from_dvth(dvth_p);
      for (int j = 0; j < kGridPoints; ++j) {
        const double dvth_n =
            model_.delta_vth(TransistorType::nMos, axis[j], years) *
            cell.aging_sensitivity;
        const double kn = model_.delay_factor_from_dvth(dvth_n);
        rise_vals.push_back(std::pow(kp, kDrivingWeight) *
                            std::pow(kn, 1.0 - kDrivingWeight));
        fall_vals.push_back(std::pow(kn, kDrivingWeight) *
                            std::pow(kp, 1.0 - kDrivingWeight));
      }
    }
    rise_grid_.emplace_back(axis, axis, std::move(rise_vals));
    fall_grid_.emplace_back(axis, axis, std::move(fall_vals));
  }
}

DegradationAwareLibrary::DegradationAwareLibrary(const CellLibrary& lib,
                                                 const AgingModel& model,
                                                 double years,
                                                 std::vector<Table2D> rise_grid,
                                                 std::vector<Table2D> fall_grid)
    : lib_(&lib),
      model_(model),
      years_(years),
      rise_grid_(std::move(rise_grid)),
      fall_grid_(std::move(fall_grid)) {
  if (years < 0.0) {
    throw std::invalid_argument("DegradationAwareLibrary: negative lifetime");
  }
  if (rise_grid_.size() != lib.size() || fall_grid_.size() != lib.size()) {
    throw std::invalid_argument(
        "DegradationAwareLibrary: grid count does not match library size");
  }
}

const Table2D& DegradationAwareLibrary::rise_grid(CellId cell) const {
  if (cell >= rise_grid_.size()) {
    throw std::out_of_range("DegradationAwareLibrary::rise_grid");
  }
  return rise_grid_[cell];
}

const Table2D& DegradationAwareLibrary::fall_grid(CellId cell) const {
  if (cell >= fall_grid_.size()) {
    throw std::out_of_range("DegradationAwareLibrary::fall_grid");
  }
  return fall_grid_[cell];
}

double DegradationAwareLibrary::rise_factor(CellId cell, StressPair stress) const {
  if (cell >= rise_grid_.size()) {
    throw std::out_of_range("DegradationAwareLibrary::rise_factor");
  }
  return rise_grid_[cell].lookup(stress.pmos, stress.nmos);
}

double DegradationAwareLibrary::fall_factor(CellId cell, StressPair stress) const {
  if (cell >= fall_grid_.size()) {
    throw std::out_of_range("DegradationAwareLibrary::fall_factor");
  }
  return fall_grid_[cell].lookup(stress.pmos, stress.nmos);
}

}  // namespace aapx
