// Structured JSONL run log: one JSON object per line, unifying runtime
// control events, characterizer sweep progress and STA queries under one
// open schema (every record has a "type"; see docs/ARCHITECTURE.md for the
// per-type required fields).
//
// Determinism discipline — the log is part of a run's auditable output and
// must be byte-identical across reruns and thread counts, so:
//  * no wall-clock timestamps appear in any record (those belong to the
//    trace file only),
//  * instrumented layers emit only from the serial spine of the flow
//    (call sites skip emission inside parallel_for workers); parallel sweeps
//    report ordered per-index records after the barrier instead.
//
// When no log is open every emission call is one relaxed atomic load.
#pragma once

#include <atomic>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace aapx::obs {

/// Schema identifier written into the manifest record.
inline constexpr const char* kRunLogSchema = "aapx-runlog-v1";

class RunLog {
 public:
  /// Logs are constructible: each aapx::Context owns a private one (closed
  /// until open()), so concurrent tenants write disjoint files. instance()
  /// remains the process-default log the CLI's --log flag drives.
  RunLog() = default;
  RunLog(const RunLog&) = delete;
  RunLog& operator=(const RunLog&) = delete;

  static RunLog& instance();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Opens (truncates) `path` and enables logging; false on I/O failure.
  bool open(const std::string& path);
  void close();

  /// Appends one record: {"type":"<type>",<fields...>}. Thread-safe; each
  /// line is written atomically. No-op when disabled.
  void emit(std::string_view type, const JsonWriter& fields);
  void emit(std::string_view type);

 private:
  std::atomic<bool> enabled_{false};
  std::mutex mutex_;
  std::ofstream out_;
};

/// Emits the run manifest: schema version, build configuration (build type,
/// sanitizer, compiler) plus whatever caller fields are passed in (command,
/// component spec, seed, thread count). Call once, right after open().
void emit_manifest(const JsonWriter& caller_fields);

/// Same, into an explicit log — the server's per-request logs each start
/// with their own manifest so every file is report --check-valid standalone.
void emit_manifest(RunLog& log, const JsonWriter& caller_fields);

}  // namespace aapx::obs
