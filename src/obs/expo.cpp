#include "obs/expo.hpp"

#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace aapx::obs {

namespace {

bool is_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Prometheus renders numbers with arbitrary precision; json_num's %.10g is
/// stable, short and more precision than any metric here carries.
std::string num(double v) { return json_num(v); }

}  // namespace

std::string prometheus_name(std::string_view raw) {
  std::string out = "aapx_";
  for (const char c : raw) out += is_name_char(c) ? c : '_';
  return out;
}

std::string prometheus_label_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void write_prometheus(const MetricsSnapshot& snap, std::ostream& os,
                      std::string_view info_labels) {
  if (!info_labels.empty()) {
    os << "# TYPE aapx_build_info gauge\n";
    os << "aapx_build_info{" << info_labels << "} 1\n";
  }
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " counter\n";
    os << n << " " << value << "\n";
  }
  for (const auto& [name, vm] : snap.gauges) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " gauge\n";
    os << n << " " << num(vm.first) << "\n";
    os << "# TYPE " << n << "_max gauge\n";
    os << n << "_max " << num(vm.second) << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " histogram\n";
    // Cumulative counts over the log2 bucket upper edges. Only non-empty
    // buckets get an edge (plus the mandatory +Inf), which keeps the
    // exposition bounded at 64 lines but usually far fewer.
    std::uint64_t cum = 0;
    for (const auto& [index, count] : h.buckets) {
      cum += count;
      os << n << "_bucket{le=\"" << num(Histogram::bucket_floor(index + 1))
         << "\"} " << cum << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << n << "_sum " << num(h.sum) << "\n";
    os << n << "_count " << h.count << "\n";
    os << "# TYPE " << n << "_min gauge\n";
    os << n << "_min " << num(h.min) << "\n";
    os << "# TYPE " << n << "_max gauge\n";
    os << n << "_max " << num(h.max) << "\n";
  }
}

std::string prometheus_text(const MetricsSnapshot& snap,
                            std::string_view info_labels) {
  std::ostringstream os;
  write_prometheus(snap, os, info_labels);
  return os.str();
}

}  // namespace aapx::obs
