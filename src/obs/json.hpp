// Minimal JSON support for the observability layer: an escaping line/object
// writer (trace files, metrics snapshots, JSONL run logs) and a small
// recursive-descent parser (the `aapx report` reader and the trace/log
// schema validators consume our own output with it). Zero dependencies —
// this is the bottom of the obs stack and must stay standard-library-only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aapx::obs {

/// Escapes `s` for embedding between JSON double quotes (adds no quotes).
std::string json_escape(std::string_view s);

/// Compact numeric formatting for logs and traces ("%.10g": stable, short,
/// and more precision than any logged quantity carries).
std::string json_num(double v);

/// Builds one JSON object incrementally. Field order is insertion order, so
/// emitted lines are stable and diffable.
class JsonWriter {
 public:
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, int value);
  JsonWriter& field(std::string_view key, bool value);
  /// Appends `raw_json` verbatim as the value (arrays, nested objects).
  JsonWriter& raw_field(std::string_view key, std::string_view raw_json);
  /// Appends all of `other`'s fields after this writer's own.
  JsonWriter& append(const JsonWriter& other);

  bool empty() const noexcept { return body_.empty(); }
  /// Comma-joined fields without the surrounding braces (for composition).
  const std::string& body() const noexcept { return body_; }
  /// The complete object: "{...}".
  std::string str() const { return "{" + body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_;
};

/// Parsed JSON value. Object member order is preserved.
struct JsonValue {
  enum class Type { null, boolean, number, string, array, object };

  Type type = Type::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const noexcept { return type == Type::null; }
  bool is_bool() const noexcept { return type == Type::boolean; }
  bool is_number() const noexcept { return type == Type::number; }
  bool is_string() const noexcept { return type == Type::string; }
  bool is_array() const noexcept { return type == Type::array; }
  bool is_object() const noexcept { return type == Type::object; }

  /// Object member by key, or nullptr (also nullptr when not an object).
  const JsonValue* find(std::string_view key) const;
  /// Convenience typed lookups with fallback.
  double num_or(std::string_view key, double fallback) const;
  std::string str_or(std::string_view key, std::string_view fallback) const;
};

/// Parses one complete JSON document; the whole input must be consumed
/// (trailing whitespace allowed). On failure returns nullopt and, when
/// `error` is non-null, a one-line diagnostic with the byte offset.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace aapx::obs
