#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/json.hpp"

namespace aapx::obs {
namespace {

using Clock = std::chrono::steady_clock;

struct TraceEvent {
  const char* name;  ///< string literal owned by the call site
  double ts_us;
  std::uint64_t arg;
  char ph;  ///< 'B' or 'E'
  bool has_arg;
};

struct ThreadBuf {
  std::vector<TraceEvent> events;
  std::string name;
  int tid = 0;
};

/// Per-thread buffer cap; beyond it events are dropped (counted in the
/// emitted metadata) instead of growing without bound.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 22;

thread_local ThreadBuf* t_buf = nullptr;

/// Innermost SpanCapture sink installed on this thread (nullptr = none).
thread_local SpanCapture* t_capture = nullptr;

}  // namespace

struct Tracer::Impl {
  std::atomic<bool> enabled{false};
  mutable std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuf>> threads;
  Clock::time_point epoch{};
  std::atomic<std::uint64_t> dropped{0};

  ThreadBuf* this_thread() {
    if (t_buf == nullptr) {
      auto buf = std::make_unique<ThreadBuf>();
      std::lock_guard<std::mutex> lock(mutex);
      buf->tid = static_cast<int>(threads.size());
      t_buf = buf.get();
      threads.push_back(std::move(buf));
    }
    return t_buf;
  }

  void record(const char* name, char ph, std::uint64_t arg, bool has_arg) {
    ThreadBuf* buf = this_thread();
    if (buf->events.size() >= kMaxEventsPerThread) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const double ts_us =
        std::chrono::duration<double, std::micro>(Clock::now() - epoch)
            .count();
    buf->events.push_back({name, ts_us, arg, ph, has_arg});
  }
};

Tracer::Impl& Tracer::impl() {
  static Impl* impl = new Impl();  // leaked; thread buffers must outlive exit
  return *impl;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

bool Tracer::enabled() const noexcept {
  return const_cast<Tracer*>(this)->impl().enabled.load(
      std::memory_order_relaxed);
}

void Tracer::start() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  for (auto& buf : im.threads) buf->events.clear();
  im.dropped.store(0, std::memory_order_relaxed);
  im.epoch = Clock::now();
  im.enabled.store(true, std::memory_order_relaxed);
}

void Tracer::stop_and_write(std::ostream& os) {
  Impl& im = impl();
  im.enabled.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(im.mutex);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) os << ",";
    first = false;
    os << "\n" << line;
  };
  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"aapx\"}}");
  for (const auto& buf : im.threads) {
    if (!buf->name.empty()) {
      emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(buf->tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json_escape(buf->name) + "\"}}");
    }
  }
  for (const auto& buf : im.threads) {
    for (const TraceEvent& ev : buf->events) {
      std::string line = "{\"ph\":\"";
      line += ev.ph;
      line += "\",\"pid\":1,\"tid\":" + std::to_string(buf->tid) +
              ",\"ts\":" + json_num(ev.ts_us) + ",\"name\":\"" +
              json_escape(ev.name) + "\"";
      if (ev.has_arg) {
        line += ",\"args\":{\"n\":" + std::to_string(ev.arg) + "}";
      }
      line += "}";
      emit(line);
    }
    buf->events.clear();
  }
  const std::uint64_t dropped = im.dropped.load(std::memory_order_relaxed);
  if (dropped > 0) {
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"dropped_events\","
         "\"args\":{\"n\":" + std::to_string(dropped) + "}}");
  }
  os << "\n]}\n";
}

bool Tracer::stop_and_write_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    discard();
    return false;
  }
  stop_and_write(os);
  return static_cast<bool>(os);
}

void Tracer::discard() {
  Impl& im = impl();
  im.enabled.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(im.mutex);
  for (auto& buf : im.threads) buf->events.clear();
  im.dropped.store(0, std::memory_order_relaxed);
}

std::size_t Tracer::event_count() const {
  Impl& im = const_cast<Tracer*>(this)->impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  std::size_t n = 0;
  for (const auto& buf : im.threads) n += buf->events.size();
  return n;
}

void set_thread_name(const std::string& name) {
  Tracer::Impl& im = Tracer::instance().impl();
  ThreadBuf* buf = im.this_thread();
  std::lock_guard<std::mutex> lock(im.mutex);
  buf->name = name;
}

Span::Span(const char* name) noexcept : name_(nullptr) {
  if (t_capture != nullptr) {
    const std::size_t slot = t_capture->begin(name);
    if (slot != static_cast<std::size_t>(-1)) {
      capture_ = t_capture;
      slot_ = static_cast<std::uint32_t>(slot);
    }
  }
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  name_ = name;
  tracer.impl().record(name, 'B', 0, false);
}

Span::Span(const char* name, std::uint64_t arg) noexcept : name_(nullptr) {
  if (t_capture != nullptr) {
    const std::size_t slot = t_capture->begin(name);
    if (slot != static_cast<std::size_t>(-1)) {
      capture_ = t_capture;
      slot_ = static_cast<std::uint32_t>(slot);
    }
  }
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  name_ = name;
  tracer.impl().record(name, 'B', arg, true);
}

Span::~Span() {
  if (capture_ != nullptr) capture_->end(slot_);
  if (name_ == nullptr) return;
  Tracer& tracer = Tracer::instance();
  // If tracing stopped mid-span the B was already flushed or cleared; an E
  // recorded now would be unbalanced, so drop it.
  if (!tracer.enabled()) return;
  tracer.impl().record(name_, 'E', 0, false);
}

SpanCapture::SpanCapture(std::size_t max_spans) noexcept
    : max_spans_(max_spans),
      prev_(t_capture),
      epoch_(std::chrono::steady_clock::now()) {
  spans_.reserve(max_spans < 64 ? max_spans : std::size_t{64});
  t_capture = this;
}

SpanCapture::~SpanCapture() { t_capture = prev_; }

std::size_t SpanCapture::begin(const char* name) noexcept {
  // When full, the span is dropped and depth_ is left alone — the matching
  // end() never runs for dropped spans, so bumping it here would leak depth.
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return static_cast<std::size_t>(-1);
  }
  CapturedSpan span;
  span.name = name;
  span.start_us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - epoch_)
                      .count();
  span.dur_us = -1.0;
  span.depth = depth_++;
  spans_.push_back(span);
  return spans_.size() - 1;
}

void SpanCapture::end(std::size_t slot) noexcept {
  --depth_;
  CapturedSpan& span = spans_[slot];
  span.dur_us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - epoch_)
                    .count() -
                span.start_us;
}

}  // namespace aapx::obs
