// Prometheus text exposition (format 0.0.4) rendered from a
// MetricsSnapshot. This is what `aapx serve --admin` answers on GET
// /metrics, and it is deliberately a pure function of the snapshot: same
// snapshot, same bytes — counters first, then gauges, then histograms, each
// group in the snapshot's name order — so the output is golden-file
// testable and scrape diffs are meaningful.
//
// Name mapping: every metric is prefixed "aapx_" and characters outside
// [a-zA-Z0-9_:] become '_' ("engine.store.hits" -> "aapx_engine_store_hits").
// Gauges export their running maximum as a second "<name>_max" series.
// Histograms export cumulative "_bucket{le=...}" series over the log2
// bucket edges plus the exact "_sum"/"_count"/"_min"/"_max".
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace aapx::obs {

/// "aapx_" + name with every character outside [a-zA-Z0-9_:] replaced by
/// '_' (the fixed prefix also keeps a leading digit legal under the
/// Prometheus grammar).
std::string prometheus_name(std::string_view raw);

/// Escapes a label value for embedding between double quotes: backslash,
/// double quote and newline per the exposition spec.
std::string prometheus_label_escape(std::string_view s);

/// Writes the full exposition for `snap`. `info_labels`, when non-empty,
/// is emitted verbatim inside an `aapx_build_info{...} 1` series first
/// (caller composes it from prometheus_label_escape'd pairs).
void write_prometheus(const MetricsSnapshot& snap, std::ostream& os,
                      std::string_view info_labels = {});

/// write_prometheus into a string.
std::string prometheus_text(const MetricsSnapshot& snap,
                            std::string_view info_labels = {});

}  // namespace aapx::obs
