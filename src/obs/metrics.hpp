// Process-wide metrics registry: counters, gauges and log2-bucketed
// histograms, addressable by name from anywhere in the flow.
//
// Overhead discipline — the registry is always on (there is no enable flag)
// because the steady-state cost is designed to be unmeasurable:
//
//  * hot paths hold a reference obtained once (`static obs::Counter& c =
//    obs::metrics().counter("x");`) so the name lookup happens one time,
//  * Counter::add is a single relaxed atomic fetch_add,
//  * per-object statistics (TimedSim events, PackedFuncSim lanes) accumulate
//    in plain members and are flushed into the registry once, at object
//    destruction — never per event.
//
// Values never feed back into any analysis, so instrumentation cannot change
// results; reset() zeroes values but keeps every handle valid (node-stable
// map of unique_ptrs).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace aapx::obs {

/// Monotonic event count. Relaxed increments: totals are exact, ordering
/// against other metrics is not promised (and not needed).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value plus a running maximum (CAS loop, contention-free in
/// practice: gauges are written at coarse grains).
class Gauge {
 public:
  void set(double v) noexcept;
  /// Raises the running maximum (and the value) to at least `v`.
  void update_max(double v) noexcept;
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }
  void reset() noexcept;

 private:
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

/// Histogram over non-negative measures with power-of-two buckets: bucket 0
/// counts v < 1, bucket i (i >= 1) counts v in [2^(i-1), 2^i). Alongside the
/// buckets it tracks the exact sum, minimum and maximum (relaxed atomics /
/// contention-free CAS, same overhead discipline as the buckets), so the
/// exact mean is always derivable and the extremes are not quantized.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(double v) noexcept;
  std::uint64_t count() const noexcept;
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest value observed; 0 when the histogram is empty.
  double min() const noexcept;
  double max() const noexcept;
  std::uint64_t bucket(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  /// Lower edge of bucket i (0 for bucket 0).
  static double bucket_floor(int i) noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<double> sum_{0.0};
  /// min_/max_ start at +/-inf so the first observe() always wins the CAS
  /// race — the accessors translate the untouched sentinels back to 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

struct HistogramSample {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact smallest observation (0 when empty)
  double max = 0.0;  ///< exact largest observation (0 when empty)
  /// (bucket index, count) for non-empty buckets only.
  std::vector<std::pair<int, std::uint64_t>> buckets;
};

/// Quantile estimate (q in [0, 1]) from the log2 buckets: the bucket holding
/// the q-th observation is found exactly, the position inside it is linearly
/// interpolated, and the result is clamped to the exact [min, max] — so p0
/// and p100 are exact and every estimate is off by at most one bucket width.
double histogram_quantile(const HistogramSample& sample, double q);

/// Point-in-time copy of every registered metric, in name order.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// name -> (value, max)
  std::vector<std::pair<std::string, std::pair<double, double>>> gauges;
  std::vector<std::pair<std::string, HistogramSample>> histograms;
};

class MetricsRegistry {
 public:
  /// Registries are constructible: each aapx::Context owns a private one so
  /// concurrent tenants never share counters. instance() remains the
  /// process-default registry (what Context::process_default() routes to).
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& instance();

  /// Returns the metric with this name, creating it on first use. The
  /// returned reference stays valid for the process lifetime (including
  /// across reset()). Creating the same name as two different kinds throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
  void write_json(std::ostream& os) const;
  /// Zeroes every metric value; handles remain valid. Test isolation only.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::instance().
MetricsRegistry& metrics();

}  // namespace aapx::obs
