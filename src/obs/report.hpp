// Offline analysis of the instrumentation artifacts: schema validation and
// summarization of Chrome trace files, JSONL run logs and metrics snapshots.
// Consumed by the `aapx report` subcommand and by the trace_schema tests;
// returns plain data so callers own the presentation.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace aapx::obs {

// --- trace files -----------------------------------------------------------

/// Structural validation of a Chrome trace-event document as this layer
/// emits it: object with a traceEvents array; every event an object with
/// string "ph"/"name" and numeric "pid"/"tid" (plus numeric "ts" on B/E);
/// per-tid B/E events balanced in stack (LIFO, matching names) order.
/// Returns one message per violation; empty = valid.
std::vector<std::string> validate_trace(const JsonValue& doc);

/// Aggregated statistics of one span name.
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  double incl_us = 0.0;  ///< summed inclusive time
  double max_us = 0.0;   ///< longest single span
};

struct TraceSummary {
  std::vector<SpanStat> spans;  ///< sorted by inclusive time, descending
  std::size_t events = 0;       ///< B/E events (metadata excluded)
  std::size_t threads = 0;      ///< distinct tids with at least one span
  double wall_us = 0.0;         ///< max E timestamp seen
};

/// Summarizes a (valid) trace; unbalanced remnants are skipped, not fatal.
TraceSummary summarize_trace(const JsonValue& doc);

// --- JSONL run logs --------------------------------------------------------

/// Reads one record per line. Blank lines are skipped; parse failures are
/// reported into `errors` (line-numbered) and omitted from the result.
std::vector<JsonValue> parse_jsonl(std::istream& is,
                                   std::vector<std::string>* errors);

/// Validates one run-log record: must be an object with a string "type";
/// known types must carry their required fields with the right JSON types
/// (unknown types are allowed — the schema is open). Empty = valid.
std::vector<std::string> validate_log_record(const JsonValue& record);

/// One row of the controller decision timeline (type == "control_event").
struct DecisionRow {
  int epoch = 0;
  double years = 0.0;
  double sensor_years = 0.0;
  std::string trigger;
  std::string outcome;
  int from_precision = 0;
  int to_precision = 0;
  double sta_delay_ps = 0.0;
};

struct LogSummary {
  /// (type, count) in first-appearance order.
  std::vector<std::pair<std::string, std::uint64_t>> type_counts;
  std::vector<DecisionRow> decisions;
};

LogSummary summarize_log(const std::vector<JsonValue>& records);

// --- metrics snapshots -----------------------------------------------------

/// Hit/miss pair derived from counters named "<name>_hits"/"<name>_misses".
struct CacheRate {
  std::string name;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  double rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Extracts every *_hits/*_misses counter pair from a metrics JSON document
/// (as MetricsRegistry::to_json emits), sorted by name.
std::vector<CacheRate> cache_rates_from_metrics(const JsonValue& doc);

/// The incremental-STA engine's counters from a metrics JSON document.
/// `present` is false when none of the engine.sta.incremental.* counters
/// appear (the run never constructed an IncrementalSta).
struct IncrementalStaStats {
  std::uint64_t hits = 0;            ///< queries served from cached arrivals
  std::uint64_t dirty_gates = 0;     ///< gates re-propagated across all hits
  std::uint64_t full_fallbacks = 0;  ///< queries that needed a full pass
  bool present = false;
};
IncrementalStaStats incremental_sta_from_metrics(const JsonValue& doc);

}  // namespace aapx::obs
