// Offline analysis of the instrumentation artifacts: schema validation and
// summarization of Chrome trace files, JSONL run logs and metrics snapshots.
// Consumed by the `aapx report` subcommand and by the trace_schema tests;
// returns plain data so callers own the presentation.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace aapx::obs {

// --- trace files -----------------------------------------------------------

/// Structural validation of a Chrome trace-event document as this layer
/// emits it: object with a traceEvents array; every event an object with
/// string "ph"/"name" and numeric "pid"/"tid" (plus numeric "ts" on B/E);
/// per-tid B/E events balanced in stack (LIFO, matching names) order.
/// Returns one message per violation; empty = valid.
std::vector<std::string> validate_trace(const JsonValue& doc);

/// Aggregated statistics of one span name.
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  double incl_us = 0.0;  ///< summed inclusive time
  double max_us = 0.0;   ///< longest single span
};

struct TraceSummary {
  std::vector<SpanStat> spans;  ///< sorted by inclusive time, descending
  std::size_t events = 0;       ///< B/E events (metadata excluded)
  std::size_t threads = 0;      ///< distinct tids with at least one span
  double wall_us = 0.0;         ///< max E timestamp seen
};

/// Summarizes a (valid) trace; unbalanced remnants are skipped, not fatal.
TraceSummary summarize_trace(const JsonValue& doc);

// --- JSONL run logs --------------------------------------------------------

/// Reads one record per line. Blank lines are skipped; parse failures are
/// reported into `errors` (line-numbered) and omitted from the result.
std::vector<JsonValue> parse_jsonl(std::istream& is,
                                   std::vector<std::string>* errors);

/// Validates one run-log record: must be an object with a string "type";
/// known types must carry their required fields with the right JSON types
/// (unknown types are allowed — the schema is open). Empty = valid.
std::vector<std::string> validate_log_record(const JsonValue& record);

/// One row of the controller decision timeline (type == "control_event").
struct DecisionRow {
  int epoch = 0;
  double years = 0.0;
  double sensor_years = 0.0;
  std::string trigger;
  std::string outcome;
  int from_precision = 0;
  int to_precision = 0;
  double sta_delay_ps = 0.0;
};

struct LogSummary {
  /// (type, count) in first-appearance order.
  std::vector<std::pair<std::string, std::uint64_t>> type_counts;
  std::vector<DecisionRow> decisions;
};

LogSummary summarize_log(const std::vector<JsonValue>& records);

// --- metrics snapshots -----------------------------------------------------

/// Hit/miss pair derived from counters named "<name>_hits"/"<name>_misses".
struct CacheRate {
  std::string name;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  double rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Extracts every *_hits/*_misses counter pair from a metrics JSON document
/// (as MetricsRegistry::to_json emits), sorted by name.
std::vector<CacheRate> cache_rates_from_metrics(const JsonValue& doc);

/// The incremental-STA engine's counters from a metrics JSON document.
/// `present` is false when none of the engine.sta.incremental.* counters
/// appear (the run never constructed an IncrementalSta).
struct IncrementalStaStats {
  std::uint64_t hits = 0;            ///< queries served from cached arrivals
  std::uint64_t dirty_gates = 0;     ///< gates re-propagated across all hits
  std::uint64_t full_fallbacks = 0;  ///< queries that needed a full pass
  bool present = false;
};
IncrementalStaStats incremental_sta_from_metrics(const JsonValue& doc);

/// The learned-surrogate fast path's counters from a metrics JSON document.
/// `present` is false when no engine.surrogate.* counter appears (the run
/// never armed --surrogate and never trained a model).
struct SurrogateStats {
  std::uint64_t hits = 0;       ///< queries answered within the bound
  std::uint64_t fallbacks = 0;  ///< declined queries routed to exact STA
  std::uint64_t models = 0;     ///< models trained/installed this run
  bool present = false;
  double hit_rate() const {
    const std::uint64_t total = hits + fallbacks;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};
SurrogateStats surrogate_from_metrics(const JsonValue& doc);

/// One aging-engine counter (the aging.* namespace: per-mechanism
/// drift/hazard evaluation counts, lifetime Monte-Carlo dies, controller
/// failover decisions).
struct AgingCounterRow {
  std::string name;
  std::uint64_t value = 0;
};

/// Extracts every aging.* counter from a metrics JSON document,
/// name-ordered. Empty for runs under the default BTI-only model — those
/// register no aging.* counters, which is what keeps their snapshots
/// byte-identical to the pre-mechanism engine.
std::vector<AgingCounterRow> aging_counters_from_metrics(const JsonValue& doc);

/// One histogram from a metrics JSON document, with the exact aggregates
/// (count/sum/min/max travel losslessly through the snapshot) and the
/// bucket-interpolated quantiles.
struct HistogramRow {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Extracts every histogram from a metrics JSON document (as
/// MetricsRegistry::to_json emits), name-ordered. Histograms with a zero
/// count are skipped.
std::vector<HistogramRow> histograms_from_metrics(const JsonValue& doc);

// --- service run-log directories -------------------------------------------

/// Aggregate view over `aapx serve --log-dir` per-request run logs
/// (req_<seq>.jsonl files, concatenated into one record stream).
struct ServiceLogSummary {
  std::uint64_t requests = 0;   ///< "request" records seen
  std::uint64_t cancelled = 0;  ///< "cancelled" records seen
  /// Request counts by op ("characterize", ...), first-appearance order.
  std::vector<std::pair<std::string, std::uint64_t>> ops;
  /// Response counts by response msg ("ok_surface", "error", ...), plus one
  /// "cancelled" entry when any request was cancelled.
  std::vector<std::pair<std::string, std::uint64_t>> outcomes;
};
ServiceLogSummary summarize_service_log(const std::vector<JsonValue>& records);

// --- snapshot diffing -------------------------------------------------------

/// One metric's value in two artifacts being diffed. `in_a`/`in_b` mark
/// presence: a metric present on only one side diffs as appeared/vanished
/// rather than as a delta from zero.
struct MetricDelta {
  std::string name;
  double a = 0.0;
  double b = 0.0;
  bool in_a = false;
  bool in_b = false;

  double delta() const { return b - a; }
  /// Relative change in percent; 0 when the base is 0 or a side is missing.
  double pct() const {
    return (!in_a || !in_b || a == 0.0) ? 0.0 : (b - a) / a * 100.0;
  }
};

/// Flattens every numeric leaf of a JSON document into ("dotted.path",
/// value) pairs, name-ordered. Arrays are skipped (histogram bucket lists
/// are positional, not metrics). Works on metrics snapshots and
/// BENCH_*.json files alike.
std::vector<std::pair<std::string, double>> flatten_numeric(
    const JsonValue& doc);

/// Name-joined diff of two flattened documents; metrics present on either
/// side appear exactly once, name-ordered.
std::vector<MetricDelta> diff_numeric(const JsonValue& a, const JsonValue& b);

}  // namespace aapx::obs
