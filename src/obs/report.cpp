#include "obs/report.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "obs/metrics.hpp"

namespace aapx::obs {
namespace {

bool is_num_field(const JsonValue& ev, const char* key) {
  const JsonValue* v = ev.find(key);
  return v != nullptr && v->is_number();
}

bool is_str_field(const JsonValue& ev, const char* key) {
  const JsonValue* v = ev.find(key);
  return v != nullptr && v->is_string();
}

}  // namespace

std::vector<std::string> validate_trace(const JsonValue& doc) {
  std::vector<std::string> errors;
  if (!doc.is_object()) {
    errors.push_back("trace: top level is not an object");
    return errors;
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    errors.push_back("trace: missing traceEvents array");
    return errors;
  }
  // Per-tid stack of open span names for balance checking.
  std::map<double, std::vector<std::string>> stacks;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    const std::string at = "trace event " + std::to_string(i);
    if (!ev.is_object()) {
      errors.push_back(at + ": not an object");
      continue;
    }
    if (!is_str_field(ev, "ph") || !is_str_field(ev, "name")) {
      errors.push_back(at + ": missing ph/name");
      continue;
    }
    if (!is_num_field(ev, "pid") || !is_num_field(ev, "tid")) {
      errors.push_back(at + ": missing pid/tid");
      continue;
    }
    const std::string ph = ev.find("ph")->string;
    if (ph == "M") continue;  // metadata
    if (ph != "B" && ph != "E") {
      errors.push_back(at + ": unexpected ph '" + ph + "'");
      continue;
    }
    if (!is_num_field(ev, "ts")) {
      errors.push_back(at + ": B/E event without ts");
      continue;
    }
    const double tid = ev.find("tid")->number;
    const std::string& name = ev.find("name")->string;
    auto& stack = stacks[tid];
    if (ph == "B") {
      stack.push_back(name);
    } else {
      if (stack.empty()) {
        errors.push_back(at + ": E '" + name + "' with no open span");
      } else if (stack.back() != name) {
        errors.push_back(at + ": E '" + name + "' but open span is '" +
                         stack.back() + "'");
        stack.pop_back();
      } else {
        stack.pop_back();
      }
    }
  }
  for (const auto& [tid, stack] : stacks) {
    for (const std::string& name : stack) {
      errors.push_back("trace: unclosed span '" + name + "' on tid " +
                       std::to_string(static_cast<long>(tid)));
    }
  }
  return errors;
}

TraceSummary summarize_trace(const JsonValue& doc) {
  TraceSummary summary;
  const JsonValue* events =
      doc.is_object() ? doc.find("traceEvents") : nullptr;
  if (events == nullptr || !events->is_array()) return summary;

  struct Open {
    std::string name;
    double ts = 0.0;
  };
  std::map<double, std::vector<Open>> stacks;
  std::map<std::string, SpanStat> stats;
  std::set<double> tids;

  for (const JsonValue& ev : events->array) {
    if (!ev.is_object()) continue;
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->string == "M") continue;
    const JsonValue* name = ev.find("name");
    const JsonValue* ts = ev.find("ts");
    const JsonValue* tid = ev.find("tid");
    if (name == nullptr || ts == nullptr || tid == nullptr) continue;
    ++summary.events;
    auto& stack = stacks[tid->number];
    if (ph->string == "B") {
      stack.push_back({name->string, ts->number});
      tids.insert(tid->number);
    } else if (ph->string == "E" && !stack.empty() &&
               stack.back().name == name->string) {
      const double dur = ts->number - stack.back().ts;
      stack.pop_back();
      SpanStat& s = stats[name->string];
      s.name = name->string;
      ++s.count;
      s.incl_us += dur;
      s.max_us = std::max(s.max_us, dur);
      summary.wall_us = std::max(summary.wall_us, ts->number);
    }
  }
  summary.threads = tids.size();
  summary.spans.reserve(stats.size());
  for (auto& [name, stat] : stats) summary.spans.push_back(std::move(stat));
  std::sort(summary.spans.begin(), summary.spans.end(),
            [](const SpanStat& a, const SpanStat& b) {
              if (a.incl_us != b.incl_us) return a.incl_us > b.incl_us;
              return a.name < b.name;
            });
  return summary;
}

std::vector<JsonValue> parse_jsonl(std::istream& is,
                                   std::vector<std::string>* errors) {
  std::vector<JsonValue> records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string error;
    std::optional<JsonValue> v = json_parse(line, &error);
    if (!v) {
      if (errors != nullptr) {
        errors->push_back("line " + std::to_string(lineno) + ": " + error);
      }
      continue;
    }
    records.push_back(std::move(*v));
  }
  return records;
}

namespace {

/// Required fields per known record type: (field, must_be_string).
struct FieldSpec {
  const char* name;
  bool is_string;
};

const std::map<std::string, std::vector<FieldSpec>>& known_types() {
  static const std::map<std::string, std::vector<FieldSpec>> types = {
      {"manifest", {{"schema", true}}},
      {"campaign_start",
       {{"component", true},
        {"mode", true},
        {"epochs", false},
        {"lifetime_years", false},
        {"constraint_ps", false}}},
      {"epoch",
       {{"epoch", false},
        {"years", false},
        {"precision", false},
        {"vectors", false},
        {"errors", false}}},
      {"control_event",
       {{"epoch", false},
        {"years", false},
        {"sensor_years", false},
        {"trigger", true},
        {"outcome", true},
        {"from_precision", false},
        {"to_precision", false}}},
      {"campaign_end",
       {{"total_errors", false},
        {"total_vectors", false},
        {"final_precision", false},
        {"converged_clean", false}}},
      {"sweep_start",
       {{"component", true}, {"points", false}, {"scenarios", false}}},
      {"sweep_point",
       {{"component", true}, {"precision", false}, {"fresh_ps", false}}},
      {"sta_query", {{"kind", true}, {"gates", false}, {"max_delay_ps", false}}},
      {"surrogate_query",
       {{"kind", true}, {"bound_ps", false}, {"max_delay_ps", false}}},
      // Service-layer records (aapx serve per-request logs).
      {"request", {{"msg", true}, {"request_id", false}}},
      {"response", {{"msg", true}, {"request_id", false}}},
      {"cancelled", {{"where", true}, {"reason", true}}},
  };
  return types;
}

}  // namespace

std::vector<std::string> validate_log_record(const JsonValue& record) {
  std::vector<std::string> errors;
  if (!record.is_object()) {
    errors.push_back("record is not an object");
    return errors;
  }
  const JsonValue* type = record.find("type");
  if (type == nullptr || !type->is_string()) {
    errors.push_back("record has no string 'type'");
    return errors;
  }
  const auto it = known_types().find(type->string);
  if (it == known_types().end()) return errors;  // open schema
  for (const FieldSpec& spec : it->second) {
    const JsonValue* v = record.find(spec.name);
    if (v == nullptr) {
      errors.push_back(type->string + ": missing field '" + spec.name + "'");
    } else if (spec.is_string ? !v->is_string()
                              : !(v->is_number() || v->is_bool())) {
      errors.push_back(type->string + ": field '" + spec.name +
                       "' has wrong type");
    }
  }
  return errors;
}

LogSummary summarize_log(const std::vector<JsonValue>& records) {
  LogSummary summary;
  for (const JsonValue& record : records) {
    if (!record.is_object()) continue;
    const std::string type = record.str_or("type", "<untyped>");
    auto it = std::find_if(summary.type_counts.begin(),
                           summary.type_counts.end(),
                           [&](const auto& tc) { return tc.first == type; });
    if (it == summary.type_counts.end()) {
      summary.type_counts.emplace_back(type, 1);
    } else {
      ++it->second;
    }
    if (type == "control_event") {
      DecisionRow row;
      row.epoch = static_cast<int>(record.num_or("epoch", 0));
      row.years = record.num_or("years", 0.0);
      row.sensor_years = record.num_or("sensor_years", 0.0);
      row.trigger = record.str_or("trigger", "?");
      row.outcome = record.str_or("outcome", "?");
      row.from_precision = static_cast<int>(record.num_or("from_precision", 0));
      row.to_precision = static_cast<int>(record.num_or("to_precision", 0));
      row.sta_delay_ps = record.num_or("verified_sta_delay_ps", 0.0);
      summary.decisions.push_back(std::move(row));
    }
  }
  return summary;
}

std::vector<CacheRate> cache_rates_from_metrics(const JsonValue& doc) {
  std::vector<CacheRate> rates;
  const JsonValue* counters =
      doc.is_object() ? doc.find("counters") : nullptr;
  if (counters == nullptr || !counters->is_object()) return rates;
  std::map<std::string, CacheRate> by_name;
  for (const auto& [name, value] : counters->object) {
    if (!value.is_number()) continue;
    const auto strip = [&](const char* suffix) -> std::string {
      const std::string_view sv(suffix);
      if (name.size() > sv.size() &&
          name.compare(name.size() - sv.size(), sv.size(), sv) == 0) {
        return name.substr(0, name.size() - sv.size());
      }
      return {};
    };
    if (const std::string base = strip("_hits"); !base.empty()) {
      by_name[base].name = base;
      by_name[base].hits = static_cast<std::uint64_t>(value.number);
    } else if (const std::string base2 = strip("_misses"); !base2.empty()) {
      by_name[base2].name = base2;
      by_name[base2].misses = static_cast<std::uint64_t>(value.number);
    }
  }
  for (auto& [name, rate] : by_name) rates.push_back(std::move(rate));
  return rates;
}

IncrementalStaStats incremental_sta_from_metrics(const JsonValue& doc) {
  IncrementalStaStats stats;
  const JsonValue* counters =
      doc.is_object() ? doc.find("counters") : nullptr;
  if (counters == nullptr || !counters->is_object()) return stats;
  const auto read = [&](const char* name, std::uint64_t& out) {
    const JsonValue* v = counters->find(name);
    if (v == nullptr || !v->is_number()) return;
    out = static_cast<std::uint64_t>(v->number);
    stats.present = true;
  };
  read("engine.sta.incremental.hits", stats.hits);
  read("engine.sta.incremental.dirty_gates", stats.dirty_gates);
  read("engine.sta.incremental.full_fallbacks", stats.full_fallbacks);
  return stats;
}

SurrogateStats surrogate_from_metrics(const JsonValue& doc) {
  SurrogateStats stats;
  const JsonValue* counters =
      doc.is_object() ? doc.find("counters") : nullptr;
  if (counters == nullptr || !counters->is_object()) return stats;
  const auto read = [&](const char* name, std::uint64_t& out) {
    const JsonValue* v = counters->find(name);
    if (v == nullptr || !v->is_number()) return;
    out = static_cast<std::uint64_t>(v->number);
    stats.present = true;
  };
  read("engine.surrogate.hits", stats.hits);
  read("engine.surrogate.fallbacks", stats.fallbacks);
  read("engine.surrogate.models", stats.models);
  return stats;
}

std::vector<AgingCounterRow> aging_counters_from_metrics(
    const JsonValue& doc) {
  std::vector<AgingCounterRow> rows;
  const JsonValue* counters =
      doc.is_object() ? doc.find("counters") : nullptr;
  if (counters == nullptr || !counters->is_object()) return rows;
  std::map<std::string, std::uint64_t> by_name;
  for (const auto& [name, value] : counters->object) {
    if (!value.is_number()) continue;
    if (name.rfind("aging.", 0) != 0) continue;
    by_name[name] = static_cast<std::uint64_t>(value.number);
  }
  for (const auto& [name, count] : by_name) rows.push_back({name, count});
  return rows;
}

std::vector<HistogramRow> histograms_from_metrics(const JsonValue& doc) {
  std::vector<HistogramRow> rows;
  const JsonValue* hists =
      doc.is_object() ? doc.find("histograms") : nullptr;
  if (hists == nullptr || !hists->is_object()) return rows;
  for (const auto& [name, h] : hists->object) {
    if (!h.is_object()) continue;
    HistogramSample sample;
    sample.count = static_cast<std::uint64_t>(h.num_or("count", 0.0));
    if (sample.count == 0) continue;
    sample.sum = h.num_or("sum", 0.0);
    sample.min = h.num_or("min", 0.0);
    sample.max = h.num_or("max", 0.0);
    if (const JsonValue* buckets = h.find("buckets");
        buckets != nullptr && buckets->is_array()) {
      for (const JsonValue& b : buckets->array) {
        if (!b.is_array() || b.array.size() != 2 || !b.array[0].is_number() ||
            !b.array[1].is_number()) {
          continue;
        }
        sample.buckets.emplace_back(
            static_cast<int>(b.array[0].number),
            static_cast<std::uint64_t>(b.array[1].number));
      }
    }
    HistogramRow row;
    row.name = name;
    row.count = sample.count;
    row.sum = sample.sum;
    row.min = sample.min;
    row.max = sample.max;
    row.p50 = histogram_quantile(sample, 0.50);
    row.p95 = histogram_quantile(sample, 0.95);
    row.p99 = histogram_quantile(sample, 0.99);
    rows.push_back(std::move(row));
  }
  return rows;
}

ServiceLogSummary summarize_service_log(const std::vector<JsonValue>& records) {
  ServiceLogSummary summary;
  const auto bump = [](std::vector<std::pair<std::string, std::uint64_t>>& v,
                       const std::string& key) {
    const auto it = std::find_if(
        v.begin(), v.end(), [&](const auto& e) { return e.first == key; });
    if (it == v.end()) {
      v.emplace_back(key, 1);
    } else {
      ++it->second;
    }
  };
  for (const JsonValue& record : records) {
    if (!record.is_object()) continue;
    const std::string type = record.str_or("type", "");
    if (type == "request") {
      ++summary.requests;
      bump(summary.ops, record.str_or("msg", "<unknown>"));
    } else if (type == "response") {
      bump(summary.outcomes, record.str_or("msg", "<unknown>"));
    } else if (type == "cancelled") {
      ++summary.cancelled;
      bump(summary.outcomes, "cancelled");
    }
  }
  return summary;
}

namespace {

void flatten_into(const JsonValue& v, const std::string& prefix,
                  std::vector<std::pair<std::string, double>>& out) {
  if (v.is_number()) {
    out.emplace_back(prefix, v.number);
  } else if (v.is_object()) {
    for (const auto& [key, child] : v.object) {
      flatten_into(child, prefix.empty() ? key : prefix + "." + key, out);
    }
  }
  // Arrays (histogram bucket lists) are positional, not metrics: skipped.
}

}  // namespace

std::vector<std::pair<std::string, double>> flatten_numeric(
    const JsonValue& doc) {
  std::vector<std::pair<std::string, double>> out;
  flatten_into(doc, "", out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<MetricDelta> diff_numeric(const JsonValue& a, const JsonValue& b) {
  const auto fa = flatten_numeric(a);
  const auto fb = flatten_numeric(b);
  std::vector<MetricDelta> out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < fa.size() || j < fb.size()) {
    MetricDelta d;
    const bool take_a =
        j >= fb.size() || (i < fa.size() && fa[i].first <= fb[j].first);
    const bool take_b =
        i >= fa.size() || (j < fb.size() && fb[j].first <= fa[i].first);
    d.name = take_a ? fa[i].first : fb[j].first;
    if (take_a) {
      d.in_a = true;
      d.a = fa[i++].second;
    }
    if (take_b) {
      d.in_b = true;
      d.b = fb[j++].second;
    }
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace aapx::obs
