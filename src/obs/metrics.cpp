#include "obs/metrics.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace aapx::obs {

void Gauge::set(double v) noexcept {
  value_.store(v, std::memory_order_relaxed);
  update_max(v);
}

void Gauge::update_max(double v) noexcept {
  double cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  double val = value_.load(std::memory_order_relaxed);
  while (v > val &&
         !value_.compare_exchange_weak(val, v, std::memory_order_relaxed)) {
  }
}

void Gauge::reset() noexcept {
  value_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

namespace {

int bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // v < 1 and NaN both land in bucket 0
  const int e = std::ilogb(v) + 1;
  return e >= Histogram::kBuckets ? Histogram::kBuckets - 1 : e;
}

}  // namespace

void Histogram::observe(double v) noexcept {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (v < lo &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (v > hi &&
         !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const noexcept {
  const double m = min_.load(std::memory_order_relaxed);
  return std::isinf(m) ? 0.0 : m;
}

double Histogram::max() const noexcept {
  const double m = max_.load(std::memory_order_relaxed);
  return std::isinf(m) ? 0.0 : m;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::bucket_floor(int i) noexcept {
  return i <= 0 ? 0.0 : std::ldexp(1.0, i - 1);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double histogram_quantile(const HistogramSample& sample, double q) {
  if (sample.count == 0) return 0.0;
  if (q <= 0.0) return sample.min;
  if (q >= 1.0) return sample.max;
  // Rank of the target observation (1-based, nearest-rank with interpolation
  // inside the owning bucket).
  const double rank = q * static_cast<double>(sample.count);
  double seen = 0.0;
  for (const auto& [index, n] : sample.buckets) {
    const double next = seen + static_cast<double>(n);
    if (rank <= next) {
      const double lo = Histogram::bucket_floor(index);
      const double hi = index + 1 >= Histogram::kBuckets
                            ? sample.max
                            : Histogram::bucket_floor(index + 1);
      const double frac = (rank - seen) / static_cast<double>(n);
      double est = lo + (hi - lo) * frac;
      if (est < sample.min) est = sample.min;
      if (est > sample.max) est = sample.max;
      return est;
    }
    seen = next;
  }
  return sample.max;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked on exit
  return *registry;
}

MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) || histograms_.count(name)) {
    throw std::logic_error("metric '" + name + "' already has another kind");
  }
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) || histograms_.count(name)) {
    throw std::logic_error("metric '" + name + "' already has another kind");
  }
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) || gauges_.count(name)) {
    throw std::logic_error("metric '" + name + "' already has another kind");
  }
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, std::make_pair(g->value(), g->max()));
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSample sample;
    sample.count = h->count();
    sample.sum = h->sum();
    sample.min = h->min();
    sample.max = h->max();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n > 0) sample.buckets.emplace_back(i, n);
    }
    snap.histograms.emplace_back(name, std::move(sample));
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, vm] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":{\"value\":" + json_num(vm.first) +
           ",\"max\":" + json_num(vm.second) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) +
           "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + json_num(h.sum) + ",\"min\":" + json_num(h.min) +
           ",\"max\":" + json_num(h.max) + ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& [index, n] : h.buckets) {
      if (!bfirst) out += ',';
      bfirst = false;
      out += "[" + std::to_string(index) + "," + std::to_string(n) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << to_json() << "\n";
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace aapx::obs
