// Hierarchical tracing with Chrome trace-event JSON output.
//
// Spans are RAII: `obs::Span span("characterize");` records a B(egin) event
// on construction and an E(nd) event on destruction, on the calling thread's
// own timeline — so spans opened inside parallel_for bodies nest under the
// worker thread that ran the grain, and the written file shows the real
// fork/join shape in Perfetto or chrome://tracing.
//
// Overhead discipline: when tracing is disabled (the default) a Span costs
// one relaxed atomic load and nothing else — no allocation, no clock read,
// no branch the optimizer cannot fold. Timestamps are steady-clock and only
// ever appear inside the trace file, never in analysis results.
//
// Quiescence contract: start() and stop_and_write() must be called outside
// any parallel region (parallel_for is a barrier, so "after it returned" is
// enough). Per-thread buffers are written to only by their owning thread
// while enabled; stop merges them under the registry lock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace aapx::obs {

class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const noexcept;
  /// Clears previous events and begins collecting.
  void start();
  /// Stops collecting, writes the Chrome trace-event document, clears
  /// buffers. A no-op document ({"traceEvents":[]}) when never started.
  void stop_and_write(std::ostream& os);
  /// stop_and_write into a file; false if the file cannot be opened.
  bool stop_and_write_file(const std::string& path);
  /// Stops collecting and drops everything collected.
  void discard();
  /// Events currently buffered across all threads (diagnostic/test hook).
  std::size_t event_count() const;

 private:
  Tracer() = default;
  friend class Span;
  friend void set_thread_name(const std::string& name);

  struct Impl;
  Impl& impl();
};

/// Names the calling thread's row in the trace (pool workers call this once
/// at spawn). Safe to call whether or not tracing is active.
void set_thread_name(const std::string& name);

/// RAII span. Optionally carries one numeric argument (e.g. the item count
/// of a parallel_for), emitted as args.n on the begin event.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  Span(const char* name, std::uint64_t arg) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;  ///< nullptr when tracing was disabled at construction
};

}  // namespace aapx::obs
