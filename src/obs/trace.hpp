// Hierarchical tracing with Chrome trace-event JSON output.
//
// Spans are RAII: `obs::Span span("characterize");` records a B(egin) event
// on construction and an E(nd) event on destruction, on the calling thread's
// own timeline — so spans opened inside parallel_for bodies nest under the
// worker thread that ran the grain, and the written file shows the real
// fork/join shape in Perfetto or chrome://tracing.
//
// Overhead discipline: when tracing is disabled (the default) a Span costs
// one relaxed atomic load and nothing else — no allocation, no clock read,
// no branch the optimizer cannot fold. Timestamps are steady-clock and only
// ever appear inside the trace file, never in analysis results.
//
// Quiescence contract: start() and stop_and_write() must be called outside
// any parallel region (parallel_for is a barrier, so "after it returned" is
// enough). Per-thread buffers are written to only by their owning thread
// while enabled; stop merges them under the registry lock.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace aapx::obs {

class SpanCapture;

class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const noexcept;
  /// Clears previous events and begins collecting.
  void start();
  /// Stops collecting, writes the Chrome trace-event document, clears
  /// buffers. A no-op document ({"traceEvents":[]}) when never started.
  void stop_and_write(std::ostream& os);
  /// stop_and_write into a file; false if the file cannot be opened.
  bool stop_and_write_file(const std::string& path);
  /// Stops collecting and drops everything collected.
  void discard();
  /// Events currently buffered across all threads (diagnostic/test hook).
  std::size_t event_count() const;

 private:
  Tracer() = default;
  friend class Span;
  friend void set_thread_name(const std::string& name);

  struct Impl;
  Impl& impl();
};

/// Names the calling thread's row in the trace (pool workers call this once
/// at spawn). Safe to call whether or not tracing is active.
void set_thread_name(const std::string& name);

/// RAII span. Optionally carries one numeric argument (e.g. the item count
/// of a parallel_for), emitted as args.n on the begin event.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  Span(const char* name, std::uint64_t arg) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;  ///< nullptr when tracing was disabled at construction
  SpanCapture* capture_ = nullptr;  ///< non-null while a sink owns slot_
  std::uint32_t slot_ = 0;
};

/// One completed span collected by a SpanCapture sink. Times are
/// steady-clock microseconds relative to the sink's construction.
struct CapturedSpan {
  const char* name = nullptr;  ///< string literal owned by the call site
  double start_us = 0.0;
  double dur_us = 0.0;  ///< -1 while still open (sink destroyed mid-span)
  int depth = 0;        ///< nesting depth at begin, outermost = 0
};

/// Thread-local span sink: while one is alive on a thread, every Span
/// opened on that thread is ALSO recorded here — independently of (and in
/// addition to) the global Tracer, which may be off. This is how the
/// server captures a per-request span tree without turning process-wide
/// tracing on for every tenant: the request worker installs a SpanCapture,
/// runs the request, and streams the captured tree to the request-trace
/// file under the request's trace id.
///
/// Scope contract: the sink only sees spans on its own thread (spans opened
/// inside parallel_for grains on pool threads are not captured), and it
/// must outlive every span opened while it is installed. Sinks nest: a new
/// sink shadows the previous one until destroyed.
///
/// Cost when no sink is installed: one additional thread-local load on the
/// Span fast path, nothing else.
class SpanCapture {
 public:
  explicit SpanCapture(std::size_t max_spans = 256) noexcept;
  ~SpanCapture();
  SpanCapture(const SpanCapture&) = delete;
  SpanCapture& operator=(const SpanCapture&) = delete;

  /// Completed (and still-open) spans in begin order.
  const std::vector<CapturedSpan>& spans() const noexcept { return spans_; }
  /// Spans not recorded because max_spans was reached.
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  friend class Span;

  /// Returns the slot index, or SIZE_MAX when full.
  std::size_t begin(const char* name) noexcept;
  void end(std::size_t slot) noexcept;

  std::vector<CapturedSpan> spans_;
  std::size_t max_spans_;
  std::uint64_t dropped_ = 0;
  int depth_ = 0;
  SpanCapture* prev_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace aapx::obs
