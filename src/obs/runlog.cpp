#include "obs/runlog.hpp"

#ifndef AAPX_BUILD_TYPE
#define AAPX_BUILD_TYPE "unknown"
#endif
#ifndef AAPX_SANITIZE_MODE
#define AAPX_SANITIZE_MODE "OFF"
#endif

namespace aapx::obs {

RunLog& RunLog::instance() {
  static RunLog* log = new RunLog();  // leaked; usable until process exit
  return *log;
}

bool RunLog::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) out_.close();
  out_.open(path, std::ios::trunc);
  const bool ok = static_cast<bool>(out_);
  enabled_.store(ok, std::memory_order_relaxed);
  return ok;
}

void RunLog::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  if (out_.is_open()) out_.close();
}

void RunLog::emit(std::string_view type, const JsonWriter& fields) {
  if (!enabled()) return;
  std::string line = "{\"type\":\"";
  line += json_escape(type);
  line += '"';
  if (!fields.empty()) {
    line += ',';
    line += fields.body();
  }
  line += "}\n";
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) out_ << line;
}

void RunLog::emit(std::string_view type) { emit(type, JsonWriter()); }

void emit_manifest(const JsonWriter& caller_fields) {
  emit_manifest(RunLog::instance(), caller_fields);
}

void emit_manifest(RunLog& log, const JsonWriter& caller_fields) {
  if (!log.enabled()) return;
  JsonWriter w;
  w.field("schema", kRunLogSchema)
      .field("build_type", AAPX_BUILD_TYPE)
      .field("sanitize", AAPX_SANITIZE_MODE)
#if defined(__VERSION__)
      .field("compiler", __VERSION__);
#else
      .field("compiler", "unknown");
#endif
  w.append(caller_fields);
  log.emit("manifest", w);
}

}  // namespace aapx::obs
