#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace aapx::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  // JSON has no inf/nan literals; clamp to null-safe strings never produced
  // by our own instrumentation but defended against anyway.
  std::string s = buf;
  if (s.find("inf") != std::string::npos || s.find("nan") != std::string::npos) {
    return "0";
  }
  return s;
}

void JsonWriter::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonWriter& JsonWriter::field(std::string_view k, std::string_view value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, const char* value) {
  return field(k, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view k, double value) {
  key(k);
  body_ += json_num(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, int value) {
  return field(k, static_cast<std::int64_t>(value));
}

JsonWriter& JsonWriter::field(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw_field(std::string_view k, std::string_view raw) {
  key(k);
  body_ += raw;
  return *this;
}

JsonWriter& JsonWriter::append(const JsonWriter& other) {
  if (other.body_.empty()) return *this;
  if (!body_.empty()) body_ += ',';
  body_ += other.body_;
  return *this;
}

const JsonValue* JsonValue::find(std::string_view k) const {
  if (type != Type::object) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == k) return &value;
  }
  return nullptr;
}

double JsonValue::num_or(std::string_view k, double fallback) const {
  const JsonValue* v = find(k);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string JsonValue::str_or(std::string_view k,
                              std::string_view fallback) const {
  const JsonValue* v = find(k);
  return v != nullptr && v->is_string() ? v->string : std::string(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!value(v)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing garbage at offset " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const std::string& what) {
    error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.type = JsonValue::Type::string;
        return string(out.string);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out.type = JsonValue::Type::boolean;
        out.boolean = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out.type = JsonValue::Type::boolean;
        out.boolean = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out.type = JsonValue::Type::null;
        return true;
      default: return number(out);
    }
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      bool exp_digits = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return fail("bad exponent");
    }
    if (!digits) return fail("bad number");
    out.type = JsonValue::Type::number;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                             nullptr);
    return true;
  }

  bool string(std::string& out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("bad escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode (no surrogate-pair handling; our own output never
          // emits astral-plane escapes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool array(JsonValue& out) {
    ++pos_;  // '['
    out.type = JsonValue::Type::array;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool object(JsonValue& out) {
    ++pos_;  // '{'
    out.type = JsonValue::Type::object;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string name;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected member name");
      }
      if (!string(name)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace_back(std::move(name), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace aapx::obs
