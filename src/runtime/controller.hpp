// Closed-loop degradation controller.
//
// Owns the precision knob at run time. The AdaptiveScheduler plans the
// precision-over-lifetime schedule open-loop from the calibrated BTI model;
// this controller walks that plan defensively:
//
//  * it follows the schedule using the *sensor's* age estimate (never ground
//    truth),
//  * it steps precision down early when the timing-error monitor trips
//    (functional errors, or the canary early warning),
//  * every candidate precision is re-verified before committing — first
//    against the model (aged STA at the sensor age must meet the timing
//    constraint), then in situ (a short timed-simulation burst on the real,
//    possibly-faulted hardware must sample cleanly),
//  * it steps back up only after a sustained clean window (hysteresis), and
//    a step up must pass the same verification.
//
// Every decision — trigger, candidate, verification outcome — is appended to
// a structured event log so campaigns can audit the loop's behavior.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "runtime/monitor.hpp"

namespace aapx {

enum class ControlTrigger {
  sensor_schedule,    ///< sensor-indexed schedule demands a lower precision
  functional_errors,  ///< monitor saw sampled timing errors
  canary_warning,     ///< canary/replica path early warning
  step_up_probe,      ///< sustained clean window; trying to regain quality
  hazard_crossing,    ///< hard-failure cumulative hazard crossed the budget
};

enum class ControlOutcome {
  committed,       ///< candidate verified clean and adopted
  rejected_sta,    ///< aged STA at sensor age violates the constraint
  rejected_burst,  ///< in-situ verification burst still saw errors
  at_floor,        ///< no clean precision left; pinned at the floor
  failover,        ///< hard-failure risk: hand off to the spare, terminal
};

std::string to_string(ControlTrigger trigger);
std::string to_string(ControlOutcome outcome);

/// One controller decision, as appended to the event log.
struct ControlEvent {
  int epoch = 0;
  double years = 0.0;         ///< wall-clock age at decision time
  double sensor_years = 0.0;  ///< sensor estimate the decision used
  ControlTrigger trigger = ControlTrigger::sensor_schedule;
  ControlOutcome outcome = ControlOutcome::committed;
  int from_precision = 0;
  int to_precision = 0;
  double window_error_rate = 0.0;
  double window_canary_rate = 0.0;
  double verified_sta_delay = 0.0;  ///< ps; 0 when STA was not consulted
};

std::string to_string(const ControlEvent& event);

struct ControllerConfig {
  /// Lowest precision the controller may fall to (the quality floor the
  /// application still accepts).
  int precision_floor = 1;
  /// Consecutive clean control epochs (no window errors, no canary hits)
  /// required before a step up is probed.
  std::size_t clean_epochs_to_step_up = 3;
  bool allow_step_up = true;
  /// Cumulative hard-failure hazard H(t) at which the controller stops
  /// trading precision and fails over to a spare instead: drift mechanisms
  /// (BTI/HCI) are survivable by dropping precision, but EM/TDDB wearout is
  /// not — no approximation buys back an open via or a broken oxide. 0
  /// disables the check (the default: drift-only models never fail over).
  double hazard_failover_threshold = 0.0;
};

/// In-situ verification result of one candidate precision.
struct BurstResult {
  std::size_t vectors = 0;
  std::size_t errors = 0;
  std::size_t canary_hits = 0;

  bool clean() const noexcept { return errors == 0 && canary_hits == 0; }
};

class DegradationController {
 public:
  /// Verification environment the runtime provides. `sta_delay` evaluates
  /// the candidate against the *nominal* aged model at the sensor age (the
  /// controller's model-side check); `burst` runs a short timed-sim burst on
  /// the true hardware (the ground-truth check).
  struct VerifyHooks {
    virtual ~VerifyHooks() = default;
    virtual double sta_delay(int precision, double sensor_years) = 0;
    virtual BurstResult burst(int precision) = 0;
  };

  DegradationController(AdaptiveSchedule schedule, ControllerConfig config);

  int precision() const noexcept { return precision_; }
  const AdaptiveSchedule& schedule() const noexcept { return schedule_; }
  const std::vector<ControlEvent>& events() const noexcept { return events_; }
  /// Committed precision changes so far (adaptation cycles).
  std::size_t reconfigurations() const noexcept { return reconfigurations_; }
  /// True once a hazard crossing has been declared; the controller is then
  /// inert (failover is terminal — the spare owns the datapath).
  bool failed_over() const noexcept { return failed_over_; }

  /// One control evaluation at the end of an epoch. Returns true if the
  /// precision changed — the caller must then switch the datapath and reset
  /// the monitor window.
  bool evaluate(int epoch, double years, double sensor_years,
                const TimingErrorMonitor& monitor, VerifyHooks& hooks);

  /// Hard-failure arbitration, called by the runtime each epoch with the
  /// model's cumulative hazard at the current age. Returns true exactly once
  /// — when the hazard first crosses the configured budget — after which the
  /// controller refuses further precision trades. Disabled (always false)
  /// when the threshold is 0.
  bool notify_hazard(int epoch, double years, double sensor_years,
                     double cumulative_hazard,
                     const TimingErrorMonitor& monitor);

 private:
  bool step_down(int epoch, double years, double sensor_years, int target,
                 ControlTrigger trigger, const TimingErrorMonitor& monitor,
                 VerifyHooks& hooks);
  bool step_up(int epoch, double years, double sensor_years,
               const TimingErrorMonitor& monitor, VerifyHooks& hooks);
  void log(int epoch, double years, double sensor_years, ControlTrigger trigger,
           ControlOutcome outcome, int to_precision,
           const TimingErrorMonitor& monitor, double sta_delay);

  AdaptiveSchedule schedule_;
  ControllerConfig config_;
  int precision_;
  int max_precision_;
  std::vector<ControlEvent> events_;
  std::size_t clean_epochs_ = 0;
  std::size_t reconfigurations_ = 0;
  bool failed_over_ = false;
};

}  // namespace aapx
