#include "runtime/controller.hpp"

#include <sstream>
#include <stdexcept>

namespace aapx {

std::string to_string(ControlTrigger trigger) {
  switch (trigger) {
    case ControlTrigger::sensor_schedule: return "sensor-schedule";
    case ControlTrigger::functional_errors: return "functional-errors";
    case ControlTrigger::canary_warning: return "canary-warning";
    case ControlTrigger::step_up_probe: return "step-up-probe";
    case ControlTrigger::hazard_crossing: return "hazard-crossing";
  }
  return "?";
}

std::string to_string(ControlOutcome outcome) {
  switch (outcome) {
    case ControlOutcome::committed: return "committed";
    case ControlOutcome::rejected_sta: return "rejected-sta";
    case ControlOutcome::rejected_burst: return "rejected-burst";
    case ControlOutcome::at_floor: return "at-floor";
    case ControlOutcome::failover: return "failover";
  }
  return "?";
}

std::string to_string(const ControlEvent& event) {
  std::ostringstream os;
  os.precision(3);
  os << "epoch " << event.epoch << " @" << event.years << "y (sensor "
     << event.sensor_years << "y) " << to_string(event.trigger) << ": "
     << event.from_precision << " -> " << event.to_precision << " "
     << to_string(event.outcome) << " [err " << event.window_error_rate
     << ", canary " << event.window_canary_rate;
  if (event.verified_sta_delay > 0.0) {
    os << ", sta " << event.verified_sta_delay << " ps";
  }
  os << "]";
  return os.str();
}

DegradationController::DegradationController(AdaptiveSchedule schedule,
                                             ControllerConfig config)
    : schedule_(std::move(schedule)), config_(config) {
  if (schedule_.steps.empty()) {
    throw std::invalid_argument("DegradationController: empty schedule");
  }
  precision_ = schedule_.steps.front().precision;
  max_precision_ = precision_;
  if (config_.precision_floor < 1 || config_.precision_floor > max_precision_) {
    throw std::invalid_argument(
        "DegradationController: precision_floor out of range");
  }
}

void DegradationController::log(int epoch, double years, double sensor_years,
                                ControlTrigger trigger, ControlOutcome outcome,
                                int to_precision,
                                const TimingErrorMonitor& monitor,
                                double sta_delay) {
  ControlEvent event;
  event.epoch = epoch;
  event.years = years;
  event.sensor_years = sensor_years;
  event.trigger = trigger;
  event.outcome = outcome;
  event.from_precision = precision_;
  event.to_precision = to_precision;
  event.window_error_rate = monitor.window_error_rate();
  event.window_canary_rate = monitor.window_canary_rate();
  event.verified_sta_delay = sta_delay;
  events_.push_back(event);
}

bool DegradationController::step_down(int epoch, double years,
                                      double sensor_years, int target,
                                      ControlTrigger trigger,
                                      const TimingErrorMonitor& monitor,
                                      VerifyHooks& hooks) {
  for (int k = target; k >= config_.precision_floor; --k) {
    const double sta = hooks.sta_delay(k, sensor_years);
    if (sta > schedule_.timing_constraint + 1e-9) {
      log(epoch, years, sensor_years, trigger, ControlOutcome::rejected_sta, k,
          monitor, sta);
      continue;
    }
    const BurstResult burst = hooks.burst(k);
    if (!burst.clean()) {
      log(epoch, years, sensor_years, trigger, ControlOutcome::rejected_burst,
          k, monitor, sta);
      continue;
    }
    log(epoch, years, sensor_years, trigger, ControlOutcome::committed, k,
        monitor, sta);
    precision_ = k;
    ++reconfigurations_;
    clean_epochs_ = 0;
    return true;
  }
  // Nothing verified clean: pin at the floor as the best remaining effort.
  log(epoch, years, sensor_years, trigger, ControlOutcome::at_floor,
      config_.precision_floor, monitor, 0.0);
  const bool changed = precision_ != config_.precision_floor;
  if (changed) {
    precision_ = config_.precision_floor;
    ++reconfigurations_;
  }
  clean_epochs_ = 0;
  return changed;
}

bool DegradationController::step_up(int epoch, double years,
                                    double sensor_years,
                                    const TimingErrorMonitor& monitor,
                                    VerifyHooks& hooks) {
  const int candidate = precision_ + 1;
  clean_epochs_ = 0;  // spend the streak on this probe, pass or fail
  const double sta = hooks.sta_delay(candidate, sensor_years);
  if (sta > schedule_.timing_constraint + 1e-9) {
    log(epoch, years, sensor_years, ControlTrigger::step_up_probe,
        ControlOutcome::rejected_sta, candidate, monitor, sta);
    return false;
  }
  const BurstResult burst = hooks.burst(candidate);
  if (!burst.clean()) {
    log(epoch, years, sensor_years, ControlTrigger::step_up_probe,
        ControlOutcome::rejected_burst, candidate, monitor, sta);
    return false;
  }
  log(epoch, years, sensor_years, ControlTrigger::step_up_probe,
      ControlOutcome::committed, candidate, monitor, sta);
  precision_ = candidate;
  ++reconfigurations_;
  return true;
}

bool DegradationController::notify_hazard(int epoch, double years,
                                          double sensor_years,
                                          double cumulative_hazard,
                                          const TimingErrorMonitor& monitor) {
  if (config_.hazard_failover_threshold <= 0.0 || failed_over_) return false;
  if (cumulative_hazard < config_.hazard_failover_threshold) return false;
  // Terminal: drift outcomes (precision fallback) arbitrate against wearout
  // outcomes here, and wearout wins — record the decision at the current
  // precision (nothing to trade) and go inert.
  log(epoch, years, sensor_years, ControlTrigger::hazard_crossing,
      ControlOutcome::failover, precision_, monitor, 0.0);
  failed_over_ = true;
  return true;
}

bool DegradationController::evaluate(int epoch, double years,
                                     double sensor_years,
                                     const TimingErrorMonitor& monitor,
                                     VerifyHooks& hooks) {
  if (failed_over_) return false;
  // 1. Proactive: the sensor-indexed schedule demands a lower precision.
  const int scheduled = schedule_.precision_at(sensor_years);
  if (scheduled < precision_) {
    return step_down(epoch, years, sensor_years, scheduled,
                     ControlTrigger::sensor_schedule, monitor, hooks);
  }
  // 2. Reactive: the monitor tripped — reality is ahead of the model.
  if (monitor.tripped()) {
    const ControlTrigger trigger = monitor.functional_tripped()
                                       ? ControlTrigger::functional_errors
                                       : ControlTrigger::canary_warning;
    if (precision_ <= config_.precision_floor) {
      log(epoch, years, sensor_years, trigger, ControlOutcome::at_floor,
          precision_, monitor, 0.0);
      clean_epochs_ = 0;
      return false;
    }
    return step_down(epoch, years, sensor_years, precision_ - 1, trigger,
                     monitor, hooks);
  }
  // 3. Hysteresis: step back up only after a sustained clean window.
  ++clean_epochs_;
  if (config_.allow_step_up && precision_ < max_precision_ &&
      clean_epochs_ >= config_.clean_epochs_to_step_up &&
      precision_ < schedule_.precision_at(sensor_years)) {
    return step_up(epoch, years, sensor_years, monitor, hooks);
  }
  return false;
}

}  // namespace aapx
