// Noisy aging-sensor model.
//
// A real closed-loop degradation system never observes ΔVth ground truth: it
// reads an on-die monitor (ring oscillator, IDDQ trend, canary flip-flop
// bank) whose output is a biased, noisy, drifting *estimate* of accumulated
// aging. The controller must therefore never be allowed to trust the sensor
// alone — the point of the in-situ verification loop (see controller.hpp).
//
// The sensor reports aging in "equivalent nominal years": the lifetime that,
// under the nominal BTI model and the planned stress regime, would produce
// the ΔVth the sensor believes it measured. That is exactly the coordinate
// the AdaptiveSchedule is indexed by, so controller code can feed readings
// straight into AdaptiveSchedule::precision_at.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace aapx {

struct AgingSensorConfig {
  /// Multiplicative gain error: reported years ~= gain * true years.
  /// gain < 1 models a sensor that under-estimates degradation (the
  /// dangerous direction); gain > 1 an over-cautious one.
  double gain = 1.0;
  /// Additive offset [years], applied after the gain.
  double offset_years = 0.0;
  /// Per-reading white noise sigma [years].
  double noise_sigma_years = 0.0;
  /// Accumulating drift [years of reported age per true year] — the sensor
  /// itself ages; its error grows over the device lifetime.
  double drift_per_year = 0.0;
  std::uint64_t seed = 1;
};

/// Stateful sensor model; readings are deterministic for a given seed and
/// reading sequence.
class AgingSensor {
 public:
  explicit AgingSensor(AgingSensorConfig config = {});

  /// One reading at the given true effective age (clamped to >= 0).
  double read(double true_effective_years);

  const AgingSensorConfig& config() const noexcept { return config_; }

 private:
  AgingSensorConfig config_;
  Rng rng_;
};

}  // namespace aapx
