#include "runtime/monitor.hpp"

#include <stdexcept>

namespace aapx {

namespace {
constexpr unsigned char kErrorBit = 1;
constexpr unsigned char kCanaryBit = 2;
}  // namespace

TimingErrorMonitor::TimingErrorMonitor(MonitorConfig config)
    : config_(config), ring_(config.window, 0) {
  if (config_.window == 0) {
    throw std::invalid_argument("TimingErrorMonitor: window must be > 0");
  }
  if (config_.canary_margin <= 0.0 || config_.canary_margin > 1.0) {
    throw std::invalid_argument(
        "TimingErrorMonitor: canary_margin must be in (0, 1]");
  }
}

void TimingErrorMonitor::record(bool timing_error, double output_settle_ps,
                                double t_clock_ps) {
  if (t_clock_ps <= 0.0) {
    throw std::invalid_argument("TimingErrorMonitor::record: t_clock <= 0");
  }
  // A settle time beyond the canary sampling point is an early warning; a
  // functional error implies the guard zone was crossed as well.
  const bool canary_hit =
      timing_error || output_settle_ps > config_.canary_margin * t_clock_ps;

  if (window_filled_ == ring_.size()) {
    const unsigned char old = ring_[head_];
    if (old & kErrorBit) --window_errors_;
    if (old & kCanaryBit) --window_canary_;
  } else {
    ++window_filled_;
  }
  unsigned char flags = 0;
  if (timing_error) flags |= kErrorBit;
  if (canary_hit) flags |= kCanaryBit;
  ring_[head_] = flags;
  head_ = (head_ + 1) % ring_.size();

  if (timing_error) {
    ++window_errors_;
    ++total_errors_;
  }
  if (canary_hit) {
    ++window_canary_;
    ++total_canary_;
  }
  ++total_steps_;
}

void TimingErrorMonitor::reset_window() {
  ring_.assign(ring_.size(), 0);
  head_ = 0;
  window_filled_ = 0;
  window_errors_ = 0;
  window_canary_ = 0;
}

double TimingErrorMonitor::window_error_rate() const {
  if (window_filled_ == 0) return 0.0;
  return static_cast<double>(window_errors_) /
         static_cast<double>(window_filled_);
}

double TimingErrorMonitor::window_canary_rate() const {
  if (window_filled_ == 0) return 0.0;
  return static_cast<double>(window_canary_) /
         static_cast<double>(window_filled_);
}

}  // namespace aapx
