// Fault injection for degradation-runtime campaigns.
//
// The closed loop is only trustworthy if it survives reality deviating from
// the calibrated model. The injector builds the *ground truth* the campaign
// harness simulates against — the plant — by perturbing the nominal BTI
// model and stress world along the axes related work reports as the real
// deviation sources:
//
//  * aging acceleration — the die ages faster than the model (workload
//    dependency, process outliers; "Modeling and Predicting Transistor Aging
//    under Workload Dependency using Machine Learning"),
//  * temperature excursion — an Arrhenius step from a given point of life
//    (thermal environment drift, fan failure),
//  * per-gate ΔVth outliers — a random subset of gates degrades harder than
//    the library says, drawn in the spirit of the MC variation model
//    (sta/variation.*),
//  * sensor faults — gain/offset/noise on the aging estimate, so the
//    controller's model-side view is wrong too.
//
// The controller never sees any of this directly; it only observes the
// monitor, the sensor, and its own verification bursts — exactly the
// information real silicon would have.
#pragma once

#include <cstdint>

#include "aging/aging_model.hpp"
#include "aging/stress.hpp"
#include "cell/library.hpp"
#include "engine/context.hpp"
#include "netlist/netlist.hpp"
#include "runtime/sensor.hpp"
#include "sta/sta.hpp"

namespace aapx {

struct FaultScenario {
  /// ΔVth acceleration (1.0 = nominal): the die degrades this much harder
  /// than the calibrated model predicts, applied to both NBTI and PBTI
  /// prefactors. 1.5 means every transistor accumulates 1.5x the modeled
  /// threshold shift at any point of life — the standard process-outlier /
  /// workload-dependency deviation. Note this is far stronger than scaling
  /// wall-clock time: with the long-term exponent n = 0.16, aging 1.5x
  /// *faster in time* only inflates ΔVth by 1.5^0.16 ≈ 1.07x.
  double aging_acceleration = 1.0;

  /// Temperature excursion [K] added to the nominal operating point from
  /// `temp_step_from_years` on (Arrhenius-accelerates ΔVth growth).
  double temp_step_kelvin = 0.0;
  double temp_step_from_years = 0.0;

  /// Fraction of gates that are ΔVth outliers; each outlier's rise/fall
  /// delay is additionally multiplied by `gate_outlier_factor` (>= 1).
  /// The outlier pattern is a property of the die: fixed by `seed`.
  double gate_outlier_fraction = 0.0;
  double gate_outlier_factor = 1.0;

  /// Sensor faults, forwarded into the AgingSensor the campaign uses.
  double sensor_gain = 1.0;
  double sensor_offset_years = 0.0;
  double sensor_noise_sigma_years = 0.0;

  std::uint64_t seed = 1;

  static FaultScenario nominal() { return {}; }
};

class FaultInjector {
 public:
  /// Faulted degradation libraries come from `ctx`'s DesignStore: keyed by
  /// model *content*, so a nominal scenario shares the very same entries the
  /// runtime and characterizer use.
  FaultInjector(const Context& ctx, const CellLibrary& lib,
                AgingModel nominal, FaultScenario scenario);

  /// Process-default-Context shim (pre-Context API).
  FaultInjector(const CellLibrary& lib, AgingModel nominal,
                FaultScenario scenario);

  /// The age a nominal-model ΔVth observer would infer at wall-clock
  /// `years`: the t_eq with dVth_nominal(t_eq) = dVth_true(years). This is
  /// what a *perfect* aging sensor reports; under the power law a ΔVth
  /// acceleration of r maps to t_eq = years * r^(1/n) — small ΔVth
  /// deviations are huge age deviations, which is exactly why open-loop
  /// schedules are fragile.
  double equivalent_nominal_years(double years) const;

  /// Nominal aging model with the scenario's ΔVth acceleration and (if
  /// active at wall-clock `years`) temperature excursion applied to its BTI
  /// operating point; any extra mechanisms carry over unchanged.
  AgingModel faulted_model(double years) const;

  /// Ground-truth per-gate delays of `nl` at wall-clock `years`: aged by the
  /// faulted model under uniform stress of `mode`, with per-gate outlier
  /// multipliers applied on top.
  Sta::GateDelays true_delays(const Netlist& nl, StressMode mode, double years,
                              const StaOptions& sta = {}) const;

  /// Sensor observing this scenario's faults (fresh state; deterministic).
  AgingSensor make_sensor() const;

  const FaultScenario& scenario() const noexcept { return scenario_; }
  const AgingModel& nominal_model() const noexcept { return nominal_; }

 private:
  /// Faulted degradation library at one wall-clock age, served by the
  /// DesignStore (the faulted model is itself a function of `years` via the
  /// temperature step, and the store keys on the model's content, so the
  /// (model(years), years) pair is the complete key).
  const DegradationAwareLibrary& faulted_library(double years) const;

  const Context* ctx_;
  const CellLibrary* lib_;
  AgingModel nominal_;
  FaultScenario scenario_;
};

}  // namespace aapx
