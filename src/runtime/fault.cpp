#include "runtime/fault.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "cell/degradation.hpp"
#include "engine/design_store.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace aapx {

FaultInjector::FaultInjector(const Context& ctx, const CellLibrary& lib,
                             AgingModel nominal, FaultScenario scenario)
    : ctx_(&ctx),
      lib_(&lib),
      nominal_(std::move(nominal)),
      scenario_(scenario) {
  if (scenario_.aging_acceleration <= 0.0) {
    throw std::invalid_argument("FaultInjector: aging_acceleration must be > 0");
  }
  if (scenario_.gate_outlier_fraction < 0.0 ||
      scenario_.gate_outlier_fraction > 1.0) {
    throw std::invalid_argument(
        "FaultInjector: gate_outlier_fraction must be in [0, 1]");
  }
  if (scenario_.gate_outlier_factor < 1.0) {
    throw std::invalid_argument(
        "FaultInjector: gate_outlier_factor must be >= 1");
  }
  if (scenario_.temp_step_from_years < 0.0) {
    throw std::invalid_argument(
        "FaultInjector: temp_step_from_years must be >= 0");
  }
}

FaultInjector::FaultInjector(const CellLibrary& lib, AgingModel nominal,
                             FaultScenario scenario)
    : FaultInjector(Context::process_default(), lib, std::move(nominal),
                    scenario) {}

AgingModel FaultInjector::faulted_model(double years) const {
  AgingParams params = nominal_.params();
  params.bti.a_pmos *= scenario_.aging_acceleration;
  params.bti.a_nmos *= scenario_.aging_acceleration;
  if (scenario_.temp_step_kelvin != 0.0 &&
      years >= scenario_.temp_step_from_years) {
    params.bti.temp_kelvin += scenario_.temp_step_kelvin;
  }
  return AgingModel(params);
}

double FaultInjector::equivalent_nominal_years(double years) const {
  if (years < 0.0) {
    throw std::invalid_argument(
        "FaultInjector::equivalent_nominal_years: negative age");
  }
  if (years == 0.0) return 0.0;
  // Acceleration and temperature scale dVth uniformly across stress levels,
  // so the ratio at any one (S, t) pins the whole faulted surface; invert
  // the dVth = A * S^gamma * (t/t_ref)^n power law for the age a nominal
  // observer would infer from the true shift.
  const double dvth_true =
      faulted_model(years).delta_vth(TransistorType::pMos, 1.0, years);
  const double dvth_nom =
      nominal_.delta_vth(TransistorType::pMos, 1.0, years);
  if (dvth_nom <= 0.0) return years;
  const double n = nominal_.params().bti.time_exponent;
  return years * std::pow(dvth_true / dvth_nom, 1.0 / n);
}

const DegradationAwareLibrary& FaultInjector::faulted_library(
    double years) const {
  // A nominal scenario's faulted model is content-identical to the nominal
  // model, so this resolves to the same store entries the runtime warms.
  return ctx_->store().aged_library(*lib_, faulted_model(years), years);
}

Sta::GateDelays FaultInjector::true_delays(const Netlist& nl, StressMode mode,
                                           double years,
                                           const StaOptions& sta_options) const {
  if (years < 0.0) {
    throw std::invalid_argument("FaultInjector::true_delays: negative age");
  }
  const Sta sta(nl, sta_options, ctx_);
  Sta::GateDelays delays;
  if (years == 0.0) {
    delays = sta.gate_delays(nullptr, nullptr);
  } else {
    const DegradationAwareLibrary& aged = faulted_library(years);
    const StressProfile stress = StressProfile::uniform(mode, nl.num_gates());
    delays = sta.gate_delays(&aged, &stress);
  }
  if (scenario_.gate_outlier_fraction > 0.0 &&
      scenario_.gate_outlier_factor > 1.0) {
    // The outlier pattern is the die's fingerprint: reseeding per call keeps
    // it identical for every query against the same netlist.
    Rng rng(scenario_.seed);
    for (std::size_t g = 0; g < delays.rise.size(); ++g) {
      if (rng.next_bool(scenario_.gate_outlier_fraction)) {
        delays.rise[g] *= scenario_.gate_outlier_factor;
        delays.fall[g] *= scenario_.gate_outlier_factor;
      }
    }
  }
  return delays;
}

AgingSensor FaultInjector::make_sensor() const {
  AgingSensorConfig cfg;
  cfg.gain = scenario_.sensor_gain;
  cfg.offset_years = scenario_.sensor_offset_years;
  cfg.noise_sigma_years = scenario_.sensor_noise_sigma_years;
  cfg.seed = scenario_.seed + 0x5eed;
  return AgingSensor(cfg);
}

}  // namespace aapx
