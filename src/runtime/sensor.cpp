#include "runtime/sensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace aapx {

AgingSensor::AgingSensor(AgingSensorConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.gain <= 0.0) {
    throw std::invalid_argument("AgingSensor: gain must be > 0");
  }
  if (config_.noise_sigma_years < 0.0) {
    throw std::invalid_argument("AgingSensor: negative noise sigma");
  }
}

double AgingSensor::read(double true_effective_years) {
  if (true_effective_years < 0.0) {
    throw std::invalid_argument("AgingSensor::read: negative age");
  }
  double estimate = config_.gain * true_effective_years +
                    config_.offset_years +
                    config_.drift_per_year * true_effective_years;
  if (config_.noise_sigma_years > 0.0) {
    estimate += rng_.next_normal(0.0, config_.noise_sigma_years);
  }
  return std::max(0.0, estimate);
}

}  // namespace aapx
