// Closed-loop degradation runtime and fault-injection campaign harness.
//
// Layers the runtime subsystem on top of the planning stack:
//
//   AdaptiveScheduler  -> plan (open-loop, calibrated model)
//   FaultInjector      -> ground truth the plan did NOT anticipate
//   TimedSim           -> the "hardware": sampled-vs-settled per cycle
//   TimingErrorMonitor -> what the hardware can observe about itself
//   AgingSensor        -> what the hardware believes about its age
//   DegradationController -> closes the loop
//
// A campaign advances wall-clock age epoch by epoch; each epoch runs a burst
// of workload vectors on the true (possibly faulted) delays at the current
// precision, feeds the monitor, and lets the controller react. Open-loop
// mode runs the identical plant but walks the planned schedule blindly by
// wall-clock age — the baseline the paper's closing vision implicitly
// assumes, and exactly what the campaign proves unsafe under faults.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/adaptive.hpp"
#include "core/characterizer.hpp"
#include "engine/context.hpp"
#include "gatesim/timedsim.hpp"
#include "runtime/controller.hpp"
#include "runtime/fault.hpp"
#include "runtime/monitor.hpp"
#include "runtime/sensor.hpp"

namespace aapx {

struct RuntimeOptions {
  ComponentSpec component;  ///< full-precision base (truncated_bits == 0)
  StressMode stress = StressMode::worst;
  /// Lifetime grid the adaptive schedule is planned over.
  std::vector<double> schedule_grid = {0.5, 1.0, 2.0, 5.0, 10.0};
  /// Precision floor for both planning and the controller.
  int min_precision = 1;
  StaOptions sta;
  DelayModel delay_model = DelayModel::inertial;
};

struct CampaignOptions {
  double lifetime_years = 10.0;
  int epochs = 16;
  std::size_t vectors_per_epoch = 96;
  /// Vectors per in-situ verification burst.
  std::size_t verify_vectors = 48;
  std::uint64_t stimulus_seed = 7;
  bool closed_loop = true;
  MonitorConfig monitor;
  ControllerConfig controller;  ///< precision_floor overridden by the runtime
};

/// Per-epoch observation record.
struct EpochReport {
  int epoch = 0;
  double years = 0.0;
  double sensor_years = 0.0;  ///< == years in open-loop mode
  int precision = 0;          ///< precision the epoch ran at
  std::size_t vectors = 0;
  std::size_t errors = 0;       ///< sampled timing errors this epoch
  std::size_t canary_hits = 0;  ///< canary-zone settles this epoch
  double max_settle_ps = 0.0;
};

struct CampaignResult {
  double timing_constraint = 0.0;  ///< ps — sampling clock of the campaign
  AdaptiveSchedule schedule;
  std::vector<EpochReport> epochs;
  std::vector<ControlEvent> events;  ///< empty in open-loop mode
  std::uint64_t total_errors = 0;
  std::uint64_t total_vectors = 0;
  int final_precision = 0;
  std::size_t reconfigurations = 0;  ///< committed precision changes
  /// Hard-failure arbitration: true when the controller declared a hazard
  /// crossing and handed the datapath to a spare. Only reachable with a
  /// hard-failure mechanism (EM/TDDB) in the model AND a non-zero
  /// hazard_failover_threshold — never in default drift-only campaigns.
  bool failed_over = false;
  int failover_epoch = 0;  ///< epoch of the crossing; 0 if none

  /// True if the final epoch sampled zero timing errors.
  bool converged_clean() const;
  /// Errors summed over the last `n` epochs.
  std::uint64_t errors_in_last(std::size_t n) const;
};

class ClosedLoopRuntime {
 public:
  /// Synthesized netlists, degradation libraries and model-side STA delays
  /// all live in `ctx`'s DesignStore — shared with the characterizer (which
  /// warms them while planning the schedule) and with any other runtime or
  /// fault injector on the same Context.
  ClosedLoopRuntime(const Context& ctx, const CellLibrary& lib,
                    AgingModel nominal, RuntimeOptions options);

  /// Process-default-Context shim (pre-Context API).
  ClosedLoopRuntime(const CellLibrary& lib, AgingModel nominal,
                    RuntimeOptions options);

  const AdaptiveSchedule& schedule() const noexcept { return schedule_; }
  const RuntimeOptions& options() const noexcept { return options_; }

  /// Runs one campaign against the injector's ground truth. Deterministic
  /// for fixed seeds.
  CampaignResult run(const FaultInjector& faults,
                     const CampaignOptions& campaign) const;

  /// The synthesized component at one precision step, served from the
  /// Context's DesignStore (stable reference, shared across consumers).
  const Netlist& netlist_for(int precision) const;
  /// The degradation-aware library under the nominal BTI model (DesignStore).
  const DegradationAwareLibrary& aged_library(double years) const;
  /// Model-side aged STA delay at one (precision, sensor age) point, memoized
  /// in the DesignStore — verification re-queries the same points across
  /// epochs, and a characterizer-warmed entry is a hit here.
  double model_sta_delay(int precision, double sensor_years) const;
  /// The campaign workload generator for this component kind.
  StimulusSet make_stimulus(std::size_t count, std::uint64_t seed) const;

  const Context& context() const noexcept { return *ctx_; }

 private:
  /// Full-precision spec narrowed to `precision` (validated).
  ComponentSpec spec_for(int precision) const;

  const Context* ctx_;
  const CellLibrary* lib_;
  AgingModel nominal_;
  RuntimeOptions options_;
  AdaptiveSchedule schedule_;
};

}  // namespace aapx
