#include "runtime/runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "cell/degradation.hpp"
#include "core/stimulus.hpp"
#include "engine/design_store.hpp"
#include "obs/metrics.hpp"
#include "obs/runlog.hpp"
#include "obs/trace.hpp"
#include "sta/sta.hpp"
#include "synth/components.hpp"
#include "util/parallel.hpp"

namespace aapx {

bool CampaignResult::converged_clean() const {
  return !epochs.empty() && epochs.back().errors == 0;
}

std::uint64_t CampaignResult::errors_in_last(std::size_t n) const {
  std::uint64_t sum = 0;
  const std::size_t first = epochs.size() > n ? epochs.size() - n : 0;
  for (std::size_t i = first; i < epochs.size(); ++i) sum += epochs[i].errors;
  return sum;
}

ClosedLoopRuntime::ClosedLoopRuntime(const Context& ctx, const CellLibrary& lib,
                                     AgingModel nominal, RuntimeOptions options)
    : ctx_(&ctx),
      lib_(&lib),
      nominal_(std::move(nominal)),
      options_(std::move(options)) {
  const ComponentSpec& c = options_.component;
  if (c.truncated_bits != 0) {
    throw std::invalid_argument(
        "ClosedLoopRuntime: component must be full precision");
  }
  if (c.width < 1 || c.width > 64) {
    throw std::invalid_argument(
        "ClosedLoopRuntime: component width must be in [1, 64]");
  }
  if (options_.min_precision < 1 || options_.min_precision > c.width) {
    throw std::invalid_argument("ClosedLoopRuntime: bad min_precision");
  }
  if (options_.stress == StressMode::measured) {
    throw std::invalid_argument(
        "ClosedLoopRuntime: campaigns use uniform stress (worst or balanced)");
  }
  CharacterizerOptions copt;
  copt.min_precision = options_.min_precision;
  copt.sta = options_.sta;
  // Planning warms the Context's DesignStore: every netlist / aged library /
  // delay the schedule touches is a store hit for the campaign later.
  const ComponentCharacterizer characterizer(*ctx_, *lib_, nominal_, copt);
  const AdaptiveScheduler scheduler(characterizer);
  schedule_ = scheduler.plan(c, options_.stress, options_.schedule_grid);
}

ClosedLoopRuntime::ClosedLoopRuntime(const CellLibrary& lib, AgingModel nominal,
                                     RuntimeOptions options)
    : ClosedLoopRuntime(Context::process_default(), lib, std::move(nominal),
                        std::move(options)) {}

ComponentSpec ClosedLoopRuntime::spec_for(int precision) const {
  if (precision < options_.min_precision ||
      precision > options_.component.width) {
    throw std::invalid_argument("ClosedLoopRuntime: precision out of range");
  }
  ComponentSpec spec = options_.component;
  spec.truncated_bits = spec.width - precision;
  return spec;
}

const Netlist& ClosedLoopRuntime::netlist_for(int precision) const {
  return ctx_->store().netlist(*lib_, spec_for(precision));
}

const DegradationAwareLibrary& ClosedLoopRuntime::aged_library(
    double years) const {
  return ctx_->store().aged_library(*lib_, nominal_, years);
}

double ClosedLoopRuntime::model_sta_delay(int precision,
                                          double sensor_years) const {
  return ctx_->store().aged_sta_delay(*lib_, spec_for(precision), nominal_,
                                      options_.stress, sensor_years,
                                      options_.sta);
}

StimulusSet ClosedLoopRuntime::make_stimulus(std::size_t count,
                                             std::uint64_t seed) const {
  const int width = options_.component.width;
  switch (options_.component.kind) {
    case ComponentKind::adder:
      // Running-sum traffic plus deterministic carry-ripple probes: random
      // data excites the critical chain only sporadically, so a monitored
      // campaign mixes in transitions that pin it every few cycles.
      return make_carry_stress_stimulus(width, count, seed);
    case ComponentKind::multiplier:
      return make_mixed_magnitude_stimulus(width, count, seed);
    case ComponentKind::mac:
      return make_normal_mac_stimulus(width, count, seed);
    case ComponentKind::clamp:
      break;
  }
  throw std::invalid_argument(
      "ClosedLoopRuntime: no campaign stimulus generator for this component");
}

namespace {

/// Serializes one controller decision into the unified run log. This is the
/// single source of the control_event record shape; `aapx faultsim --log`
/// exports event history by running a campaign with the log open.
void log_control_event(obs::RunLog& log, const ControlEvent& ev) {
  obs::JsonWriter w;
  w.field("epoch", ev.epoch)
      .field("years", ev.years)
      .field("sensor_years", ev.sensor_years)
      .field("trigger", to_string(ev.trigger))
      .field("outcome", to_string(ev.outcome))
      .field("from_precision", ev.from_precision)
      .field("to_precision", ev.to_precision)
      .field("window_error_rate", ev.window_error_rate)
      .field("window_canary_rate", ev.window_canary_rate)
      .field("verified_sta_delay_ps", ev.verified_sta_delay);
  log.emit("control_event", w);
}

/// Verification environment over the runtime's plant: model-side aged STA
/// with the *nominal* BTI model at the sensor age, and ground-truth bursts
/// against the injector's faulted delays at the current wall-clock age.
class RuntimeHooks final : public DegradationController::VerifyHooks {
 public:
  RuntimeHooks(const ClosedLoopRuntime& runtime, const FaultInjector& faults,
               const CampaignOptions& campaign)
      : runtime_(runtime), faults_(faults), campaign_(campaign) {}

  void set_epoch(int epoch, double years) {
    epoch_ = epoch;
    years_ = years;
  }

  double sta_delay(int precision, double sensor_years) override {
    // Memoized on the runtime: the controller re-queries the same
    // (precision, sensor age) points across epochs, and each query used to
    // rebuild a full degradation-aware library.
    return runtime_.model_sta_delay(precision, sensor_years);
  }

  BurstResult burst(int precision) override {
    const RuntimeOptions& opt = runtime_.options();
    const Netlist& nl = runtime_.netlist_for(precision);
    TimedSim sim(nl, faults_.true_delays(nl, opt.stress, years_, opt.sta),
                 opt.delay_model);
    sim.reset();
    const double t_clock = runtime_.schedule().timing_constraint;
    // A dedicated seed stream: verification vectors differ from the epoch
    // workload so a commit is not tuned to the traffic that tripped it.
    const std::uint64_t seed = campaign_.stimulus_seed * 977 +
                               static_cast<std::uint64_t>(epoch_) * 31 +
                               static_cast<std::uint64_t>(precision);
    const StimulusSet stim =
        runtime_.make_stimulus(campaign_.verify_vectors, seed);
    std::vector<std::vector<NetId>> bus_pis;
    for (const auto& bus : stim.buses) {
      bus_pis.push_back(sim.resolve_stage(nl.input_bus(bus)));
    }
    BurstResult result;
    for (const auto& row : stim.vectors) {
      for (std::size_t b = 0; b < bus_pis.size(); ++b) {
        sim.stage_resolved(bus_pis[b], row[b]);
      }
      const bool error = sim.step_staged(t_clock);
      const double settle = sim.last_output_settle_time();
      ++result.vectors;
      if (error) ++result.errors;
      if (error || settle > campaign_.monitor.canary_margin * t_clock) {
        ++result.canary_hits;
      }
    }
    return result;
  }

 private:
  const ClosedLoopRuntime& runtime_;
  const FaultInjector& faults_;
  const CampaignOptions& campaign_;
  int epoch_ = 0;
  double years_ = 0.0;
};

}  // namespace

CampaignResult ClosedLoopRuntime::run(const FaultInjector& faults,
                                      const CampaignOptions& campaign) const {
  if (campaign.epochs < 1) {
    throw std::invalid_argument("ClosedLoopRuntime::run: epochs must be >= 1");
  }
  if (campaign.lifetime_years <= 0.0) {
    throw std::invalid_argument("ClosedLoopRuntime::run: lifetime must be > 0");
  }
  if (campaign.vectors_per_epoch == 0 || campaign.verify_vectors == 0) {
    throw std::invalid_argument(
        "ClosedLoopRuntime::run: vector counts must be > 0");
  }
  if (!schedule_.feasible) {
    throw std::invalid_argument(
        "ClosedLoopRuntime::run: planned schedule is infeasible");
  }

  obs::Span campaign_span("campaign",
                          static_cast<std::uint64_t>(campaign.epochs));
  // Run-log emission is restricted to the serial spine: a campaign launched
  // inside parallel_for (e.g. the open/closed ablation pair) stays silent so
  // the JSONL output is deterministic and ordered.
  obs::RunLog& log = ctx_->runlog();
  const bool logging = log.enabled() && !in_parallel_region();

  CampaignResult result;
  result.schedule = schedule_;
  result.timing_constraint = schedule_.timing_constraint;
  const double t_clock = schedule_.timing_constraint;

  if (logging) {
    obs::JsonWriter w;
    w.field("component", options_.component.name())
        .field("mode", campaign.closed_loop ? "closed" : "open")
        .field("epochs", campaign.epochs)
        .field("lifetime_years", campaign.lifetime_years)
        .field("constraint_ps", t_clock)
        .field("vectors_per_epoch",
               static_cast<std::uint64_t>(campaign.vectors_per_epoch))
        .field("stimulus_seed", campaign.stimulus_seed);
    log.emit("campaign_start", w);
  }

  TimingErrorMonitor monitor(campaign.monitor);
  ControllerConfig ccfg = campaign.controller;
  ccfg.precision_floor = std::max(ccfg.precision_floor, options_.min_precision);
  DegradationController controller(schedule_, ccfg);
  AgingSensor sensor = faults.make_sensor();
  RuntimeHooks hooks(*this, faults, campaign);

  int open_precision = schedule_.steps.front().precision;
  std::size_t logged_events = 0;
  for (int e = 1; e <= campaign.epochs; ++e) {
    // Per-epoch cancellation grain: a SIGINT'd `aapx faultsim --store` run
    // unwinds here with only whole epochs behind it, so the snapshot the
    // CLI saves on the way out is exactly as warm as the completed work.
    ctx_->check_cancelled("campaign.epoch");
    obs::Span epoch_span("epoch", static_cast<std::uint64_t>(e));
    const double years = campaign.lifetime_years * static_cast<double>(e) /
                         static_cast<double>(campaign.epochs);
    hooks.set_epoch(e, years);

    int precision;
    if (campaign.closed_loop) {
      precision = controller.precision();
    } else {
      precision = schedule_.precision_at(years);
      if (precision != open_precision) {
        ++result.reconfigurations;
        open_precision = precision;
      }
    }

    const Netlist& nl = netlist_for(precision);
    TimedSim sim(nl,
                 faults.true_delays(nl, options_.stress, years, options_.sta),
                 options_.delay_model);
    sim.reset();
    const StimulusSet stim =
        make_stimulus(campaign.vectors_per_epoch, campaign.stimulus_seed + e);
    std::vector<std::vector<NetId>> bus_pis;
    for (const auto& bus : stim.buses) {
      bus_pis.push_back(sim.resolve_stage(nl.input_bus(bus)));
    }

    EpochReport report;
    report.epoch = e;
    report.years = years;
    report.precision = precision;
    for (const auto& row : stim.vectors) {
      for (std::size_t b = 0; b < bus_pis.size(); ++b) {
        sim.stage_resolved(bus_pis[b], row[b]);
      }
      const bool error = sim.step_staged(t_clock);
      const double settle = sim.last_output_settle_time();
      ++report.vectors;
      if (error) ++report.errors;
      if (error || settle > campaign.monitor.canary_margin * t_clock) {
        ++report.canary_hits;
      }
      report.max_settle_ps = std::max(report.max_settle_ps, settle);
      if (campaign.closed_loop) monitor.record(error, settle, t_clock);
    }

    bool failover_now = false;
    if (campaign.closed_loop) {
      const double sensor_years =
          sensor.read(faults.equivalent_nominal_years(years));
      report.sensor_years = sensor_years;
      // Hard-failure arbitration outranks every precision trade: when the
      // model carries a wearout mechanism (EM/TDDB) and a hazard budget is
      // configured, a crossing turns the epoch into a failover instead of a
      // fallback. Both gates are off by default, so drift-only campaigns
      // never touch this path (or its counter).
      if (nominal_.has_hard_failure() &&
          ccfg.hazard_failover_threshold > 0.0) {
        GateEnv env;
        env.activity = options_.stress == StressMode::worst ? 1.0 : 0.5;
        const double hazard = nominal_.cumulative_hazard(env, years);
        failover_now =
            controller.notify_hazard(e, years, sensor_years, hazard, monitor);
        if (failover_now) {
          obs::metrics().counter("aging.controller.failover_decisions").add();
        }
      }
      if (!failover_now &&
          controller.evaluate(e, years, sensor_years, monitor, hooks)) {
        monitor.reset_window();
      }
    } else {
      report.sensor_years = years;
    }

    result.total_errors += report.errors;
    result.total_vectors += report.vectors;
    result.epochs.push_back(report);

    if (logging) {
      obs::JsonWriter w;
      w.field("epoch", report.epoch)
          .field("years", report.years)
          .field("precision", report.precision)
          .field("vectors", static_cast<std::uint64_t>(report.vectors))
          .field("errors", static_cast<std::uint64_t>(report.errors))
          .field("canary_hits",
                 static_cast<std::uint64_t>(report.canary_hits))
          .field("sensor_years", report.sensor_years)
          .field("max_settle_ps", report.max_settle_ps);
      log.emit("epoch", w);
      // Controller decisions taken this epoch, interleaved in epoch order.
      const auto& events = controller.events();
      for (; logged_events < events.size(); ++logged_events) {
        log_control_event(log, events[logged_events]);
      }
    }

    if (failover_now) {
      // Terminal: the spare owns the datapath from here, so the campaign
      // stops after recording the crossing epoch (its report and the
      // failover control_event are already emitted above).
      result.failed_over = true;
      result.failover_epoch = e;
      break;
    }
  }

  if (campaign.closed_loop) {
    result.events = controller.events();
    result.reconfigurations = controller.reconfigurations();
    result.final_precision = controller.precision();
  } else {
    result.final_precision = open_precision;
  }

  if (logging) {
    obs::JsonWriter w;
    w.field("total_errors", result.total_errors)
        .field("total_vectors", result.total_vectors)
        .field("final_precision", result.final_precision)
        .field("reconfigurations",
               static_cast<std::uint64_t>(result.reconfigurations))
        .field("converged_clean", result.converged_clean());
    // Only non-default campaigns (hazard budget configured AND crossed) gain
    // this field, so default run-log bytes are unchanged.
    if (result.failed_over) {
      w.field("failed_over", true).field("failover_epoch", result.failover_epoch);
    }
    log.emit("campaign_end", w);
  }
  return result;
}

}  // namespace aapx
