// In-situ timing-error monitor.
//
// Watches the sampled-vs-settled outcome of every TimedSim::step over a
// sliding window and exposes two trip signals:
//
//  * functional trip — sampled primary outputs actually differed from the
//    settled values (a real aging-induced timing error, paper Sec. II);
//  * canary trip — the output settling time entered the guard zone
//    (canary_margin * t_clock, t_clock]. This models the classic
//    replica-path / canary flip-flop technique: a slightly tighter copy of
//    the critical path fails *before* the functional path does, giving the
//    controller an early warning while the outputs are still correct.
//
// The monitor is pure bookkeeping — it never looks at the aging model — so
// it observes exactly what real silicon could observe.
#pragma once

#include <cstdint>
#include <vector>

namespace aapx {

struct MonitorConfig {
  std::size_t window = 64;  ///< sliding window length [steps]
  /// Functional errors within the window that trip the monitor.
  std::size_t functional_trip = 1;
  /// The canary path samples at canary_margin * t_clock; settling beyond it
  /// is an early warning. Must be in (0, 1].
  double canary_margin = 0.95;
  /// Canary hits within the window that raise the early warning.
  std::size_t canary_trip = 4;
};

class TimingErrorMonitor {
 public:
  explicit TimingErrorMonitor(MonitorConfig config = {});

  /// Records one sampled cycle: whether a primary output sampled wrong, and
  /// the output settling time relative to the sampling clock.
  void record(bool timing_error, double output_settle_ps, double t_clock_ps);

  /// Forgets the window (counters persist). Call after a reconfiguration so
  /// stale pre-reconfiguration errors cannot re-trip the monitor.
  void reset_window();

  // -- sliding-window state --
  std::size_t window_steps() const noexcept { return window_filled_; }
  std::size_t window_errors() const noexcept { return window_errors_; }
  std::size_t window_canary() const noexcept { return window_canary_; }
  double window_error_rate() const;
  double window_canary_rate() const;

  bool functional_tripped() const noexcept {
    return window_errors_ >= config_.functional_trip;
  }
  bool canary_tripped() const noexcept {
    return window_canary_ >= config_.canary_trip;
  }
  bool tripped() const noexcept {
    return functional_tripped() || canary_tripped();
  }

  // -- lifetime counters (never reset) --
  std::uint64_t total_steps() const noexcept { return total_steps_; }
  std::uint64_t total_errors() const noexcept { return total_errors_; }
  std::uint64_t total_canary() const noexcept { return total_canary_; }

  const MonitorConfig& config() const noexcept { return config_; }

 private:
  MonitorConfig config_;
  /// Ring buffer of per-step flags (bit 0 = error, bit 1 = canary hit).
  std::vector<unsigned char> ring_;
  std::size_t head_ = 0;
  std::size_t window_filled_ = 0;
  std::size_t window_errors_ = 0;
  std::size_t window_canary_ = 0;
  std::uint64_t total_steps_ = 0;
  std::uint64_t total_errors_ = 0;
  std::uint64_t total_canary_ = 0;
};

}  // namespace aapx
