#include "approx/error_bounds.hpp"

#include <stdexcept>

namespace aapx {

std::int64_t truncate_lsbs(std::int64_t v, int k) {
  if (k < 0 || k >= 63) throw std::invalid_argument("truncate_lsbs: bad k");
  if (k == 0) return v;
  // Arithmetic shift preserves sign; equivalent to clearing the low k bits
  // of the two's complement encoding.
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(v) &
                                   ~((std::uint64_t{1} << k) - 1));
}

std::int64_t adder_error_bound(int k) {
  if (k < 0 || k >= 62) throw std::invalid_argument("adder_error_bound: bad k");
  return 2 * ((std::int64_t{1} << k) - 1);
}

std::int64_t multiplier_error_bound(int width, int k) {
  if (k < 0 || k >= width || width <= 0 || width + k >= 62) {
    throw std::invalid_argument("multiplier_error_bound: bad arguments");
  }
  const std::int64_t eps = (std::int64_t{1} << k) - 1;
  return eps * ((std::int64_t{1} << width) + eps);
}

std::int64_t mac_error_bound(int width, int k) {
  return multiplier_error_bound(width, k);
}

}  // namespace aapx
