// Aging-induced approximation characterization data (paper Fig. 3/4/7).
//
// For one RTL component, a characterization holds the delay surface over
// (precision K, aging scenario): the fresh delay at each precision and the
// aged delay under every scenario of interest, plus area/gate counts so the
// efficiency gains of truncation are queryable. The central paper relation
//
//     t_Cj(Aging, K_j) <= t_Cj(noAging, N_j)                      (Eq. 2)
//
// is answered by `required_precision`, and the microarchitecture flow's
// relative-slack variant (Sec. V) by `precision_for_rel_slack`.
#pragma once

#include <string>
#include <vector>

#include "aging/stress.hpp"
#include "synth/components.hpp"

namespace aapx {

struct PrecisionPoint {
  int precision = 0;        ///< K (operand bits kept)
  double fresh_delay = 0.0; ///< ps, t(noAging, K)
  double area = 0.0;        ///< um^2
  std::size_t gates = 0;
  std::vector<double> aged_delay;  ///< ps, per scenario index
};

struct ComponentCharacterization {
  ComponentSpec base;                    ///< full-precision spec (K = N)
  std::vector<AgingScenario> scenarios;  ///< column order of aged_delay
  std::vector<PrecisionPoint> points;    ///< descending precision, [0] == N

  const PrecisionPoint& at_precision(int precision) const;
  double full_fresh_delay() const;  ///< t(noAging, N) — the timing constraint

  /// Required guardband [ps] when operating at precision K under a scenario:
  /// max(0, t_aged(K) - t_fresh(N)).
  double guardband(int precision, std::size_t scenario_index) const;

  /// Fraction of the full-precision guardband removed by dropping to K.
  double guardband_narrowing(int precision, std::size_t scenario_index) const;

  /// Largest K satisfying Eq. 2 (aged delay at K meets the fresh constraint),
  /// or -1 if even the minimum characterized precision fails.
  int required_precision(std::size_t scenario_index) const;

  /// Largest K whose aged delay meets (1 + rel_slack) * t_fresh(N) — the
  /// microarchitecture selection rule (rel_slack is negative for violating
  /// blocks). Returns -1 if unachievable within the characterized range.
  int precision_for_rel_slack(std::size_t scenario_index, double rel_slack) const;

  std::size_t scenario_index(const AgingScenario& s) const;  ///< throws if absent
};

}  // namespace aapx
