// The aging-induced approximation library (paper Fig. 3a).
//
// A persistent collection of component characterizations, built offline once
// and consulted by the microarchitecture flow to pick per-block precisions
// "without the need for further gate-level simulations". Text serialization
// lets benches and examples reuse a characterization across runs.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "approx/characterization.hpp"

namespace aapx {

class ApproximationLibrary {
 public:
  void add(ComponentCharacterization c);

  bool contains(const std::string& component_name) const;
  const ComponentCharacterization& get(const std::string& component_name) const;
  std::vector<std::string> names() const;
  std::size_t size() const noexcept { return entries_.size(); }

  void save(std::ostream& os) const;
  static ApproximationLibrary load(std::istream& is);

 private:
  std::map<std::string, ComponentCharacterization> entries_;
};

}  // namespace aapx
