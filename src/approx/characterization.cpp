#include "approx/characterization.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aapx {

const PrecisionPoint& ComponentCharacterization::at_precision(int precision) const {
  for (const PrecisionPoint& p : points) {
    if (p.precision == precision) return p;
  }
  throw std::out_of_range("ComponentCharacterization: precision not characterized");
}

double ComponentCharacterization::full_fresh_delay() const {
  if (points.empty()) {
    throw std::logic_error("ComponentCharacterization: empty");
  }
  return points.front().fresh_delay;
}

double ComponentCharacterization::guardband(int precision,
                                            std::size_t scenario_index) const {
  const PrecisionPoint& p = at_precision(precision);
  if (scenario_index >= p.aged_delay.size()) {
    throw std::out_of_range("ComponentCharacterization::guardband: scenario");
  }
  return std::max(0.0, p.aged_delay[scenario_index] - full_fresh_delay());
}

double ComponentCharacterization::guardband_narrowing(
    int precision, std::size_t scenario_index) const {
  const double full = guardband(base.width, scenario_index);
  if (full <= 0.0) return 1.0;  // no guardband needed even at full precision
  return 1.0 - guardband(precision, scenario_index) / full;
}

int ComponentCharacterization::required_precision(
    std::size_t scenario_index) const {
  // Eq. 2: largest K whose aged delay meets the fresh full-precision
  // constraint. Points are ordered descending in precision.
  const double budget = full_fresh_delay();
  for (const PrecisionPoint& p : points) {
    if (scenario_index >= p.aged_delay.size()) {
      throw std::out_of_range("required_precision: scenario");
    }
    if (p.aged_delay[scenario_index] <= budget) return p.precision;
  }
  return -1;
}

int ComponentCharacterization::precision_for_rel_slack(
    std::size_t scenario_index, double rel_slack) const {
  if (scenario_index >= scenarios.size()) {
    throw std::out_of_range("precision_for_rel_slack: scenario");
  }
  // Paper Sec. V: pick the precision that achieves the same *relative delay
  // reduction* as the block's slack deficit — a lookup on the component's
  // fresh delay curve. The flow's validation step then confirms with
  // aging-aware STA and truncates further if needed.
  const double budget = (1.0 + rel_slack) * full_fresh_delay();
  for (const PrecisionPoint& p : points) {
    if (p.fresh_delay <= budget) return p.precision;
  }
  return -1;
}

std::size_t ComponentCharacterization::scenario_index(
    const AgingScenario& s) const {
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (scenarios[i].mode == s.mode && scenarios[i].years == s.years) return i;
  }
  throw std::out_of_range("ComponentCharacterization: unknown scenario " +
                          s.label());
}

}  // namespace aapx
