#include "approx/library.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace aapx {
namespace {

std::string arch_token(AdderArch a) {
  switch (a) {
    case AdderArch::ripple: return "ripple";
    case AdderArch::cla4: return "cla4";
    case AdderArch::kogge_stone: return "kogge_stone";
  }
  return "?";
}

AdderArch parse_adder_arch(const std::string& s) {
  if (s == "ripple") return AdderArch::ripple;
  if (s == "cla4") return AdderArch::cla4;
  if (s == "kogge_stone") return AdderArch::kogge_stone;
  throw std::runtime_error("ApproximationLibrary: bad adder arch " + s);
}

MultArch parse_mult_arch(const std::string& s) {
  if (s == "array") return MultArch::array;
  if (s == "wallace") return MultArch::wallace;
  throw std::runtime_error("ApproximationLibrary: bad mult arch " + s);
}

ComponentKind parse_kind(const std::string& s) {
  if (s == "adder") return ComponentKind::adder;
  if (s == "multiplier") return ComponentKind::multiplier;
  if (s == "mac") return ComponentKind::mac;
  if (s == "clamp") return ComponentKind::clamp;
  throw std::runtime_error("ApproximationLibrary: bad kind " + s);
}

ApproxTechnique parse_technique(const std::string& s) {
  if (s == "lsb") return ApproxTechnique::lsb_truncation;
  if (s == "window") return ApproxTechnique::carry_window;
  if (s == "pp") return ApproxTechnique::pp_truncation;
  throw std::runtime_error("ApproximationLibrary: bad technique " + s);
}

StressMode parse_mode(const std::string& s) {
  if (s == "worst") return StressMode::worst;
  if (s == "balanced") return StressMode::balanced;
  if (s == "measured") return StressMode::measured;
  throw std::runtime_error("ApproximationLibrary: bad stress mode " + s);
}

}  // namespace

void ApproximationLibrary::add(ComponentCharacterization c) {
  ComponentSpec key = c.base;
  key.truncated_bits = 0;
  entries_[key.name()] = std::move(c);
}

bool ApproximationLibrary::contains(const std::string& component_name) const {
  return entries_.count(component_name) != 0;
}

const ComponentCharacterization& ApproximationLibrary::get(
    const std::string& component_name) const {
  const auto it = entries_.find(component_name);
  if (it == entries_.end()) {
    throw std::out_of_range("ApproximationLibrary: no entry " + component_name);
  }
  return it->second;
}

std::vector<std::string> ApproximationLibrary::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

void ApproximationLibrary::save(std::ostream& os) const {
  os << "aapx_approximation_library v1\n";
  for (const auto& [name, c] : entries_) {
    os << "component " << to_string(c.base.kind) << ' ' << c.base.width << ' '
       << arch_token(c.base.adder_arch) << ' '
       << (c.base.mult_arch == MultArch::array ? "array" : "wallace") << ' '
       << to_string(c.base.technique) << '\n';
    os << "scenarios " << c.scenarios.size();
    for (const AgingScenario& s : c.scenarios) {
      os << ' ' << to_string(s.mode) << ':' << s.years;
    }
    os << '\n';
    for (const PrecisionPoint& p : c.points) {
      os << "point " << p.precision << ' ' << p.fresh_delay << ' ' << p.area
         << ' ' << p.gates;
      for (const double d : p.aged_delay) os << ' ' << d;
      os << '\n';
    }
    os << "end\n";
  }
}

ApproximationLibrary ApproximationLibrary::load(std::istream& is) {
  ApproximationLibrary lib;
  std::string header;
  std::getline(is, header);
  if (header != "aapx_approximation_library v1") {
    throw std::runtime_error("ApproximationLibrary::load: bad header");
  }
  std::string line;
  ComponentCharacterization current;
  bool in_component = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "component") {
      if (in_component) throw std::runtime_error("load: nested component");
      std::string kind;
      std::string aarch;
      std::string march;
      std::string technique;
      current = ComponentCharacterization{};
      ls >> kind >> current.base.width >> aarch >> march >> technique;
      current.base.kind = parse_kind(kind);
      current.base.adder_arch = parse_adder_arch(aarch);
      current.base.mult_arch = parse_mult_arch(march);
      // Older files omit the technique token; default to LSB truncation.
      current.base.technique = technique.empty()
                                   ? ApproxTechnique::lsb_truncation
                                   : parse_technique(technique);
      in_component = true;
    } else if (tag == "scenarios") {
      std::size_t n = 0;
      ls >> n;
      for (std::size_t i = 0; i < n; ++i) {
        std::string token;
        ls >> token;
        const auto colon = token.find(':');
        if (colon == std::string::npos) {
          throw std::runtime_error("load: bad scenario token " + token);
        }
        AgingScenario s;
        s.mode = parse_mode(token.substr(0, colon));
        s.years = std::stod(token.substr(colon + 1));
        current.scenarios.push_back(s);
      }
    } else if (tag == "point") {
      PrecisionPoint p;
      ls >> p.precision >> p.fresh_delay >> p.area >> p.gates;
      double d = 0;
      while (ls >> d) p.aged_delay.push_back(d);
      current.points.push_back(std::move(p));
    } else if (tag == "end") {
      if (!in_component) throw std::runtime_error("load: stray end");
      lib.add(std::move(current));
      in_component = false;
    } else {
      throw std::runtime_error("load: unknown tag " + tag);
    }
  }
  if (in_component) throw std::runtime_error("load: missing end");
  return lib;
}

}  // namespace aapx
