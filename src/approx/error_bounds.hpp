// Deterministic error bounds of LSB-operand truncation.
//
// The whole point of converting aging-induced timing errors into
// approximations is that the resulting error is *bounded and known up front*
// (paper Sec. I: "allows providing upper bounds on error magnitude"). These
// helpers state those bounds; the property tests in tests/approx verify the
// netlists and RTL models never exceed them.
#pragma once

#include <cstdint>

namespace aapx {

/// Clears the k least significant bits (truncation toward -infinity for
/// two's complement values — identical to what tying bus LSBs to 0 does).
std::int64_t truncate_lsbs(std::int64_t v, int k);

/// Worst-case absolute error of an adder with both operands truncated by k
/// bits: each operand loses at most 2^k - 1.
std::int64_t adder_error_bound(int k);

/// Worst-case absolute error of an N x N two's complement multiplier with
/// both operands truncated by k bits:
///   |a*b - a'*b'| = |a'*eb + ea*b' + ea*eb| <= (2^k - 1) * (2^N + 2^k - 1).
std::int64_t multiplier_error_bound(int width, int k);

/// Worst-case absolute error of a MAC (product error only; the accumulator
/// input is not truncated in our components).
std::int64_t mac_error_bound(int width, int k);

}  // namespace aapx
