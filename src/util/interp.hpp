// Table interpolation used by NLDM timing lookups and the 11x11 stress grid.
#pragma once

#include <cstddef>
#include <vector>

namespace aapx {

/// Piecewise-linear interpolation over a sorted axis. Values outside the axis
/// range are linearly extrapolated from the edge segment (Liberty semantics).
double interp1(const std::vector<double>& axis, const std::vector<double>& values,
               double x);

/// 2-D table with Liberty-style bilinear interpolation / edge extrapolation.
/// Rows are indexed by axis1 (e.g. input slew), columns by axis2 (e.g. load).
class Table2D {
 public:
  Table2D() = default;
  Table2D(std::vector<double> axis1, std::vector<double> axis2,
          std::vector<double> values);  ///< values.size() == axis1*axis2, row-major

  double lookup(double x1, double x2) const;

  const std::vector<double>& axis1() const noexcept { return axis1_; }
  const std::vector<double>& axis2() const noexcept { return axis2_; }
  double at(std::size_t i, std::size_t j) const;
  bool empty() const noexcept { return values_.empty(); }

  /// Element-wise scale — used to derive aged tables from fresh ones.
  Table2D scaled(double factor) const;

 private:
  std::vector<double> axis1_;
  std::vector<double> axis2_;
  std::vector<double> values_;  // row-major: values_[i * axis2.size() + j]
};

}  // namespace aapx
