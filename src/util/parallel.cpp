#include "util/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aapx {
namespace {

std::atomic<int> g_num_threads_override{0};
thread_local bool t_in_parallel_region = false;

/// A lazily grown, process-lifetime pool. One job at a time (parallel_for is
/// a barrier); every pool worker joins every job and self-schedules chunks
/// off a shared atomic cursor, so a generation counter is all the handshake
/// needed. Workers are detached: at process exit they are parked in wait().
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool* pool = new ThreadPool();  // leaked; workers never join
    return *pool;
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           int threads) {
    std::unique_lock<std::mutex> job_lock(job_mutex_);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      while (static_cast<int>(num_workers_) < threads - 1) {
        std::thread t([this, gen = generation_, id = num_workers_] {
          obs::set_thread_name("aapx-worker-" + std::to_string(id));
          worker_loop(gen);
        });
        t.detach();
        ++num_workers_;
      }
      static obs::Gauge& workers_gauge = obs::metrics().gauge("pool.workers");
      workers_gauge.update_max(static_cast<double>(num_workers_ + 1));
      static obs::Counter& jobs = obs::metrics().counter("pool.jobs");
      static obs::Counter& items = obs::metrics().counter("pool.items");
      jobs.add();
      items.add(n);
      fn_ = &fn;
      n_ = n;
      next_.store(0);
      // Chunked self-scheduling: big enough to amortize the atomic, small
      // enough to balance uneven bodies. Results are index-addressed, so
      // scheduling order never affects them.
      chunk_ = n / (static_cast<std::size_t>(threads) * 8) + 1;
      active_ = num_workers_;
      error_ = nullptr;
      ++generation_;
    }
    cv_.notify_all();
    work();  // the caller is a worker too
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      done_cv_.wait(lk, [&] { return active_ == 0; });
      fn_ = nullptr;
      error = error_;
      error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  ThreadPool() = default;

  void worker_loop(std::uint64_t seen) {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mutex_);
        cv_.wait(lk, [&] { return generation_ != seen; });
        seen = generation_;
      }
      work();
      {
        std::lock_guard<std::mutex> lk(mutex_);
        --active_;
        if (active_ == 0) done_cv_.notify_all();
      }
    }
  }

  void work() {
    t_in_parallel_region = true;
    const auto t0 = std::chrono::steady_clock::now();
    const std::function<void(std::size_t)>* fn;
    std::size_t n, chunk;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      fn = fn_;
      n = n_;
      chunk = chunk_;
    }
    std::uint64_t chunks_taken = 0;
    {
      obs::Span span("parallel_for.work");
      for (;;) {
        const std::size_t begin = next_.fetch_add(chunk);
        if (begin >= n) break;
        ++chunks_taken;
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) {
          try {
            (*fn)(i);
          } catch (...) {
            std::lock_guard<std::mutex> lk(mutex_);
            if (!error_) error_ = std::current_exception();
            next_.store(n);  // stop handing out further chunks
          }
        }
      }
    }
    static obs::Counter& chunks = obs::metrics().counter("pool.chunks");
    static obs::Counter& busy = obs::metrics().counter("pool.busy_us");
    chunks.add(chunks_taken);
    busy.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    t_in_parallel_region = false;
  }

  std::mutex job_mutex_;  ///< serializes top-level parallel_for calls
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::size_t num_workers_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunk_ = 1;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
};

}  // namespace

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int num_threads() {
  const int forced = g_num_threads_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  if (const char* env = std::getenv("AAPX_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return hardware_threads();
}

void set_num_threads(int threads) {
  if (threads < 0) throw std::invalid_argument("set_num_threads: negative");
  g_num_threads_override.store(threads, std::memory_order_relaxed);
}

bool in_parallel_region() { return t_in_parallel_region; }

OffSpineGuard::OffSpineGuard() : prev_(t_in_parallel_region) {
  t_in_parallel_region = true;
}

OffSpineGuard::~OffSpineGuard() { t_in_parallel_region = prev_; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  int threads) {
  if (threads <= 0) threads = num_threads();
  if (static_cast<std::size_t>(threads) > n) threads = static_cast<int>(n);
  if (n <= 1 || threads <= 1 || t_in_parallel_region) {
    // The serial fallback still counts as a parallel region: callers that
    // gate side effects on in_parallel_region() (run-log emission) must see
    // the same answer at 1 thread as at N, or logs would differ by thread
    // count. Restore-on-exit keeps nesting and exceptions correct.
    struct RegionGuard {
      bool prev = t_in_parallel_region;
      RegionGuard() { t_in_parallel_region = true; }
      ~RegionGuard() { t_in_parallel_region = prev; }
    } guard;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  obs::Span span("parallel_for", static_cast<std::uint64_t>(n));
  ThreadPool::instance().run(n, fn, threads);
}

}  // namespace aapx
