// Thread-pooled parallel_for for the embarrassingly-parallel grains of the
// flow: precision points in characterization, Monte-Carlo dies, stimulus
// batches, campaign runs and image decodes.
//
// Determinism contract: parallel_for(n, fn) calls fn(i) exactly once for
// every i in [0, n); each body must write only to state owned by index i
// (its own result slot). Under that discipline results are bit-identical to
// a serial loop regardless of thread count or scheduling, which is what the
// determinism tests assert. Shared *read-only* state (netlists, libraries,
// prewarmed caches) is safe; shared mutable state needs its own lock.
//
// Nested parallel_for calls run serially in the calling worker — the outer
// grain already owns the pool, and the inner loop stays deterministic.
#pragma once

#include <cstddef>
#include <functional>

namespace aapx {

/// Hardware concurrency, at least 1.
int hardware_threads();

/// Worker count parallel_for uses when `threads == 0`:
/// set_num_threads() override, else AAPX_THREADS env var, else hardware.
/// Worker counts are a per-Context property since PR 4: an aapx::Context
/// with Options::threads == 0 falls through to this default, so these free
/// functions are exactly the default Context's thread policy (and the -j /
/// --threads flags keep their historic meaning).
int num_threads();

/// Overrides the global default worker count (0 = back to automatic).
/// The `aapx` CLI's -j flag and the benches' --threads flag land here;
/// Contexts with an explicit thread count are unaffected.
void set_num_threads(int threads);

/// Runs fn(i) for every i in [0, n), distributing chunks over `threads`
/// workers (0 = num_threads()). Falls back to a plain serial loop when n is
/// tiny, when only one thread is configured, or when already inside a
/// parallel_for body. The first exception thrown by any body is rethrown on
/// the caller after all workers finish.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  int threads = 0);

/// True while executing inside a parallel_for body on any thread (used to
/// serialize nested parallelism).
bool in_parallel_region();

/// RAII marker: in_parallel_region() is true on this thread for the scope.
/// For work that must stay off the deterministic serial spine even when it
/// happens to run there — e.g. DesignStore cache fills, whose execution
/// depends on process-wide cache history: any run-log record emitted from
/// inside would make the log depend on what ran earlier in the process.
class OffSpineGuard {
 public:
  OffSpineGuard();
  ~OffSpineGuard();
  OffSpineGuard(const OffSpineGuard&) = delete;
  OffSpineGuard& operator=(const OffSpineGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace aapx
