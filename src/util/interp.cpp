#include "util/interp.hpp"

#include <algorithm>
#include <stdexcept>

namespace aapx {
namespace {

/// Index i such that axis[i] <= x < axis[i+1], clamped so that [i, i+1] is a
/// valid segment; implements Liberty edge extrapolation.
std::size_t segment_index(const std::vector<double>& axis, double x) {
  if (axis.size() < 2) return 0;
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  auto idx = static_cast<std::size_t>(std::distance(axis.begin(), it));
  if (idx == 0) return 0;
  if (idx >= axis.size()) return axis.size() - 2;
  return idx - 1;
}

double lerp_on(const std::vector<double>& axis, std::size_t seg, double x,
               double v0, double v1) {
  const double x0 = axis[seg];
  const double x1 = axis[seg + 1];
  if (x1 == x0) return v0;
  const double t = (x - x0) / (x1 - x0);
  return v0 + t * (v1 - v0);
}

}  // namespace

double interp1(const std::vector<double>& axis, const std::vector<double>& values,
               double x) {
  if (axis.empty() || axis.size() != values.size()) {
    throw std::invalid_argument("interp1: axis/values size mismatch");
  }
  if (axis.size() == 1) return values[0];
  const std::size_t s = segment_index(axis, x);
  return lerp_on(axis, s, x, values[s], values[s + 1]);
}

Table2D::Table2D(std::vector<double> axis1, std::vector<double> axis2,
                 std::vector<double> values)
    : axis1_(std::move(axis1)), axis2_(std::move(axis2)), values_(std::move(values)) {
  if (axis1_.empty() || axis2_.empty()) {
    throw std::invalid_argument("Table2D: empty axis");
  }
  if (values_.size() != axis1_.size() * axis2_.size()) {
    throw std::invalid_argument("Table2D: values size mismatch");
  }
  if (!std::is_sorted(axis1_.begin(), axis1_.end()) ||
      !std::is_sorted(axis2_.begin(), axis2_.end())) {
    throw std::invalid_argument("Table2D: axes must be sorted ascending");
  }
}

double Table2D::at(std::size_t i, std::size_t j) const {
  if (i >= axis1_.size() || j >= axis2_.size()) {
    throw std::out_of_range("Table2D::at");
  }
  return values_[i * axis2_.size() + j];
}

double Table2D::lookup(double x1, double x2) const {
  if (values_.empty()) throw std::logic_error("Table2D::lookup on empty table");
  if (axis1_.size() == 1 && axis2_.size() == 1) return values_[0];
  if (axis1_.size() == 1) {
    const std::size_t s2 = segment_index(axis2_, x2);
    return lerp_on(axis2_, s2, x2, at(0, s2), at(0, s2 + 1));
  }
  if (axis2_.size() == 1) {
    const std::size_t s1 = segment_index(axis1_, x1);
    return lerp_on(axis1_, s1, x1, at(s1, 0), at(s1 + 1, 0));
  }
  const std::size_t s1 = segment_index(axis1_, x1);
  const std::size_t s2 = segment_index(axis2_, x2);
  const double v0 = lerp_on(axis2_, s2, x2, at(s1, s2), at(s1, s2 + 1));
  const double v1 = lerp_on(axis2_, s2, x2, at(s1 + 1, s2), at(s1 + 1, s2 + 1));
  return lerp_on(axis1_, s1, x1, v0, v1);
}

Table2D Table2D::scaled(double factor) const {
  Table2D out = *this;
  for (auto& v : out.values_) v *= factor;
  return out;
}

}  // namespace aapx
