#include "util/rng.hpp"

#include <cmath>

namespace aapx {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 — seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift rejection method for unbiased bounded values.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::next_normal(double mean, double stddev) noexcept {
  return mean + stddev * next_normal();
}

std::int64_t Rng::next_normal_int(double stddev, std::int64_t lo,
                                  std::int64_t hi) noexcept {
  const double v = std::round(next_normal(0.0, stddev));
  if (v < static_cast<double>(lo)) return lo;
  if (v > static_cast<double>(hi)) return hi;
  return static_cast<std::int64_t>(v);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::next_bool(double p) noexcept { return next_double() < p; }

}  // namespace aapx
