// Deterministic random number generation for reproducible experiments.
//
// All stochastic parts of the library (stimulus generation, synthetic image
// construction, Monte-Carlo sweeps) draw from this generator so a given seed
// reproduces a bench table bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>

namespace aapx {

/// xoshiro256** — fast, high-quality, reproducible PRNG.
/// Not cryptographic; used exclusively for workload generation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double next_normal() noexcept;

  /// Normal with given mean and standard deviation.
  double next_normal(double mean, double stddev) noexcept;

  /// Signed integer drawn from N(0, stddev), clamped to [lo, hi].
  std::int64_t next_normal_int(double stddev, std::int64_t lo,
                               std::int64_t hi) noexcept;

  /// Uniform signed integer in [lo, hi], inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with probability p of true.
  bool next_bool(double p = 0.5) noexcept;

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace aapx
