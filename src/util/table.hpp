// Aligned plain-text table printer used by every bench binary so the
// reproduced figures/tables read like the paper's rows and series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace aapx {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Formats a double with the given precision (fixed notation).
  static std::string num(double v, int precision = 2);
  /// Formats a percentage such as "13.4%".
  static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aapx
