// Stable content hashing for cache keys.
//
// One FNV-1a-combine utility replaces the ad-hoc cache-key structs that used
// to live separately in the characterizer (lifetime -> degradation library),
// the closed-loop runtime ((precision, years) -> STA delay) and the fault
// injector (lifetime -> faulted library). Every engine::DesignStore key is a
// 64-bit digest built here.
//
// Stability contract: a digest depends only on the sequence of typed feeds —
// not on platform endianness (integers are fed LSB-first byte by byte), not
// on process layout (no pointers are ever hashed) and not on the run (no
// addresses, no timestamps). The same logical key therefore hashes to the
// same value across runs and machines, which is what makes digests usable as
// persistent, content-addressed identities.
//
// Collision policy: 64-bit FNV-1a is not collision-free; stores that keep
// the original key material verify it on every hit and treat a mismatch as a
// hard error (see engine/design_store.cpp). The hash_test collision-sanity
// suite checks that realistic key populations stay collision-free.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace aapx {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

/// Incremental, order-sensitive FNV-1a (64-bit) hasher. Feed calls return
/// *this so keys read as one chained expression:
///
///   const std::uint64_t key =
///       Hasher{}.str("netlist").u64(lib_fp).i32(spec.width).digest();
class Hasher {
 public:
  constexpr Hasher() = default;

  constexpr Hasher& byte(std::uint8_t b) noexcept {
    h_ ^= b;
    h_ *= kFnv1aPrime;
    return *this;
  }

  Hasher& bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) byte(p[i]);
    return *this;
  }

  /// Integers feed their bytes LSB-first regardless of host endianness.
  constexpr Hasher& u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<std::uint8_t>(v & 0xffU));
      v >>= 8;
    }
    return *this;
  }
  constexpr Hasher& u32(std::uint32_t v) noexcept {
    for (int i = 0; i < 4; ++i) {
      byte(static_cast<std::uint8_t>(v & 0xffU));
      v >>= 8;
    }
    return *this;
  }
  constexpr Hasher& i32(std::int32_t v) noexcept {
    return u32(static_cast<std::uint32_t>(v));
  }
  constexpr Hasher& i64(std::int64_t v) noexcept {
    return u64(static_cast<std::uint64_t>(v));
  }
  constexpr Hasher& boolean(bool v) noexcept {
    return byte(v ? 1 : 0);
  }

  /// Doubles hash their IEEE-754 bit pattern; -0.0 is normalized to +0.0 so
  /// keys that compare equal hash equal. (NaNs keep their payload — they
  /// never compare equal anyway.)
  Hasher& f64(double v) noexcept {
    if (v == 0.0) v = 0.0;  // collapses -0.0
    return u64(std::bit_cast<std::uint64_t>(v));
  }

  /// Strings are length-prefixed so str("ab").str("c") != str("a").str("bc").
  Hasher& str(std::string_view s) noexcept {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  constexpr std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_ = kFnv1aOffsetBasis;
};

/// Plain FNV-1a of a byte string (the classic definition; exposed so tests
/// can pin golden values and other layers can hash opaque blobs).
inline std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = kFnv1aOffsetBasis;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

/// Mixes a stream index into a base seed — the per-Context RNG-stream
/// derivation (Context::make_rng). Distinct (seed, stream) pairs map to
/// well-separated 64-bit seeds.
inline std::uint64_t mix_seed(std::uint64_t seed,
                              std::uint64_t stream) noexcept {
  return Hasher{}.u64(seed).u64(stream).digest();
}

}  // namespace aapx
