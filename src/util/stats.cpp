#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace aapx {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor(t));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const { return counts_.at(bin); }

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

std::vector<double> Histogram::normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

double Histogram::overlap(const Histogram& a, const Histogram& b) {
  if (a.bins() != b.bins()) {
    throw std::invalid_argument("Histogram::overlap: bin counts differ");
  }
  const auto na = a.normalized();
  const auto nb = b.normalized();
  double l1 = 0.0;
  for (std::size_t i = 0; i < na.size(); ++i) l1 += std::abs(na[i] - nb[i]);
  return 1.0 - l1 / 2.0;
}

double psnr_from_mse(double mse, double peak) {
  if (mse <= 0.0) return std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(peak) - 10.0 * std::log10(mse);
}

}  // namespace aapx
