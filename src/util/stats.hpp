// Small statistics helpers shared by characterization and benches.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace aapx {

/// Running mean / variance / extrema accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  double variance() const noexcept;  ///< Sample variance (n-1 denominator).
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi]; values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const noexcept { return total_; }
  /// Center of bin's value range.
  double bin_center(std::size_t bin) const;
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

  /// Normalized counts (fractions summing to 1; zeros if empty).
  std::vector<double> normalized() const;

  /// Earth-mover-free shape similarity in [0,1]: 1 - L1/2 of normalized bins.
  /// Used by the Fig. 5 reproduction to show ND vs IDCT stress profiles match.
  static double overlap(const Histogram& a, const Histogram& b);

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Peak-signal-to-noise ratio in dB for 8-bit data given mean squared error.
double psnr_from_mse(double mse, double peak = 255.0);

}  // namespace aapx
