#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace aapx {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      os << (c + 1 == header_.size() ? " |\n" : " | ");
    }
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << (c + 1 == header_.size() ? "|\n" : "+");
  }
  for (const auto& row : rows_) print_row(row);
}

}  // namespace aapx
