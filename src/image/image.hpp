// 8-bit grayscale image container, PGM I/O and quality metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace aapx {

class Image {
 public:
  Image() = default;
  Image(int width, int height, std::uint8_t fill = 0);

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  bool empty() const noexcept { return data_.empty(); }

  std::uint8_t at(int x, int y) const;
  void set(int x, int y, std::uint8_t v);
  /// Set with clamping of `v` to [0, 255].
  void set_clamped(int x, int y, int v);

  const std::vector<std::uint8_t>& data() const noexcept { return data_; }

  /// Binary PGM (P5) round-trip.
  void save_pgm(const std::string& path) const;
  static Image load_pgm(const std::string& path);

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Peak signal-to-noise ratio [dB]; +inf for identical images.
double psnr(const Image& a, const Image& b);

/// Mean squared error between two images of identical dimensions.
double mse(const Image& a, const Image& b);

}  // namespace aapx
