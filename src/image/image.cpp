#include "image/image.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/stats.hpp"

namespace aapx {

Image::Image(int width, int height, std::uint8_t fill)
    : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Image: dimensions must be positive");
  }
  data_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
               fill);
}

std::uint8_t Image::at(int x, int y) const {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    throw std::out_of_range("Image::at");
  }
  return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
               static_cast<std::size_t>(x)];
}

void Image::set(int x, int y, std::uint8_t v) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    throw std::out_of_range("Image::set");
  }
  data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
        static_cast<std::size_t>(x)] = v;
}

void Image::set_clamped(int x, int y, int v) {
  set(x, y, static_cast<std::uint8_t>(std::clamp(v, 0, 255)));
}

void Image::save_pgm(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("Image::save_pgm: cannot open " + path);
  os << "P5\n" << width_ << ' ' << height_ << "\n255\n";
  os.write(reinterpret_cast<const char*>(data_.data()),
           static_cast<std::streamsize>(data_.size()));
  if (!os) throw std::runtime_error("Image::save_pgm: write failed " + path);
}

Image Image::load_pgm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("Image::load_pgm: cannot open " + path);
  std::string magic;
  is >> magic;
  if (magic != "P5") throw std::runtime_error("Image::load_pgm: not a P5 PGM");
  int w = 0;
  int h = 0;
  int maxval = 0;
  is >> w >> h >> maxval;
  if (maxval != 255 || w <= 0 || h <= 0) {
    throw std::runtime_error("Image::load_pgm: unsupported PGM parameters");
  }
  is.get();  // single whitespace after header
  Image img(w, h);
  is.read(reinterpret_cast<char*>(img.data_.data()),
          static_cast<std::streamsize>(img.data_.size()));
  if (!is) throw std::runtime_error("Image::load_pgm: truncated file");
  return img;
}

double mse(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("mse: image dimensions differ");
  }
  double acc = 0.0;
  const auto& da = a.data();
  const auto& db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    const double d = static_cast<double>(da[i]) - static_cast<double>(db[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(da.size());
}

double psnr(const Image& a, const Image& b) { return psnr_from_mse(mse(a, b)); }

}  // namespace aapx
