#include "image/dct_ref.hpp"

#include <cmath>

namespace aapx {

double dct_basis(int k, int n) {
  const double scale = k == 0 ? std::sqrt(1.0 / kDctBlock)
                              : std::sqrt(2.0 / kDctBlock);
  return scale * std::cos((2.0 * n + 1.0) * k * M_PI / (2.0 * kDctBlock));
}

namespace {

/// 1-D transform of the rows of `in` with basis[k][n]; `transpose` swaps
/// input indexing so the same routine covers rows and columns.
DctBlock transform_rows(const DctBlock& in, bool inverse) {
  DctBlock out{};
  for (int row = 0; row < kDctBlock; ++row) {
    for (int k = 0; k < kDctBlock; ++k) {
      double acc = 0.0;
      for (int n = 0; n < kDctBlock; ++n) {
        const double basis = inverse ? dct_basis(n, k) : dct_basis(k, n);
        acc += basis * in[row * kDctBlock + n];
      }
      out[row * kDctBlock + k] = acc;
    }
  }
  return out;
}

DctBlock transpose(const DctBlock& in) {
  DctBlock out{};
  for (int y = 0; y < kDctBlock; ++y) {
    for (int x = 0; x < kDctBlock; ++x) {
      out[x * kDctBlock + y] = in[y * kDctBlock + x];
    }
  }
  return out;
}

}  // namespace

DctBlock forward_dct(const DctBlock& spatial) {
  // Row-column decomposition: rows, transpose, rows, transpose.
  return transpose(transform_rows(transpose(transform_rows(spatial, false)), false));
}

DctBlock inverse_dct(const DctBlock& freq) {
  return transpose(transform_rows(transpose(transform_rows(freq, true)), true));
}

BlockImage encode_image(const Image& img) {
  BlockImage out;
  out.width = img.width();
  out.height = img.height();
  out.blocks_x = (img.width() + kDctBlock - 1) / kDctBlock;
  out.blocks_y = (img.height() + kDctBlock - 1) / kDctBlock;
  out.blocks.reserve(static_cast<std::size_t>(out.blocks_x) *
                     static_cast<std::size_t>(out.blocks_y));
  for (int by = 0; by < out.blocks_y; ++by) {
    for (int bx = 0; bx < out.blocks_x; ++bx) {
      DctBlock spatial{};
      for (int y = 0; y < kDctBlock; ++y) {
        for (int x = 0; x < kDctBlock; ++x) {
          const int px = std::min(bx * kDctBlock + x, img.width() - 1);
          const int py = std::min(by * kDctBlock + y, img.height() - 1);
          spatial[y * kDctBlock + x] = static_cast<double>(img.at(px, py)) - 128.0;
        }
      }
      out.blocks.push_back(forward_dct(spatial));
    }
  }
  return out;
}

Image decode_image_reference(const BlockImage& coeffs) {
  Image img(coeffs.width, coeffs.height);
  for (int by = 0; by < coeffs.blocks_y; ++by) {
    for (int bx = 0; bx < coeffs.blocks_x; ++bx) {
      const DctBlock spatial = inverse_dct(
          coeffs.blocks[static_cast<std::size_t>(by) *
                            static_cast<std::size_t>(coeffs.blocks_x) +
                        static_cast<std::size_t>(bx)]);
      for (int y = 0; y < kDctBlock; ++y) {
        for (int x = 0; x < kDctBlock; ++x) {
          const int px = bx * kDctBlock + x;
          const int py = by * kDctBlock + y;
          if (px >= coeffs.width || py >= coeffs.height) continue;
          const int v =
              static_cast<int>(std::lround(spatial[y * kDctBlock + x] + 128.0));
          img.set_clamped(px, py, v);
        }
      }
    }
  }
  return img;
}

}  // namespace aapx
