// Floating-point reference 8x8 block DCT-II / inverse DCT (orthonormal).
//
// This is the encoder/gold-reference side of the DCT->IDCT chain; the
// device-under-test IDCT lives in src/rtl as a fixed-point microarchitecture
// model. Images are processed in 8x8 blocks with edge replication padding.
#pragma once

#include <array>
#include <vector>

#include "image/image.hpp"

namespace aapx {

inline constexpr int kDctBlock = 8;

using DctBlock = std::array<double, kDctBlock * kDctBlock>;

/// Orthonormal 8-point DCT-II basis coefficient c[k][n].
double dct_basis(int k, int n);

/// Forward 2-D DCT of one 8x8 block (row-column decomposition).
DctBlock forward_dct(const DctBlock& spatial);

/// Inverse 2-D DCT of one 8x8 block.
DctBlock inverse_dct(const DctBlock& freq);

/// Per-block coefficients of a whole image; pixels are centered (-128..127).
/// Blocks are stored row-major; partial edge blocks use edge replication.
struct BlockImage {
  int width = 0;
  int height = 0;
  int blocks_x = 0;
  int blocks_y = 0;
  std::vector<DctBlock> blocks;
};

/// Encodes an image to per-block DCT coefficients (the paper's DCT stage).
BlockImage encode_image(const Image& img);

/// Decodes coefficients back to an image with the *reference* float IDCT.
Image decode_image_reference(const BlockImage& coeffs);

}  // namespace aapx
