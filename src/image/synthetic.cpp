#include "image/synthetic.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace aapx {
namespace {

struct SequenceRecipe {
  std::string name;
  double detail;      ///< 0 smooth ... 1 dense texture
  double contrast;    ///< blob/background contrast
  double edges;       ///< amount of strong line structure
  std::uint64_t seed;
};

const std::vector<SequenceRecipe>& recipes() {
  static const std::vector<SequenceRecipe> kRecipes = {
      {"akiyo", 0.18, 0.55, 0.25, 101},
      {"carphone", 0.42, 0.60, 0.45, 102},
      {"foreman", 0.50, 0.65, 0.55, 103},
      {"grand", 0.22, 0.50, 0.20, 104},
      {"miss", 0.12, 0.45, 0.10, 105},
      {"mobile", 1.00, 0.80, 0.85, 106},
      {"mother", 0.20, 0.50, 0.22, 107},
      {"salesman", 0.30, 0.40, 0.35, 108},
      {"suzie", 0.16, 0.55, 0.18, 109},
  };
  return kRecipes;
}

const SequenceRecipe& recipe_for(const std::string& name) {
  for (const SequenceRecipe& r : recipes()) {
    if (r.name == name) return r;
  }
  throw std::invalid_argument("make_video_trace_frame: unknown sequence " + name);
}

}  // namespace

const std::vector<std::string>& video_trace_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const SequenceRecipe& r : recipes()) names.push_back(r.name);
    return names;
  }();
  return kNames;
}

double sequence_detail_level(const std::string& name) {
  return recipe_for(name).detail;
}

Image make_video_trace_frame(const std::string& name, int width, int height) {
  const SequenceRecipe& r = recipe_for(name);
  Rng rng(r.seed * 0x100001b3ULL);
  Image img(width, height);

  // Low-frequency base: diagonal illumination gradient.
  const double w = width;
  const double h = height;
  // Blob (head-and-shoulders subject) parameters.
  const double cx = w * (0.45 + 0.1 * rng.next_double());
  const double cy = h * (0.40 + 0.1 * rng.next_double());
  const double rx = w * 0.22;
  const double ry = h * 0.30;

  // Texture phases, fixed per image.
  const double ph1 = rng.next_double() * 2.0 * M_PI;
  const double ph2 = rng.next_double() * 2.0 * M_PI;
  const double ph3 = rng.next_double() * 2.0 * M_PI;

  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double u = x / w;
      const double v = y / h;
      double val = 120.0 + 60.0 * (0.6 * u + 0.4 * v - 0.5);

      // Subject blob with soft falloff.
      const double dx = (x - cx) / rx;
      const double dy = (y - cy) / ry;
      const double d2 = dx * dx + dy * dy;
      val += r.contrast * 90.0 * std::exp(-1.6 * d2) - r.contrast * 25.0;

      // Mid-frequency structure (shoulders / furniture / background edges).
      val += r.edges * 30.0 *
             std::tanh(4.0 * std::sin(2.0 * M_PI * (1.7 * u + 0.9 * v) + ph1));

      // High-frequency texture: sinusoid mix + checker; this is what the
      // DCT spreads into high coefficients.
      const double tex =
          std::sin(2.0 * M_PI * 11.0 * u + ph2) * std::sin(2.0 * M_PI * 9.0 * v + ph3) +
          0.7 * (((x / 2 + y / 2) % 2 == 0) ? 1.0 : -1.0);
      val += r.detail * 38.0 * tex;

      // Fine film grain, scaled by detail.
      val += r.detail * 10.0 * rng.next_normal();

      img.set_clamped(x, y, static_cast<int>(std::lround(val)));
    }
  }
  return img;
}

}  // namespace aapx
