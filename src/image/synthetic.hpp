// Synthetic stand-ins for the "video trace library" test sequences.
//
// Substitution (DESIGN.md Sec. 2): the paper evaluates on first frames of
// the standard YUV sequences (akiyo, carphone, foreman, grandmother,
// miss-america, mobile, mother, salesman, suzie). Those files are not
// redistributable here, so each sequence gets a deterministic synthetic
// generator matched in *qualitative content*: head-and-shoulders sequences
// are smooth with a dominant blob and soft gradients, "mobile" is dense
// texture (calendar + patterned toys), office scenes sit in between. What
// matters for the reproduction is the high-frequency energy of each image,
// because that is what modulates PSNR under LSB truncation — the property
// behind the per-image spread of paper Fig. 8b.
#pragma once

#include <string>
#include <vector>

#include "image/image.hpp"

namespace aapx {

/// The nine sequence names of paper Fig. 8b, in the paper's order.
const std::vector<std::string>& video_trace_names();

/// Builds the synthetic first frame of the named sequence. Throws on unknown
/// names. Deterministic for a given (name, width, height).
Image make_video_trace_frame(const std::string& name, int width = 176,
                             int height = 144);

/// Relative high-frequency detail of a sequence in [0, 1] (mobile == 1).
double sequence_detail_level(const std::string& name);

}  // namespace aapx
