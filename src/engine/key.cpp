#include "engine/key.hpp"

#include "cell/library.hpp"
#include "util/hash.hpp"

namespace aapx::engine {
namespace {

// Domain-separation tags: two key families can never collide just because
// their field streams coincide.
constexpr std::uint64_t kTagSpec = 0x5350454331ULL;      // "SPEC1"
constexpr std::uint64_t kTagBti = 0x4254493131ULL;       // "BTI11"
constexpr std::uint64_t kTagSta = 0x5354413131ULL;       // "STA11"
constexpr std::uint64_t kTagScenario = 0x5343454e31ULL;  // "SCEN1"
constexpr std::uint64_t kTagLibrary = 0x4c49423131ULL;   // "LIB11"
constexpr std::uint64_t kTagAgingModel = 0x41474d3131ULL;  // "AGM11"

void feed(Hasher& h, const Table2D& t) {
  h.u64(t.axis1().size()).u64(t.axis2().size());
  for (const double v : t.axis1()) h.f64(v);
  for (const double v : t.axis2()) h.f64(v);
  for (std::size_t i = 0; i < t.axis1().size(); ++i) {
    for (std::size_t j = 0; j < t.axis2().size(); ++j) {
      h.f64(t.at(i, j));
    }
  }
}

}  // namespace

std::uint64_t key_of(const ComponentSpec& spec) {
  return Hasher{}
      .u64(kTagSpec)
      .i32(static_cast<int>(spec.kind))
      .i32(spec.width)
      .i32(spec.truncated_bits)
      .i32(static_cast<int>(spec.adder_arch))
      .i32(static_cast<int>(spec.mult_arch))
      .i32(static_cast<int>(spec.technique))
      .digest();
}

std::uint64_t key_of(const BtiParams& p) {
  return Hasher{}
      .u64(kTagBti)
      .f64(p.vdd)
      .f64(p.vth0)
      .f64(p.a_pmos)
      .f64(p.a_nmos)
      .f64(p.time_exponent)
      .f64(p.stress_exponent)
      .f64(p.alpha)
      .f64(p.t_ref_years)
      .f64(p.temp_kelvin)
      .f64(p.t_ref_kelvin)
      .f64(p.activation_ev)
      .digest();
}

std::uint64_t key_of(const AgingParams& params) {
  // The historic digest for the historic configuration: a BTI-only set keys
  // exactly like the BtiParams it wraps, so every pre-mechanism store entry
  // stays addressable. Extended sets move to their own key family.
  if (params.bti_only()) return key_of(params.bti);
  Hasher h;
  h.u64(kTagAgingModel);
  h.u64(params.mechanisms.size());
  for (const MechanismKind kind : params.mechanisms) {
    h.i32(static_cast<int>(kind));
  }
  // The BTI block always participates (it carries the shared electrical
  // operating point); the other blocks only when their mechanism is on.
  h.u64(key_of(params.bti));
  if (params.has(MechanismKind::hci)) {
    const HciParams& p = params.hci;
    h.f64(p.a_hci)
        .f64(p.activity_exponent)
        .f64(p.time_exponent)
        .f64(p.t_ref_years)
        .f64(p.activation_ev)
        .f64(p.t_ref_kelvin);
  }
  if (params.has(MechanismKind::em)) {
    const EmParams& p = params.em;
    h.f64(p.beta)
        .f64(p.eta_ref_years)
        .f64(p.j_ref)
        .f64(p.current_exponent)
        .f64(p.activation_ev)
        .f64(p.t_ref_kelvin);
  }
  if (params.has(MechanismKind::tddb)) {
    const TddbParams& p = params.tddb;
    h.f64(p.beta)
        .f64(p.eta_ref_years)
        .f64(p.vdd_ref)
        .f64(p.voltage_exponent)
        .f64(p.activation_ev)
        .f64(p.t_ref_kelvin);
  }
  return h.digest();
}

std::uint64_t key_of(const StaOptions& options) {
  return Hasher{}
      .u64(kTagSta)
      .f64(options.primary_input_slew)
      .f64(options.primary_output_load)
      .digest();
}

std::uint64_t key_of(const AgingScenario& scenario) {
  Hasher h;
  h.u64(kTagScenario);
  if (scenario.is_fresh()) {
    h.str("fresh");
  } else {
    h.i32(static_cast<int>(scenario.mode)).f64(scenario.years);
  }
  return h.digest();
}

std::uint64_t fingerprint(const CellLibrary& lib) {
  Hasher h;
  h.u64(kTagLibrary).u64(lib.size());
  for (const Cell& cell : lib.cells()) {
    h.str(cell.name)
        .i32(static_cast<int>(cell.fn))
        .i32(cell.drive)
        .f64(cell.area)
        .f64(cell.pin_cap)
        .f64(cell.max_load)
        .f64(cell.aging_sensitivity);
    h.u64(cell.leakage_per_state.size());
    for (const double v : cell.leakage_per_state) h.f64(v);
    h.u64(cell.arcs.size());
    for (const TimingArc& arc : cell.arcs) {
      h.i32(arc.input_pin);
      feed(h, arc.rise_delay);
      feed(h, arc.fall_delay);
      feed(h, arc.rise_slew);
      feed(h, arc.fall_slew);
    }
  }
  const DffSpec& dff = lib.dff();
  h.str(dff.name)
      .f64(dff.area)
      .f64(dff.pin_cap)
      .f64(dff.leakage)
      .f64(dff.clk_to_q)
      .f64(dff.setup)
      .f64(dff.cap_per_bit);
  return h.digest();
}

}  // namespace aapx::engine
