#include "engine/context.hpp"

#include "engine/design_store.hpp"

namespace aapx {

Context::Context() : Context(Options{}) {}

Context::Context(const Options& options) {
  if (options.metrics != nullptr) {
    metrics_ = options.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (options.runlog != nullptr) {
    runlog_ = options.runlog;
  } else {
    owned_runlog_ = std::make_unique<obs::RunLog>();
    runlog_ = owned_runlog_.get();
  }
  tracer_ = &obs::Tracer::instance();
  threads_.store(options.threads, std::memory_order_relaxed);
  seed_.store(options.seed, std::memory_order_relaxed);
  cancel_.store(options.cancel, std::memory_order_relaxed);
  surrogate_bound_.store(options.surrogate_bound, std::memory_order_relaxed);
  if (options.shared_store != nullptr) {
    // Multi-tenant mode: borrow another Context's store (the server's
    // per-connection Contexts all point at the root store). Its metrics
    // keep reporting into the owning Context.
    store_ = options.shared_store;
  } else {
    // The store is created last: it registers its counters with metrics().
    owned_store_ = std::make_unique<engine::DesignStore>(*this);
    store_ = owned_store_.get();
    if (!options.store_path.empty()) {
      store_->open(options.store_path);
    }
  }
}

Context::~Context() = default;

Context& Context::process_default() {
  // Leaked on purpose, like the singletons it subsumes: worker threads and
  // atexit-ordered destructors may still touch it at process teardown.
  static Context* ctx = [] {
    Options options;
    options.metrics = &obs::MetricsRegistry::instance();
    options.runlog = &obs::RunLog::instance();
    return new Context(options);
  }();
  return *ctx;
}

}  // namespace aapx
