#include "engine/persist.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "engine/binio.hpp"
#include "util/hash.hpp"

namespace aapx::engine {
namespace {

// Build provenance macros come from the top-level CMakeLists (the same pair
// the run-log manifest records).
#ifndef AAPX_BUILD_TYPE
#define AAPX_BUILD_TYPE "unknown"
#endif
#ifndef AAPX_SANITIZE_MODE
#define AAPX_SANITIZE_MODE "unknown"
#endif

void encode_spec(BinWriter& w, const ComponentSpec& spec) {
  w.i32(static_cast<int>(spec.kind));
  w.i32(spec.width);
  w.i32(spec.truncated_bits);
  w.i32(static_cast<int>(spec.adder_arch));
  w.i32(static_cast<int>(spec.mult_arch));
  w.i32(static_cast<int>(spec.technique));
}

ComponentSpec decode_spec(BinReader& r) {
  ComponentSpec spec;
  spec.kind = static_cast<ComponentKind>(r.i32());
  spec.width = r.i32();
  spec.truncated_bits = r.i32();
  spec.adder_arch = static_cast<AdderArch>(r.i32());
  spec.mult_arch = static_cast<MultArch>(r.i32());
  spec.technique = static_cast<ApproxTechnique>(r.i32());
  return spec;
}

void encode_params(BinWriter& w, const BtiParams& p) {
  w.f64(p.vdd);
  w.f64(p.vth0);
  w.f64(p.a_pmos);
  w.f64(p.a_nmos);
  w.f64(p.time_exponent);
  w.f64(p.stress_exponent);
  w.f64(p.alpha);
  w.f64(p.t_ref_years);
  w.f64(p.temp_kelvin);
  w.f64(p.t_ref_kelvin);
  w.f64(p.activation_ev);
}

BtiParams decode_params(BinReader& r) {
  BtiParams p;
  p.vdd = r.f64();
  p.vth0 = r.f64();
  p.a_pmos = r.f64();
  p.a_nmos = r.f64();
  p.time_exponent = r.f64();
  p.stress_exponent = r.f64();
  p.alpha = r.f64();
  p.t_ref_years = r.f64();
  p.temp_kelvin = r.f64();
  p.t_ref_kelvin = r.f64();
  p.activation_ev = r.f64();
  return p;
}

// Mechanism-set extension block, appended at the very END of a payload only
// when the record's AgingParams is not BTI-only. Keeping the legacy fields a
// byte-identical prefix is what lets pre-mechanism files decode unchanged
// and default-configuration files round-trip to the historic bytes.
constexpr std::uint32_t kAgingExtMagic = 0x584d4741;  // "AGMX" little-endian

void encode_aging_ext(BinWriter& w, const AgingParams& p) {
  if (p.bti_only()) return;
  w.u32(kAgingExtMagic);
  w.u64(p.mechanisms.size());
  for (const MechanismKind kind : p.mechanisms) {
    w.i32(static_cast<int>(kind));
  }
  // All three extension blocks are always written (fixed layout), enabled
  // or not — the mechanism list above says which ones are live.
  w.f64(p.hci.a_hci);
  w.f64(p.hci.activity_exponent);
  w.f64(p.hci.time_exponent);
  w.f64(p.hci.t_ref_years);
  w.f64(p.hci.activation_ev);
  w.f64(p.hci.t_ref_kelvin);
  w.f64(p.em.beta);
  w.f64(p.em.eta_ref_years);
  w.f64(p.em.j_ref);
  w.f64(p.em.current_exponent);
  w.f64(p.em.activation_ev);
  w.f64(p.em.t_ref_kelvin);
  w.f64(p.tddb.beta);
  w.f64(p.tddb.eta_ref_years);
  w.f64(p.tddb.vdd_ref);
  w.f64(p.tddb.voltage_exponent);
  w.f64(p.tddb.activation_ev);
  w.f64(p.tddb.t_ref_kelvin);
}

/// Completes an AgingParams whose BTI block was already decoded from the
/// legacy prefix. Call with the reader positioned where the legacy payload
/// ended: zero remaining bytes means the historic BTI-only record. Anything
/// else must be a well-formed extension block — a truncated or bit-flipped
/// tail throws, so the record degrades to a cold miss, never a wrong hit.
AgingParams decode_aging_ext(BinReader& r, const BtiParams& bti) {
  AgingParams p;
  p.bti = bti;
  if (r.remaining() == 0) return p;  // legacy BTI-only record
  if (r.u32() != kAgingExtMagic) {
    throw std::runtime_error("store aging extension: bad magic");
  }
  const std::uint64_t n = r.count(r.u64(), 4);
  if (n == 0) {
    throw std::runtime_error("store aging extension: empty mechanism set");
  }
  p.mechanisms.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    const int kind = r.i32();
    if (kind < 0 || kind > static_cast<int>(MechanismKind::tddb)) {
      throw std::runtime_error("store aging extension: unknown mechanism");
    }
    const auto mk = static_cast<MechanismKind>(kind);
    if (p.has(mk)) {
      throw std::runtime_error("store aging extension: duplicate mechanism");
    }
    p.mechanisms.push_back(mk);
  }
  p.hci.a_hci = r.f64();
  p.hci.activity_exponent = r.f64();
  p.hci.time_exponent = r.f64();
  p.hci.t_ref_years = r.f64();
  p.hci.activation_ev = r.f64();
  p.hci.t_ref_kelvin = r.f64();
  p.em.beta = r.f64();
  p.em.eta_ref_years = r.f64();
  p.em.j_ref = r.f64();
  p.em.current_exponent = r.f64();
  p.em.activation_ev = r.f64();
  p.em.t_ref_kelvin = r.f64();
  p.tddb.beta = r.f64();
  p.tddb.eta_ref_years = r.f64();
  p.tddb.vdd_ref = r.f64();
  p.tddb.voltage_exponent = r.f64();
  p.tddb.activation_ev = r.f64();
  p.tddb.t_ref_kelvin = r.f64();
  return p;
}

void encode_table(BinWriter& w, const Table2D& t) {
  w.f64_vec(t.axis1());
  w.f64_vec(t.axis2());
  w.u64(t.axis1().size() * t.axis2().size());
  for (std::size_t i = 0; i < t.axis1().size(); ++i) {
    for (std::size_t j = 0; j < t.axis2().size(); ++j) w.f64(t.at(i, j));
  }
}

Table2D decode_table(BinReader& r) {
  std::vector<double> axis1 = r.f64_vec();
  std::vector<double> axis2 = r.f64_vec();
  std::vector<double> values = r.f64_vec();
  if (values.size() != axis1.size() * axis2.size()) {
    throw std::runtime_error("store table dimensions inconsistent");
  }
  return Table2D(std::move(axis1), std::move(axis2), std::move(values));
}

/// Normalizes decoder failures to the documented std::runtime_error. The
/// structural re-checks the decoders lean on (Netlist::add_gate_driving,
/// Table2D construction) throw logic_error flavours like out_of_range on
/// corrupt input; callers — the load path, and now the untrusted-socket
/// protocol layer — are promised runtime_error and nothing else.
template <typename Fn>
auto decode_guarded(const char* what, const Fn& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(what) + ": " + e.what());
  }
}

}  // namespace

std::uint64_t build_fingerprint() {
  return Hasher{}
      .str("aapx-store")
      .u32(kStoreFormatVersion)
      .str(__VERSION__)
      .str(AAPX_BUILD_TYPE)
      .str(AAPX_SANITIZE_MODE)
      .digest();
}

const char* to_string(RecordKind kind) {
  switch (kind) {
    case RecordKind::netlist:
      return "netlist";
    case RecordKind::aged_library:
      return "aged_library";
    case RecordKind::sta_delay:
      return "sta_delay";
    case RecordKind::surface:
      return "surface";
    case RecordKind::surrogate:
      return "surrogate";
  }
  return "unknown";
}

StoreFileData load_store_file(const std::string& path) {
  StoreFileData out;
  std::ifstream is(path, std::ios::binary);
  if (!is) return out;  // no file: clean cold start
  out.file_found = true;

  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string bytes = buf.str();
  out.bytes_read = bytes.size();

  const auto reject = [&](const std::string& why) -> StoreFileData& {
    out.warnings.push_back("store " + path + ": " + why +
                           " — starting cold");
    out.records.clear();
    return out;
  };

  try {
    BinReader r(bytes);
    char magic[8];
    for (char& c : magic) c = static_cast<char>(r.u8());
    if (!std::equal(magic, magic + 8, kStoreMagic)) {
      return reject("not a store file (bad magic)");
    }
    const std::uint32_t version = r.u32();
    if (version != kStoreFormatVersion) {
      return reject("format version " + std::to_string(version) +
                    " (expected " + std::to_string(kStoreFormatVersion) + ")");
    }
    const std::uint64_t build_fp = r.u64();
    if (build_fp != build_fingerprint()) {
      return reject("built by a different toolchain/configuration");
    }
    out.header_ok = true;

    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      RawRecord rec;
      bool framed = false;
      try {
        const std::uint32_t kind = r.u32();
        rec.key = r.u64();
        const std::uint64_t size = r.u64();
        const std::uint64_t checksum = r.u64();
        if (size > r.remaining()) {
          throw std::runtime_error("truncated record");
        }
        rec.payload.resize(size);
        for (std::uint64_t b = 0; b < size; ++b) {
          rec.payload[b] = static_cast<char>(r.u8());
        }
        // Past this point the cursor sits at the next record: a content
        // failure below costs only this record, not the tail.
        framed = true;
        if (fnv1a(rec.payload) != checksum) {
          throw std::runtime_error("checksum mismatch");
        }
        if (kind < 1 || kind > 5) {
          throw std::runtime_error("unknown record kind " +
                                   std::to_string(kind));
        }
        rec.kind = static_cast<RecordKind>(kind);
      } catch (const std::exception& e) {
        if (!framed) {
          // A framing error means nothing after this point can be trusted:
          // drop this record and the unreadable tail.
          out.records_dropped += count - i;
          out.warnings.push_back("store " + path + ": record " +
                                 std::to_string(i + 1) + "/" +
                                 std::to_string(count) + ": " + e.what() +
                                 " — dropping it and the remaining tail");
          return out;
        }
        ++out.records_dropped;
        out.warnings.push_back("store " + path + ": record " +
                               std::to_string(i + 1) + "/" +
                               std::to_string(count) + ": " + e.what() +
                               " — dropping it");
        continue;
      }
      out.records.push_back(std::move(rec));
    }
  } catch (const std::exception& e) {
    return reject(std::string("corrupt header: ") + e.what());
  }
  return out;
}

std::uint64_t write_store_file(const std::string& path,
                               const std::vector<RawRecord>& records) {
  BinWriter w;
  for (const char c : kStoreMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kStoreFormatVersion);
  w.u64(build_fingerprint());
  w.u64(records.size());
  for (const RawRecord& rec : records) {
    w.u32(static_cast<std::uint32_t>(rec.kind));
    w.u64(rec.key);
    w.u64(rec.payload.size());
    w.u64(fnv1a(rec.payload));
    for (const char c : rec.payload) w.u8(static_cast<std::uint8_t>(c));
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return 0;
    os.write(w.data().data(), static_cast<std::streamsize>(w.data().size()));
    if (!os) return 0;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return 0;
  }
  return w.data().size();
}

// --- netlist ----------------------------------------------------------------

std::string encode_netlist_payload(std::uint64_t lib_fp,
                                   const ComponentSpec& spec,
                                   const Netlist& nl) {
  BinWriter w;
  w.u64(lib_fp);
  encode_spec(w, spec);
  w.u64(nl.num_nets());
  w.u64(nl.inputs().size());
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    w.u64(nl.inputs()[i]);
    w.str(nl.input_name(i));
  }
  w.u64(nl.num_gates());
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    // Pin count from the gate's own fanin sentinels, NOT gate_num_inputs():
    // that consults the CellLibrary, and save() may run after the caller's
    // library object is gone (the store only borrows it).
    int pins = 0;
    while (pins < static_cast<int>(gate.fanin.size()) &&
           gate.fanin[static_cast<std::size_t>(pins)] != kInvalidNet) {
      ++pins;
    }
    w.u32(gate.cell);
    w.u8(static_cast<std::uint8_t>(pins));
    for (int p = 0; p < pins; ++p) w.u32(gate.fanin[static_cast<std::size_t>(p)]);
    w.u32(gate.fanout);
  }
  w.u64(nl.outputs().size());
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    w.u64(nl.outputs()[i]);
    w.str(nl.output_name(i));
  }
  // Buses sorted by name so encoding never depends on unordered_map order.
  const auto write_buses = [&w, &nl](std::vector<std::string> names,
                                     const auto& bus_of) {
    std::sort(names.begin(), names.end());
    w.u64(names.size());
    for (const std::string& name : names) {
      w.str(name);
      const std::vector<NetId>& nets = bus_of(name);
      w.u64(nets.size());
      for (const NetId net : nets) w.u64(net);
    }
  };
  write_buses(nl.input_bus_names(),
              [&nl](const std::string& n) -> const std::vector<NetId>& {
                return nl.input_bus(n);
              });
  write_buses(nl.output_bus_names(),
              [&nl](const std::string& n) -> const std::vector<NetId>& {
                return nl.output_bus(n);
              });
  return w.take();
}

NetlistPayload decode_netlist_payload(const std::string& payload,
                                      const CellLibrary& lib) {
  return decode_guarded("store netlist record", [&]() -> NetlistPayload {
    BinReader r(payload);
    const std::uint64_t lib_fp = r.u64();
    const ComponentSpec spec = decode_spec(r);

    const std::uint64_t num_nets = r.u64();
    Netlist nl(lib);  // creates the two constant nets
    if (num_nets < 2) throw std::runtime_error("store netlist has no nets");

    struct NamedNet {
      NetId net;
      std::string name;
    };
    std::vector<NamedNet> inputs;
    const std::uint64_t num_inputs = r.count(r.u64(), 16);
    inputs.reserve(num_inputs);
    for (std::uint64_t i = 0; i < num_inputs; ++i) {
      const auto net = static_cast<NetId>(r.u64());
      inputs.push_back({net, r.str()});
    }
    // In any valid encoding every net beyond the constants is either a
    // primary input or carries at least one payload byte downstream (its
    // driving gate), so this bounds the replay loop below — without it a
    // corrupt count would grow the netlist until the machine runs dry.
    if (num_nets > 2 + num_inputs + payload.size()) {
      throw std::runtime_error("store netlist net count exceeds payload bound");
    }
    // Primary inputs appear in net-id order (add_input creates a fresh net per
    // call), which is what lets a linear replay reconstruct the exact ids.
    std::size_t next_input = 0;
    for (std::uint64_t id = 2; id < num_nets; ++id) {
      if (next_input < inputs.size() && inputs[next_input].net == id) {
        if (nl.add_input(inputs[next_input].name) != id) {
          throw std::runtime_error("store netlist input replay diverged");
        }
        ++next_input;
      } else if (nl.add_net() != id) {
        throw std::runtime_error("store netlist net replay diverged");
      }
    }
    if (next_input != inputs.size()) {
      throw std::runtime_error("store netlist inputs not in net order");
    }

    const std::uint64_t num_gates = r.count(r.u64(), 9);
    for (std::uint64_t g = 0; g < num_gates; ++g) {
      const auto cell = static_cast<CellId>(r.u32());
      const int pins = r.u8();
      if (pins > 3) throw std::runtime_error("store netlist gate pin overflow");
      NetId ins[3] = {};
      for (int p = 0; p < pins; ++p) ins[p] = static_cast<NetId>(r.u32());
      const auto out = static_cast<NetId>(r.u32());
      // add_gate_driving re-checks pin count vs the cell function, driver
      // uniqueness and net bounds — a corrupt gate list throws here.
      nl.add_gate_driving(cell, std::span<const NetId>(ins, pins), out);
    }

    const std::uint64_t num_outputs = r.count(r.u64(), 16);
    for (std::uint64_t i = 0; i < num_outputs; ++i) {
      const auto net = static_cast<NetId>(r.u64());
      nl.mark_output(net, r.str());
    }

    const auto read_buses = [&r, num_nets](const auto& install) {
      const std::uint64_t count = r.count(r.u64(), 16);
      for (std::uint64_t b = 0; b < count; ++b) {
        std::string name = r.str();
        const std::uint64_t n = r.count(r.u64(), 8);
        std::vector<NetId> nets;
        nets.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
          const auto net = static_cast<NetId>(r.u64());
          if (net >= num_nets) {
            throw std::runtime_error("store bus net overflow");
          }
          nets.push_back(net);
        }
        install(std::move(name), std::move(nets));
      }
    };
    read_buses([&nl](std::string name, std::vector<NetId> nets) {
      nl.set_input_bus(name, std::move(nets));
    });
    read_buses([&nl](std::string name, std::vector<NetId> nets) {
      nl.set_output_bus(name, std::move(nets));
    });
    r.expect_end();
    return NetlistPayload{lib_fp, spec, std::move(nl)};
  });
}

// --- aged library -----------------------------------------------------------

std::string encode_aged_library_payload(std::uint64_t lib_fp,
                                        const AgingParams& params,
                                        double years,
                                        const DegradationAwareLibrary& aged) {
  BinWriter w;
  w.u64(lib_fp);
  encode_params(w, params.bti);
  w.f64(years);
  // Cell count from the grids, NOT aged.base(): save() may run after the
  // borrowed CellLibrary object is gone.
  const std::uint64_t num_cells = aged.num_cells();
  w.u64(num_cells);
  for (CellId c = 0; c < num_cells; ++c) {
    encode_table(w, aged.rise_grid(c));
    encode_table(w, aged.fall_grid(c));
  }
  encode_aging_ext(w, params);
  return w.take();
}

AgedLibraryPayload decode_aged_library_payload(const std::string& payload,
                                               const CellLibrary& lib) {
  return decode_guarded("store aged library record",
                        [&]() -> AgedLibraryPayload {
    BinReader r(payload);
    const std::uint64_t lib_fp = r.u64();
    const BtiParams bti = decode_params(r);
    const double years = r.f64();
    const std::uint64_t num_cells = r.count(r.u64(), 32);
    if (num_cells != lib.size()) {
      throw std::runtime_error("store aged library cell count mismatch");
    }
    std::vector<Table2D> rise;
    std::vector<Table2D> fall;
    rise.reserve(num_cells);
    fall.reserve(num_cells);
    for (std::uint64_t c = 0; c < num_cells; ++c) {
      rise.push_back(decode_table(r));
      fall.push_back(decode_table(r));
    }
    const AgingParams params = decode_aging_ext(r, bti);
    r.expect_end();
    return AgedLibraryPayload{
        lib_fp, params, years,
        DegradationAwareLibrary(lib, AgingModel(params), years,
                                std::move(rise), std::move(fall))};
  });
}

// --- sta delay --------------------------------------------------------------

std::string encode_sta_delay_payload(const StaDelayPayload& p) {
  BinWriter w;
  w.u64(p.netlist_key);
  w.u64(p.scenario_key);
  w.f64(p.delay);
  w.u64(p.gates);
  return w.take();
}

StaDelayPayload decode_sta_delay_payload(const std::string& payload) {
  BinReader r(payload);
  StaDelayPayload p;
  p.netlist_key = r.u64();
  p.scenario_key = r.u64();
  p.delay = r.f64();
  p.gates = r.u64();
  r.expect_end();
  return p;
}

// --- surrogate model --------------------------------------------------------

std::string encode_surrogate_payload(const SurrogatePayload& p) {
  BinWriter w;
  w.u64(p.lib_fp);
  w.u64(p.params_key);
  w.u64(p.sta_key);
  w.str(p.model_blob);
  return w.take();
}

SurrogatePayload decode_surrogate_payload(const std::string& payload) {
  return decode_guarded("store surrogate record", [&]() -> SurrogatePayload {
    BinReader r(payload);
    SurrogatePayload p;
    p.lib_fp = r.u64();
    p.params_key = r.u64();
    p.sta_key = r.u64();
    p.model_blob = r.str();
    r.expect_end();
    return p;
  });
}

// --- characterization surface -----------------------------------------------

std::string encode_surface_payload(const SurfacePayload& p) {
  BinWriter w;
  w.u64(p.lib_fp);
  encode_params(w, p.params.bti);
  w.f64(p.sta.primary_input_slew);
  w.f64(p.sta.primary_output_load);
  w.i32(p.min_precision);
  w.i32(p.precision_step);
  w.u64(p.scenarios.size());
  for (const AgingScenario& s : p.scenarios) {
    w.i32(static_cast<int>(s.mode));
    w.f64(s.years);
  }
  encode_spec(w, p.surface.base);
  w.u64(p.surface.points.size());
  for (const PrecisionPoint& pt : p.surface.points) {
    w.i32(pt.precision);
    w.f64(pt.fresh_delay);
    w.f64(pt.area);
    w.u64(pt.gates);
    w.f64_vec(pt.aged_delay);
  }
  encode_aging_ext(w, p.params);
  return w.take();
}

SurfacePayload decode_surface_payload(const std::string& payload) {
  return decode_guarded("store surface record", [&]() -> SurfacePayload {
    BinReader r(payload);
    SurfacePayload p;
    p.lib_fp = r.u64();
    const BtiParams bti = decode_params(r);
    p.sta.primary_input_slew = r.f64();
    p.sta.primary_output_load = r.f64();
    p.min_precision = r.i32();
    p.precision_step = r.i32();
    const std::uint64_t nscen = r.count(r.u64(), 12);
    p.scenarios.reserve(nscen);
    for (std::uint64_t i = 0; i < nscen; ++i) {
      AgingScenario s;
      s.mode = static_cast<StressMode>(r.i32());
      s.years = r.f64();
      p.scenarios.push_back(s);
    }
    p.surface.base = decode_spec(r);
    p.surface.scenarios = p.scenarios;
    const std::uint64_t npoints = r.count(r.u64(), 36);
    p.surface.points.reserve(npoints);
    for (std::uint64_t i = 0; i < npoints; ++i) {
      PrecisionPoint pt;
      pt.precision = r.i32();
      pt.fresh_delay = r.f64();
      pt.area = r.f64();
      pt.gates = r.u64();
      pt.aged_delay = r.f64_vec();
      if (pt.aged_delay.size() != nscen) {
        throw std::runtime_error("store surface scenario columns mismatch");
      }
      p.surface.points.push_back(std::move(pt));
    }
    p.params = decode_aging_ext(r, bti);
    r.expect_end();
    return p;
  });
}

}  // namespace aapx::engine
