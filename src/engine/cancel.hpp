// Cooperative cancellation for long-running flow work — the primitive that
// lets `aapx serve` enforce per-request deadlines and lets the CLI turn
// SIGINT/SIGTERM into a clean drain instead of a lost warm store.
//
// A CancelToken is a tiny shared flag-plus-deadline. The *owner* (server
// request handler, CLI signal handler) calls cancel() or set_deadline(); the
// *workers* (characterizer sweep bodies, DesignStore fills) call check()
// at natural grain boundaries — one precision point, one STA fill — and a
// tripped token throws CancelledError. Checks are two relaxed atomic loads
// when the token is armed with no deadline, so sprinkling them on hot paths
// is free; a deadline adds one steady_clock read per check.
//
// Cancellation is cooperative and transactional by construction: every
// DesignStore insertion happens only after its value is fully built, so a
// CancelledError unwinding out of a sweep leaves no partial records — the
// store is exactly as warm as the work that completed (see
// tests/service/service_cancel_test.cpp).
//
// cancel() is a single atomic store, making it safe to call from a POSIX
// signal handler (the CLI's SIGINT/SIGTERM path relies on this).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace aapx {

/// Thrown by CancelToken::check() once the token has tripped. Derives from
/// std::runtime_error so unaware layers treat it as an ordinary failure;
/// aware layers (the server worker loop, the CLI main) catch it by type to
/// turn "stopped early" into a typed cancelled response / clean snapshot.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& where)
      : std::runtime_error("cancelled: " + where) {}
};

class CancelToken {
 public:
  /// Trips the token permanently. Async-signal-safe (one atomic store).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms a wall deadline; the token trips once steady_clock passes it.
  void set_deadline(std::chrono::steady_clock::time_point tp) noexcept {
    deadline_ns_.store(tp.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  void set_deadline_after(std::chrono::milliseconds budget) noexcept {
    set_deadline(std::chrono::steady_clock::now() + budget);
  }
  /// Disarms the deadline (not an explicit cancel()): the server loosens a
  /// deduped job to its laxest waiter's budget this way.
  void clear_deadline() noexcept {
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

  bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_relaxed);
    return deadline != 0 &&
           std::chrono::steady_clock::now().time_since_epoch().count() >=
               deadline;
  }

  /// Throws CancelledError if the token has tripped; `where` names the
  /// abandoned grain for the diagnostic ("characterize.point" etc.).
  void check(const char* where) const {
    if (cancelled()) throw CancelledError(where);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  ///< steady_clock ns; 0 = none
};

}  // namespace aapx
