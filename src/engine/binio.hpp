// Endianness-stable binary encoding primitives for the persistent store.
//
// Every multi-byte integer is written LSB-first regardless of host
// endianness, mirroring the convention util/hash.hpp uses to feed digests —
// a store file written on a big-endian machine reads back identically on a
// little-endian one. Doubles travel as their IEEE-754 bit pattern inside a
// u64. Strings and vectors are length-prefixed.
//
// BinReader is bounds-checked against adversarial input: any read past the
// end of the payload throws std::runtime_error, and every length prefix is
// validated against the remaining bytes *before* any allocation, so a
// corrupt or hostile prefix can neither drive a multi-gigabyte allocation
// nor wrap a size computation. The DesignStore's load path treats the throw
// as a corrupt record (drop + warn + cold miss) and the service layer as a
// malformed frame (typed error response) — never undefined behavior.
// tests/service/service_protocol_test.cpp fuzzes every codec through here.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace aapx::engine {

class BinWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      u8(static_cast<std::uint8_t>(v & 0xffU));
      v >>= 8;
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      u8(static_cast<std::uint8_t>(v & 0xffU));
      v >>= 8;
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }
  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    for (const double x : v) f64(x);
  }

  const std::string& data() const noexcept { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class BinReader {
 public:
  explicit BinReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    if (pos_ >= data_.size()) fail();
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint64_t n = len(u64());
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  std::vector<double> f64_vec() {
    // count(), not len(n * 8): an adversarial length prefix near 2^61 would
    // wrap the multiplication and sail past the bounds check — frames now
    // arrive from untrusted sockets, not just our own store files.
    const std::uint64_t n = count(u64(), 8);
    std::vector<double> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
    return v;
  }

  /// Validates a caller-decoded element count against the remaining bytes
  /// (each element at least `min_bytes`), so a corrupt length prefix cannot
  /// drive a multi-gigabyte allocation before the bounds check trips.
  std::uint64_t count(std::uint64_t n, std::uint64_t min_bytes) {
    if (min_bytes != 0 && n > remaining() / min_bytes) fail();
    return n;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }
  /// Throws unless every byte was consumed — trailing garbage is corruption.
  void expect_end() const {
    if (!at_end()) fail();
  }

 private:
  /// Bounds-checks a byte length against the remaining payload.
  std::uint64_t len(std::uint64_t n) {
    if (n > remaining()) fail();
    return n;
  }
  [[noreturn]] static void fail() {
    throw std::runtime_error("store payload truncated or corrupt");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace aapx::engine
