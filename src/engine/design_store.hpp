// Content-addressed store for the expensive artifacts of the aging flow.
//
// PR 2 memoized re-synthesis and aged STA with three *separate* keyed caches
// buried inside ComponentCharacterizer, ClosedLoopRuntime and FaultInjector.
// Identical (spec, lifetime, model) work was still recomputed across layers,
// and nothing could be shared between concurrent campaigns. The DesignStore
// is the single home for all three families:
//
//   netlist   : (library fingerprint, ComponentSpec)            -> Netlist
//   library   : (library fingerprint, BtiParams, years)         -> aged lib
//   sta delay : (netlist key, model-or-fresh, stress, years,
//                StaOptions)                                    -> ps
//
// Keys are stable 64-bit content digests (engine/key.hpp): the characterizer
// warms an entry, the runtime and the fault injector hit it — one unified
// store, cross-layer by construction. A FaultInjector with a nominal
// scenario keys the *same* degradation libraries as the runtime, because the
// key is the model's parameter content, not the object that asked.
//
// Concurrency: each family is sharded 16 ways by key; a shard's mutex is
// held across a netlist/library build (so racing requesters wait instead of
// duplicating the expensive work — and hit/miss counts stay deterministic),
// while STA delays are computed outside the lock (racing duplicates compute
// the identical value; first insert wins). Returned references are stable
// for the Context's lifetime: values live in node-stable maps behind
// unique_ptr.
//
// Collision discipline: every netlist/library hit re-verifies the stored key
// material (spec / params / years / fingerprint) and throws on mismatch —
// a 64-bit collision is astronomically unlikely but must never silently
// serve the wrong artifact.
//
// Persistence (engine/persist.hpp): open(path) stages the records of a
// versioned store file; a staged record is materialized lazily, on the first
// query for its key, after re-verifying its embedded key material against
// the live query — so a stale or colliding record degrades to a cold miss,
// never a wrong hit. save(path) snapshots every in-memory entry plus any
// still-staged record back to disk (byte-deterministic: records sorted by
// kind then key). A characterizer run with a store attached thereby warms a
// file that later runtime / fault-injection runs hit across processes.
// Run logs stay byte-identical cold vs. warm: disk-served queries take the
// exact hit paths (sta_query records carry the same fields either way), and
// the store_load/store_save records contain only warmth-invariant fields.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "aging/aging_model.hpp"
#include "aging/stress.hpp"
#include "approx/characterization.hpp"
#include "cell/degradation.hpp"
#include "netlist/netlist.hpp"
#include "obs/metrics.hpp"
#include "sta/sta.hpp"
#include "surrogate/surrogate.hpp"
#include "synth/components.hpp"

namespace aapx {

class Context;

namespace engine {

struct SurfacePayload;  // engine/persist.hpp

class DesignStore {
 public:
  /// The store reports hit/miss counters into (and builds artifacts under)
  /// its owning Context; `Context::store()` is the only intended way in.
  explicit DesignStore(const Context& ctx);
  DesignStore(const DesignStore&) = delete;
  DesignStore& operator=(const DesignStore&) = delete;

  /// The synthesized, optimized netlist of `spec` under `lib`. Reference
  /// stays valid for the store's lifetime.
  const Netlist& netlist(const CellLibrary& lib, const ComponentSpec& spec);

  /// The degradation-aware library of `lib` under `model` at `years`.
  /// Historic BtiModel callers convert implicitly; a BTI-only model keys —
  /// and therefore hits — exactly like the BtiModel it wraps.
  const DegradationAwareLibrary& aged_library(const CellLibrary& lib,
                                              const AgingModel& model,
                                              double years);

  /// Memoized max-delay of `spec` under uniform stress `mode` at `years`
  /// (fresh STA when years == 0; the model is then irrelevant and excluded
  /// from the key, so fresh delays are shared across models). Measured-mode
  /// queries are stimulus-dependent and must not come through this cache.
  double aged_sta_delay(const CellLibrary& lib, const ComponentSpec& spec,
                        const AgingModel& model, StressMode mode, double years,
                        const StaOptions& sta);

  /// Memoized max-delay of the *incremental boundary-condition family*:
  /// `base` (full precision) analyzed with its `truncated_bits` lowest
  /// operand bits held constant, instead of re-synthesized at reduced
  /// precision. These values legitimately differ from aged_sta_delay's
  /// (re-synthesis constant-propagates logic away and changes loads), so
  /// they live under their own key tag and can never alias full-STA
  /// entries. The caller supplies `compute` because the incremental
  /// engine's state (arrival arrays, cone masks) must persist across the
  /// sweep's queries; `gates` is the base netlist's gate count for the
  /// query log record. Hits and misses emit the same sta_query record, so
  /// run logs are byte-identical at any store warmth — and `compute` is
  /// algorithm-agnostic, so AAPX_STA_FULL=1 changes nothing observable.
  double truncated_sta_delay(const CellLibrary& lib, const ComponentSpec& base,
                             int truncated_bits, const AgingModel& model,
                             StressMode mode, double years,
                             const StaOptions& sta, std::uint64_t gates,
                             const std::function<double()>& compute);

  /// Memoized characterization surface of `base` (delay vs. precision vs.
  /// aging, paper Fig. 3/4/7) under the exact sweep parameters. On a miss,
  /// `build` runs under the key's shard lock (racing requesters wait; one
  /// miss per distinct key). Measured-mode scenarios are stimulus-dependent
  /// and must not come through this cache. `incremental_sta` marks surfaces
  /// built by the boundary-condition sweep (ComponentCharacterizer's
  /// incremental mode) — keyed apart so they never alias re-synthesized
  /// surfaces of the same component.
  const ComponentCharacterization& surface(
      const CellLibrary& lib, const AgingModel& model,
      const ComponentSpec& base,
      const std::vector<AgingScenario>& scenarios, int min_precision,
      int precision_step, const StaOptions& sta, bool incremental_sta,
      const std::function<ComponentCharacterization()>& build);

  /// Hit-only probe of the surface family: the exact lookup surface() does
  /// (in-memory, then staged disk record, with full key re-verification and
  /// hit accounting) but *no build and no miss accounting* on a miss —
  /// nullptr instead. The surrogate-armed characterizer uses it to keep
  /// warm-store behavior identical while deciding outside the shard lock
  /// whether a freshly swept surface is exact enough to cache (a surface
  /// containing surrogate predictions must never enter the exact family).
  /// The pointer is stable for the store's lifetime, like surface()'s.
  const ComponentCharacterization* surface_if_cached(
      const CellLibrary& lib, const AgingModel& model,
      const ComponentSpec& base,
      const std::vector<AgingScenario>& scenarios, int min_precision,
      int precision_step, const StaOptions& sta, bool incremental_sta);

  /// Installs (or replaces) the trained surrogate for the
  /// (library, AgingParams, StaOptions) family, superseding any staged disk
  /// record of the same key. Returns the record key. save() persists it as
  /// a RecordKind::surrogate record under its own key tag, so surrogate
  /// records can never alias exact artifacts.
  std::uint64_t put_surrogate(const CellLibrary& lib, const AgingModel& model,
                              const StaOptions& sta,
                              surrogate::SurrogateModel model_fit);

  /// The resident surrogate for the family, materializing a staged disk
  /// record on first use (re-verified against the live query's key digests;
  /// a corrupt or stale record is dropped — a cold miss, never a wrong
  /// model). nullptr when none is available.
  const surrogate::SurrogateModel* surrogate_model(const CellLibrary& lib,
                                                   const AgingModel& model,
                                                   const StaOptions& sta);

  /// Content fingerprint of `lib`, memoized per library object (libraries
  /// are immutable once built everywhere in this codebase).
  std::uint64_t fingerprint(const CellLibrary& lib);

  /// Stages the records of the store file at `path` for lazy, re-verified
  /// materialization and remembers the attachment for save(). A missing
  /// file is a clean cold start; a corrupt, wrong-version or wrong-build
  /// file degrades to cold with a warning on stderr. Returns false iff the
  /// file existed but some of it had to be discarded.
  bool open(const std::string& path);

  /// Serializes every in-memory entry plus any still-staged record to
  /// `path` (atomic: temp file + rename). Output bytes are deterministic
  /// for a given store content. Returns false on I/O failure.
  bool save(const std::string& path) const;

  /// Every characterization surface currently in the store — materialized
  /// entries plus still-staged disk records — sorted by (kind, width, spec
  /// key) so the output is deterministic. Serves `aapx serve`'s
  /// library-query requests without forcing materialization.
  std::vector<SurfacePayload> surface_snapshot() const;

  struct Stats {
    std::uint64_t netlist_hits = 0, netlist_misses = 0;
    std::uint64_t library_hits = 0, library_misses = 0;
    std::uint64_t delay_hits = 0, delay_misses = 0;
    std::uint64_t surface_hits = 0, surface_misses = 0;
    std::uint64_t persist_hits = 0;  ///< queries served from a store file
    /// Learned fast path: delay queries answered by the surrogate within
    /// its validated bound vs. declined (hull miss, bound too tight, no
    /// model) and recomputed exactly. Fallbacks only count while a
    /// surrogate bound is armed — an unarmed run counts nothing here.
    std::uint64_t surrogate_hits = 0, surrogate_fallbacks = 0;

    std::uint64_t hits() const {
      return netlist_hits + library_hits + delay_hits + surface_hits;
    }
    std::uint64_t misses() const {
      return netlist_misses + library_misses + delay_misses + surface_misses;
    }
  };
  Stats stats() const;

  /// Total cached entries across all families (diagnostic).
  std::size_t entries() const;

  static constexpr std::size_t kShards = 16;

 private:
  struct NetlistEntry {
    std::uint64_t lib_fp = 0;
    ComponentSpec spec;
    Netlist netlist;
  };
  struct LibraryEntry {
    std::uint64_t lib_fp = 0;
    AgingParams params;
    double years = 0.0;
    std::unique_ptr<DegradationAwareLibrary> library;
  };
  struct DelayEntry {
    std::uint64_t netlist_key = 0;
    std::uint64_t scenario_key = 0;
    double delay = 0.0;
    std::uint64_t gates = 0;  ///< netlist size, kept for query log records
  };
  struct SurrogateEntry {
    std::uint64_t lib_fp = 0;
    std::uint64_t params_key = 0;
    std::uint64_t sta_key = 0;
    surrogate::SurrogateModel model;
  };
  struct SurfaceEntry {
    std::uint64_t lib_fp = 0;
    AgingParams params;
    StaOptions sta;
    int min_precision = 0;
    int precision_step = 0;
    /// Boundary-condition (incremental-STA) family flag. Part of the key;
    /// not in the persisted payload (the record's key carries it).
    bool incremental = false;
    std::vector<AgingScenario> scenarios;
    ComponentCharacterization surface;
  };

  template <typename Entry>
  struct Shard {
    mutable std::mutex mutex;
    /// std::map: node-stable, so references/pointers into entries survive
    /// growth; unique_ptr keeps them stable even through map moves.
    std::map<std::uint64_t, std::unique_ptr<Entry>> entries;
  };
  template <typename Entry>
  using Family = std::array<Shard<Entry>, kShards>;

  static std::size_t shard_of(std::uint64_t key) { return key % kShards; }

  /// Emits the sta_query run-log record for one delay *query* (hit or miss
  /// alike — the record documents the logical query, so the log stays
  /// byte-identical no matter what warmed the cache). Serial spine only.
  void log_delay_query(bool aged, std::uint64_t gates, double delay) const;

  /// Emits the surrogate_query run-log record for one surrogate-answered
  /// query (hits only: a declined query takes the exact path, which logs
  /// its usual sta_query record — so an all-fallback surrogate run stays
  /// byte-identical to an exact run). Serial spine only, like sta_query.
  void log_surrogate_query(bool aged, double bound_ps, double delay) const;

  /// Shared hit/staged-materialization path of surface() and
  /// surface_if_cached(). Call holding `shard.mutex`; counts surface/persist
  /// hits on success, nullptr on a genuine miss (never counts misses).
  const ComponentCharacterization* surface_lookup(
      Shard<SurfaceEntry>& shard, std::uint64_t key, std::uint64_t fp,
      const AgingModel& model, const ComponentSpec& base,
      const std::vector<AgingScenario>& scenarios, int min_precision,
      int precision_step, const StaOptions& sta, bool incremental_sta);

  /// Emits a warmth-invariant store_load / store_save run-log record.
  void log_persist(const char* type, const std::string& path) const;

  /// Pops the staged payload for `key` of one record kind, if any. Call
  /// while holding the destination family's shard mutex (lock order is
  /// always shard -> staged).
  std::optional<std::string> take_staged(std::uint32_t kind,
                                         std::uint64_t key);
  /// Accounting for a query that a disk record satisfied / failed to.
  void count_persist_miss();

  const Context* ctx_;
  Family<NetlistEntry> netlists_;
  Family<LibraryEntry> libraries_;
  Family<DelayEntry> delays_;
  Family<SurfaceEntry> surfaces_;

  /// Trained surrogates — a handful per process at most, so one mutex and
  /// one map instead of a 16-way sharded family.
  mutable std::mutex surrogate_mutex_;
  std::map<std::uint64_t, std::unique_ptr<SurrogateEntry>> surrogates_;
  /// Stats-only mirrors of the lazily registered engine.surrogate.*
  /// counters: stats() must never register metrics as a side effect (an
  /// unarmed run keeps its registry surrogate-free, like the BTI-only
  /// aging counters).
  std::atomic<std::uint64_t> surrogate_hits_n_{0};
  std::atomic<std::uint64_t> surrogate_fallbacks_n_{0};

  std::mutex fp_mutex_;
  std::map<const CellLibrary*, std::uint64_t> fp_cache_;

  /// Raw records loaded by open() but not yet requested, keyed (kind, key).
  mutable std::mutex staged_mutex_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::string> staged_;
  std::atomic<bool> store_attached_{false};

  obs::Counter* netlist_hits_;
  obs::Counter* netlist_misses_;
  obs::Counter* library_hits_;
  obs::Counter* library_misses_;
  obs::Counter* delay_hits_;
  obs::Counter* delay_misses_;
  obs::Counter* surface_hits_;
  obs::Counter* surface_misses_;
  obs::Counter* persist_hits_;
  obs::Counter* persist_misses_;
  obs::Counter* persist_loads_;
  obs::Counter* persist_saves_;
  obs::Counter* persist_records_loaded_;
  obs::Counter* persist_records_dropped_;
  obs::Counter* persist_bytes_read_;
  obs::Counter* persist_bytes_written_;
};

}  // namespace engine
}  // namespace aapx
