// Content-addressed store for the expensive artifacts of the aging flow.
//
// PR 2 memoized re-synthesis and aged STA with three *separate* keyed caches
// buried inside ComponentCharacterizer, ClosedLoopRuntime and FaultInjector.
// Identical (spec, lifetime, model) work was still recomputed across layers,
// and nothing could be shared between concurrent campaigns. The DesignStore
// is the single home for all three families:
//
//   netlist   : (library fingerprint, ComponentSpec)            -> Netlist
//   library   : (library fingerprint, BtiParams, years)         -> aged lib
//   sta delay : (netlist key, model-or-fresh, stress, years,
//                StaOptions)                                    -> ps
//
// Keys are stable 64-bit content digests (engine/key.hpp): the characterizer
// warms an entry, the runtime and the fault injector hit it — one unified
// store, cross-layer by construction. A FaultInjector with a nominal
// scenario keys the *same* degradation libraries as the runtime, because the
// key is the model's parameter content, not the object that asked.
//
// Concurrency: each family is sharded 16 ways by key; a shard's mutex is
// held across a netlist/library build (so racing requesters wait instead of
// duplicating the expensive work — and hit/miss counts stay deterministic),
// while STA delays are computed outside the lock (racing duplicates compute
// the identical value; first insert wins). Returned references are stable
// for the Context's lifetime: values live in node-stable maps behind
// unique_ptr.
//
// Collision discipline: every netlist/library hit re-verifies the stored key
// material (spec / params / years / fingerprint) and throws on mismatch —
// a 64-bit collision is astronomically unlikely but must never silently
// serve the wrong artifact.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "aging/bti_model.hpp"
#include "aging/stress.hpp"
#include "cell/degradation.hpp"
#include "netlist/netlist.hpp"
#include "obs/metrics.hpp"
#include "sta/sta.hpp"
#include "synth/components.hpp"

namespace aapx {

class Context;

namespace engine {

class DesignStore {
 public:
  /// The store reports hit/miss counters into (and builds artifacts under)
  /// its owning Context; `Context::store()` is the only intended way in.
  explicit DesignStore(const Context& ctx);
  DesignStore(const DesignStore&) = delete;
  DesignStore& operator=(const DesignStore&) = delete;

  /// The synthesized, optimized netlist of `spec` under `lib`. Reference
  /// stays valid for the store's lifetime.
  const Netlist& netlist(const CellLibrary& lib, const ComponentSpec& spec);

  /// The degradation-aware library of `lib` under `model` at `years`.
  const DegradationAwareLibrary& aged_library(const CellLibrary& lib,
                                              const BtiModel& model,
                                              double years);

  /// Memoized max-delay of `spec` under uniform stress `mode` at `years`
  /// (fresh STA when years == 0; the model is then irrelevant and excluded
  /// from the key, so fresh delays are shared across models). Measured-mode
  /// queries are stimulus-dependent and must not come through this cache.
  double aged_sta_delay(const CellLibrary& lib, const ComponentSpec& spec,
                        const BtiModel& model, StressMode mode, double years,
                        const StaOptions& sta);

  /// Content fingerprint of `lib`, memoized per library object (libraries
  /// are immutable once built everywhere in this codebase).
  std::uint64_t fingerprint(const CellLibrary& lib);

  struct Stats {
    std::uint64_t netlist_hits = 0, netlist_misses = 0;
    std::uint64_t library_hits = 0, library_misses = 0;
    std::uint64_t delay_hits = 0, delay_misses = 0;

    std::uint64_t hits() const {
      return netlist_hits + library_hits + delay_hits;
    }
    std::uint64_t misses() const {
      return netlist_misses + library_misses + delay_misses;
    }
  };
  Stats stats() const;

  /// Total cached entries across all families (diagnostic).
  std::size_t entries() const;

  static constexpr std::size_t kShards = 16;

 private:
  struct NetlistEntry {
    std::uint64_t lib_fp = 0;
    ComponentSpec spec;
    Netlist netlist;
  };
  struct LibraryEntry {
    std::uint64_t lib_fp = 0;
    BtiParams params;
    double years = 0.0;
    std::unique_ptr<DegradationAwareLibrary> library;
  };
  struct DelayEntry {
    std::uint64_t netlist_key = 0;
    std::uint64_t scenario_key = 0;
    double delay = 0.0;
    std::uint64_t gates = 0;  ///< netlist size, kept for query log records
  };

  template <typename Entry>
  struct Shard {
    mutable std::mutex mutex;
    /// std::map: node-stable, so references/pointers into entries survive
    /// growth; unique_ptr keeps them stable even through map moves.
    std::map<std::uint64_t, std::unique_ptr<Entry>> entries;
  };
  template <typename Entry>
  using Family = std::array<Shard<Entry>, kShards>;

  static std::size_t shard_of(std::uint64_t key) { return key % kShards; }

  /// Emits the sta_query run-log record for one delay *query* (hit or miss
  /// alike — the record documents the logical query, so the log stays
  /// byte-identical no matter what warmed the cache). Serial spine only.
  void log_delay_query(bool aged, std::uint64_t gates, double delay) const;

  const Context* ctx_;
  Family<NetlistEntry> netlists_;
  Family<LibraryEntry> libraries_;
  Family<DelayEntry> delays_;

  std::mutex fp_mutex_;
  std::map<const CellLibrary*, std::uint64_t> fp_cache_;

  obs::Counter* netlist_hits_;
  obs::Counter* netlist_misses_;
  obs::Counter* library_hits_;
  obs::Counter* library_misses_;
  obs::Counter* delay_hits_;
  obs::Counter* delay_misses_;
};

}  // namespace engine
}  // namespace aapx
