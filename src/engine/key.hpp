// Content-addressed key derivation for the DesignStore.
//
// Every cacheable artifact of the flow is identified by a 64-bit FNV-1a
// digest of the *inputs that determine it*, via util/hash.hpp:
//
//   netlist        <- tag, cell-library fingerprint, ComponentSpec fields
//   aged library   <- tag, fingerprint, BtiParams fields, lifetime years
//   aged-STA delay <- tag, netlist key, model key or "fresh", stress mode,
//                     years, StaOptions fields
//
// Keys are pure functions of content — never of addresses — so two
// BtiModel objects with equal parameters share cache entries, and keys are
// stable across runs (they could be persisted or shipped to a remote shard).
#pragma once

#include <cstdint>

#include "aging/aging_model.hpp"
#include "aging/bti_model.hpp"
#include "aging/stress.hpp"
#include "sta/sta.hpp"
#include "synth/components.hpp"

namespace aapx {

class CellLibrary;

namespace engine {

/// Digest of every ComponentSpec field (kind, width, truncation, adder and
/// multiplier architecture, approximation technique).
std::uint64_t key_of(const ComponentSpec& spec);

/// Digest of the full BtiParams record (voltages, prefactors, exponents,
/// temperatures). Models with equal parameters key identically.
std::uint64_t key_of(const BtiParams& params);
inline std::uint64_t key_of(const BtiModel& model) {
  return key_of(model.params());
}

/// Digest of the composite aging-parameter record. Back-compat rule: a
/// BTI-only set digests exactly as key_of(BtiParams) — the historic key —
/// so existing stores stay warm; any other mechanism set digests under a
/// separate tag that additionally hashes the mechanism list and every
/// enabled mechanism's parameter block, so extended models can never alias
/// a BTI-only entry.
std::uint64_t key_of(const AgingParams& params);
inline std::uint64_t key_of(const AgingModel& model) {
  return key_of(model.params());
}

std::uint64_t key_of(const StaOptions& options);

/// Digest of (mode, years). Fresh scenarios (years == 0) of any mode key
/// identically — aging-free timing does not depend on the stress mode.
std::uint64_t key_of(const AgingScenario& scenario);

/// Content fingerprint of a cell library: every cell's name, function,
/// drive, electrical constants, leakage vector and NLDM tables, plus the DFF
/// boundary spec. Expensive (walks every table); DesignStore memoizes it per
/// library object.
std::uint64_t fingerprint(const CellLibrary& lib);

}  // namespace engine
}  // namespace aapx
