#include "engine/design_store.hpp"

#include <stdexcept>

#include "engine/context.hpp"
#include "engine/key.hpp"
#include "obs/runlog.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"

namespace aapx::engine {
namespace {

// Family tags keep the three key spaces disjoint inside one digest space.
constexpr std::uint64_t kTagNetlist = 0x4e4c303031ULL;  // "NL001"
constexpr std::uint64_t kTagLibrary = 0x414c303031ULL;  // "AL001"
constexpr std::uint64_t kTagDelay = 0x4454303031ULL;    // "DT001"

}  // namespace

DesignStore::DesignStore(const Context& ctx) : ctx_(&ctx) {
  obs::MetricsRegistry& m = ctx.metrics();
  netlist_hits_ = &m.counter("engine.store.netlist_hits");
  netlist_misses_ = &m.counter("engine.store.netlist_misses");
  library_hits_ = &m.counter("engine.store.library_hits");
  library_misses_ = &m.counter("engine.store.library_misses");
  delay_hits_ = &m.counter("engine.store.delay_hits");
  delay_misses_ = &m.counter("engine.store.delay_misses");
}

std::uint64_t DesignStore::fingerprint(const CellLibrary& lib) {
  {
    std::lock_guard<std::mutex> lock(fp_mutex_);
    const auto it = fp_cache_.find(&lib);
    if (it != fp_cache_.end()) return it->second;
  }
  // Content walk outside the lock; a racing duplicate computes the same
  // digest (fingerprinting is pure).
  const std::uint64_t fp = engine::fingerprint(lib);
  std::lock_guard<std::mutex> lock(fp_mutex_);
  fp_cache_.emplace(&lib, fp);
  return fp;
}

const Netlist& DesignStore::netlist(const CellLibrary& lib,
                                    const ComponentSpec& spec) {
  const std::uint64_t fp = fingerprint(lib);
  const std::uint64_t key =
      Hasher{}.u64(kTagNetlist).u64(fp).u64(key_of(spec)).digest();
  Shard<NetlistEntry>& shard = netlists_[shard_of(key)];
  // The build runs under the shard lock: a racing requester of the same
  // netlist waits instead of synthesizing a duplicate, and hit/miss totals
  // stay deterministic at any thread count (one miss per distinct key).
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    const NetlistEntry& e = *it->second;
    if (e.lib_fp != fp || !(e.spec == spec)) {
      throw std::logic_error("DesignStore: netlist key collision");
    }
    netlist_hits_->add();
    return e.netlist;
  }
  netlist_misses_->add();
  auto entry = std::make_unique<NetlistEntry>(
      NetlistEntry{fp, spec, make_component(*ctx_, lib, spec)});
  it = shard.entries.emplace(key, std::move(entry)).first;
  return it->second->netlist;
}

const DegradationAwareLibrary& DesignStore::aged_library(const CellLibrary& lib,
                                                         const BtiModel& model,
                                                         double years) {
  const std::uint64_t fp = fingerprint(lib);
  const std::uint64_t key = Hasher{}
                                .u64(kTagLibrary)
                                .u64(fp)
                                .u64(key_of(model))
                                .f64(years)
                                .digest();
  Shard<LibraryEntry>& shard = libraries_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    const LibraryEntry& e = *it->second;
    if (e.lib_fp != fp || e.years != years ||
        key_of(e.params) != key_of(model.params())) {
      throw std::logic_error("DesignStore: library key collision");
    }
    library_hits_->add();
    return *e.library;
  }
  library_misses_->add();
  auto entry = std::make_unique<LibraryEntry>();
  entry->lib_fp = fp;
  entry->params = model.params();
  entry->years = years;
  entry->library = std::make_unique<DegradationAwareLibrary>(lib, model, years);
  it = shard.entries.emplace(key, std::move(entry)).first;
  return *it->second->library;
}

double DesignStore::aged_sta_delay(const CellLibrary& lib,
                                   const ComponentSpec& spec,
                                   const BtiModel& model, StressMode mode,
                                   double years, const StaOptions& sta) {
  if (mode == StressMode::measured) {
    throw std::invalid_argument(
        "DesignStore::aged_sta_delay: measured-mode delays are "
        "stimulus-dependent and not cacheable by spec");
  }
  const std::uint64_t netlist_key =
      Hasher{}.u64(fingerprint(lib)).u64(key_of(spec)).digest();
  // Fresh timing does not depend on the aging model or stress mode; keying
  // it as plain "fresh" lets every model share one entry.
  Hasher scenario;
  if (years <= 0.0) {
    scenario.str("fresh");
  } else {
    scenario.u64(key_of(model)).i32(static_cast<int>(mode)).f64(years);
  }
  const std::uint64_t scenario_key = scenario.u64(key_of(sta)).digest();
  const std::uint64_t key = Hasher{}
                                .u64(kTagDelay)
                                .u64(netlist_key)
                                .u64(scenario_key)
                                .digest();

  Shard<DelayEntry>& shard = delays_[shard_of(key)];
  {
    bool hit = false;
    std::uint64_t gates = 0;
    double delay = 0.0;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        const DelayEntry& e = *it->second;
        if (e.netlist_key != netlist_key || e.scenario_key != scenario_key) {
          throw std::logic_error("DesignStore: delay key collision");
        }
        delay_hits_->add();
        hit = true;
        gates = e.gates;
        delay = e.delay;
      }
    }
    if (hit) {
      log_delay_query(years > 0.0, gates, delay);
      return delay;
    }
  }
  delay_misses_->add();
  double delay;
  std::uint64_t gates;
  {
    // Compute outside the lock — netlist()/aged_library() take their own
    // family locks and an STA run is too long to serialize a shard on. A
    // racing duplicate computes the identical value; first insert wins.
    // The fill runs off the serial spine: whether it executes at all depends
    // on process-wide cache history, so the Sta run must not emit its own
    // sta_query record (log_delay_query below reports the query instead,
    // identically for hits and misses).
    const OffSpineGuard off_spine;
    const Netlist& nl = netlist(lib, spec);
    const Sta sta_engine(nl, sta, ctx_);
    gates = static_cast<std::uint64_t>(nl.num_gates());
    if (years <= 0.0) {
      delay = sta_engine.run_fresh().max_delay;
    } else {
      const DegradationAwareLibrary& aged = aged_library(lib, model, years);
      const StressProfile stress =
          StressProfile::uniform(mode, nl.num_gates());
      delay = sta_engine.run_aged(aged, stress).max_delay;
    }
    auto entry = std::make_unique<DelayEntry>();
    entry->netlist_key = netlist_key;
    entry->scenario_key = scenario_key;
    entry->delay = delay;
    entry->gates = gates;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.emplace(key, std::move(entry));
  }
  log_delay_query(years > 0.0, gates, delay);
  return delay;
}

void DesignStore::log_delay_query(bool aged, std::uint64_t gates,
                                  double delay) const {
  obs::RunLog& log = ctx_->runlog();
  if (!log.enabled() || in_parallel_region()) return;
  obs::JsonWriter w;
  w.field("kind", aged ? "aged" : "fresh")
      .field("gates", gates)
      .field("max_delay_ps", delay);
  log.emit("sta_query", w);
}

DesignStore::Stats DesignStore::stats() const {
  Stats s;
  s.netlist_hits = netlist_hits_->value();
  s.netlist_misses = netlist_misses_->value();
  s.library_hits = library_hits_->value();
  s.library_misses = library_misses_->value();
  s.delay_hits = delay_hits_->value();
  s.delay_misses = delay_misses_->value();
  return s;
}

std::size_t DesignStore::entries() const {
  std::size_t n = 0;
  const auto count = [&n](const auto& family) {
    for (const auto& shard : family) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      n += shard.entries.size();
    }
  };
  count(netlists_);
  count(libraries_);
  count(delays_);
  return n;
}

}  // namespace aapx::engine
