#include "engine/design_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "engine/context.hpp"
#include "engine/key.hpp"
#include "engine/persist.hpp"
#include "obs/runlog.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"

namespace aapx::engine {
namespace {

// Family tags keep the four key spaces disjoint inside one digest space.
constexpr std::uint64_t kTagNetlist = 0x4e4c303031ULL;  // "NL001"
constexpr std::uint64_t kTagLibrary = 0x414c303031ULL;  // "AL001"
constexpr std::uint64_t kTagDelay = 0x4454303031ULL;    // "DT001"
constexpr std::uint64_t kTagSurface = 0x5346303031ULL;  // "SF001"
// Incremental boundary-condition STA delays (truncation modeled as
// never-arriving PIs on the full-precision netlist). A separate tag keeps
// them from ever aliasing kTagDelay's re-synthesized full-STA entries —
// the two families answer different questions about the same spec.
constexpr std::uint64_t kTagTruncDelay = 0x4454303032ULL;  // "DT002"
// Trained surrogate models, one per (library, AgingParams, StaOptions)
// family. Own tag: a surrogate record can never alias an exact artifact.
constexpr std::uint64_t kTagSurrogate = 0x5352303031ULL;  // "SR001"

std::uint64_t surrogate_record_key(std::uint64_t lib_fp,
                                   std::uint64_t params_key,
                                   std::uint64_t sta_key) {
  return Hasher{}
      .u64(kTagSurrogate)
      .u64(lib_fp)
      .u64(params_key)
      .u64(sta_key)
      .digest();
}

/// Scenario identity under the surface cache: fresh scenarios of any stress
/// mode are the same query (aging-free timing ignores the mode).
bool scenario_equal(const AgingScenario& a, const AgingScenario& b) {
  if (a.is_fresh() || b.is_fresh()) return a.is_fresh() && b.is_fresh();
  return a.mode == b.mode && a.years == b.years;
}

bool scenarios_equal(const std::vector<AgingScenario>& a,
                     const std::vector<AgingScenario>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!scenario_equal(a[i], b[i])) return false;
  }
  return true;
}

std::uint64_t surface_key(std::uint64_t lib_fp, const AgingParams& params,
                          const ComponentSpec& base,
                          const std::vector<AgingScenario>& scenarios,
                          int min_precision, int precision_step,
                          const StaOptions& sta, bool incremental) {
  Hasher h;
  h.u64(kTagSurface)
      .u64(lib_fp)
      .u64(key_of(params))
      .u64(key_of(base))
      .u64(key_of(sta))
      .i32(min_precision)
      .i32(precision_step)
      .u64(scenarios.size());
  for (const AgingScenario& s : scenarios) h.u64(key_of(s));
  // Hashed only when set so every pre-existing store file keeps its keys.
  if (incremental) h.str("inc-sta");
  return h.digest();
}

/// Stderr note for a staged disk record that could not be served. Never a
/// run-log record: whether it fires depends on store warmth.
void warn_record_dropped(const char* family, std::uint64_t key,
                         const char* why) {
  std::fprintf(stderr,
               "aapx store: %s record %016llx unusable (%s) — recomputing\n",
               family, static_cast<unsigned long long>(key), why);
}

}  // namespace

DesignStore::DesignStore(const Context& ctx) : ctx_(&ctx) {
  obs::MetricsRegistry& m = ctx.metrics();
  netlist_hits_ = &m.counter("engine.store.netlist_hits");
  netlist_misses_ = &m.counter("engine.store.netlist_misses");
  library_hits_ = &m.counter("engine.store.library_hits");
  library_misses_ = &m.counter("engine.store.library_misses");
  delay_hits_ = &m.counter("engine.store.delay_hits");
  delay_misses_ = &m.counter("engine.store.delay_misses");
  surface_hits_ = &m.counter("engine.store.surface_hits");
  surface_misses_ = &m.counter("engine.store.surface_misses");
  persist_hits_ = &m.counter("engine.store.persist.hits");
  persist_misses_ = &m.counter("engine.store.persist.misses");
  persist_loads_ = &m.counter("engine.store.persist.loads");
  persist_saves_ = &m.counter("engine.store.persist.saves");
  persist_records_loaded_ = &m.counter("engine.store.persist.records_loaded");
  persist_records_dropped_ = &m.counter("engine.store.persist.records_dropped");
  persist_bytes_read_ = &m.counter("engine.store.persist.bytes_read");
  persist_bytes_written_ = &m.counter("engine.store.persist.bytes_written");
}

std::optional<std::string> DesignStore::take_staged(std::uint32_t kind,
                                                    std::uint64_t key) {
  if (!store_attached_.load(std::memory_order_relaxed)) return std::nullopt;
  std::lock_guard<std::mutex> lock(staged_mutex_);
  const auto it = staged_.find({kind, key});
  if (it == staged_.end()) return std::nullopt;
  std::string payload = std::move(it->second);
  staged_.erase(it);
  return payload;
}

void DesignStore::count_persist_miss() {
  if (store_attached_.load(std::memory_order_relaxed)) persist_misses_->add();
}

std::uint64_t DesignStore::fingerprint(const CellLibrary& lib) {
  {
    std::lock_guard<std::mutex> lock(fp_mutex_);
    const auto it = fp_cache_.find(&lib);
    if (it != fp_cache_.end()) return it->second;
  }
  // Content walk outside the lock; a racing duplicate computes the same
  // digest (fingerprinting is pure).
  const std::uint64_t fp = engine::fingerprint(lib);
  std::lock_guard<std::mutex> lock(fp_mutex_);
  fp_cache_.emplace(&lib, fp);
  return fp;
}

const Netlist& DesignStore::netlist(const CellLibrary& lib,
                                    const ComponentSpec& spec) {
  const std::uint64_t fp = fingerprint(lib);
  const std::uint64_t key =
      Hasher{}.u64(kTagNetlist).u64(fp).u64(key_of(spec)).digest();
  Shard<NetlistEntry>& shard = netlists_[shard_of(key)];
  // The build runs under the shard lock: a racing requester of the same
  // netlist waits instead of synthesizing a duplicate, and hit/miss totals
  // stay deterministic at any thread count (one miss per distinct key).
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    const NetlistEntry& e = *it->second;
    if (e.lib_fp != fp || !(e.spec == spec)) {
      throw std::logic_error("DesignStore: netlist key collision");
    }
    netlist_hits_->add();
    return e.netlist;
  }
  if (auto blob = take_staged(
          static_cast<std::uint32_t>(RecordKind::netlist), key)) {
    try {
      NetlistPayload p = decode_netlist_payload(*blob, lib);
      if (p.lib_fp == fp && p.spec == spec) {
        netlist_hits_->add();
        persist_hits_->add();
        auto entry = std::make_unique<NetlistEntry>(
            NetlistEntry{fp, spec, std::move(p.netlist)});
        it = shard.entries.emplace(key, std::move(entry)).first;
        return it->second->netlist;
      }
      warn_record_dropped("netlist", key, "stale key material");
    } catch (const std::exception& e) {
      warn_record_dropped("netlist", key, e.what());
    }
    persist_records_dropped_->add();
  }
  netlist_misses_->add();
  count_persist_miss();
  auto entry = std::make_unique<NetlistEntry>(
      NetlistEntry{fp, spec, make_component(*ctx_, lib, spec)});
  it = shard.entries.emplace(key, std::move(entry)).first;
  return it->second->netlist;
}

const DegradationAwareLibrary& DesignStore::aged_library(const CellLibrary& lib,
                                                         const AgingModel& model,
                                                         double years) {
  const std::uint64_t fp = fingerprint(lib);
  const std::uint64_t key = Hasher{}
                                .u64(kTagLibrary)
                                .u64(fp)
                                .u64(key_of(model))
                                .f64(years)
                                .digest();
  Shard<LibraryEntry>& shard = libraries_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    const LibraryEntry& e = *it->second;
    if (e.lib_fp != fp || e.years != years ||
        key_of(e.params) != key_of(model.params())) {
      throw std::logic_error("DesignStore: library key collision");
    }
    library_hits_->add();
    return *e.library;
  }
  if (auto blob = take_staged(
          static_cast<std::uint32_t>(RecordKind::aged_library), key)) {
    try {
      AgedLibraryPayload p = decode_aged_library_payload(*blob, lib);
      if (p.lib_fp == fp && p.years == years &&
          key_of(p.params) == key_of(model.params())) {
        library_hits_->add();
        persist_hits_->add();
        auto entry = std::make_unique<LibraryEntry>();
        entry->lib_fp = fp;
        entry->params = p.params;
        entry->years = years;
        entry->library =
            std::make_unique<DegradationAwareLibrary>(std::move(p.library));
        it = shard.entries.emplace(key, std::move(entry)).first;
        return *it->second->library;
      }
      warn_record_dropped("aged_library", key, "stale key material");
    } catch (const std::exception& e) {
      warn_record_dropped("aged_library", key, e.what());
    }
    persist_records_dropped_->add();
  }
  library_misses_->add();
  count_persist_miss();
  auto entry = std::make_unique<LibraryEntry>();
  entry->lib_fp = fp;
  entry->params = model.params();
  entry->years = years;
  entry->library = std::make_unique<DegradationAwareLibrary>(lib, model, years);
  it = shard.entries.emplace(key, std::move(entry)).first;
  return *it->second->library;
}

double DesignStore::aged_sta_delay(const CellLibrary& lib,
                                   const ComponentSpec& spec,
                                   const AgingModel& model, StressMode mode,
                                   double years, const StaOptions& sta) {
  if (mode == StressMode::measured) {
    throw std::invalid_argument(
        "DesignStore::aged_sta_delay: measured-mode delays are "
        "stimulus-dependent and not cacheable by spec");
  }
  const std::uint64_t netlist_key =
      Hasher{}.u64(fingerprint(lib)).u64(key_of(spec)).digest();
  // Fresh timing does not depend on the aging model or stress mode; keying
  // it as plain "fresh" lets every model share one entry.
  Hasher scenario;
  if (years <= 0.0) {
    scenario.str("fresh");
  } else {
    scenario.u64(key_of(model)).i32(static_cast<int>(mode)).f64(years);
  }
  const std::uint64_t scenario_key = scenario.u64(key_of(sta)).digest();
  const std::uint64_t key = Hasher{}
                                .u64(kTagDelay)
                                .u64(netlist_key)
                                .u64(scenario_key)
                                .digest();

  Shard<DelayEntry>& shard = delays_[shard_of(key)];
  {
    bool hit = false;
    std::uint64_t gates = 0;
    double delay = 0.0;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        const DelayEntry& e = *it->second;
        if (e.netlist_key != netlist_key || e.scenario_key != scenario_key) {
          throw std::logic_error("DesignStore: delay key collision");
        }
        delay_hits_->add();
        hit = true;
        gates = e.gates;
        delay = e.delay;
      } else if (auto blob = take_staged(
                     static_cast<std::uint32_t>(RecordKind::sta_delay), key)) {
        try {
          const StaDelayPayload p = decode_sta_delay_payload(*blob);
          if (p.netlist_key == netlist_key && p.scenario_key == scenario_key) {
            delay_hits_->add();
            persist_hits_->add();
            auto entry = std::make_unique<DelayEntry>();
            entry->netlist_key = netlist_key;
            entry->scenario_key = scenario_key;
            entry->delay = p.delay;
            entry->gates = p.gates;
            shard.entries.emplace(key, std::move(entry));
            hit = true;
            gates = p.gates;
            delay = p.delay;
          } else {
            warn_record_dropped("sta_delay", key, "stale key material");
            persist_records_dropped_->add();
          }
        } catch (const std::exception& e) {
          warn_record_dropped("sta_delay", key, e.what());
          persist_records_dropped_->add();
        }
      }
    }
    if (hit) {
      log_delay_query(years > 0.0, gates, delay);
      return delay;
    }
  }
  // Learned fast path — consulted only after the exact caches (in-memory
  // and staged disk) miss, so an exact answer is always preferred. A
  // surrogate answer returns WITHOUT entering the delay family: the store
  // only ever holds exact values. Declining (no model, hull miss, bound
  // tighter than the validated error) falls through to the exact compute
  // below, which is why an all-fallback armed run stays byte-identical to
  // an unarmed one in both its logs and its store.
  if (const double bound = ctx_->surrogate_bound(); bound > 0.0) {
    if (const surrogate::SurrogateModel* sm =
            surrogate_model(lib, model, sta)) {
      if (const std::optional<double> pred =
              sm->try_predict(spec, mode, years, model, bound)) {
        surrogate_hits_n_.fetch_add(1, std::memory_order_relaxed);
        ctx_->metrics().counter("engine.surrogate.hits").add();
        log_surrogate_query(years > 0.0, bound, *pred);
        return *pred;
      }
    }
    surrogate_fallbacks_n_.fetch_add(1, std::memory_order_relaxed);
    ctx_->metrics().counter("engine.surrogate.fallbacks").add();
  }
  delay_misses_->add();
  count_persist_miss();
  double delay;
  std::uint64_t gates;
  {
    // Compute outside the lock — netlist()/aged_library() take their own
    // family locks and an STA run is too long to serialize a shard on. A
    // racing duplicate computes the identical value; first insert wins.
    // The fill runs off the serial spine: whether it executes at all depends
    // on process-wide cache history, so the Sta run must not emit its own
    // sta_query record (log_delay_query below reports the query instead,
    // identically for hits and misses).
    const OffSpineGuard off_spine;
    const Netlist& nl = netlist(lib, spec);
    const Sta sta_engine(nl, sta, ctx_);
    gates = static_cast<std::uint64_t>(nl.num_gates());
    if (years <= 0.0) {
      delay = sta_engine.run_fresh().max_delay;
    } else {
      const DegradationAwareLibrary& aged = aged_library(lib, model, years);
      const StressProfile stress =
          StressProfile::uniform(mode, nl.num_gates());
      delay = sta_engine.run_aged(aged, stress).max_delay;
    }
    auto entry = std::make_unique<DelayEntry>();
    entry->netlist_key = netlist_key;
    entry->scenario_key = scenario_key;
    entry->delay = delay;
    entry->gates = gates;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.emplace(key, std::move(entry));
  }
  log_delay_query(years > 0.0, gates, delay);
  return delay;
}

double DesignStore::truncated_sta_delay(
    const CellLibrary& lib, const ComponentSpec& base, int truncated_bits,
    const AgingModel& model, StressMode mode, double years,
    const StaOptions& sta, std::uint64_t gates,
    const std::function<double()>& compute) {
  if (mode == StressMode::measured) {
    throw std::invalid_argument(
        "DesignStore::truncated_sta_delay: measured-mode delays are "
        "stimulus-dependent and not cacheable by spec");
  }
  const std::uint64_t netlist_key =
      Hasher{}.u64(fingerprint(lib)).u64(key_of(base)).digest();
  // Same scenario derivation as aged_sta_delay plus the truncation depth;
  // the family tag below is what keeps the two key spaces disjoint.
  Hasher scenario;
  if (years <= 0.0) {
    scenario.str("fresh");
  } else {
    scenario.u64(key_of(model)).i32(static_cast<int>(mode)).f64(years);
  }
  const std::uint64_t scenario_key =
      scenario.i32(truncated_bits).u64(key_of(sta)).digest();
  const std::uint64_t key = Hasher{}
                                .u64(kTagTruncDelay)
                                .u64(netlist_key)
                                .u64(scenario_key)
                                .digest();

  Shard<DelayEntry>& shard = delays_[shard_of(key)];
  {
    bool hit = false;
    double delay = 0.0;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        const DelayEntry& e = *it->second;
        if (e.netlist_key != netlist_key || e.scenario_key != scenario_key) {
          throw std::logic_error("DesignStore: delay key collision");
        }
        delay_hits_->add();
        hit = true;
        delay = e.delay;
      } else if (auto blob = take_staged(
                     static_cast<std::uint32_t>(RecordKind::sta_delay), key)) {
        try {
          const StaDelayPayload p = decode_sta_delay_payload(*blob);
          if (p.netlist_key == netlist_key && p.scenario_key == scenario_key) {
            delay_hits_->add();
            persist_hits_->add();
            auto entry = std::make_unique<DelayEntry>();
            entry->netlist_key = netlist_key;
            entry->scenario_key = scenario_key;
            entry->delay = p.delay;
            entry->gates = p.gates;
            shard.entries.emplace(key, std::move(entry));
            hit = true;
            delay = p.delay;
          } else {
            warn_record_dropped("sta_delay", key, "stale key material");
            persist_records_dropped_->add();
          }
        } catch (const std::exception& e) {
          warn_record_dropped("sta_delay", key, e.what());
          persist_records_dropped_->add();
        }
      }
    }
    if (hit) {
      log_delay_query(years > 0.0, gates, delay);
      return delay;
    }
  }
  delay_misses_->add();
  count_persist_miss();
  double delay;
  {
    // Off the serial spine for the same reason as aged_sta_delay: whether
    // the compute callback runs depends on cache history, so nothing inside
    // it may emit run-log records; the log_delay_query below documents the
    // query identically for hits and misses.
    const OffSpineGuard off_spine;
    delay = compute();
    auto entry = std::make_unique<DelayEntry>();
    entry->netlist_key = netlist_key;
    entry->scenario_key = scenario_key;
    entry->delay = delay;
    entry->gates = gates;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.emplace(key, std::move(entry));
  }
  log_delay_query(years > 0.0, gates, delay);
  return delay;
}

const ComponentCharacterization& DesignStore::surface(
    const CellLibrary& lib, const AgingModel& model,
    const ComponentSpec& base,
    const std::vector<AgingScenario>& scenarios, int min_precision,
    int precision_step, const StaOptions& sta, bool incremental_sta,
    const std::function<ComponentCharacterization()>& build) {
  for (const AgingScenario& s : scenarios) {
    if (!s.is_fresh() && s.mode == StressMode::measured) {
      throw std::invalid_argument(
          "DesignStore::surface: measured-mode scenarios are "
          "stimulus-dependent and not cacheable");
    }
  }
  const std::uint64_t fp = fingerprint(lib);
  const std::uint64_t key =
      surface_key(fp, model.params(), base, scenarios, min_precision,
                  precision_step, sta, incremental_sta);
  Shard<SurfaceEntry>& shard = surfaces_[shard_of(key)];
  // Like netlists, the build runs under the shard lock: surfaces are the
  // most expensive artifact in the store and must never be computed twice.
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (const ComponentCharacterization* cached =
          surface_lookup(shard, key, fp, model, base, scenarios,
                         min_precision, precision_step, sta,
                         incremental_sta)) {
    return *cached;
  }
  surface_misses_->add();
  count_persist_miss();
  auto entry = std::make_unique<SurfaceEntry>(
      SurfaceEntry{fp, model.params(), sta, min_precision, precision_step,
                   incremental_sta, scenarios, build()});
  const auto it = shard.entries.emplace(key, std::move(entry)).first;
  return it->second->surface;
}

const ComponentCharacterization* DesignStore::surface_lookup(
    Shard<SurfaceEntry>& shard, std::uint64_t key, std::uint64_t fp,
    const AgingModel& model, const ComponentSpec& base,
    const std::vector<AgingScenario>& scenarios, int min_precision,
    int precision_step, const StaOptions& sta, bool incremental_sta) {
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    const SurfaceEntry& e = *it->second;
    if (e.lib_fp != fp || key_of(e.params) != key_of(model.params()) ||
        key_of(e.sta) != key_of(sta) || e.min_precision != min_precision ||
        e.precision_step != precision_step ||
        e.incremental != incremental_sta || !(e.surface.base == base) ||
        !scenarios_equal(e.scenarios, scenarios)) {
      throw std::logic_error("DesignStore: surface key collision");
    }
    surface_hits_->add();
    return &e.surface;
  }
  if (auto blob = take_staged(
          static_cast<std::uint32_t>(RecordKind::surface), key)) {
    try {
      SurfacePayload p = decode_surface_payload(*blob);
      if (p.lib_fp == fp && key_of(p.params) == key_of(model.params()) &&
          key_of(p.sta) == key_of(sta) && p.min_precision == min_precision &&
          p.precision_step == precision_step && p.surface.base == base &&
          scenarios_equal(p.scenarios, scenarios)) {
        surface_hits_->add();
        persist_hits_->add();
        auto entry = std::make_unique<SurfaceEntry>(
            SurfaceEntry{fp, p.params, p.sta, min_precision, precision_step,
                         incremental_sta, std::move(p.scenarios),
                         std::move(p.surface)});
        it = shard.entries.emplace(key, std::move(entry)).first;
        return &it->second->surface;
      }
      warn_record_dropped("surface", key, "stale key material");
    } catch (const std::exception& e) {
      warn_record_dropped("surface", key, e.what());
    }
    persist_records_dropped_->add();
  }
  return nullptr;
}

const ComponentCharacterization* DesignStore::surface_if_cached(
    const CellLibrary& lib, const AgingModel& model,
    const ComponentSpec& base, const std::vector<AgingScenario>& scenarios,
    int min_precision, int precision_step, const StaOptions& sta,
    bool incremental_sta) {
  const std::uint64_t fp = fingerprint(lib);
  const std::uint64_t key =
      surface_key(fp, model.params(), base, scenarios, min_precision,
                  precision_step, sta, incremental_sta);
  Shard<SurfaceEntry>& shard = surfaces_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return surface_lookup(shard, key, fp, model, base, scenarios, min_precision,
                        precision_step, sta, incremental_sta);
}

std::uint64_t DesignStore::put_surrogate(const CellLibrary& lib,
                                         const AgingModel& model,
                                         const StaOptions& sta,
                                         surrogate::SurrogateModel model_fit) {
  const std::uint64_t fp = fingerprint(lib);
  const std::uint64_t params_key = key_of(model.params());
  const std::uint64_t sta_key = key_of(sta);
  const std::uint64_t key = surrogate_record_key(fp, params_key, sta_key);
  std::lock_guard<std::mutex> lock(surrogate_mutex_);
  // Supersede any staged disk record of the same key: save() writes each
  // key once, and a retrained model must not sit next to its predecessor.
  (void)take_staged(static_cast<std::uint32_t>(RecordKind::surrogate), key);
  surrogates_[key] = std::make_unique<SurrogateEntry>(
      SurrogateEntry{fp, params_key, sta_key, std::move(model_fit)});
  ctx_->metrics().counter("engine.surrogate.models").add();
  return key;
}

const surrogate::SurrogateModel* DesignStore::surrogate_model(
    const CellLibrary& lib, const AgingModel& model, const StaOptions& sta) {
  const std::uint64_t fp = fingerprint(lib);
  const std::uint64_t params_key = key_of(model.params());
  const std::uint64_t sta_key = key_of(sta);
  const std::uint64_t key = surrogate_record_key(fp, params_key, sta_key);
  std::lock_guard<std::mutex> lock(surrogate_mutex_);
  auto it = surrogates_.find(key);
  if (it != surrogates_.end()) {
    const SurrogateEntry& e = *it->second;
    if (e.lib_fp != fp || e.params_key != params_key ||
        e.sta_key != sta_key) {
      throw std::logic_error("DesignStore: surrogate key collision");
    }
    return &e.model;
  }
  if (auto blob = take_staged(
          static_cast<std::uint32_t>(RecordKind::surrogate), key)) {
    try {
      SurrogatePayload p = decode_surrogate_payload(*blob);
      if (p.lib_fp == fp && p.params_key == params_key &&
          p.sta_key == sta_key) {
        // The blob's inner checksum is verified here: a flipped weight byte
        // behind a consistent outer record checksum still throws, and the
        // record is dropped — exact fallback, never a wrong model.
        surrogate::SurrogateModel m =
            surrogate::SurrogateModel::decode(p.model_blob);
        persist_hits_->add();
        it = surrogates_
                 .emplace(key, std::make_unique<SurrogateEntry>(SurrogateEntry{
                                   fp, params_key, sta_key, std::move(m)}))
                 .first;
        return &it->second->model;
      }
      warn_record_dropped("surrogate", key, "stale key material");
    } catch (const std::exception& e) {
      warn_record_dropped("surrogate", key, e.what());
    }
    persist_records_dropped_->add();
  }
  return nullptr;
}

bool DesignStore::open(const std::string& path) {
  // A SIGKILL mid-save leaves the write_store_file temp file behind; the
  // rename never happened, so the main file is intact and the temp is
  // garbage. Reclaim it here — open() marks the start of a new attachment,
  // when no save of ours can be in flight yet.
  {
    std::error_code ec;
    std::filesystem::remove(path + ".tmp", ec);
  }
  StoreFileData data = load_store_file(path);
  for (const std::string& w : data.warnings) {
    std::fprintf(stderr, "aapx store: %s\n", w.c_str());
  }
  persist_loads_->add();
  persist_bytes_read_->add(data.bytes_read);
  persist_records_dropped_->add(data.records_dropped);
  persist_records_loaded_->add(data.records.size());
  {
    std::lock_guard<std::mutex> lock(staged_mutex_);
    for (RawRecord& rec : data.records) {
      // Last record wins for duplicate keys; `aapx library merge` warns on
      // genuine conflicts before they ever reach a store file.
      staged_[{static_cast<std::uint32_t>(rec.kind), rec.key}] =
          std::move(rec.payload);
    }
  }
  store_attached_.store(true, std::memory_order_relaxed);
  log_persist("store_load", path);
  return data.warnings.empty();
}

bool DesignStore::save(const std::string& path) const {
  std::vector<RawRecord> records;
  for (const auto& shard : netlists_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, e] : shard.entries) {
      records.push_back(
          {RecordKind::netlist, key,
           encode_netlist_payload(e->lib_fp, e->spec, e->netlist)});
    }
  }
  for (const auto& shard : libraries_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, e] : shard.entries) {
      records.push_back({RecordKind::aged_library, key,
                         encode_aged_library_payload(e->lib_fp, e->params,
                                                     e->years, *e->library)});
    }
  }
  for (const auto& shard : delays_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, e] : shard.entries) {
      records.push_back({RecordKind::sta_delay, key,
                         encode_sta_delay_payload({e->netlist_key,
                                                   e->scenario_key, e->delay,
                                                   e->gates})});
    }
  }
  for (const auto& shard : surfaces_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, e] : shard.entries) {
      records.push_back(
          {RecordKind::surface, key,
           encode_surface_payload({e->lib_fp, e->params, e->sta,
                                   e->min_precision, e->precision_step,
                                   e->scenarios, e->surface})});
    }
  }
  {
    std::lock_guard<std::mutex> lock(surrogate_mutex_);
    for (const auto& [key, e] : surrogates_) {
      records.push_back(
          {RecordKind::surrogate, key,
           encode_surrogate_payload({e->lib_fp, e->params_key, e->sta_key,
                                     e->model.encode()})});
    }
  }
  {
    // Records loaded but never queried this run ride along unchanged, so a
    // warm run never shrinks the store it was given.
    std::lock_guard<std::mutex> lock(staged_mutex_);
    for (const auto& [k, payload] : staged_) {
      records.push_back(
          {static_cast<RecordKind>(k.first), k.second, payload});
    }
  }
  std::sort(records.begin(), records.end(),
            [](const RawRecord& a, const RawRecord& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.key < b.key;
            });
  const std::uint64_t bytes = write_store_file(path, records);
  if (bytes == 0) {
    std::fprintf(stderr, "aapx store: cannot write '%s'\n", path.c_str());
    return false;
  }
  persist_saves_->add();
  persist_bytes_written_->add(bytes);
  log_persist("store_save", path);
  return true;
}

void DesignStore::log_persist(const char* type, const std::string& path) const {
  obs::RunLog& log = ctx_->runlog();
  if (!log.enabled() || in_parallel_region()) return;
  // Only warmth-invariant fields: record/byte counts would differ between a
  // cold and a warm run of the same command, and the run-log contract is
  // byte-identical output either way (counts live in metrics instead).
  obs::JsonWriter w;
  w.field("path", path)
      .field("format", static_cast<std::uint64_t>(kStoreFormatVersion));
  log.emit(type, w);
}

void DesignStore::log_delay_query(bool aged, std::uint64_t gates,
                                  double delay) const {
  obs::RunLog& log = ctx_->runlog();
  if (!log.enabled() || in_parallel_region()) return;
  obs::JsonWriter w;
  w.field("kind", aged ? "aged" : "fresh")
      .field("gates", gates)
      .field("max_delay_ps", delay);
  log.emit("sta_query", w);
}

void DesignStore::log_surrogate_query(bool aged, double bound_ps,
                                      double delay) const {
  obs::RunLog& log = ctx_->runlog();
  if (!log.enabled() || in_parallel_region()) return;
  obs::JsonWriter w;
  w.field("kind", aged ? "aged" : "fresh")
      .field("bound_ps", bound_ps)
      .field("max_delay_ps", delay);
  log.emit("surrogate_query", w);
}

std::vector<SurfacePayload> DesignStore::surface_snapshot() const {
  std::vector<SurfacePayload> out;
  for (const auto& shard : surfaces_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, e] : shard.entries) {
      out.push_back({e->lib_fp, e->params, e->sta, e->min_precision,
                     e->precision_step, e->scenarios, e->surface});
    }
  }
  {
    // Staged disk records count too: a `serve` on a freshly opened store
    // should answer library queries without anyone forcing materialization.
    std::lock_guard<std::mutex> lock(staged_mutex_);
    for (const auto& [k, payload] : staged_) {
      if (static_cast<RecordKind>(k.first) != RecordKind::surface) continue;
      try {
        out.push_back(decode_surface_payload(payload));
      } catch (const std::exception&) {
        // Damaged staged record: the query path would drop it too.
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SurfacePayload& a, const SurfacePayload& b) {
              if (a.surface.base.kind != b.surface.base.kind) {
                return a.surface.base.kind < b.surface.base.kind;
              }
              if (a.surface.base.width != b.surface.base.width) {
                return a.surface.base.width < b.surface.base.width;
              }
              return key_of(a.surface.base) < key_of(b.surface.base);
            });
  return out;
}

DesignStore::Stats DesignStore::stats() const {
  Stats s;
  s.netlist_hits = netlist_hits_->value();
  s.netlist_misses = netlist_misses_->value();
  s.library_hits = library_hits_->value();
  s.library_misses = library_misses_->value();
  s.delay_hits = delay_hits_->value();
  s.delay_misses = delay_misses_->value();
  s.surface_hits = surface_hits_->value();
  s.surface_misses = surface_misses_->value();
  s.persist_hits = persist_hits_->value();
  s.surrogate_hits = surrogate_hits_n_.load(std::memory_order_relaxed);
  s.surrogate_fallbacks =
      surrogate_fallbacks_n_.load(std::memory_order_relaxed);
  return s;
}

std::size_t DesignStore::entries() const {
  std::size_t n = 0;
  const auto count = [&n](const auto& family) {
    for (const auto& shard : family) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      n += shard.entries.size();
    }
  };
  count(netlists_);
  count(libraries_);
  count(delays_);
  count(surfaces_);
  {
    std::lock_guard<std::mutex> lock(surrogate_mutex_);
    n += surrogates_.size();
  }
  return n;
}

}  // namespace aapx::engine
