// Versioned on-disk format for DesignStore snapshots — the persistent form
// of the paper's aging-induced approximation library.
//
// A store file is a header plus a flat sequence of self-describing records:
//
//   header   magic "AAPXSTR\0" (8) | format_version u32 | build_fp u64
//            | record_count u64
//   record   kind u32 | key u64 | payload_size u64 | payload_fnv1a u64
//            | payload bytes
//
// All integers are little-endian on disk (engine/binio.hpp), so files move
// between hosts of any endianness. `key` is the record's content-addressed
// DesignStore digest; `payload_fnv1a` is a per-record checksum of the
// payload bytes. The header's build fingerprint digests the format version,
// compiler and build configuration: floating-point artifacts are only
// guaranteed bit-reproducible within one build, so a file from a different
// build is rejected wholesale (cold start) rather than risking sub-ulp
// drift being mistaken for cached truth.
//
// Failure policy (the load path never throws):
//   * missing file                  -> cold start, no warning
//   * bad magic / version / build   -> whole file rejected, one warning
//   * truncated / checksum-mismatch -> record dropped, warning, rest kept
// A loaded record is still only *staged*: the DesignStore re-verifies its
// full key material against the live query before serving it (see
// design_store.cpp), so a stale-but-well-formed record degrades to a cold
// miss, never a wrong hit.
//
// Record payloads (kinds 1-5) carry the entry plus the key material needed
// for that re-verification; decode helpers below are the single source of
// truth for their layout. Payload layout changes require bumping
// kStoreFormatVersion.
//
// Surrogate records (kind 5, no version bump — old binaries drop the
// unknown kind as corrupt, a cold miss) carry a trained surrogate model
// blob (src/surrogate) plus the key digests of the (library, AgingParams,
// StaOptions) family it serves. The blob carries its own inner content
// checksum, so a bit-flipped weight behind a fixed-up record checksum
// still fails decode: a damaged model can only ever degrade to exact
// fallback, never answer wrongly within bound.
//
// Mechanism-set extension (no version bump): records built from a BTI-only
// AgingParams encode the historic 11-double BtiParams block and nothing
// else, byte-identical to pre-mechanism files — old files decode unchanged
// and new default files warm-start old binaries' stores. A record built
// from an *extended* mechanism set appends a tagged extension block at the
// very end of the payload (see encode_aging_ext in persist.cpp); decoders
// sniff for it after the legacy fields. An old binary reading an extended
// record fails its expect_end and drops the record — a cold miss, exactly
// the degradation the corruption policy promises.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aging/aging_model.hpp"
#include "aging/stress.hpp"
#include "approx/characterization.hpp"
#include "cell/degradation.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"
#include "synth/components.hpp"

namespace aapx::engine {

inline constexpr char kStoreMagic[8] = {'A', 'A', 'P', 'X',
                                        'S', 'T', 'R', '\0'};
inline constexpr std::uint32_t kStoreFormatVersion = 1;

/// Byte offsets of the header fields, exported so the corruption tests can
/// patch specific fields without re-deriving the layout.
inline constexpr std::size_t kHeaderVersionOffset = 8;
inline constexpr std::size_t kHeaderBuildFpOffset = 12;
inline constexpr std::size_t kHeaderCountOffset = 20;
inline constexpr std::size_t kHeaderSize = 28;

/// Fingerprint of this build: format version, compiler, build type and
/// sanitizer mode. Files are only trusted within one fingerprint.
std::uint64_t build_fingerprint();

enum class RecordKind : std::uint32_t {
  netlist = 1,
  aged_library = 2,
  sta_delay = 3,
  surface = 4,
  surrogate = 5,
};

const char* to_string(RecordKind kind);

struct RawRecord {
  RecordKind kind;
  std::uint64_t key = 0;
  std::string payload;
};

struct StoreFileData {
  bool file_found = false;  ///< false: no file at `path` (clean cold start)
  bool header_ok = false;   ///< false: file rejected wholesale
  std::uint64_t bytes_read = 0;
  std::uint64_t records_dropped = 0;  ///< bad checksum / truncated tail
  std::vector<RawRecord> records;
  std::vector<std::string> warnings;  ///< human-readable, for stderr
};

/// Reads and checksums `path`. Never throws: every failure mode lands in
/// `warnings` / `records_dropped` and degrades toward a cold start.
StoreFileData load_store_file(const std::string& path);

/// Writes header + records to `path` atomically (temp file + rename).
/// Records are written in the order given — callers sort by (kind, key) so
/// save output is byte-deterministic. Returns bytes written, 0 on I/O error.
std::uint64_t write_store_file(const std::string& path,
                               const std::vector<RawRecord>& records);

// --- payload codecs ---------------------------------------------------------
// Encoders serialize an entry with its key material; decoders re-verify
// structural invariants (counts, cell ids) and throw std::runtime_error on
// any inconsistency. Decoded netlists/libraries attach to the live
// CellLibrary passed in; callers must have checked the payload's library
// fingerprint against that library first.

struct NetlistPayload {
  std::uint64_t lib_fp = 0;
  ComponentSpec spec;
  Netlist netlist;
};
std::string encode_netlist_payload(std::uint64_t lib_fp,
                                   const ComponentSpec& spec,
                                   const Netlist& nl);
NetlistPayload decode_netlist_payload(const std::string& payload,
                                      const CellLibrary& lib);

struct AgedLibraryPayload {
  std::uint64_t lib_fp = 0;
  AgingParams params;
  double years = 0.0;
  DegradationAwareLibrary library;
};
std::string encode_aged_library_payload(std::uint64_t lib_fp,
                                        const AgingParams& params,
                                        double years,
                                        const DegradationAwareLibrary& aged);
AgedLibraryPayload decode_aged_library_payload(const std::string& payload,
                                               const CellLibrary& lib);

struct StaDelayPayload {
  std::uint64_t netlist_key = 0;
  std::uint64_t scenario_key = 0;
  double delay = 0.0;
  std::uint64_t gates = 0;
};
std::string encode_sta_delay_payload(const StaDelayPayload& p);
StaDelayPayload decode_sta_delay_payload(const std::string& payload);

struct SurrogatePayload {
  std::uint64_t lib_fp = 0;
  std::uint64_t params_key = 0;  ///< key_of(AgingParams)
  std::uint64_t sta_key = 0;     ///< key_of(StaOptions)
  /// surrogate::SurrogateModel::encode() bytes, decoded by the store layer
  /// (the blob's inner checksum is what the decoder verifies there).
  std::string model_blob;
};
std::string encode_surrogate_payload(const SurrogatePayload& p);
SurrogatePayload decode_surrogate_payload(const std::string& payload);

struct SurfacePayload {
  std::uint64_t lib_fp = 0;
  AgingParams params;
  StaOptions sta;
  int min_precision = 0;
  int precision_step = 0;
  std::vector<AgingScenario> scenarios;
  ComponentCharacterization surface;  ///< surface.base is the spec key part
};
std::string encode_surface_payload(const SurfacePayload& p);
SurfacePayload decode_surface_payload(const std::string& payload);

}  // namespace aapx::engine
