// Explicit execution context — the home of everything that used to be a
// process-global singleton.
//
// A Context bundles the shared evaluation substrate one logical "tenant" of
// the process uses:
//
//   * a content-addressed engine::DesignStore (synthesized netlists,
//     degradation-aware libraries, aged-STA delays — see design_store.hpp),
//   * the observability sinks (metrics registry, run log, tracer handle),
//   * the worker count its parallel sweeps fan out to,
//   * a base seed from which per-purpose RNG streams are derived.
//
// Layers take `Context&` (or `const Context*` for the leaf layers below the
// engine) instead of reaching for MetricsRegistry::instance(),
// RunLog::instance() or the global worker-count override. Two Contexts in
// one process are fully isolated: campaigns running concurrently under
// different Contexts share no caches, no metrics and no log — which is what
// makes multi-tenant serving correct (see tests/engine/
// context_isolation_test.cpp).
//
// `Context::process_default()` is the compatibility shim: it routes metrics
// and the run log to the historic process-wide singletons and its worker
// count to the aapx::set_num_threads() global, so every pre-Context call
// site (and the `--threads/-j`/AAPX_THREADS contract) behaves exactly as
// before. Code that never mentions a Context implicitly runs on it.
//
// Layering note: this header is includable from the layers *below* the
// engine library (sta, synth) because everything they call is inline and
// touches only obs/util types; Context construction and store() live in the
// engine library, which links above sta/synth.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "engine/cancel.hpp"
#include "obs/metrics.hpp"
#include "obs/runlog.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace aapx {

namespace engine {
class DesignStore;
}  // namespace engine

class Context {
 public:
  struct Options {
    /// Worker count for this Context's parallel sweeps. 0 = inherit the
    /// process default (aapx::set_num_threads() / AAPX_THREADS / hardware).
    int threads = 0;
    /// Base seed for make_rng() stream derivation.
    std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
    /// Metrics sink; nullptr = this Context owns a fresh private registry.
    obs::MetricsRegistry* metrics = nullptr;
    /// Run-log sink; nullptr = this Context owns a fresh private log
    /// (disabled until opened).
    obs::RunLog* runlog = nullptr;
    /// Store file to open into the DesignStore at construction (the CLI's
    /// `--store` / AAPX_STORE). Empty = in-memory only. Opening never
    /// fails hard: a missing file is a cold start, a damaged one degrades
    /// to cold with a warning (see DesignStore::open).
    std::string store_path;
    /// Borrowed DesignStore instead of an owned one — the multi-tenant
    /// sharing knob: `aapx serve` gives every per-connection Context the
    /// root Context's store so all clients warm one cache. The store (and
    /// the Context that owns it) must outlive this Context; store_path is
    /// ignored when set. nullptr = own a private store (the default, and
    /// the isolation the context_isolation tests pin down).
    engine::DesignStore* shared_store = nullptr;
    /// Cancellation token checked by this Context's long-running sweeps
    /// (see engine/cancel.hpp). Borrowed; nullptr = never cancelled.
    const CancelToken* cancel = nullptr;
    /// Learned-surrogate error bound in ps (the CLI's `--surrogate`).
    /// > 0 arms the DesignStore's bounded-error fast path: a trained
    /// surrogate whose validated held-out p99 error fits the bound may
    /// answer aged-delay queries that miss the exact cache; everything else
    /// transparently falls back to exact. 0 (default) = exact only.
    double surrogate_bound = 0.0;
  };

  /// Fully private Context: own DesignStore, own metrics registry, own
  /// (closed) run log.
  Context();
  explicit Context(const Options& options);
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// The process-default Context: global metrics registry, global run log,
  /// worker count driven by the aapx::set_num_threads() shim. Created on
  /// first use, lives for the process.
  static Context& process_default();

  /// The unified design cache. Internally synchronized; const because every
  /// layer holds the Context by const reference on its read paths.
  engine::DesignStore& store() const noexcept { return *store_; }

  obs::MetricsRegistry& metrics() const noexcept { return *metrics_; }
  obs::RunLog& runlog() const noexcept { return *runlog_; }
  /// Tracing is process-wide (per-thread buffers, one Chrome trace per run);
  /// the Context carries the handle so call sites stay sink-agnostic.
  obs::Tracer& tracer() const noexcept { return *tracer_; }

  /// Resolved worker count: this Context's override if set, else the
  /// process default chain (set_num_threads / AAPX_THREADS / hardware).
  int num_threads() const noexcept {
    const int t = threads_.load(std::memory_order_relaxed);
    return t > 0 ? t : aapx::num_threads();
  }
  /// Per-Context worker-count override (0 = back to the process default).
  void set_num_threads(int threads) {
    threads_.store(threads, std::memory_order_relaxed);
  }

  /// The armed surrogate error bound in ps (0 = exact-only). Read by the
  /// DesignStore on every exact-cache miss; swappable at runtime like the
  /// cancel token (the server arms it from ServerOptions, benches toggle it
  /// between the surrogate and the ground-truth pass).
  double surrogate_bound() const noexcept {
    return surrogate_bound_.load(std::memory_order_relaxed);
  }
  void set_surrogate_bound(double bound_ps) noexcept {
    surrogate_bound_.store(bound_ps, std::memory_order_relaxed);
  }

  std::uint64_t seed() const noexcept {
    return seed_.load(std::memory_order_relaxed);
  }
  void set_seed(std::uint64_t seed) {
    seed_.store(seed, std::memory_order_relaxed);
  }
  /// Deterministic RNG stream `stream` of this Context's base seed. Distinct
  /// streams are decorrelated; the same (seed, stream) always reproduces.
  Rng make_rng(std::uint64_t stream) const noexcept {
    return Rng(mix_seed(seed(), stream));
  }

  /// The cancellation token long-running work under this Context observes,
  /// or nullptr. Swappable at runtime: the CLI arms the process-default
  /// Context's token before dispatch, the server arms one per request.
  const CancelToken* cancel_token() const noexcept {
    return cancel_.load(std::memory_order_relaxed);
  }
  void set_cancel_token(const CancelToken* token) noexcept {
    cancel_.store(token, std::memory_order_relaxed);
  }
  /// Throws CancelledError if this Context's token (if any) has tripped.
  /// Two relaxed loads when untripped — cheap enough for per-grain checks
  /// (one precision point, one STA fill), which is the granularity the
  /// serve deadline contract promises.
  void check_cancelled(const char* where) const {
    if (const CancelToken* token = cancel_token()) token->check(where);
  }

  /// parallel_for with this Context's worker count. Same determinism
  /// contract as aapx::parallel_for: results are bit-identical at any count.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn) const {
    aapx::parallel_for(n, fn, threads_.load(std::memory_order_relaxed));
  }

 private:
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  std::unique_ptr<obs::RunLog> owned_runlog_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::RunLog* runlog_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::unique_ptr<engine::DesignStore> owned_store_;
  engine::DesignStore* store_ = nullptr;
  std::atomic<int> threads_{0};
  std::atomic<std::uint64_t> seed_{0};
  std::atomic<const CancelToken*> cancel_{nullptr};
  std::atomic<double> surrogate_bound_{0.0};
};

}  // namespace aapx
