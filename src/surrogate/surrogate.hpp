// Learned aging surrogate: a bounded-error fast path for characterization.
//
// The paper's characterization surfaces are exact but expensive — every
// precision point re-synthesizes the component and runs aged STA. Genssler
// et al. (arXiv 2207.04134) show workload-dependent aging is learnable by
// small models, and the surfaces a DesignStore accumulates over a service's
// lifetime are exactly a labeled training set: (spec, stress mode, years)
// -> aged delay. This layer turns them into a closed-form ridge regressor
// over engineered features that answers in microseconds.
//
// Contract (the pieces the engine fast path relies on):
//
//   * Training is deterministic and serial: the same sample multiset in the
//     same order produces bit-identical model bytes at any thread count
//     (normal equations + Cholesky, no RNG — the held-out split is a stable
//     content hash of each sample's key material).
//   * Validation is a held-out split computed at train time: err_p50/p95/
//     p99/max over samples the solver never saw. A model whose validated
//     p99 exceeds the caller's requested bound never answers.
//   * The model only ever interpolates: per-feature hull [min, max] over the
//     training inputs, and any query outside the hull (new component kind,
//     wider operand, longer lifetime...) is declined — the caller falls back
//     to the exact path. Declining is always correct; answering wrongly
//     never is.
//   * The encoded form carries an *inner* content checksum over every byte
//     ahead of it, so a bit-flipped weight inside an otherwise well-framed
//     store record still fails decode and degrades to a cold miss (the PR 5
//     corruption policy), never a silently wrong in-bound answer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "aging/aging_model.hpp"
#include "aging/stress.hpp"
#include "synth/components.hpp"

namespace aapx::surrogate {

/// Number of engineered features (bias included). Bumping the layout bumps
/// kFeatureVersion so stale persisted models decline to decode.
inline constexpr std::size_t kNumFeatures = 24;
inline constexpr std::uint32_t kFeatureVersion = 1;

/// One labeled observation: a (spec, scenario) query with its exact answer.
/// `spec` carries the truncation (precision = width - truncated_bits);
/// fresh samples (years == 0) are legitimate and train the fresh column.
struct TrainingSample {
  ComponentSpec spec;
  StressMode mode = StressMode::worst;
  double years = 0.0;
  double delay_ps = 0.0;
};

/// The feature map, shared verbatim by training and prediction. Pure
/// arithmetic on the query plus the aging model's analytic drift surface
/// (microseconds, no synthesis, no STA).
std::vector<double> features_of(const ComponentSpec& spec, StressMode mode,
                                double years, const AgingModel& model);

/// True when the stable content hash of (spec, mode, years) lands this
/// sample in the held-out validation split (~1 in 8).
bool is_holdout(const ComponentSpec& spec, StressMode mode, double years);

struct TrainOptions {
  double ridge_lambda = 1e-3;  ///< standardized-space regularizer
  /// Training refuses to produce a model from fewer held-out samples than
  /// this: an unvalidated error bound is not a bound.
  std::size_t min_holdout = 4;
};

class SurrogateModel {
 public:
  /// Deterministic closed-form fit. One surrogate serves one store key
  /// family — the caller passes the AgingModel the samples were computed
  /// under (the drift features are re-derived from it, identically at train
  /// and predict time). Throws std::invalid_argument when the sample set is
  /// too small to validate (fewer than min_holdout held-out samples, or no
  /// training samples at all) or contains measured-mode scenarios.
  static SurrogateModel train(const std::vector<TrainingSample>& samples,
                              const AgingModel& model,
                              const TrainOptions& options = {});

  /// Raw prediction (no gating) for an in-hull feature vector.
  double predict(const std::vector<double>& features) const;

  /// The gated fast path: answers iff the validated held-out p99 error is
  /// within `bound_ps` AND the query is inside the training hull AND the
  /// prediction is physically sane (positive). std::nullopt = caller must
  /// take the exact path.
  std::optional<double> try_predict(const ComponentSpec& spec, StressMode mode,
                                    double years, const AgingModel& model,
                                    double bound_ps) const;

  /// Serialized form ("AAPXSRG1" + versioned payload + inner fnv1a). The
  /// inverse throws std::runtime_error on any framing, version or checksum
  /// inconsistency — the store load path maps that to a cold miss.
  std::string encode() const;
  static SurrogateModel decode(const std::string& bytes);

  // --- validated accuracy (held-out split) ----------------------------------
  double err_p50_ps() const noexcept { return err_p50_; }
  double err_p95_ps() const noexcept { return err_p95_; }
  double err_p99_ps() const noexcept { return err_p99_; }
  double err_max_ps() const noexcept { return err_max_; }
  std::uint64_t train_samples() const noexcept { return train_samples_; }
  std::uint64_t holdout_samples() const noexcept { return holdout_samples_; }
  double ridge_lambda() const noexcept { return lambda_; }

  const std::vector<double>& weights() const noexcept { return weights_; }
  const std::vector<double>& hull_min() const noexcept { return hull_min_; }
  const std::vector<double>& hull_max() const noexcept { return hull_max_; }

  friend bool operator==(const SurrogateModel&,
                         const SurrogateModel&) = default;

 private:
  SurrogateModel() = default;

  bool in_hull(const std::vector<double>& features) const;

  std::vector<double> weights_;    ///< standardized-space, [kNumFeatures]
  std::vector<double> feat_mean_;  ///< standardization offsets
  std::vector<double> feat_scale_;
  std::vector<double> hull_min_;
  std::vector<double> hull_max_;
  double lambda_ = 0.0;
  std::uint64_t train_samples_ = 0;
  std::uint64_t holdout_samples_ = 0;
  double err_p50_ = 0.0;
  double err_p95_ = 0.0;
  double err_p99_ = 0.0;
  double err_max_ = 0.0;
};

}  // namespace aapx::surrogate
