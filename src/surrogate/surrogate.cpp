#include "surrogate/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "engine/binio.hpp"
#include "util/hash.hpp"

namespace aapx::surrogate {
namespace {

constexpr char kModelMagic[8] = {'A', 'A', 'P', 'X', 'S', 'R', 'G', '1'};
// Domain-separation tag for the held-out split hash (engine/key.cpp style).
constexpr std::uint64_t kTagHoldout = 0x5352474831ULL;  // "SRGH1"
// Queries exactly on a hull face (a training width re-queried) must pass.
constexpr double kHullTolerance = 1e-9;

double log2_safe(double v) { return std::log2(std::max(1.0, v)); }

/// Analytic logic-depth estimate in gate levels. These are *features*, not
/// truth — the ridge fit learns their coefficients against exact STA — so
/// only the shape (linear vs logarithmic in K, per architecture) matters.
double adder_depth(double k, AdderArch arch) {
  switch (arch) {
    case AdderArch::ripple:
      return 2.0 * k;
    case AdderArch::cla4:
      return 0.5 * k + 6.0;
    case AdderArch::kogge_stone:
      return 2.0 * log2_safe(k) + 4.0;
  }
  return 2.0 * k;
}

double depth_estimate(const ComponentSpec& spec) {
  const double k = spec.precision();
  switch (spec.kind) {
    case ComponentKind::adder:
      return adder_depth(k, spec.adder_arch);
    case ComponentKind::multiplier:
      return spec.mult_arch == MultArch::wallace
                 ? 3.0 * log2_safe(k) + adder_depth(2.0 * k, spec.adder_arch)
                 : 4.0 * k;
    case ComponentKind::mac:
      return (spec.mult_arch == MultArch::wallace ? 3.0 * log2_safe(k)
                                                  : 4.0 * k) +
             adder_depth(2.0 * k, spec.adder_arch);
    case ComponentKind::clamp:
      return log2_safe(k) + 2.0;
  }
  return k;
}

double gates_estimate(const ComponentSpec& spec) {
  const double k = spec.precision();
  switch (spec.kind) {
    case ComponentKind::adder:
      return 6.0 * k;
    case ComponentKind::multiplier:
      return 6.0 * k * k;
    case ComponentKind::mac:
      return 6.0 * k * k + 12.0 * k;
    case ComponentKind::clamp:
      return 3.0 * k;
  }
  return 6.0 * k;
}

/// Quantile of a sorted ascending error vector: the smallest element with at
/// least `pct` percent of the mass at or below it (integer arithmetic, so
/// the committed bench baselines cannot drift with libm rounding).
double quantile(const std::vector<double>& sorted, std::uint64_t pct) {
  if (sorted.empty()) return 0.0;
  const std::uint64_t n = sorted.size();
  std::uint64_t idx = (n * pct + 99) / 100;  // ceil(n * pct / 100)
  if (idx > 0) --idx;
  return sorted[std::min<std::uint64_t>(idx, n - 1)];
}

/// In-place Cholesky solve of (A)x = b for a symmetric positive-definite A
/// (the ridge normal matrix). Dimension is kNumFeatures — trivially small.
std::vector<double> cholesky_solve(std::vector<double> a,
                                   std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (d <= 0.0) {
      throw std::invalid_argument(
          "surrogate train: normal matrix not positive definite");
    }
    a[j * n + j] = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / a[j * n + j];
    }
  }
  // Forward then backward substitution (L L^T x = b).
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a[i * n + k] * b[k];
    b[i] = s / a[i * n + i];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a[k * n + ii] * b[k];
    b[ii] = s / a[ii * n + ii];
  }
  return b;
}

}  // namespace

std::vector<double> features_of(const ComponentSpec& spec, StressMode mode,
                                double years, const AgingModel& model) {
  // Uniform-profile duty: worst-case stress pins every transistor at 100%,
  // balanced at 50% (aging/stress.hpp). Measured-mode queries are
  // stimulus-dependent and never reach the surrogate (the store rejects
  // them before any cache, exact or learned).
  const double duty = mode == StressMode::balanced ? 0.5 : 1.0;
  const double k = spec.precision();
  const double depth = depth_estimate(spec);
  // The analytic drift surface is the physics the regressor leans on: both
  // ΔVth terms cost microseconds, no synthesis, no STA.
  const double dvth_p = model.delta_vth(TransistorType::pMos, duty, years);
  const double dvth_n = model.delta_vth(TransistorType::nMos, duty, years);

  std::vector<double> f;
  f.reserve(kNumFeatures);
  f.push_back(1.0);  // intercept
  f.push_back(k);
  f.push_back(static_cast<double>(spec.width));
  f.push_back(static_cast<double>(spec.truncated_bits));
  f.push_back(depth);
  f.push_back(log2_safe(k));
  f.push_back(gates_estimate(spec));
  f.push_back(spec.kind == ComponentKind::adder ? 1.0 : 0.0);
  f.push_back(spec.kind == ComponentKind::multiplier ? 1.0 : 0.0);
  f.push_back(spec.kind == ComponentKind::mac ? 1.0 : 0.0);
  f.push_back(spec.kind == ComponentKind::clamp ? 1.0 : 0.0);
  f.push_back(spec.adder_arch == AdderArch::ripple ? 1.0 : 0.0);
  f.push_back(spec.adder_arch == AdderArch::cla4 ? 1.0 : 0.0);
  f.push_back(spec.adder_arch == AdderArch::kogge_stone ? 1.0 : 0.0);
  f.push_back(spec.mult_arch == MultArch::wallace ? 1.0 : 0.0);
  f.push_back(spec.technique == ApproxTechnique::lsb_truncation ? 1.0 : 0.0);
  f.push_back(spec.technique == ApproxTechnique::carry_window ? 1.0 : 0.0);
  f.push_back(spec.technique == ApproxTechnique::pp_truncation ? 1.0 : 0.0);
  f.push_back(years);
  f.push_back(duty);
  f.push_back(dvth_p);
  f.push_back(dvth_n);
  f.push_back(depth * dvth_p);
  f.push_back(k * dvth_p);
  if (f.size() != kNumFeatures) {
    throw std::logic_error("surrogate: feature count drifted from layout");
  }
  return f;
}

bool is_holdout(const ComponentSpec& spec, StressMode mode, double years) {
  const std::uint64_t h = Hasher{}
                              .u64(kTagHoldout)
                              .i32(static_cast<int>(spec.kind))
                              .i32(spec.width)
                              .i32(spec.truncated_bits)
                              .i32(static_cast<int>(spec.adder_arch))
                              .i32(static_cast<int>(spec.mult_arch))
                              .i32(static_cast<int>(spec.technique))
                              .i32(static_cast<int>(mode))
                              .f64(years)
                              .digest();
  return h % 8 == 0;
}

SurrogateModel SurrogateModel::train(const std::vector<TrainingSample>& samples,
                                     const AgingModel& model,
                                     const TrainOptions& options) {
  const std::size_t d = kNumFeatures;
  std::vector<std::vector<double>> train_x;
  std::vector<double> train_y;
  std::vector<std::vector<double>> hold_x;
  std::vector<double> hold_y;

  SurrogateModel m;
  m.hull_min_.assign(d, 0.0);
  m.hull_max_.assign(d, 0.0);
  bool first = true;
  for (const TrainingSample& s : samples) {
    if (s.mode == StressMode::measured) {
      throw std::invalid_argument(
          "surrogate train: measured-mode samples are stimulus-dependent "
          "and not learnable by spec");
    }
    std::vector<double> f = features_of(s.spec, s.mode, s.years, model);
    // The hull spans *every* exact sample, held-out ones included — they
    // are all ground truth the model may interpolate between.
    for (std::size_t i = 0; i < d; ++i) {
      if (first) {
        m.hull_min_[i] = m.hull_max_[i] = f[i];
      } else {
        m.hull_min_[i] = std::min(m.hull_min_[i], f[i]);
        m.hull_max_[i] = std::max(m.hull_max_[i], f[i]);
      }
    }
    first = false;
    if (is_holdout(s.spec, s.mode, s.years)) {
      hold_x.push_back(std::move(f));
      hold_y.push_back(s.delay_ps);
    } else {
      train_x.push_back(std::move(f));
      train_y.push_back(s.delay_ps);
    }
  }
  if (train_x.empty()) {
    throw std::invalid_argument("surrogate train: no training samples");
  }
  if (hold_y.size() < options.min_holdout) {
    throw std::invalid_argument(
        "surrogate train: " + std::to_string(hold_y.size()) +
        " held-out samples, need " + std::to_string(options.min_holdout) +
        " to validate an error bound");
  }

  // Standardize in sample order (serial, deterministic). The intercept
  // keeps (mean 0, scale 1) so it survives standardization; any other
  // constant column collapses to zero and the intercept absorbs it.
  m.feat_mean_.assign(d, 0.0);
  m.feat_scale_.assign(d, 1.0);
  const double n = static_cast<double>(train_x.size());
  for (std::size_t i = 1; i < d; ++i) {
    double sum = 0.0;
    for (const std::vector<double>& f : train_x) sum += f[i];
    m.feat_mean_[i] = sum / n;
    double var = 0.0;
    for (const std::vector<double>& f : train_x) {
      const double c = f[i] - m.feat_mean_[i];
      var += c * c;
    }
    const double sd = std::sqrt(var / n);
    m.feat_scale_[i] = sd > 1e-12 ? sd : 1.0;
  }

  // Ridge normal equations in standardized space: (Z^T Z + n λ I) w = Z^T y.
  std::vector<double> a(d * d, 0.0);
  std::vector<double> b(d, 0.0);
  std::vector<double> z(d);
  for (std::size_t s = 0; s < train_x.size(); ++s) {
    for (std::size_t i = 0; i < d; ++i) {
      z[i] = (train_x[s][i] - m.feat_mean_[i]) / m.feat_scale_[i];
    }
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j <= i; ++j) a[i * d + j] += z[i] * z[j];
      b[i] += z[i] * train_y[s];
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) a[i * d + j] = a[j * d + i];
    a[i * d + i] += n * options.ridge_lambda;
  }
  m.weights_ = cholesky_solve(std::move(a), std::move(b));
  m.lambda_ = options.ridge_lambda;
  m.train_samples_ = train_x.size();
  m.holdout_samples_ = hold_y.size();

  // Validated accuracy: absolute error over the held-out split only — the
  // samples the solver never saw are what license the serve-time bound.
  std::vector<double> errs;
  errs.reserve(hold_y.size());
  for (std::size_t s = 0; s < hold_x.size(); ++s) {
    errs.push_back(std::abs(m.predict(hold_x[s]) - hold_y[s]));
  }
  std::sort(errs.begin(), errs.end());
  m.err_p50_ = quantile(errs, 50);
  m.err_p95_ = quantile(errs, 95);
  m.err_p99_ = quantile(errs, 99);
  m.err_max_ = errs.back();
  return m;
}

double SurrogateModel::predict(const std::vector<double>& features) const {
  double y = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    y += weights_[i] * (features[i] - feat_mean_[i]) / feat_scale_[i];
  }
  return y;
}

bool SurrogateModel::in_hull(const std::vector<double>& features) const {
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (features[i] < hull_min_[i] - kHullTolerance ||
        features[i] > hull_max_[i] + kHullTolerance) {
      return false;
    }
  }
  return true;
}

std::optional<double> SurrogateModel::try_predict(const ComponentSpec& spec,
                                                  StressMode mode, double years,
                                                  const AgingModel& model,
                                                  double bound_ps) const {
  if (mode == StressMode::measured) return std::nullopt;
  if (holdout_samples_ == 0 || err_p99_ > bound_ps) return std::nullopt;
  const std::vector<double> f = features_of(spec, mode, years, model);
  if (!in_hull(f)) return std::nullopt;
  const double y = predict(f);
  if (!(y > 0.0) || !std::isfinite(y)) return std::nullopt;
  return y;
}

std::string SurrogateModel::encode() const {
  engine::BinWriter w;
  for (const char c : kModelMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kFeatureVersion);
  w.u64(kNumFeatures);
  w.f64_vec(weights_);
  w.f64_vec(feat_mean_);
  w.f64_vec(feat_scale_);
  w.f64_vec(hull_min_);
  w.f64_vec(hull_max_);
  w.f64(lambda_);
  w.u64(train_samples_);
  w.u64(holdout_samples_);
  w.f64(err_p50_);
  w.f64(err_p95_);
  w.f64(err_p99_);
  w.f64(err_max_);
  // Inner content checksum over every byte ahead of it: a flipped weight in
  // an otherwise well-framed store record (whose outer record checksum an
  // attacker or a disk error could have fixed up consistently) still fails
  // here, so corruption degrades to exact fallback, never a wrong answer.
  const std::uint64_t checksum = fnv1a(w.data());
  w.u64(checksum);
  return w.take();
}

SurrogateModel SurrogateModel::decode(const std::string& bytes) {
  if (bytes.size() < 8 + sizeof(std::uint64_t)) {
    throw std::runtime_error("surrogate model: truncated");
  }
  const std::string body = bytes.substr(0, bytes.size() - 8);
  engine::BinReader tail(
      std::string_view(bytes).substr(bytes.size() - 8));
  if (tail.u64() != fnv1a(body)) {
    throw std::runtime_error("surrogate model: content checksum mismatch");
  }
  engine::BinReader r(body);
  char magic[8];
  for (char& c : magic) c = static_cast<char>(r.u8());
  if (std::memcmp(magic, kModelMagic, 8) != 0) {
    throw std::runtime_error("surrogate model: bad magic");
  }
  if (r.u32() != kFeatureVersion) {
    throw std::runtime_error("surrogate model: feature version mismatch");
  }
  if (r.u64() != kNumFeatures) {
    throw std::runtime_error("surrogate model: feature count mismatch");
  }
  SurrogateModel m;
  m.weights_ = r.f64_vec();
  m.feat_mean_ = r.f64_vec();
  m.feat_scale_ = r.f64_vec();
  m.hull_min_ = r.f64_vec();
  m.hull_max_ = r.f64_vec();
  for (const std::vector<double>* v :
       {&m.weights_, &m.feat_mean_, &m.feat_scale_, &m.hull_min_,
        &m.hull_max_}) {
    if (v->size() != kNumFeatures) {
      throw std::runtime_error("surrogate model: vector length mismatch");
    }
  }
  for (const double s : m.feat_scale_) {
    if (!(s > 0.0) || !std::isfinite(s)) {
      throw std::runtime_error("surrogate model: bad feature scale");
    }
  }
  m.lambda_ = r.f64();
  m.train_samples_ = r.u64();
  m.holdout_samples_ = r.u64();
  m.err_p50_ = r.f64();
  m.err_p95_ = r.f64();
  m.err_p99_ = r.f64();
  m.err_max_ = r.f64();
  r.expect_end();
  return m;
}

}  // namespace aapx::surrogate
