#include "synth/dct_unit.hpp"

#include <cmath>
#include <stdexcept>

#include "synth/passes.hpp"

namespace aapx {
namespace {

double basis(int k, int n) {
  const double scale = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
  return scale * std::cos((2.0 * n + 1.0) * k * M_PI / 16.0);
}

/// Two's complement wrap without pulling in the rtl library.
std::int64_t wrap(std::int64_t v, int bits) {
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
  if (u & (std::uint64_t{1} << (bits - 1))) u |= ~mask;
  return static_cast<std::int64_t>(u);
}

}  // namespace

std::int64_t idct_unit_coefficient(int n, int k, int frac_bits) {
  if (n < 0 || n >= 8 || k < 0 || k >= 8) {
    throw std::invalid_argument("idct_unit_coefficient: bad index");
  }
  return std::llround(basis(k, n) *
                      static_cast<double>(std::int64_t{1} << frac_bits));
}

std::int64_t idct_unit_reference(const IdctUnitSpec& spec, int n,
                                 const std::int64_t x[8]) {
  std::int64_t acc = 0;
  for (int k = 0; k < 8; ++k) {
    std::int64_t xv = wrap(x[k], spec.data_width);
    xv &= ~((std::int64_t{1} << spec.truncated_bits) - 1);  // LSB truncation
    const std::int64_t c = idct_unit_coefficient(n, k, spec.frac_bits);
    const std::int64_t term = (c * xv) >> spec.frac_bits;  // floor shift
    acc = wrap(acc + wrap(term, spec.output_width()), spec.output_width());
  }
  return acc;
}

Netlist make_idct_row_unit(const CellLibrary& lib, const IdctUnitSpec& spec) {
  if (spec.data_width < 8 || spec.data_width > 24) {
    throw std::invalid_argument("make_idct_row_unit: data_width in [8, 24]");
  }
  if (spec.frac_bits < 4 || spec.frac_bits >= spec.data_width) {
    throw std::invalid_argument("make_idct_row_unit: bad frac_bits");
  }
  if (spec.truncated_bits < 0 || spec.truncated_bits >= spec.data_width) {
    throw std::invalid_argument("make_idct_row_unit: bad truncated_bits");
  }
  Netlist nl(lib);
  std::vector<Word> x(8);
  for (int k = 0; k < 8; ++k) {
    x[static_cast<std::size_t>(k)] =
        nl.add_input_bus("x" + std::to_string(k), spec.data_width);
    for (int t = 0; t < spec.truncated_bits; ++t) {
      x[static_cast<std::size_t>(k)][static_cast<std::size_t>(t)] = nl.const0();
    }
  }

  // Coefficient words: the constant's two's complement bits as const0/const1
  // nets; the multiplier generator then emits logic the optimizer folds into
  // the canonical shift-add structure of the constant.
  auto const_word = [&](std::int64_t value) {
    Word w(static_cast<std::size_t>(spec.data_width), nl.const0());
    const std::uint64_t bits = static_cast<std::uint64_t>(value);
    for (int b = 0; b < spec.data_width; ++b) {
      if ((bits >> b) & 1u) w[static_cast<std::size_t>(b)] = nl.const1();
    }
    return w;
  };

  const int out_w = spec.output_width();
  for (int n = 0; n < 8; ++n) {
    std::vector<Word> terms;
    for (int k = 0; k < 8; ++k) {
      const std::int64_t c = idct_unit_coefficient(n, k, spec.frac_bits);
      const Word cw = const_word(wrap(c, spec.data_width));
      Word product =
          build_multiplier(nl, x[static_cast<std::size_t>(k)], cw,
                           MultArch::array);
      // Floor shift by frac_bits: keep bits [frac, frac + out_w).
      Word term;
      for (int b = 0; b < out_w; ++b) {
        const std::size_t idx = static_cast<std::size_t>(spec.frac_bits + b);
        term.push_back(idx < product.size() ? product[idx] : product.back());
      }
      terms.push_back(std::move(term));
    }
    // Balanced adder tree over the eight terms, wrapping at out_w bits.
    while (terms.size() > 1) {
      std::vector<Word> next;
      for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
        Word sum =
            build_adder(nl, terms[i], terms[i + 1], nl.const0(), spec.adder_arch);
        sum.resize(static_cast<std::size_t>(out_w));
        next.push_back(std::move(sum));
      }
      if (terms.size() % 2 == 1) next.push_back(terms.back());
      terms = std::move(next);
    }
    nl.mark_output_bus(terms[0], "y" + std::to_string(n));
  }
  return optimize(nl).netlist;
}

}  // namespace aapx
