// RTL datapath component generators (the paper's C_j components).
//
// Each generator returns an optimized gate-level netlist with stable,
// LSB-first operand buses. `truncated_bits` implements the paper's generic
// approximation technique — truncation of operand LSBs: the interface keeps
// its full width, but the k low bits of every operand are tied to logic 0
// inside the component, and optimization then removes the logic they fed.
// The truncated component is both smaller and faster, which is what lets it
// absorb its aging-induced delay increase.
#pragma once

#include <string>

#include "synth/arith.hpp"

namespace aapx {

enum class ComponentKind { adder, multiplier, mac, clamp };

std::string to_string(ComponentKind kind);

/// How the precision knob `truncated_bits` is realized in logic. The paper
/// uses LSB truncation "without loss of generality"; the flow works with any
/// technique that trades accuracy for delay (paper Sec. III), so two classic
/// alternatives are provided:
///  * lsb_truncation — operand LSBs tied to zero (bounded, always-small error)
///  * carry_window   — speculative adder with a bounded carry lookback of
///                     precision() bits (rare but large errors)
///  * pp_truncation  — multiplier drops its truncated_bits least significant
///                     partial-product columns (bounded negative error)
enum class ApproxTechnique { lsb_truncation, carry_window, pp_truncation };

std::string to_string(ApproxTechnique technique);

struct ComponentSpec {
  ComponentKind kind = ComponentKind::adder;
  int width = 32;              ///< operand bit width N_j
  int truncated_bits = 0;      ///< the precision knob (N_j - K_j)
  AdderArch adder_arch = AdderArch::cla4;
  MultArch mult_arch = MultArch::array;
  ApproxTechnique technique = ApproxTechnique::lsb_truncation;

  /// Effective precision K_j = width - truncated_bits.
  int precision() const { return width - truncated_bits; }
  std::string name() const;

  /// Field-wise equality — the engine::DesignStore verifies cache hits
  /// against the full spec to rule out key collisions.
  friend bool operator==(const ComponentSpec&, const ComponentSpec&) = default;
};

class Context;

/// Builds and optimizes the component netlist.
/// Buses: adder  a,b[width] -> y[width+1]
///        mult   a,b[width] -> y[2*width]        (two's complement)
///        mac    a,b[width], acc[2*width] -> y[2*width+1]
///        clamp  x[width] -> y[8]                (saturate to [0, 255])
Netlist make_component(const CellLibrary& lib, const ComponentSpec& spec);

/// Context-routed variant: synthesis instrumentation (optimizer pass
/// counters) lands in `ctx`'s metrics registry instead of the process
/// default. Identical netlist output.
Netlist make_component(const Context& ctx, const CellLibrary& lib,
                       const ComponentSpec& spec);

}  // namespace aapx
