// Aging-aware gate sizing — the state-of-the-art baseline the paper compares
// against ([4]: "Reliability-aware design to suppress aging", DAC'16).
//
// Instead of trading precision, [4] makes the netlist resilient by spending
// circuit overhead: gates on aging-critical paths are replaced by stronger
// drive variants until the *aged* critical path meets the original (fresh,
// guardband-free) clock. This buys back the guardband at the cost of area,
// leakage and dynamic power — exactly the overhead Fig. 8c normalizes our
// savings against.
#pragma once

#include "cell/degradation.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace aapx {

struct SizingOptions {
  int max_iterations = 1200;
  /// Largest drive strength the sizer may use. Routing congestion and input
  /// slew limits keep real flows below the library maximum; the paper's
  /// baseline [4] retains a small residual guardband for the same reason.
  int max_drive = 8;
  /// After timing is met, downsize gates with positive aged slack to recover
  /// area/power (standard synthesis recovery; keeps the baseline honest).
  bool recover_area = true;
  int max_recovery_iterations = 40;
  StaOptions sta;
};

struct SizingResult {
  Netlist netlist;        ///< resized copy
  bool met = false;       ///< aged delay <= target achieved
  double aged_delay = 0;  ///< ps, after sizing
  int upsized_gates = 0;  ///< number of drive-strength bumps applied
};

/// Upsizes gates along aged critical paths until the aged max delay meets
/// `target_delay_ps` (typically the fresh critical path of the original
/// design) or no further upsizing helps.
SizingResult size_for_aging(const Netlist& nl, const DegradationAwareLibrary& aged,
                            const StressProfile& stress, double target_delay_ps,
                            const SizingOptions& options = {});

}  // namespace aapx
