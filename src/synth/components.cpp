#include "synth/components.hpp"

#include <stdexcept>

#include "synth/passes.hpp"

namespace aapx {

std::string to_string(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::adder: return "adder";
    case ComponentKind::multiplier: return "multiplier";
    case ComponentKind::mac: return "mac";
    case ComponentKind::clamp: return "clamp";
  }
  return "unknown";
}

std::string to_string(ApproxTechnique technique) {
  switch (technique) {
    case ApproxTechnique::lsb_truncation: return "lsb";
    case ApproxTechnique::carry_window: return "window";
    case ApproxTechnique::pp_truncation: return "pp";
  }
  return "unknown";
}

std::string ComponentSpec::name() const {
  std::string n = to_string(kind) + std::to_string(width);
  switch (kind) {
    case ComponentKind::adder: n += "_" + to_string(adder_arch); break;
    case ComponentKind::multiplier: n += "_" + to_string(mult_arch); break;
    case ComponentKind::mac:
      n += "_" + to_string(mult_arch) + "_" + to_string(adder_arch);
      break;
    case ComponentKind::clamp: break;
  }
  if (technique != ApproxTechnique::lsb_truncation) {
    n += "_" + to_string(technique);
  }
  if (truncated_bits > 0) n += "_k" + std::to_string(precision());
  return n;
}

namespace {

/// Applies operand truncation: the k low bits read const0 inside the logic.
Word truncated(const Netlist& nl, const Word& bus, int k) {
  Word eff = bus;
  for (int i = 0; i < k && i < static_cast<int>(eff.size()); ++i) {
    eff[static_cast<std::size_t>(i)] = nl.const0();
  }
  return eff;
}

Netlist gen_adder(const CellLibrary& lib, const ComponentSpec& spec) {
  Netlist nl(lib);
  const Word a = nl.add_input_bus("a", spec.width);
  const Word b = nl.add_input_bus("b", spec.width);
  Word y;
  if (spec.technique == ApproxTechnique::carry_window) {
    // Precision knob = carry lookback window of `precision()` bits.
    y = build_windowed_adder(nl, a, b, spec.precision());
  } else {
    const Word ea = truncated(nl, a, spec.truncated_bits);
    const Word eb = truncated(nl, b, spec.truncated_bits);
    y = build_adder(nl, ea, eb, nl.const0(), spec.adder_arch);
  }
  nl.mark_output_bus(y, "y");
  return nl;
}

Word gen_product(Netlist& nl, const ComponentSpec& spec, const Word& a,
                 const Word& b) {
  if (spec.technique == ApproxTechnique::pp_truncation) {
    // Precision knob = dropped least-significant partial-product columns.
    return build_pp_truncated_multiplier(nl, a, b, spec.mult_arch,
                                         spec.truncated_bits);
  }
  const Word ea = truncated(nl, a, spec.truncated_bits);
  const Word eb = truncated(nl, b, spec.truncated_bits);
  return build_multiplier(nl, ea, eb, spec.mult_arch);
}

Netlist gen_multiplier(const CellLibrary& lib, const ComponentSpec& spec) {
  Netlist nl(lib);
  const Word a = nl.add_input_bus("a", spec.width);
  const Word b = nl.add_input_bus("b", spec.width);
  nl.mark_output_bus(gen_product(nl, spec, a, b), "y");
  return nl;
}

Netlist gen_mac(const CellLibrary& lib, const ComponentSpec& spec) {
  Netlist nl(lib);
  const Word a = nl.add_input_bus("a", spec.width);
  const Word b = nl.add_input_bus("b", spec.width);
  const Word acc = nl.add_input_bus("acc", 2 * spec.width);
  const Word prod = gen_product(nl, spec, a, b);
  const Word y = build_adder(nl, prod, acc, nl.const0(), spec.adder_arch);
  nl.mark_output_bus(y, "y");
  return nl;
}

Netlist gen_clamp(const CellLibrary& lib, const ComponentSpec& spec) {
  if (spec.width < 9) {
    throw std::invalid_argument("clamp: width must be at least 9 bits");
  }
  Netlist nl(lib);
  const Word x = nl.add_input_bus("x", spec.width);
  const Word ex = truncated(nl, x, spec.truncated_bits);
  const NetId neg = ex.back();  // sign bit
  // Overflow: any magnitude bit above bit 7 while non-negative.
  std::vector<NetId> high;
  for (std::size_t i = 8; i + 1 < ex.size(); ++i) high.push_back(ex[i]);
  NetId over = nl.const0();
  for (const NetId h : high) {
    over = over == nl.const0() ? h : nl.mk(LogicFn::kOr2, over, h);
  }
  const NetId not_neg = nl.mk(LogicFn::kInv, neg);
  Word y;
  y.reserve(8);
  for (int i = 0; i < 8; ++i) {
    // y_i = !neg & (over | x_i): negative saturates to 0, overflow to 255.
    const NetId sat = nl.mk(LogicFn::kOr2, over, ex[static_cast<std::size_t>(i)]);
    y.push_back(nl.mk(LogicFn::kAnd2, not_neg, sat));
  }
  nl.mark_output_bus(y, "y");
  return nl;
}

Netlist make_component_impl(const CellLibrary& lib, const ComponentSpec& spec,
                            const Context* ctx) {
  if (spec.width <= 0) throw std::invalid_argument("make_component: bad width");
  if (spec.truncated_bits < 0 || spec.truncated_bits >= spec.width) {
    throw std::invalid_argument("make_component: truncated_bits out of range");
  }
  if (spec.technique == ApproxTechnique::carry_window &&
      spec.kind != ComponentKind::adder) {
    throw std::invalid_argument(
        "make_component: carry_window applies to adders only");
  }
  if (spec.technique == ApproxTechnique::pp_truncation &&
      spec.kind != ComponentKind::multiplier && spec.kind != ComponentKind::mac) {
    throw std::invalid_argument(
        "make_component: pp_truncation applies to multipliers/MACs only");
  }
  Netlist raw = [&] {
    switch (spec.kind) {
      case ComponentKind::adder: return gen_adder(lib, spec);
      case ComponentKind::multiplier: return gen_multiplier(lib, spec);
      case ComponentKind::mac: return gen_mac(lib, spec);
      case ComponentKind::clamp: return gen_clamp(lib, spec);
    }
    throw std::invalid_argument("make_component: unknown kind");
  }();
  return optimize(raw, ctx).netlist;
}

}  // namespace

Netlist make_component(const CellLibrary& lib, const ComponentSpec& spec) {
  return make_component_impl(lib, spec, nullptr);
}

Netlist make_component(const Context& ctx, const CellLibrary& lib,
                       const ComponentSpec& spec) {
  return make_component_impl(lib, spec, &ctx);
}

}  // namespace aapx
