#include "synth/passes.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "engine/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aapx {
namespace {

/// Value of an old net in the new netlist: either a known constant or a net.
struct Mapped {
  bool is_const = false;
  bool const_val = false;
  NetId net = kInvalidNet;
};

/// Emits gates with structural hashing; commutative pins are canonicalized
/// so AND2(a,b) and AND2(b,a) merge.
class GateEmitter {
 public:
  explicit GateEmitter(Netlist& nl) : nl_(&nl) {}

  NetId emit(LogicFn fn, std::vector<NetId> ins) {
    canonicalize(fn, ins);
    const Key key{fn, {ins.size() > 0 ? ins[0] : kInvalidNet,
                       ins.size() > 1 ? ins[1] : kInvalidNet,
                       ins.size() > 2 ? ins[2] : kInvalidNet}};
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    NetId out = kInvalidNet;
    switch (ins.size()) {
      case 1: out = nl_->mk(fn, ins[0]); break;
      case 2: out = nl_->mk(fn, ins[0], ins[1]); break;
      case 3: out = nl_->mk(fn, ins[0], ins[1], ins[2]); break;
      default: throw std::logic_error("GateEmitter: bad input count");
    }
    cache_.emplace(key, out);
    return out;
  }

  NetId emit_inv(NetId a) { return emit(LogicFn::kInv, {a}); }

 private:
  struct Key {
    LogicFn fn;
    std::array<NetId, 3> ins;
    bool operator<(const Key& o) const {
      if (fn != o.fn) return fn < o.fn;
      return ins < o.ins;
    }
  };

  static void canonicalize(LogicFn fn, std::vector<NetId>& ins) {
    switch (fn) {
      case LogicFn::kAnd2:
      case LogicFn::kNand2:
      case LogicFn::kOr2:
      case LogicFn::kNor2:
      case LogicFn::kXor2:
      case LogicFn::kXnor2:
      case LogicFn::kAnd3:
      case LogicFn::kNand3:
      case LogicFn::kOr3:
      case LogicFn::kNor3:
      case LogicFn::kMaj3:
        std::sort(ins.begin(), ins.end());
        break;
      case LogicFn::kAoi21:
      case LogicFn::kOai21:
        std::sort(ins.begin(), ins.begin() + 2);  // (a, b) commute; c does not
        break;
      default:
        break;
    }
  }

  Netlist* nl_;
  std::map<Key, NetId> cache_;
};

/// Synthesizes an arbitrary 2-variable function given by a 4-bit truth table
/// (bit index = y*2 + x) over new nets x and y.
Mapped synth2(GateEmitter& em, Netlist& nl, unsigned tt, NetId x, NetId y) {
  switch (tt & 0xFu) {
    case 0x0: return {true, false, kInvalidNet};
    case 0xF: return {true, true, kInvalidNet};
    case 0xA: return {false, false, x};                       // f = x
    case 0xC: return {false, false, y};                       // f = y
    case 0x5: return {false, false, em.emit_inv(x)};          // !x
    case 0x3: return {false, false, em.emit_inv(y)};          // !y
    case 0x8: return {false, false, em.emit(LogicFn::kAnd2, {x, y})};
    case 0xE: return {false, false, em.emit(LogicFn::kOr2, {x, y})};
    case 0x7: return {false, false, em.emit(LogicFn::kNand2, {x, y})};
    case 0x1: return {false, false, em.emit(LogicFn::kNor2, {x, y})};
    case 0x6: return {false, false, em.emit(LogicFn::kXor2, {x, y})};
    case 0x9: return {false, false, em.emit(LogicFn::kXnor2, {x, y})};
    case 0x2:  // x & !y
      return {false, false, em.emit(LogicFn::kNor2, {em.emit_inv(x), y})};
    case 0x4:  // !x & y
      return {false, false, em.emit(LogicFn::kNor2, {x, em.emit_inv(y)})};
    case 0xB:  // x | !y
      return {false, false, em.emit(LogicFn::kNand2, {em.emit_inv(x), y})};
    case 0xD:  // !x | y
      return {false, false, em.emit(LogicFn::kNand2, {x, em.emit_inv(y)})};
    default:
      throw std::logic_error("synth2: unreachable");
  }
  (void)nl;
}

OptimizeResult optimize_once(const Netlist& nl);

}  // namespace

OptimizeResult optimize(const Netlist& nl, const Context* ctx) {
  obs::Span span("optimize", static_cast<std::uint64_t>(nl.num_gates()));
  // Counters resolve against the caller's Context registry (per-call lookup:
  // a static handle would pin the first caller's registry forever).
  obs::MetricsRegistry& registry =
      ctx != nullptr ? ctx->metrics() : obs::metrics();
  obs::Counter& calls = registry.counter("optimize.calls");
  obs::Counter& passes = registry.counter("optimize.passes");
  obs::Counter& removed = registry.counter("optimize.gates_removed");
  calls.add();
  std::uint64_t pass_count = 1;
  // Constant folding can orphan upstream logic that was still live when the
  // forward pass visited it, so iterate to a fixpoint (2 passes typical).
  OptimizeResult result = optimize_once(nl);
  for (int iter = 0; iter < 8; ++iter) {
    OptimizeResult next = optimize_once(result.netlist);
    ++pass_count;
    if (next.netlist.num_gates() == result.netlist.num_gates()) break;
    next.gates_removed += result.gates_removed;
    result = std::move(next);
  }
  result.gates_removed = nl.num_gates() - result.netlist.num_gates();
  passes.add(pass_count);
  removed.add(result.gates_removed);
  return result;
}

namespace {

OptimizeResult optimize_once(const Netlist& nl) {
  const CellLibrary& lib = nl.lib();
  Netlist out(lib);

  // --- liveness: gates whose output reaches a primary output ---------------
  std::vector<char> live_net(nl.num_nets(), 0);
  {
    std::vector<NetId> stack(nl.outputs().begin(), nl.outputs().end());
    for (const NetId o : stack) live_net[o] = 1;
    while (!stack.empty()) {
      const NetId net = stack.back();
      stack.pop_back();
      const GateId d = nl.driver(net);
      if (d == kInvalidGate) continue;
      const Gate& g = nl.gate(d);
      const int pins = nl.gate_num_inputs(d);
      for (int p = 0; p < pins; ++p) {
        const NetId in = g.fanin[static_cast<std::size_t>(p)];
        if (!live_net[in]) {
          live_net[in] = 1;
          stack.push_back(in);
        }
      }
    }
  }

  std::vector<Mapped> map(nl.num_nets());
  map[nl.const0()] = {true, false, kInvalidNet};
  map[nl.const1()] = {true, true, kInvalidNet};

  // Recreate primary inputs verbatim (names, order, buses).
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    const NetId fresh = out.add_input(nl.input_name(i));
    map[nl.inputs()[i]] = {false, false, fresh};
  }
  for (const std::string& bus_name : nl.input_bus_names()) {
    std::vector<NetId> fresh;
    for (const NetId old : nl.input_bus(bus_name)) {
      if (map[old].is_const) {
        fresh.push_back(map[old].const_val ? out.const1() : out.const0());
      } else {
        fresh.push_back(map[old].net);
      }
    }
    out.set_input_bus(bus_name, std::move(fresh));
  }

  GateEmitter emitter(out);
  std::size_t removed = 0;

  for (const GateId gid : nl.topo_order()) {
    const Gate& g = nl.gate(gid);
    if (!live_net[g.fanout]) continue;
    const Cell& cell = lib.cell(g.cell);
    const int pins = cell.num_inputs();

    // Partition inputs into constants and live variables.
    int var_pins[3];
    NetId var_nets[3];
    int num_vars = 0;
    unsigned const_mask = 0;   // constant input values at their pin positions
    for (int p = 0; p < pins; ++p) {
      const Mapped& m = map[g.fanin[static_cast<std::size_t>(p)]];
      if (m.is_const) {
        if (m.const_val) const_mask |= 1u << p;
      } else {
        var_pins[num_vars] = p;
        var_nets[num_vars] = m.net;
        ++num_vars;
      }
    }

    // Truth table over the variable inputs only.
    unsigned tt = 0;
    for (unsigned v = 0; v < (1u << num_vars); ++v) {
      unsigned input_mask = const_mask;
      for (int k = 0; k < num_vars; ++k) {
        if (v & (1u << k)) input_mask |= 1u << var_pins[k];
      }
      if (fn_eval(cell.fn, input_mask)) tt |= 1u << v;
    }

    Mapped result;
    const unsigned full = (1u << (1u << num_vars)) - 1u;
    if (tt == 0) {
      result = {true, false, kInvalidNet};
    } else if (tt == full) {
      result = {true, true, kInvalidNet};
    } else if (num_vars == 1) {
      result = tt == 0x2u ? Mapped{false, false, var_nets[0]}
                          : Mapped{false, false, emitter.emit_inv(var_nets[0])};
    } else if (num_vars == 2) {
      result = synth2(emitter, out, tt, var_nets[0], var_nets[1]);
    } else {
      result = {false, false,
                emitter.emit(cell.fn, {var_nets[0], var_nets[1], var_nets[2]})};
    }
    map[g.fanout] = result;
  }

  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    const Mapped& m = map[nl.outputs()[i]];
    const NetId net = m.is_const ? (m.const_val ? out.const1() : out.const0())
                                 : m.net;
    out.mark_output(net, nl.output_name(i));
  }
  for (const std::string& bus_name : nl.output_bus_names()) {
    std::vector<NetId> fresh;
    for (const NetId old : nl.output_bus(bus_name)) {
      const Mapped& m = map[old];
      fresh.push_back(m.is_const ? (m.const_val ? out.const1() : out.const0())
                                 : m.net);
    }
    // The member nets were already marked as outputs above via outputs();
    // only the bus grouping needs registering here.
    out.set_output_bus(bus_name, std::move(fresh));
  }

  removed = nl.num_gates() - out.num_gates();
  return {std::move(out), removed};
}

}  // namespace

}  // namespace aapx
