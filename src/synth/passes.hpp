// Netlist optimization passes.
//
// `optimize` plays the role of the paper's logic-synthesis optimization
// ("ultra compile"): it constant-propagates, simplifies partially-constant
// gates to smaller library cells, merges structurally identical gates (CSE)
// and drops logic not reachable from any output. It is what turns "tie the
// operand LSBs to zero" into an actually smaller and faster netlist — the
// mechanism behind the paper's precision-for-guardband trade.
#pragma once

#include "netlist/netlist.hpp"

namespace aapx {

class Context;

struct OptimizeResult {
  Netlist netlist;
  std::size_t gates_removed = 0;
};

/// Returns an optimized copy. Primary inputs (count, names, buses) are
/// preserved verbatim so component interfaces stay stable even when inputs
/// become dangling; outputs/buses are remapped onto the new nets.
/// Pass counters go to `ctx`'s metrics registry when given, else to the
/// process-default registry; the netlist result is context-independent.
OptimizeResult optimize(const Netlist& nl, const Context* ctx = nullptr);

}  // namespace aapx
