// Dedicated 1-D 8-point IDCT row datapath.
//
// The paper's IDCT microarchitecture time-multiplexes one generic multiplier.
// A dedicated unit instead hardwires the transform: every coefficient
// becomes a constant-coefficient multiplier — the generic Baugh-Wooley array
// with one operand tied to the coefficient's bits, which the optimizer
// constant-folds into shift-add logic — feeding per-output adder trees.
// This is the natural "what if we harden the whole transform" companion
// study: the constant structure is much smaller and its critical path
// reacts differently to operand truncation (see bench/abl_dedicated_datapath).
#pragma once

#include <cstdint>

#include "synth/arith.hpp"

namespace aapx {

struct IdctUnitSpec {
  int data_width = 16;    ///< width of each coefficient input X[k]
  int frac_bits = 7;      ///< coefficient Q format (matches CodecConfig)
  int truncated_bits = 0; ///< LSB truncation applied to the data inputs
  AdderArch adder_arch = AdderArch::cla4;

  /// Output width: data plus 3 growth bits for the 8-term sum.
  int output_width() const { return data_width + 3; }
};

/// Builds the optimized unit. Input buses x0..x7 (LSB-first, data_width
/// bits); output buses y0..y7 (output_width bits). y[n] = sum_k C[n][k]*x[k]
/// with each product floor-shifted by frac_bits, everything two's complement
/// modulo 2^output_width.
Netlist make_idct_row_unit(const CellLibrary& lib, const IdctUnitSpec& spec);

/// The fixed-point coefficient the unit hardwires at (n, k):
/// round(dct_basis_like(k, n) * 2^frac_bits) for the orthonormal 8-point
/// inverse DCT.
std::int64_t idct_unit_coefficient(int n, int k, int frac_bits);

/// Bit-accurate reference of the unit (for tests and quality studies).
std::int64_t idct_unit_reference(const IdctUnitSpec& spec, int n,
                                 const std::int64_t x[8]);

}  // namespace aapx
