// Structural arithmetic building blocks over a Netlist.
//
// These are the in-netlist equivalents of what the paper's logic synthesis
// (Design Compiler "ultra compile") produces for datapath operators. Word
// operands are LSB-first vectors of nets. All values are two's complement.
//
// Adder architectures trade delay growth against area, which directly shapes
// how many precision bits a component must give up to absorb aging (see the
// abl_adder_architecture bench): ripple delay grows linearly in width,
// blocked CLA roughly linearly with a 4x smaller slope, Kogge-Stone
// logarithmically.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace aapx {

using Word = std::vector<NetId>;

enum class AdderArch { ripple, cla4, kogge_stone };
enum class MultArch { array, wallace };

std::string to_string(AdderArch arch);
std::string to_string(MultArch arch);

/// Full adder (sum, carry) from XOR2/MAJ3 cells.
struct SumCarry {
  NetId sum;
  NetId carry;
};
SumCarry build_full_adder(Netlist& nl, NetId a, NetId b, NetId c);
SumCarry build_half_adder(Netlist& nl, NetId a, NetId b);

/// width(a)==width(b) adder; result has width(a)+1 bits (carry-out is MSB).
Word build_adder(Netlist& nl, std::span<const NetId> a, std::span<const NetId> b,
                 NetId carry_in, AdderArch arch);

/// Almost-correct adder (speculative carry, Verma et al. [17] style): every
/// sum bit i uses a carry chain looking back at most `window` positions, so
/// the critical path scales with the window instead of the width. Errors are
/// rare (a real carry chain longer than the window) but large when they
/// occur — the opposite trade to LSB truncation. Result has width+1 bits;
/// the top carry-out uses the same windowed estimate.
Word build_windowed_adder(Netlist& nl, std::span<const NetId> a,
                          std::span<const NetId> b, int window);

/// Fixed-width style multiplier: drops the `dropped_columns` least
/// significant partial-product columns before accumulation (classic
/// truncated-multiplier approximation [7]/[8] territory). The dropped
/// columns' contribution is replaced by nothing (no compensation constant),
/// giving an always-negative bounded error.
Word build_pp_truncated_multiplier(Netlist& nl, std::span<const NetId> a,
                                   std::span<const NetId> b, MultArch arch,
                                   int dropped_columns);

/// Two's complement Baugh-Wooley product, 2*width bits (mod 2^(2*width)).
Word build_multiplier(Netlist& nl, std::span<const NetId> a,
                      std::span<const NetId> b, MultArch arch);

/// Sign-extends / truncates a word to `width` bits (two's complement).
Word resize_signed(Netlist& nl, std::span<const NetId> w, int width);

/// Column-compression (Wallace) reduction of addend columns to two rows,
/// then a final adder. `columns[i]` lists the bits of weight 2^i.
/// Result has columns.size() bits (computed modulo 2^columns.size()).
Word reduce_columns(Netlist& nl, std::vector<std::vector<NetId>> columns,
                    AdderArch final_adder);

}  // namespace aapx
