#include "synth/sizing.hpp"

#include <algorithm>
#include <limits>

namespace aapx {
namespace {

/// Per-net required times under a max-delay target, from a backward pass over
/// the aged per-gate delays (worst of rise/fall, matching the STA model).
std::vector<double> required_times(const Netlist& nl, const Sta::GateDelays& gd,
                                   double target) {
  std::vector<double> required(nl.num_nets(),
                               std::numeric_limits<double>::infinity());
  for (const NetId po : nl.outputs()) required[po] = target;
  const auto& topo = nl.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId g = *it;
    const Gate& gate = nl.gate(g);
    const double delay = std::max(gd.rise[g], gd.fall[g]);
    const double need = required[gate.fanout] - delay;
    const int pins = nl.gate_num_inputs(g);
    for (int p = 0; p < pins; ++p) {
      const NetId in = gate.fanin[static_cast<std::size_t>(p)];
      required[in] = std::min(required[in], need);
    }
  }
  return required;
}

/// One upsizing round along the aged critical path: bumps only the few gates
/// with the highest estimated delay gain (greedy, like a commercial sizer),
/// instead of blanket-upsizing the whole path. Returns the bump count.
int upsize_critical_path(Netlist& work, const StaResult& timing,
                         const SizingOptions& options, int cap) {
  const CellLibrary& lib = work.lib();
  struct Candidate {
    double gain;
    GateId gate;
    CellId next_cell;
  };
  std::vector<Candidate> candidates;
  std::vector<GateId> seen;
  for (const PathStep& step : timing.critical_path) {
    if (std::find(seen.begin(), seen.end(), step.gate) != seen.end()) continue;
    seen.push_back(step.gate);
    const Gate& gate = work.gate(step.gate);
    const Cell& current = lib.cell(gate.cell);
    const std::vector<CellId> variants = lib.drive_variants(current.fn);
    for (std::size_t v = 0; v + 1 < variants.size(); ++v) {
      if (lib.cell(variants[v]).drive != current.drive ||
          lib.cell(variants[v + 1]).drive > options.max_drive) {
        continue;
      }
      const Cell& next = lib.cell(variants[v + 1]);
      const double load = work.net_load(gate.fanout);
      const double slew = options.sta.primary_input_slew;
      const double d_now = std::max(current.arc(0).rise_delay.lookup(slew, load),
                                    current.arc(0).fall_delay.lookup(slew, load));
      const double d_next = std::max(next.arc(0).rise_delay.lookup(slew, load),
                                     next.arc(0).fall_delay.lookup(slew, load));
      // Upsizing also loads the predecessors; penalize by the pin-cap growth
      // charged at a nominal upstream drive resistance.
      const double penalty = 2.0 * (next.pin_cap - current.pin_cap);
      candidates.push_back({d_now - d_next - penalty, step.gate, variants[v + 1]});
      break;
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.gain > b.gain; });
  int bumped = 0;
  for (const Candidate& c : candidates) {
    if (bumped >= cap) break;
    work.set_gate_cell(c.gate, c.next_cell);
    ++bumped;
  }
  return bumped;
}

/// Downsizes gates whose aged slack comfortably covers the delay increase,
/// then verifies; reverts the whole batch if timing regressed past target.
void recover_area_pass(Netlist& work, const DegradationAwareLibrary& aged,
                       const StressProfile& stress, double target,
                       const SizingOptions& options) {
  const CellLibrary& lib = work.lib();
  double slack_factor = 1.5;  // escalates after a failed batch
  for (int iter = 0; iter < options.max_recovery_iterations; ++iter) {
    const Sta sta(work, options.sta);
    const StaResult timing = sta.run_aged(aged, stress);
    if (timing.max_delay > target) return;  // should not happen; stay safe
    const Sta::GateDelays gd = sta.gate_delays(&aged, &stress);
    const std::vector<double> required = required_times(work, gd, target);

    // Collect downsizing candidates with their slack margins. Slack along a
    // path is shared, so the batch is capped to the best candidates rather
    // than taking every gate that individually looks safe.
    std::vector<std::pair<double, GateId>> candidates;  // margin, gate
    for (std::size_t g = 0; g < work.num_gates(); ++g) {
      const auto gid = static_cast<GateId>(g);
      const Gate& gate = work.gate(gid);
      const Cell& current = lib.cell(gate.cell);
      if (current.drive <= 1) continue;
      const double arrival = std::max(timing.arrival_rise[gate.fanout],
                                      timing.arrival_fall[gate.fanout]);
      const double slack = required[gate.fanout] -
                           (arrival == -std::numeric_limits<double>::infinity()
                                ? 0.0
                                : arrival);
      const double delay = std::max(gd.rise[gid], gd.fall[gid]);
      if (slack < slack_factor * delay) continue;
      candidates.emplace_back(slack / delay, gid);
    }
    if (candidates.empty()) return;
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const std::size_t cap =
        std::max<std::size_t>(8, work.num_gates() / 10);

    std::vector<std::pair<GateId, CellId>> batch;  // gate -> previous cell
    for (const auto& [margin, gid] : candidates) {
      if (batch.size() >= cap) break;
      const Gate& gate = work.gate(gid);
      const Cell& current = lib.cell(gate.cell);
      const std::vector<CellId> variants = lib.drive_variants(current.fn);
      for (std::size_t v = 1; v < variants.size(); ++v) {
        if (lib.cell(variants[v]).drive == current.drive) {
          batch.emplace_back(gid, gate.cell);
          work.set_gate_cell(gid, variants[v - 1]);
          break;
        }
      }
    }
    if (batch.empty()) return;

    const Sta verify(work, options.sta);
    if (verify.run_aged(aged, stress).max_delay > target) {
      for (const auto& [gid, cell] : batch) work.set_gate_cell(gid, cell);
      slack_factor *= 2.0;
      if (slack_factor > 50.0) return;
    }
  }
}

}  // namespace

SizingResult size_for_aging(const Netlist& nl, const DegradationAwareLibrary& aged,
                            const StressProfile& stress, double target_delay_ps,
                            const SizingOptions& options) {
  SizingResult result{nl, false, 0.0, 0};
  Netlist& work = result.netlist;

  double best_delay = std::numeric_limits<double>::infinity();
  int stall = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const Sta sta(work, options.sta);
    const StaResult timing = sta.run_aged(aged, stress);
    result.aged_delay = timing.max_delay;
    if (timing.max_delay <= target_delay_ps) {
      result.met = true;
      break;
    }
    // Stop chasing an unreachable target once upsizing stops helping.
    if (timing.max_delay < best_delay - 1e-6) {
      best_delay = timing.max_delay;
      stall = 0;
    } else if (++stall >= 60) {
      break;
    }
    // Greedy few-gates-per-round sizing; once progress stalls, fall back to
    // blanket rounds over the whole critical path (the structure has many
    // parallel near-critical paths that must all be strengthened).
    const int cap = stall > 10 ? 1 << 20 : 5;
    const int bumped = upsize_critical_path(work, timing, options, cap);
    result.upsized_gates += bumped;
    if (bumped == 0) break;  // everything on the path is at max drive
  }

  if (options.recover_area) {
    // If the target was unreachable, recover area against the delay that was
    // actually achieved (the baseline then carries a residual guardband).
    recover_area_pass(work, aged, stress,
                      std::max(target_delay_ps, result.aged_delay), options);
  }

  const Sta sta(work, options.sta);
  result.aged_delay = sta.run_aged(aged, stress).max_delay;
  result.met = result.aged_delay <= target_delay_ps;
  return result;
}

}  // namespace aapx
