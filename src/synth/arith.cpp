#include "synth/arith.hpp"

#include <algorithm>
#include <stdexcept>

namespace aapx {

std::string to_string(AdderArch arch) {
  switch (arch) {
    case AdderArch::ripple: return "ripple";
    case AdderArch::cla4: return "cla4";
    case AdderArch::kogge_stone: return "kogge-stone";
  }
  return "unknown";
}

std::string to_string(MultArch arch) {
  switch (arch) {
    case MultArch::array: return "array";
    case MultArch::wallace: return "wallace";
  }
  return "unknown";
}

SumCarry build_full_adder(Netlist& nl, NetId a, NetId b, NetId c) {
  const NetId ab = nl.mk(LogicFn::kXor2, a, b);
  return {nl.mk(LogicFn::kXor2, ab, c), nl.mk(LogicFn::kMaj3, a, b, c)};
}

SumCarry build_half_adder(Netlist& nl, NetId a, NetId b) {
  return {nl.mk(LogicFn::kXor2, a, b), nl.mk(LogicFn::kAnd2, a, b)};
}

namespace {

/// Balanced AND tree using AND3/AND2 cells; empty input yields const1.
NetId and_tree(Netlist& nl, std::vector<NetId> terms) {
  if (terms.empty()) return nl.const1();
  while (terms.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (i < terms.size()) {
      const std::size_t left = terms.size() - i;
      if (left >= 3 && left != 4) {
        next.push_back(nl.mk(LogicFn::kAnd3, terms[i], terms[i + 1], terms[i + 2]));
        i += 3;
      } else if (left >= 2) {
        next.push_back(nl.mk(LogicFn::kAnd2, terms[i], terms[i + 1]));
        i += 2;
      } else {
        next.push_back(terms[i]);
        i += 1;
      }
    }
    terms = std::move(next);
  }
  return terms[0];
}

/// Balanced OR tree using OR3/OR2 cells; empty input yields const0.
NetId or_tree(Netlist& nl, std::vector<NetId> terms) {
  if (terms.empty()) return nl.const0();
  while (terms.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (i < terms.size()) {
      const std::size_t left = terms.size() - i;
      if (left >= 3 && left != 4) {
        next.push_back(nl.mk(LogicFn::kOr3, terms[i], terms[i + 1], terms[i + 2]));
        i += 3;
      } else if (left >= 2) {
        next.push_back(nl.mk(LogicFn::kOr2, terms[i], terms[i + 1]));
        i += 2;
      } else {
        next.push_back(terms[i]);
        i += 1;
      }
    }
    terms = std::move(next);
  }
  return terms[0];
}

Word build_ripple_adder(Netlist& nl, std::span<const NetId> a,
                        std::span<const NetId> b, NetId carry_in) {
  Word out;
  out.reserve(a.size() + 1);
  NetId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const SumCarry sc = build_full_adder(nl, a[i], b[i], carry);
    out.push_back(sc.sum);
    carry = sc.carry;
  }
  out.push_back(carry);
  return out;
}

Word build_cla4_adder(Netlist& nl, std::span<const NetId> a,
                      std::span<const NetId> b, NetId carry_in) {
  const std::size_t width = a.size();
  std::vector<NetId> p(width);
  std::vector<NetId> g(width);
  for (std::size_t i = 0; i < width; ++i) {
    p[i] = nl.mk(LogicFn::kXor2, a[i], b[i]);
    g[i] = nl.mk(LogicFn::kAnd2, a[i], b[i]);
  }
  Word out;
  out.reserve(width + 1);
  NetId cin = carry_in;  // ripples from group to group
  for (std::size_t lo = 0; lo < width; lo += 4) {
    const std::size_t k = std::min<std::size_t>(4, width - lo);
    // Lookahead carries inside the group: c_i = OR_t ( g_t * prod p ) + cin*prod p.
    std::vector<NetId> carries(k + 1);
    carries[0] = cin;
    for (std::size_t i = 1; i <= k; ++i) {
      std::vector<NetId> terms;
      for (std::size_t t = 0; t < i; ++t) {
        std::vector<NetId> prod;
        for (std::size_t m = t + 1; m < i; ++m) prod.push_back(p[lo + m]);
        prod.push_back(g[lo + t]);
        terms.push_back(and_tree(nl, prod));
      }
      std::vector<NetId> full_prop(p.begin() + static_cast<std::ptrdiff_t>(lo),
                                   p.begin() + static_cast<std::ptrdiff_t>(lo + i));
      full_prop.push_back(cin);
      terms.push_back(and_tree(nl, std::move(full_prop)));
      carries[i] = or_tree(nl, std::move(terms));
    }
    for (std::size_t i = 0; i < k; ++i) {
      out.push_back(nl.mk(LogicFn::kXor2, p[lo + i], carries[i]));
    }
    cin = carries[k];
  }
  out.push_back(cin);
  return out;
}

Word build_kogge_stone_adder(Netlist& nl, std::span<const NetId> a,
                             std::span<const NetId> b, NetId carry_in) {
  const std::size_t width = a.size();
  std::vector<NetId> p(width);
  std::vector<NetId> g(width);
  for (std::size_t i = 0; i < width; ++i) {
    p[i] = nl.mk(LogicFn::kXor2, a[i], b[i]);
    g[i] = nl.mk(LogicFn::kAnd2, a[i], b[i]);
  }
  // Parallel prefix of the (g, p) carry operator.
  std::vector<NetId> gg = g;
  std::vector<NetId> pp = p;
  for (std::size_t d = 1; d < width; d *= 2) {
    std::vector<NetId> g2 = gg;
    std::vector<NetId> p2 = pp;
    for (std::size_t i = d; i < width; ++i) {
      g2[i] = nl.mk(LogicFn::kOr2, gg[i], nl.mk(LogicFn::kAnd2, pp[i], gg[i - d]));
      p2[i] = nl.mk(LogicFn::kAnd2, pp[i], pp[i - d]);
    }
    gg = std::move(g2);
    pp = std::move(p2);
  }
  // c_{i+1} = G_i | P_i & cin ; c_0 = cin.
  Word out;
  out.reserve(width + 1);
  NetId carry = carry_in;
  for (std::size_t i = 0; i < width; ++i) {
    out.push_back(nl.mk(LogicFn::kXor2, p[i], carry));
    carry = nl.mk(LogicFn::kOr2, gg[i], nl.mk(LogicFn::kAnd2, pp[i], carry_in));
  }
  out.push_back(carry);
  return out;
}

}  // namespace

Word build_adder(Netlist& nl, std::span<const NetId> a, std::span<const NetId> b,
                 NetId carry_in, AdderArch arch) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("build_adder: operand widths differ");
  }
  if (a.empty()) throw std::invalid_argument("build_adder: empty operands");
  switch (arch) {
    case AdderArch::ripple: return build_ripple_adder(nl, a, b, carry_in);
    case AdderArch::cla4: return build_cla4_adder(nl, a, b, carry_in);
    case AdderArch::kogge_stone: return build_kogge_stone_adder(nl, a, b, carry_in);
  }
  throw std::invalid_argument("build_adder: unknown architecture");
}

Word resize_signed(Netlist& nl, std::span<const NetId> w, int width) {
  if (w.empty()) throw std::invalid_argument("resize_signed: empty word");
  Word out(w.begin(), w.end());
  if (static_cast<int>(out.size()) > width) {
    out.resize(static_cast<std::size_t>(width));
  } else {
    const NetId msb = out.back();
    while (static_cast<int>(out.size()) < width) out.push_back(msb);
  }
  (void)nl;
  return out;
}

Word reduce_columns(Netlist& nl, std::vector<std::vector<NetId>> columns,
                    AdderArch final_adder) {
  const std::size_t width = columns.size();
  if (width == 0) throw std::invalid_argument("reduce_columns: no columns");
  // Wallace-style 3:2 / 2:2 compression until every column has <= 2 bits.
  bool again = true;
  while (again) {
    again = false;
    std::vector<std::vector<NetId>> next(width);
    for (std::size_t c = 0; c < width; ++c) {
      auto& col = columns[c];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        const SumCarry sc = build_full_adder(nl, col[i], col[i + 1], col[i + 2]);
        next[c].push_back(sc.sum);
        if (c + 1 < width) next[c + 1].push_back(sc.carry);
        i += 3;
      }
      if (col.size() - i == 2 && col.size() > 2) {
        const SumCarry sc = build_half_adder(nl, col[i], col[i + 1]);
        next[c].push_back(sc.sum);
        if (c + 1 < width) next[c + 1].push_back(sc.carry);
        i += 2;
      }
      for (; i < col.size(); ++i) next[c].push_back(col[i]);
    }
    columns = std::move(next);
    for (const auto& col : columns) {
      if (col.size() > 2) {
        again = true;
        break;
      }
    }
  }
  Word row0(width);
  Word row1(width);
  for (std::size_t c = 0; c < width; ++c) {
    row0[c] = columns[c].empty() ? nl.const0() : columns[c][0];
    row1[c] = columns[c].size() > 1 ? columns[c][1] : nl.const0();
  }
  Word sum = build_adder(nl, row0, row1, nl.const0(), final_adder);
  sum.resize(width);  // product is defined modulo 2^width
  return sum;
}

namespace {

/// Baugh-Wooley two's complement partial-product columns (see derivation in
/// tests/synth/multiplier_test.cpp): AND terms for same-sign index pairs,
/// NAND terms where exactly one index is the sign position, plus constant
/// ones at weights 2^n and 2^(2n-1).
std::vector<std::vector<NetId>> bw_partial_product_columns(
    Netlist& nl, std::span<const NetId> a, std::span<const NetId> b) {
  const std::size_t n = a.size();
  const std::size_t out_width = 2 * n;
  std::vector<std::vector<NetId>> columns(out_width);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const bool i_sign = i == n - 1;
      const bool j_sign = j == n - 1;
      const LogicFn fn = (i_sign != j_sign) ? LogicFn::kNand2 : LogicFn::kAnd2;
      columns[i + j].push_back(nl.mk(fn, a[i], b[j]));
    }
  }
  if (n < out_width) columns[n].push_back(nl.const1());
  columns[out_width - 1].push_back(nl.const1());
  return columns;
}

/// Accumulates partial-product columns with the requested architecture.
Word accumulate_columns(Netlist& nl, std::vector<std::vector<NetId>> columns,
                        MultArch arch) {
  const std::size_t out_width = columns.size();
  if (arch == MultArch::wallace) {
    return reduce_columns(nl, std::move(columns), AdderArch::cla4);
  }
  // Array multiplier: cascade of ripple additions, one per partial-product
  // row; the diagonal carry structure gives the classic O(2n) critical path.
  Word acc(out_width, nl.const0());
  std::size_t max_rows = 0;
  for (const auto& col : columns) max_rows = std::max(max_rows, col.size());
  for (std::size_t row = 0; row < max_rows; ++row) {
    Word addend(out_width, nl.const0());
    bool any = false;
    for (std::size_t c = 0; c < out_width; ++c) {
      if (row < columns[c].size()) {
        addend[c] = columns[c][row];
        any = true;
      }
    }
    if (!any) continue;
    Word sum = build_adder(nl, acc, addend, nl.const0(), AdderArch::ripple);
    sum.resize(out_width);
    acc = std::move(sum);
  }
  return acc;
}

}  // namespace

Word build_multiplier(Netlist& nl, std::span<const NetId> a,
                      std::span<const NetId> b, MultArch arch) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("build_multiplier: bad operand widths");
  }
  return accumulate_columns(nl, bw_partial_product_columns(nl, a, b), arch);
}

Word build_pp_truncated_multiplier(Netlist& nl, std::span<const NetId> a,
                                   std::span<const NetId> b, MultArch arch,
                                   int dropped_columns) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("build_pp_truncated_multiplier: bad widths");
  }
  const int out_width = static_cast<int>(2 * a.size());
  if (dropped_columns < 0 || dropped_columns >= out_width) {
    throw std::invalid_argument(
        "build_pp_truncated_multiplier: bad dropped_columns");
  }
  std::vector<std::vector<NetId>> columns = bw_partial_product_columns(nl, a, b);
  for (int c = 0; c < dropped_columns; ++c) {
    columns[static_cast<std::size_t>(c)].clear();
  }
  return accumulate_columns(nl, std::move(columns), arch);
}

Word build_windowed_adder(Netlist& nl, std::span<const NetId> a,
                          std::span<const NetId> b, int window) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("build_windowed_adder: bad operand widths");
  }
  if (window < 1) {
    throw std::invalid_argument("build_windowed_adder: window must be >= 1");
  }
  const std::size_t width = a.size();
  std::vector<NetId> p(width);
  std::vector<NetId> g(width);
  for (std::size_t i = 0; i < width; ++i) {
    p[i] = nl.mk(LogicFn::kXor2, a[i], b[i]);
    g[i] = nl.mk(LogicFn::kAnd2, a[i], b[i]);
  }
  // Speculative carry into position i: generated within the lookback window
  // and propagated to i; carries older than the window are assumed absent.
  auto windowed_carry = [&](std::size_t i) -> NetId {
    std::vector<NetId> terms;
    const std::size_t lo =
        i > static_cast<std::size_t>(window) ? i - static_cast<std::size_t>(window)
                                             : 0;
    for (std::size_t t = lo; t < i; ++t) {
      std::vector<NetId> prod;
      for (std::size_t m = t + 1; m < i; ++m) prod.push_back(p[m]);
      prod.push_back(g[t]);
      terms.push_back(and_tree(nl, std::move(prod)));
    }
    return or_tree(nl, std::move(terms));
  };
  Word out;
  out.reserve(width + 1);
  for (std::size_t i = 0; i < width; ++i) {
    out.push_back(nl.mk(LogicFn::kXor2, p[i], windowed_carry(i)));
  }
  out.push_back(windowed_carry(width));
  return out;
}

}  // namespace aapx
