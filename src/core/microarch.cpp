#include "core/microarch.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "engine/design_store.hpp"
#include "synth/components.hpp"

namespace aapx {
namespace {

constexpr double kTimingEps = 1e-6;

const StimulusSet* stimulus_for(const FlowOptions& options,
                                const std::string& block_name) {
  const auto it = options.stimuli.find(block_name);
  return it == options.stimuli.end() ? nullptr : &it->second;
}

}  // namespace

MicroarchApproximator::MicroarchApproximator(const Context& ctx,
                                             const CellLibrary& lib,
                                             AgingModel model,
                                             CharacterizerOptions options)
    : lib_(&lib), characterizer_(ctx, lib, std::move(model), options) {}

MicroarchApproximator::MicroarchApproximator(const CellLibrary& lib,
                                             AgingModel model,
                                             CharacterizerOptions options)
    : MicroarchApproximator(Context::process_default(), lib, std::move(model),
                            options) {}

const ComponentCharacterization& MicroarchApproximator::characterization_for(
    const ComponentSpec& base, const AgingScenario& scenario,
    const StimulusSet* stimulus) {
  ComponentSpec key = base;
  key.truncated_bits = 0;
  const std::string name = key.name();
  if (stimulus != nullptr) {
    stimulus_cache_[name] = *stimulus;
  } else {
    const auto cached = stimulus_cache_.find(name);
    if (cached != stimulus_cache_.end()) stimulus = &cached->second;
  }
  if (library_.contains(name)) {
    const ComponentCharacterization& existing = library_.get(name);
    for (const AgingScenario& s : existing.scenarios) {
      if (s.mode == scenario.mode && s.years == scenario.years) return existing;
    }
    // Cached but missing this scenario: extend the scenario set and redo
    // (with the remembered stimulus if any scenario is measured).
    std::vector<AgingScenario> scenarios = existing.scenarios;
    scenarios.push_back(scenario);
    library_.add(characterizer_.characterize(key, scenarios, stimulus));
    return library_.get(name);
  }
  library_.add(characterizer_.characterize(key, {scenario}, stimulus));
  return library_.get(name);
}

Netlist MicroarchApproximator::build_block(const BlockPlan& plan) const {
  ComponentSpec spec = plan.spec.component;
  spec.truncated_bits = spec.width - plan.chosen_precision;
  // Copy out of the store: synthesis happens at most once per distinct spec
  // even across validation iterations and repeated flows.
  return characterizer_.context().store().netlist(*lib_, spec);
}

FlowResult MicroarchApproximator::run(const MicroarchSpec& design,
                                      const FlowOptions& options) {
  if (design.blocks.empty()) {
    throw std::invalid_argument("MicroarchApproximator::run: empty design");
  }
  FlowResult result;
  result.blocks.reserve(design.blocks.size());

  // --- step 1: synthesize and take the fresh design constraint -------------
  const Context& ctx = characterizer_.context();
  engine::DesignStore& store = ctx.store();
  std::vector<const Netlist*> netlists;
  netlists.reserve(design.blocks.size());
  for (const BlockSpec& block : design.blocks) {
    if (block.component.truncated_bits != 0) {
      throw std::invalid_argument("run: blocks must start at full precision");
    }
    netlists.push_back(&store.netlist(*lib_, block.component));
    const Sta sta(*netlists.back(), options.sta, &ctx);
    BlockPlan plan;
    plan.spec = block;
    plan.fresh_delay = sta.run_fresh().max_delay;
    plan.chosen_precision = block.component.width;
    result.blocks.push_back(std::move(plan));
    result.timing_constraint =
        std::max(result.timing_constraint, result.blocks.back().fresh_delay);
  }

  // --- step 2: aging-aware STA per block, slack computation -----------------
  for (std::size_t i = 0; i < result.blocks.size(); ++i) {
    BlockPlan& plan = result.blocks[i];
    plan.aged_delay_full = characterizer_.aged_delay(
        *netlists[i], options.scenario, stimulus_for(options, plan.spec.name));
    plan.slack = result.timing_constraint - plan.aged_delay_full;
    plan.rel_slack = plan.slack / result.timing_constraint;
  }

  // --- step 3: selective approximation via the library ----------------------
  for (BlockPlan& plan : result.blocks) {
    if (plan.spec.protect || plan.slack >= 0.0) {
      plan.chosen_precision = plan.spec.component.width;  // stays exact
      continue;
    }
    const StimulusSet* stim = stimulus_for(options, plan.spec.name);
    const ComponentCharacterization& c =
        characterization_for(plan.spec.component, options.scenario, stim);
    const std::size_t sidx = c.scenario_index(options.scenario);
    const int p = c.precision_for_rel_slack(sidx, plan.rel_slack);
    plan.chosen_precision =
        p > 0 ? p : characterizer_.options().min_precision;
  }

  // --- step 4: validation (re-synthesis + aged STA), adjust if needed -------
  result.timing_met = true;
  result.residual_guardband = 0.0;
  for (BlockPlan& plan : result.blocks) {
    const StimulusSet* stim = stimulus_for(options, plan.spec.name);
    for (int iter = 0;; ++iter) {
      const Netlist nl = build_block(plan);
      plan.aged_delay_final =
          characterizer_.aged_delay(nl, options.scenario, stim);
      plan.meets =
          plan.aged_delay_final <= result.timing_constraint + kTimingEps;
      if (plan.meets || plan.spec.protect) break;
      if (iter >= options.max_validation_iterations ||
          plan.chosen_precision <= characterizer_.options().min_precision) {
        break;
      }
      --plan.chosen_precision;  // trade one more bit for timing
    }
    if (!plan.meets && !plan.spec.protect) {
      result.timing_met = false;
      result.residual_guardband =
          std::max(result.residual_guardband,
                   plan.aged_delay_final - result.timing_constraint);
    } else if (!plan.meets && plan.spec.protect) {
      // Protected blocks rely on traditional hardening (e.g. sizing); they
      // do not gate the approximation flow but are reported.
      result.timing_met = false;
      result.residual_guardband =
          std::max(result.residual_guardband,
                   plan.aged_delay_final - result.timing_constraint);
    }
  }
  return result;
}

}  // namespace aapx
