#include "core/stimulus.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "gatesim/funcsim.hpp"
#include "gatesim/packedsim.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace aapx {
namespace {

std::uint64_t wrap_to_width(std::int64_t v, int width) {
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  return static_cast<std::uint64_t>(v) & mask;
}

double default_sigma(int width) {
  // Typical multimedia data occupies the low ~60% of the dynamic range;
  // scale sigma so operands exercise carry chains without saturating.
  return std::pow(2.0, 0.6 * width);
}

}  // namespace

StimulusSet make_normal_stimulus(int width, std::size_t count,
                                 std::uint64_t seed, double sigma) {
  if (width <= 1 || width > 64) {
    throw std::invalid_argument("make_normal_stimulus: bad width");
  }
  if (sigma <= 0.0) sigma = default_sigma(width);
  Rng rng(seed);
  StimulusSet set;
  set.buses = {"a", "b"};
  set.vectors.reserve(count);
  const std::int64_t lim = width >= 63 ? INT64_MAX / 2
                                       : (std::int64_t{1} << (width - 1)) - 1;
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t a = rng.next_normal_int(sigma, -lim, lim);
    const std::int64_t b = rng.next_normal_int(sigma, -lim, lim);
    set.vectors.push_back({wrap_to_width(a, width), wrap_to_width(b, width)});
  }
  return set;
}

StimulusSet make_normal_pair_stimulus(int width, std::size_t count,
                                      std::uint64_t seed, double sigma_a,
                                      double sigma_b) {
  if (width <= 1 || width > 64) {
    throw std::invalid_argument("make_normal_pair_stimulus: bad width");
  }
  if (sigma_a <= 0.0 || sigma_b <= 0.0) {
    throw std::invalid_argument("make_normal_pair_stimulus: bad sigma");
  }
  Rng rng(seed);
  StimulusSet set;
  set.buses = {"a", "b"};
  set.vectors.reserve(count);
  const std::int64_t lim = width >= 63 ? INT64_MAX / 2
                                       : (std::int64_t{1} << (width - 1)) - 1;
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t a = rng.next_normal_int(sigma_a, -lim, lim);
    const std::int64_t b = rng.next_normal_int(sigma_b, -lim, lim);
    set.vectors.push_back({wrap_to_width(a, width), wrap_to_width(b, width)});
  }
  return set;
}

StimulusSet make_normal_mac_stimulus(int width, std::size_t count,
                                     std::uint64_t seed, double sigma) {
  StimulusSet set = make_normal_stimulus(width, count, seed, sigma);
  set.buses = {"a", "b", "acc"};
  Rng rng(seed ^ 0xaccULL);
  const double acc_sigma = (sigma <= 0.0 ? default_sigma(width) : sigma) * 8.0;
  const int acc_width = 2 * width;
  const std::int64_t lim = acc_width >= 63
                               ? INT64_MAX / 2
                               : (std::int64_t{1} << (acc_width - 1)) - 1;
  for (auto& row : set.vectors) {
    row.push_back(wrap_to_width(rng.next_normal_int(acc_sigma, -lim, lim),
                                acc_width));
  }
  return set;
}

StimulusSet make_mixed_magnitude_stimulus(int width, std::size_t count,
                                          std::uint64_t seed, double min_exp,
                                          double max_exp) {
  if (width <= 1 || width > 63) {
    throw std::invalid_argument("make_mixed_magnitude_stimulus: bad width");
  }
  if (min_exp < 0.0 || max_exp <= min_exp || max_exp >= width) {
    throw std::invalid_argument("make_mixed_magnitude_stimulus: bad exponents");
  }
  Rng rng(seed);
  StimulusSet set;
  set.buses = {"a", "b"};
  set.vectors.reserve(count);
  const std::int64_t lim = (std::int64_t{1} << (width - 1)) - 1;
  for (std::size_t i = 0; i < count; ++i) {
    const double e = min_exp + (max_exp - min_exp) * rng.next_double();
    const double sigma = std::pow(2.0, e);
    const std::int64_t a = rng.next_normal_int(sigma, -lim, lim);
    const std::int64_t b = rng.next_normal_int(sigma, -lim, lim);
    set.vectors.push_back({wrap_to_width(a, width), wrap_to_width(b, width)});
  }
  return set;
}

StimulusSet make_running_sum_stimulus(int width, std::size_t count,
                                      std::uint64_t seed, double sigma) {
  if (width <= 1 || width > 63) {
    throw std::invalid_argument("make_running_sum_stimulus: bad width");
  }
  if (sigma <= 0.0) sigma = default_sigma(width);
  Rng rng(seed);
  StimulusSet set;
  set.buses = {"a", "b"};
  set.vectors.reserve(count);
  const std::int64_t lim = (std::int64_t{1} << (width - 1)) - 1;
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t sample = rng.next_normal_int(sigma, -lim, lim);
    set.vectors.push_back({wrap_to_width(acc, width), wrap_to_width(sample, width)});
    acc += sample;
    // Leaky accumulator: keeps the running sum in a realistic dynamic range
    // instead of random-walking to the rails.
    acc -= acc / 16;
  }
  return set;
}

StimulusSet make_carry_stress_stimulus(int width, std::size_t count,
                                       std::uint64_t seed, double sigma) {
  if (width <= 1 || width > 63) {
    throw std::invalid_argument("make_carry_stress_stimulus: bad width");
  }
  if (sigma <= 0.0) sigma = default_sigma(width);
  Rng rng(seed);
  StimulusSet set;
  set.buses = {"a", "b"};
  set.vectors.reserve(count);
  const std::uint64_t all = (std::uint64_t{1} << width) - 1;
  const std::int64_t lim = (std::int64_t{1} << (width - 1)) - 1;
  const int max_j = width / 2;
  std::int64_t acc = 0;
  int j = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t phase = i % 5;
    if (phase == 3) {
      // Arm: ones from bit j up, no carry activity yet.
      const std::uint64_t mask = all & ~((std::uint64_t{1} << j) - 1);
      set.vectors.push_back({mask, 0});
    } else if (phase == 4) {
      // Fire: flip only bit j of b -> a single carry generated at bit j
      // ripples through the all-ones prefix of a to the MSB, a chain of
      // width - j stages. (A generate must sit at the *lowest* alive bit to
      // maximize the chain; simultaneous generates collapse to the highest
      // one, so j has to sweep rather than stack.)
      const std::uint64_t mask = all & ~((std::uint64_t{1} << j) - 1);
      set.vectors.push_back({mask, std::uint64_t{1} << j});
      j = (j + 1) % (max_j + 1);
    } else {
      const std::int64_t sample = rng.next_normal_int(sigma, -lim, lim);
      set.vectors.push_back(
          {wrap_to_width(acc, width), wrap_to_width(sample, width)});
      acc += sample;
      acc -= acc / 16;
    }
  }
  return set;
}

StimulusSet stimulus_from_operand_pairs(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& ops, int width,
    std::size_t max_count) {
  StimulusSet set;
  set.buses = {"a", "b"};
  const std::size_t n =
      max_count == 0 ? ops.size() : std::min(max_count, ops.size());
  set.vectors.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    set.vectors.push_back(
        {wrap_to_width(ops[i].first, width), wrap_to_width(ops[i].second, width)});
  }
  return set;
}

std::vector<double> measure_gate_duty(const Netlist& nl,
                                      const StimulusSet& stimulus) {
  if (stimulus.vectors.empty()) {
    throw std::invalid_argument("measure_gate_duty: empty stimulus");
  }
  for (const auto& row : stimulus.vectors) {
    if (row.size() != stimulus.buses.size()) {
      throw std::invalid_argument("measure_gate_duty: ragged stimulus");
    }
  }
  // One WideSim::eval simulates a whole lane word of vectors (64-512
  // depending on the dispatched backend); batches are distributed over the
  // pool. Per-batch integer popcounts summed in batch order keep the result
  // bit-identical to the scalar loop regardless of thread count — and of
  // lane width, since the total is an exact integer sum either way.
  const std::size_t n_vectors = stimulus.vectors.size();
  const std::size_t lanes =
      static_cast<std::size_t>(simd::backend_lanes(simd::simd_dispatch()));
  const std::size_t n_batches = (n_vectors + lanes - 1) / lanes;
  std::vector<NetId> gate_fanout(nl.num_gates());
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    gate_fanout[g] = nl.gate(static_cast<GateId>(g)).fanout;
  }
  std::vector<std::vector<std::uint64_t>> batch_high(n_batches);
  parallel_for(n_batches, [&](std::size_t batch) {
    const auto sim = make_wide_sim(nl);
    const std::size_t first = batch * lanes;
    const std::size_t count = std::min(lanes, n_vectors - first);
    std::vector<std::uint64_t> lane_values(count);
    for (std::size_t b = 0; b < stimulus.buses.size(); ++b) {
      for (std::size_t i = 0; i < count; ++i) {
        lane_values[i] = stimulus.vectors[first + i][b];
      }
      sim->set_bus(stimulus.buses[b], lane_values);
    }
    sim->eval();
    std::vector<std::uint64_t>& high = batch_high[batch];
    high.assign(nl.num_gates(), 0);
    sim->add_high_popcounts(gate_fanout, static_cast<int>(count),
                            high.data());
  });
  std::vector<double> duty(nl.num_gates(), 0.0);
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    std::uint64_t high = 0;
    for (const auto& batch : batch_high) high += batch[g];
    duty[g] = static_cast<double>(high) / static_cast<double>(n_vectors);
  }
  return duty;
}

std::vector<double> measure_gate_activity(const Netlist& nl,
                                          const StimulusSet& stimulus) {
  if (stimulus.vectors.size() < 2) {
    throw std::invalid_argument(
        "measure_gate_activity: need at least two vectors");
  }
  for (const auto& row : stimulus.vectors) {
    if (row.size() != stimulus.buses.size()) {
      throw std::invalid_argument("measure_gate_activity: ragged stimulus");
    }
  }
  // Toggles are a property of the vector *sequence*, so this replay is a
  // plain serial loop — vector order is the signal, not a parallel grain.
  FuncSim sim(nl);
  std::vector<char> prev(nl.num_gates(), 0);
  std::vector<std::uint64_t> toggles(nl.num_gates(), 0);
  for (std::size_t i = 0; i < stimulus.vectors.size(); ++i) {
    for (std::size_t b = 0; b < stimulus.buses.size(); ++b) {
      sim.set_bus(stimulus.buses[b], stimulus.vectors[i][b]);
    }
    sim.eval();
    for (std::size_t g = 0; g < nl.num_gates(); ++g) {
      const char v = sim.value(nl.gate(static_cast<GateId>(g)).fanout) ? 1 : 0;
      if (i > 0 && v != prev[g]) ++toggles[g];
      prev[g] = v;
    }
  }
  const double steps = static_cast<double>(stimulus.vectors.size() - 1);
  std::vector<double> activity(nl.num_gates(), 0.0);
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    activity[g] = static_cast<double>(toggles[g]) / steps;
  }
  return activity;
}

}  // namespace aapx
