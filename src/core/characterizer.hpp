// Component characterization flow (paper Fig. 3).
//
// For a base component C_j of width N_j:
//   (a) sweep precision K from N_j downward, re-synthesizing the truncated
//       component each time (logic synthesis + optimization),
//   (b) run fresh STA at each K for t(noAging, K),
//   (c) run aging-aware STA for every requested scenario for t(Aging, K) —
//       worst/balanced scenarios annotate every gate uniformly; "measured"
//       scenarios first extract per-gate stress from a stimulus simulation
//       (Fig. 3c), then index the degradation-aware library per gate.
// The result is the delay-vs-precision-vs-aging surface stored in the
// aging-induced approximation library.
#pragma once

#include <vector>

#include "aging/aging_model.hpp"
#include "approx/library.hpp"
#include "core/stimulus.hpp"
#include "engine/context.hpp"
#include "sta/sta.hpp"

namespace aapx {

struct CharacterizerOptions {
  int min_precision = 16;  ///< sweep floor (K >= this)
  int precision_step = 1;
  StaOptions sta;
  /// Opt-in: evaluate the sweep's delay points with the incremental
  /// cone-limited STA (sta/sta.hpp IncrementalSta) on the single
  /// full-precision netlist, modeling truncation as operand PIs that never
  /// arrive, instead of re-synthesizing a truncated component per point.
  /// Deliberately different delay semantics (re-synthesis restructures
  /// logic and changes loads), cached under a separate DesignStore key
  /// family so the two never alias. Requires lsb_truncation and rejects
  /// measured-mode scenarios (their per-gate stress belongs to a
  /// re-synthesized netlist). Area/gate fields then report the base
  /// netlist at every point. AAPX_STA_FULL=1 forces the full-recompute
  /// algorithm inside this mode without changing any result or log byte.
  bool incremental_sta = false;
};

class ComponentCharacterizer {
 public:
  /// All synthesized netlists, degradation-aware libraries and cacheable
  /// aged delays go through `ctx`'s DesignStore, so anything this
  /// characterizer warms is reusable by every other consumer of the same
  /// Context (runtime, fault injector, another characterizer).
  ComponentCharacterizer(const Context& ctx, const CellLibrary& lib,
                         AgingModel model, CharacterizerOptions options = {});

  /// Process-default-Context shim: behaves exactly like the pre-Context API.
  ComponentCharacterizer(const CellLibrary& lib, AgingModel model,
                         CharacterizerOptions options = {});

  /// Characterizes `base` (which must have truncated_bits == 0) under the
  /// given scenarios. Scenarios with StressMode::measured require `stimulus`.
  ComponentCharacterization characterize(
      const ComponentSpec& base, const std::vector<AgingScenario>& scenarios,
      const StimulusSet* stimulus = nullptr) const;

  /// Aged max-delay of one concrete netlist under one scenario.
  double aged_delay(const Netlist& nl, const AgingScenario& scenario,
                    const StimulusSet* stimulus = nullptr) const;

  const Context& context() const noexcept { return *ctx_; }
  const CellLibrary& lib() const noexcept { return *lib_; }
  const AgingModel& model() const noexcept { return model_; }
  const CharacterizerOptions& options() const noexcept { return options_; }

 private:
  const DegradationAwareLibrary& degradation_for(double years) const;

  /// The actual precision sweep (synthesis + STA per point), without run-log
  /// emission. characterize() routes it through the Context's surface cache
  /// when every scenario is cacheable (i.e. not measured-mode).
  ComponentCharacterization sweep(const ComponentSpec& base,
                                  const std::vector<AgingScenario>& scenarios,
                                  const StimulusSet* stimulus) const;

  /// The incremental-STA variant of the sweep: one full-precision netlist,
  /// truncation as a growing never-arrives PI set, delays served by
  /// IncrementalSta through the store's truncated-delay cache. Serial by
  /// design — each scenario column is one monotone truncation walk.
  ComponentCharacterization sweep_incremental(
      const ComponentSpec& base,
      const std::vector<AgingScenario>& scenarios) const;

  /// aged_delay with the Sta supplied by the caller, so one Sta per netlist
  /// serves the fresh run and every scenario.
  double aged_delay_with(const Sta& sta, const Netlist& nl,
                         const AgingScenario& scenario,
                         const StimulusSet* stimulus) const;

  const Context* ctx_;
  const CellLibrary* lib_;
  AgingModel model_;
  CharacterizerOptions options_;
};

}  // namespace aapx
