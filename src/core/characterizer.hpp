// Component characterization flow (paper Fig. 3).
//
// For a base component C_j of width N_j:
//   (a) sweep precision K from N_j downward, re-synthesizing the truncated
//       component each time (logic synthesis + optimization),
//   (b) run fresh STA at each K for t(noAging, K),
//   (c) run aging-aware STA for every requested scenario for t(Aging, K) —
//       worst/balanced scenarios annotate every gate uniformly; "measured"
//       scenarios first extract per-gate stress from a stimulus simulation
//       (Fig. 3c), then index the degradation-aware library per gate.
// The result is the delay-vs-precision-vs-aging surface stored in the
// aging-induced approximation library.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "aging/bti_model.hpp"
#include "approx/library.hpp"
#include "core/stimulus.hpp"
#include "sta/sta.hpp"

namespace aapx {

struct CharacterizerOptions {
  int min_precision = 16;  ///< sweep floor (K >= this)
  int precision_step = 1;
  StaOptions sta;
};

class ComponentCharacterizer {
 public:
  ComponentCharacterizer(const CellLibrary& lib, BtiModel model,
                         CharacterizerOptions options = {});

  /// Characterizes `base` (which must have truncated_bits == 0) under the
  /// given scenarios. Scenarios with StressMode::measured require `stimulus`.
  ComponentCharacterization characterize(
      const ComponentSpec& base, const std::vector<AgingScenario>& scenarios,
      const StimulusSet* stimulus = nullptr) const;

  /// Aged max-delay of one concrete netlist under one scenario.
  double aged_delay(const Netlist& nl, const AgingScenario& scenario,
                    const StimulusSet* stimulus = nullptr) const;

  const CellLibrary& lib() const noexcept { return *lib_; }
  const BtiModel& model() const noexcept { return model_; }
  const CharacterizerOptions& options() const noexcept { return options_; }

 private:
  const DegradationAwareLibrary& degradation_for(double years) const;

  /// aged_delay with the Sta supplied by the caller, so one Sta per netlist
  /// serves the fresh run and every scenario.
  double aged_delay_with(const Sta& sta, const Netlist& nl,
                         const AgingScenario& scenario,
                         const StimulusSet* stimulus) const;

  const CellLibrary* lib_;
  BtiModel model_;
  CharacterizerOptions options_;
  /// Degradation libraries are expensive to build; cache per lifetime.
  /// unique_ptr keeps returned references stable across cache growth, and the
  /// mutex makes lookups safe from parallel_for workers.
  mutable std::map<double, std::unique_ptr<DegradationAwareLibrary>>
      degradation_cache_;
  mutable std::mutex degradation_mutex_;
};

}  // namespace aapx
