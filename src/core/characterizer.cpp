#include "core/characterizer.hpp"

#include <stdexcept>
#include <string>

#include "netlist/stats.hpp"
#include "synth/components.hpp"

namespace aapx {

ComponentCharacterizer::ComponentCharacterizer(const CellLibrary& lib,
                                               BtiModel model,
                                               CharacterizerOptions options)
    : lib_(&lib), model_(model), options_(options) {
  if (options_.precision_step <= 0) {
    throw std::invalid_argument("ComponentCharacterizer: bad precision_step");
  }
}

const DegradationAwareLibrary& ComponentCharacterizer::degradation_for(
    double years) const {
  for (const auto& [y, lib] : degradation_cache_) {
    if (y == years) return *lib;
  }
  degradation_cache_.emplace_back(
      years, std::make_unique<DegradationAwareLibrary>(*lib_, model_, years));
  return *degradation_cache_.back().second;
}

double ComponentCharacterizer::aged_delay(const Netlist& nl,
                                          const AgingScenario& scenario,
                                          const StimulusSet* stimulus) const {
  const Sta sta(nl, options_.sta);
  if (scenario.is_fresh()) return sta.run_fresh().max_delay;
  const DegradationAwareLibrary& aged = degradation_for(scenario.years);
  if (scenario.mode == StressMode::measured) {
    if (stimulus == nullptr || stimulus->size() == 0) {
      throw std::invalid_argument(
          "aged_delay: measured scenario requires a non-empty stimulus set");
    }
    const StressProfile profile =
        StressProfile::measured(measure_gate_duty(nl, *stimulus));
    return sta.run_aged(aged, profile).max_delay;
  }
  const StressProfile profile =
      StressProfile::uniform(scenario.mode, nl.num_gates());
  return sta.run_aged(aged, profile).max_delay;
}

ComponentCharacterization ComponentCharacterizer::characterize(
    const ComponentSpec& base, const std::vector<AgingScenario>& scenarios,
    const StimulusSet* stimulus) const {
  if (base.truncated_bits != 0) {
    throw std::invalid_argument(
        "characterize: base spec must be full precision");
  }
  if (base.width < 1 || base.width > 64) {
    throw std::invalid_argument(
        "characterize: width must be in [1, 64], got " +
        std::to_string(base.width));
  }
  if (options_.min_precision < 1 || options_.min_precision > base.width) {
    throw std::invalid_argument("characterize: bad min_precision");
  }
  for (const AgingScenario& s : scenarios) {
    if (s.years < 0.0) {
      throw std::invalid_argument("characterize: negative scenario years");
    }
  }
  ComponentCharacterization result;
  result.base = base;
  result.scenarios = scenarios;

  for (int k = base.width; k >= options_.min_precision;
       k -= options_.precision_step) {
    ComponentSpec spec = base;
    spec.truncated_bits = base.width - k;
    const Netlist nl = make_component(*lib_, spec);
    const Sta sta(nl, options_.sta);

    PrecisionPoint point;
    point.precision = k;
    point.fresh_delay = sta.run_fresh().max_delay;
    const NetlistStats stats = compute_stats(nl);
    point.area = stats.cell_area;
    point.gates = stats.gates;
    point.aged_delay.reserve(scenarios.size());
    for (const AgingScenario& s : scenarios) {
      point.aged_delay.push_back(aged_delay(nl, s, stimulus));
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

}  // namespace aapx
