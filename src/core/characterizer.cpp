#include "core/characterizer.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "engine/design_store.hpp"
#include "netlist/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/runlog.hpp"
#include "obs/trace.hpp"
#include "synth/components.hpp"
#include "util/parallel.hpp"

namespace aapx {

ComponentCharacterizer::ComponentCharacterizer(const Context& ctx,
                                               const CellLibrary& lib,
                                               AgingModel model,
                                               CharacterizerOptions options)
    : ctx_(&ctx), lib_(&lib), model_(std::move(model)), options_(options) {
  if (options_.precision_step <= 0) {
    throw std::invalid_argument("ComponentCharacterizer: bad precision_step");
  }
}

ComponentCharacterizer::ComponentCharacterizer(const CellLibrary& lib,
                                               AgingModel model,
                                               CharacterizerOptions options)
    : ComponentCharacterizer(Context::process_default(), lib,
                             std::move(model), options) {}

const DegradationAwareLibrary& ComponentCharacterizer::degradation_for(
    double years) const {
  // PR 4: the per-characterizer cache moved into the Context's DesignStore —
  // aged libraries built here are keyed by content and shared with the
  // runtime and the fault injector.
  return ctx_->store().aged_library(*lib_, model_, years);
}

double ComponentCharacterizer::aged_delay(const Netlist& nl,
                                          const AgingScenario& scenario,
                                          const StimulusSet* stimulus) const {
  const Sta sta(nl, options_.sta, ctx_);
  return aged_delay_with(sta, nl, scenario, stimulus);
}

double ComponentCharacterizer::aged_delay_with(
    const Sta& sta, const Netlist& nl, const AgingScenario& scenario,
    const StimulusSet* stimulus) const {
  if (scenario.is_fresh()) return sta.run_fresh().max_delay;
  const DegradationAwareLibrary& aged = degradation_for(scenario.years);
  if (scenario.mode == StressMode::measured) {
    if (stimulus == nullptr || stimulus->size() == 0) {
      throw std::invalid_argument(
          "aged_delay: measured scenario requires a non-empty stimulus set");
    }
    const StressProfile profile =
        StressProfile::measured(measure_gate_duty(nl, *stimulus));
    return sta.run_aged(aged, profile).max_delay;
  }
  const StressProfile profile =
      StressProfile::uniform(scenario.mode, nl.num_gates());
  return sta.run_aged(aged, profile).max_delay;
}

ComponentCharacterization ComponentCharacterizer::characterize(
    const ComponentSpec& base, const std::vector<AgingScenario>& scenarios,
    const StimulusSet* stimulus) const {
  if (base.truncated_bits != 0) {
    throw std::invalid_argument(
        "characterize: base spec must be full precision");
  }
  if (base.width < 1 || base.width > 64) {
    throw std::invalid_argument(
        "characterize: width must be in [1, 64], got " +
        std::to_string(base.width));
  }
  if (options_.min_precision < 1 || options_.min_precision > base.width) {
    throw std::invalid_argument("characterize: bad min_precision");
  }
  for (const AgingScenario& s : scenarios) {
    if (s.years < 0.0) {
      throw std::invalid_argument("characterize: negative scenario years");
    }
  }
  if (options_.incremental_sta) {
    if (base.technique != ApproxTechnique::lsb_truncation) {
      throw std::invalid_argument(
          "characterize: incremental_sta requires lsb_truncation (other "
          "techniques restructure logic rather than starve operand bits)");
    }
    for (const AgingScenario& s : scenarios) {
      if (!s.is_fresh() && s.mode == StressMode::measured) {
        throw std::invalid_argument(
            "characterize: incremental_sta cannot serve measured-mode "
            "scenarios (their per-gate stress belongs to a re-synthesized "
            "netlist)");
      }
    }
  }
  obs::Span span("characterize");

  // Route through the Context's surface cache whenever the sweep is a pure
  // function of its key (no stimulus-dependent measured scenarios): a second
  // characterization of the same component — in this process or, with a
  // store file attached, in a later one — returns the memoized surface
  // bit-identically instead of re-synthesizing. The sweep itself never logs
  // (its sta_query records are suppressed inside parallel_for anyway), so
  // the run-log emission below is identical for a cached and a computed
  // surface.
  bool cacheable = true;
  for (const AgingScenario& s : scenarios) {
    if (!s.is_fresh() && s.mode == StressMode::measured) cacheable = false;
  }
  ComponentCharacterization result;
  if (cacheable && ctx_->surrogate_bound() > 0.0) {
    // Armed surrogate: a sweep may answer some points from the learned model
    // rather than exact STA, and such a surface must never be memoized as
    // exact truth. Probe the cache first (warm behavior is unchanged); on a
    // miss run the sweep and only insert it if the surrogate contributed
    // nothing — detected by a hit-counter delta, so a fully-exact run stays
    // byte-identical to an unarmed one in both the store file and the logs.
    engine::DesignStore& store = ctx_->store();
    if (const ComponentCharacterization* cached = store.surface_if_cached(
            *lib_, model_, base, scenarios, options_.min_precision,
            options_.precision_step, options_.sta,
            options_.incremental_sta)) {
      result = *cached;
    } else {
      const std::uint64_t hits_before = store.stats().surrogate_hits;
      result = sweep(base, scenarios, stimulus);
      if (store.stats().surrogate_hits == hits_before) {
        result = store.surface(
            *lib_, model_, base, scenarios, options_.min_precision,
            options_.precision_step, options_.sta, options_.incremental_sta,
            [&]() -> ComponentCharacterization { return std::move(result); });
      }
    }
  } else if (cacheable) {
    result = ctx_->store().surface(
        *lib_, model_, base, scenarios, options_.min_precision,
        options_.precision_step, options_.sta, options_.incremental_sta,
        [&] { return sweep(base, scenarios, stimulus); });
  } else {
    result = sweep(base, scenarios, stimulus);
  }

  // Run-log emission happens outside the sweep, in index order, so the JSONL
  // output is byte-identical at any thread count and any cache warmth.
  obs::RunLog& log = ctx_->runlog();
  if (log.enabled() && !in_parallel_region()) {
    obs::JsonWriter start;
    start.field("component", base.name())
        .field("points", static_cast<std::uint64_t>(result.points.size()))
        .field("scenarios", static_cast<std::uint64_t>(scenarios.size()));
    log.emit("sweep_start", start);
    for (const PrecisionPoint& p : result.points) {
      obs::JsonWriter w;
      w.field("component", base.name())
          .field("precision", p.precision)
          .field("fresh_ps", p.fresh_delay)
          .field("gates", static_cast<std::uint64_t>(p.gates))
          .field("area", p.area);
      log.emit("sweep_point", w);
    }
  }
  return result;
}

ComponentCharacterization ComponentCharacterizer::sweep(
    const ComponentSpec& base, const std::vector<AgingScenario>& scenarios,
    const StimulusSet* stimulus) const {
  if (options_.incremental_sta) return sweep_incremental(base, scenarios);
  ComponentCharacterization result;
  result.base = base;
  result.scenarios = scenarios;

  // First cancellation check before ANY store-touching work (the prewarm
  // below inserts aged libraries): a pre-cancelled sweep must leave the
  // store exactly as it found it.
  ctx_->check_cancelled("characterize.sweep");

  // Prewarm the degradation cache serially: every point needs the same aged
  // libraries, and building them inside parallel_for would serialize the
  // workers on degradation_mutex_ while one of them does the build.
  for (const AgingScenario& s : scenarios) {
    if (!s.is_fresh()) degradation_for(s.years);
  }

  std::vector<int> precisions;
  for (int k = base.width; k >= options_.min_precision;
       k -= options_.precision_step) {
    precisions.push_back(k);
  }
  result.points.resize(precisions.size());
  engine::DesignStore& store = ctx_->store();
  // Each precision point gets its netlist from the shared store (synthesized
  // once per distinct spec, process-wide) and writes only its own result
  // slot, so the surface is bit-identical at any thread count. Uniform-stress
  // and fresh delays route through the store's memoized aged-STA; measured
  // scenarios are stimulus-dependent and keep the direct Sta path.
  // Every point body starts with a cancellation check — the cooperative
  // grain the serve deadline contract promises. A tripped token throws out
  // of parallel_for (first exception wins) before the *next* synthesis
  // starts, so a cancelled sweep stops burning cores within one point and
  // inserts nothing partial: store entries only land after a full build.
  ctx_->parallel_for(precisions.size(), [&](std::size_t i) {
    ctx_->check_cancelled("characterize.point");
    const int k = precisions[i];
    obs::Span point_span("characterize.point", static_cast<std::uint64_t>(k));
    ComponentSpec spec = base;
    spec.truncated_bits = base.width - k;
    const Netlist& nl = store.netlist(*lib_, spec);

    PrecisionPoint point;
    point.precision = k;
    point.fresh_delay = store.aged_sta_delay(*lib_, spec, model_,
                                             StressMode::worst, 0.0,
                                             options_.sta);
    const NetlistStats stats = compute_stats(nl);
    point.area = stats.cell_area;
    point.gates = stats.gates;
    point.aged_delay.reserve(scenarios.size());
    for (const AgingScenario& s : scenarios) {
      if (!s.is_fresh() && s.mode == StressMode::measured) {
        const Sta sta(nl, options_.sta, ctx_);
        point.aged_delay.push_back(aged_delay_with(sta, nl, s, stimulus));
      } else {
        point.aged_delay.push_back(store.aged_sta_delay(
            *lib_, spec, model_, s.mode, s.years, options_.sta));
      }
    }
    result.points[i] = std::move(point);
  });
  return result;
}

ComponentCharacterization ComponentCharacterizer::sweep_incremental(
    const ComponentSpec& base,
    const std::vector<AgingScenario>& scenarios) const {
  ComponentCharacterization result;
  result.base = base;
  result.scenarios = scenarios;

  ctx_->check_cancelled("characterize.sweep");
  for (const AgingScenario& s : scenarios) {
    if (!s.is_fresh()) degradation_for(s.years);
  }

  std::vector<int> precisions;
  for (int k = base.width; k >= options_.min_precision;
       k -= options_.precision_step) {
    precisions.push_back(k);
  }

  engine::DesignStore& store = ctx_->store();
  const Netlist& nl = store.netlist(*lib_, base);
  const NetlistStats stats = compute_stats(nl);
  const auto gates = static_cast<std::uint64_t>(nl.num_gates());

  // The buses that lsb_truncation starves, mirroring make_component: the
  // operand buses for arithmetic components, the data bus for the clamp
  // (a mac's accumulator bus is never truncated).
  std::vector<const std::vector<NetId>*> buses;
  if (base.kind == ComponentKind::clamp) {
    buses = {&nl.input_bus("x")};
  } else {
    buses = {&nl.input_bus("a"), &nl.input_bus("b")};
  }
  const auto truncated_set = [&buses](int tb) {
    std::vector<NetId> pis;
    for (const std::vector<NetId>* bus : buses) {
      for (int i = 0; i < tb && i < static_cast<int>(bus->size()); ++i) {
        pis.push_back((*bus)[static_cast<std::size_t>(i)]);
      }
    }
    return pis;
  };

  result.points.resize(precisions.size());
  for (std::size_t i = 0; i < precisions.size(); ++i) {
    result.points[i].precision = precisions[i];
    result.points[i].area = stats.cell_area;
    result.points[i].gates = stats.gates;
    result.points[i].aged_delay.assign(scenarios.size(), 0.0);
  }

  // One engine for the whole sweep, walked column-major (fresh column, then
  // each scenario column): within a column the gate delays are fixed and
  // the truncated set only grows, so after the column's first query every
  // point is a cone-limited re-propagation. Serial by design — the engine's
  // arrival state is the thing being reused. Store hits skip the compute
  // callback entirely; the queries that do reach the engine still form a
  // monotone (superset) walk, so a partially warm store stays incremental.
  IncrementalSta inc(nl, options_.sta, ctx_);
  const auto fresh_point = [&](std::size_t i) {
    const int tb = base.width - precisions[i];
    return store.truncated_sta_delay(
        *lib_, base, tb, model_, StressMode::worst, 0.0, options_.sta, gates,
        [&] { return inc.max_delay(nullptr, nullptr, truncated_set(tb)); });
  };
  for (std::size_t i = 0; i < precisions.size(); ++i) {
    ctx_->check_cancelled("characterize.point");
    result.points[i].fresh_delay = fresh_point(i);
  }
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const AgingScenario& s = scenarios[si];
    if (s.is_fresh()) {
      // Same query as the fresh column — a guaranteed store hit.
      for (std::size_t i = 0; i < precisions.size(); ++i) {
        result.points[i].aged_delay[si] = fresh_point(i);
      }
      continue;
    }
    const DegradationAwareLibrary& aged = degradation_for(s.years);
    const StressProfile stress =
        StressProfile::uniform(s.mode, nl.num_gates());
    for (std::size_t i = 0; i < precisions.size(); ++i) {
      ctx_->check_cancelled("characterize.point");
      const int tb = base.width - precisions[i];
      result.points[i].aged_delay[si] = store.truncated_sta_delay(
          *lib_, base, tb, model_, s.mode, s.years, options_.sta, gates,
          [&] { return inc.max_delay(&aged, &stress, truncated_set(tb)); });
    }
  }
  return result;
}

}  // namespace aapx
