#include "core/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

namespace aapx {

int AdaptiveSchedule::precision_at(double years) const {
  if (steps.empty()) throw std::logic_error("AdaptiveSchedule: empty");
  int precision = steps.front().precision;
  for (const ScheduleStep& step : steps) {
    if (step.from_years <= years) {
      precision = step.precision;
    } else {
      break;
    }
  }
  return precision;
}

AdaptiveScheduler::AdaptiveScheduler(const ComponentCharacterizer& characterizer)
    : characterizer_(&characterizer) {}

AdaptiveSchedule AdaptiveScheduler::plan(const ComponentSpec& base,
                                         StressMode mode,
                                         std::span<const double> year_grid) const {
  if (year_grid.empty()) {
    throw std::invalid_argument("AdaptiveScheduler::plan: empty year grid");
  }
  if (mode == StressMode::measured) {
    throw std::invalid_argument(
        "AdaptiveScheduler::plan: measured stress needs per-point stimuli; "
        "use worst or balanced");
  }
  for (std::size_t i = 0; i < year_grid.size(); ++i) {
    if (year_grid[i] <= 0.0 ||
        (i > 0 && year_grid[i] <= year_grid[i - 1])) {
      throw std::invalid_argument(
          "AdaptiveScheduler::plan: grid must be ascending and positive");
    }
  }

  std::vector<AgingScenario> scenarios;
  scenarios.reserve(year_grid.size());
  for (const double y : year_grid) scenarios.push_back({mode, y});
  const ComponentCharacterization c =
      characterizer_->characterize(base, scenarios);

  AdaptiveSchedule schedule;
  schedule.timing_constraint = c.full_fresh_delay();

  // The device is fresh at t=0: full precision until the first grid point
  // that demands less.
  int current = base.width;
  schedule.steps.push_back({0.0, base.width, c.full_fresh_delay(), 0.0});
  for (std::size_t i = 0; i < year_grid.size(); ++i) {
    const int k = c.required_precision(i);
    if (k < 0) {
      schedule.feasible = false;
      break;
    }
    if (k < current) {
      // Reconfigure at the *previous* grid point (conservative: before the
      // aging that demands the lower precision has accumulated).
      const double when = i == 0 ? 0.0 : year_grid[i - 1];
      schedule.steps.push_back(
          {when, k, c.at_precision(k).aged_delay[i], c.guardband(base.width, i)});
      current = k;
    } else {
      // Precision unchanged; update the step's end-of-life bookkeeping.
      schedule.steps.back().aged_delay = c.at_precision(current).aged_delay[i];
      schedule.steps.back().guardband_if_unapproximated =
          c.guardband(base.width, i);
    }
  }
  // Drop the synthetic t=0 full-precision step if the very first grid point
  // already demanded a reconfiguration at 0.0.
  if (schedule.steps.size() >= 2 && schedule.steps[1].from_years == 0.0) {
    schedule.steps.erase(schedule.steps.begin());
  }
  return schedule;
}

}  // namespace aapx
