// Adaptive precision scheduling over lifetime — the paper's closing vision
// implemented: "By applying approximations adaptively we can envision future
// systems that gradually degrade in quality as they age over time."
//
// A conventional aging-induced-approximation design fixes the precision for
// the full projected lifetime on day one. An adaptive system instead walks a
// *schedule*: it starts at (or near) full precision and sheds LSBs only when
// the accumulated ΔVth actually demands it, keeping quality maximal at every
// point of life while never violating timing. The scheduler derives that
// schedule from one component characterization over a lifetime grid.
#pragma once

#include <span>
#include <vector>

#include "core/characterizer.hpp"

namespace aapx {

/// One segment of the lifetime schedule: operate at `precision` from
/// `from_years` until the next step begins.
struct ScheduleStep {
  double from_years = 0.0;
  int precision = 0;
  double aged_delay = 0.0;  ///< ps at the segment's end-of-life point
  double guardband_if_unapproximated = 0.0;  ///< ps the fixed design pays here
};

struct AdaptiveSchedule {
  double timing_constraint = 0.0;  ///< fresh full-precision delay
  std::vector<ScheduleStep> steps; ///< ascending from_years; first is 0.0
  bool feasible = true;            ///< false if some grid point is unreachable

  /// Precision in effect at `years` (the last step whose from_years <= years).
  int precision_at(double years) const;
};

class AdaptiveScheduler {
 public:
  explicit AdaptiveScheduler(const ComponentCharacterizer& characterizer);

  /// Builds the schedule for `base` under uniform stress of the given mode
  /// across the (ascending, positive) lifetime grid. Each grid point's
  /// precision is the largest K whose aged delay at that lifetime still
  /// meets the fresh full-precision constraint (paper Eq. 2); consecutive
  /// equal precisions merge into one step.
  AdaptiveSchedule plan(const ComponentSpec& base, StressMode mode,
                        std::span<const double> year_grid) const;

 private:
  const ComponentCharacterizer* characterizer_;
};

}  // namespace aapx
