// Microarchitecture-level aging-induced approximation flow (paper Fig. 6).
//
// Given an RTL design described as register-separated datapath blocks, the
// flow:
//   1. synthesizes every block and takes the fresh critical path across the
//      whole design as the timing constraint t_CP(noAging),
//   2. runs aging-aware STA per block to get t_Bk(Aging) and the slack
//      t_Bk(Slack) = t_CP(noAging) - t_Bk(Aging),
//   3. for blocks with negative slack, consults the aging-induced
//      approximation library for the precision whose aged delay meets
//      (1 + relSlack) * t_Cj(noAging, N_j),
//   4. validates by re-synthesizing the modified blocks and re-running aged
//      STA; if a small negative slack remains it either reduces precision
//      further or reports the residual guardband.
// Protected blocks (control logic) are never approximated.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/characterizer.hpp"

namespace aapx {

struct BlockSpec {
  std::string name;
  ComponentSpec component;
  bool protect = false;  ///< control blocks: hardened, never approximated
};

struct MicroarchSpec {
  std::string name;
  std::vector<BlockSpec> blocks;
};

struct BlockPlan {
  BlockSpec spec;
  double fresh_delay = 0.0;      ///< t(noAging, N), ps
  double aged_delay_full = 0.0;  ///< t(Aging, N), ps
  double slack = 0.0;            ///< ps vs the design constraint
  double rel_slack = 0.0;        ///< slack / t_CP(noAging)
  int chosen_precision = 0;      ///< P_j after the flow
  double aged_delay_final = 0.0; ///< validation aged delay at P_j
  bool meets = false;            ///< aged_delay_final <= constraint
};

struct FlowOptions {
  AgingScenario scenario{StressMode::worst, 10.0};
  StaOptions sta;
  int max_validation_iterations = 16;
  /// Stimuli for measured-mode scenarios, keyed by block name.
  std::map<std::string, StimulusSet> stimuli;
};

struct FlowResult {
  double timing_constraint = 0.0;  ///< fresh CP across blocks, ps
  std::vector<BlockPlan> blocks;
  bool timing_met = false;         ///< every block meets the constraint aged
  double residual_guardband = 0.0; ///< ps still needed if !timing_met
};

class MicroarchApproximator {
 public:
  /// Block synthesis and aged STA route through `ctx`'s DesignStore, so a
  /// flow re-uses netlists/libraries warmed by any prior work on the same
  /// Context.
  MicroarchApproximator(const Context& ctx, const CellLibrary& lib,
                        AgingModel model, CharacterizerOptions options = {});

  /// Process-default-Context shim (pre-Context API).
  MicroarchApproximator(const CellLibrary& lib, AgingModel model,
                        CharacterizerOptions options = {});

  FlowResult run(const MicroarchSpec& design, const FlowOptions& options);

  /// Characterizations built (and cached) while running flows.
  const ApproximationLibrary& library() const noexcept { return library_; }

  /// Builds (or returns the cached) final netlist for a planned block.
  Netlist build_block(const BlockPlan& plan) const;

  const ComponentCharacterizer& characterizer() const noexcept {
    return characterizer_;
  }

 private:
  const ComponentCharacterization& characterization_for(
      const ComponentSpec& base, const AgingScenario& scenario,
      const StimulusSet* stimulus);

  const CellLibrary* lib_;
  ComponentCharacterizer characterizer_;
  ApproximationLibrary library_;
  /// Stimulus used for a component's measured-mode characterization, kept so
  /// later flows can extend the cached entry with new scenarios without the
  /// caller resupplying it.
  std::map<std::string, StimulusSet> stimulus_cache_;
};

}  // namespace aapx
