// Stimulus sets for actual-case ("measured") aging characterization.
//
// The paper characterizes components either under worst-case stress or under
// the stress induced by concrete inputs: (1) operands drawn from a normal
// distribution (application-independent) and (2) operand streams extracted
// from a running application (the IDCT decoding an image). Paper Fig. 5
// shows both induce nearly identical stress-factor distributions, which is
// what justifies characterizing with artificial inputs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gatesim/timedsim.hpp"
#include "netlist/netlist.hpp"

namespace aapx {

struct StimulusSet {
  std::vector<std::string> buses;                   ///< e.g. {"a", "b"}
  std::vector<std::vector<std::uint64_t>> vectors;  ///< one value per bus

  std::size_t size() const noexcept { return vectors.size(); }
};

/// Two-operand vectors with values from N(0, sigma), wrapped to `width` bits.
/// sigma defaults to a "typical image data" magnitude relative to the width.
StimulusSet make_normal_stimulus(int width, std::size_t count,
                                 std::uint64_t seed = 1, double sigma = -1.0);

/// Two-operand variant with distinct magnitudes per operand — e.g. a
/// coefficient input (narrow) against a data input (wide), the profile a
/// multiplier sees inside a transform datapath.
StimulusSet make_normal_pair_stimulus(int width, std::size_t count,
                                      std::uint64_t seed, double sigma_a,
                                      double sigma_b);

/// Three-operand (a, b, acc) variant for MAC components.
StimulusSet make_normal_mac_stimulus(int width, std::size_t count,
                                     std::uint64_t seed = 1, double sigma = -1.0);

/// Normal operand pairs whose per-sample magnitude scale is drawn
/// log-uniformly from [2^min_exp, 2^max_exp] — a heavy-tailed mix modeling
/// the wide dynamic range of transform-domain image data. The varying
/// magnitudes excite carry/propagate chains of every length, producing the
/// continuous settling-time spectrum behind the paper's Fig. 1 error growth.
StimulusSet make_mixed_magnitude_stimulus(int width, std::size_t count,
                                          std::uint64_t seed = 1,
                                          double min_exp = 4.0,
                                          double max_exp = 26.0);

/// Accumulator-style adder stimulus: operand `a` is the running sum of the
/// normally distributed samples fed as operand `b` — exactly what an adder
/// inside a DSP datapath sees. Zero crossings of the accumulator excite long
/// carry-propagate chains, which is what makes aged adders fail at speed
/// (paper Fig. 1 reports ~20-28% erroneous additions under worst-case aging).
StimulusSet make_running_sum_stimulus(int width, std::size_t count,
                                      std::uint64_t seed = 1, double sigma = -1.0);

/// Running-sum traffic interleaved with deterministic worst-case carry
/// excitation: every fourth/fifth vector is the pair (a = ones from bit j
/// up, b = 0) then (a unchanged, b = 1 << j), whose single-bit transition
/// launches a clean carry ripple from bit j to the MSB. Random traffic
/// reaches long chains only sporadically; these pairs pin the component's
/// true critical path every few cycles, which is what an in-situ timing
/// monitor needs to observe degradation *before* the application data does.
/// j cycles over [0, width/2], so the pattern keeps exciting near-critical
/// chains even when low operand bits are truncated away.
StimulusSet make_carry_stress_stimulus(int width, std::size_t count,
                                       std::uint64_t seed = 1,
                                       double sigma = -1.0);

/// Converts a recorded multiplier operand stream (e.g. from an IDCT decode,
/// via RecordingBackend) into an (a, b) stimulus set.
StimulusSet stimulus_from_operand_pairs(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& ops, int width,
    std::size_t max_count = 0);

/// Runs the stimulus through a zero-delay simulation of the netlist and
/// returns the per-gate output duty cycles (the measured stress input).
std::vector<double> measure_gate_duty(const Netlist& nl,
                                      const StimulusSet& stimulus);

/// Replays the stimulus *in order* through a zero-delay simulation and
/// returns per-gate toggle activities: settled output transitions between
/// consecutive vectors, divided by the number of vector steps. This is the
/// measured input of the activity-driven aging mechanisms (HCI drift, EM
/// current density) — see StressProfile::with_activity. Needs at least two
/// vectors; glitch toggles are not counted (settled values only).
std::vector<double> measure_gate_activity(const Netlist& nl,
                                          const StimulusSet& stimulus);

}  // namespace aapx
