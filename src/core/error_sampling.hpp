// Measured (sampled) error profiles for approximate components: drives a
// stimulus set through a netlist on the widest available packed backend and
// compares every vector against an exact reference. The sampling
// counterpart of approx/error_bounds.hpp's analytic bounds — benches use it
// to show where the measured profile sits inside the bound.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/stimulus.hpp"
#include "netlist/netlist.hpp"

namespace aapx {

/// Error statistics of an approximate netlist vs. an exact reference over a
/// stimulus set.
struct SampledErrorProfile {
  double error_rate = 0.0;  ///< fraction of operations with any error
  double mean_abs = 0.0;    ///< mean |error| over erroneous operations
  double max_abs = 0.0;
};

/// Runs `stim` through `nl` (wide packed simulation, one eval per lane word
/// of vectors) and compares each vector's decoded output against the
/// reference. `decode` maps the raw LSB-first `output_bus` word to the
/// comparable value (sign wrap, carry-out masking); `expect` maps a
/// stimulus row to the reference value. Statistics accumulate in stimulus
/// order, so the result is bit-identical to a scalar per-vector loop on any
/// backend.
SampledErrorProfile sample_error_profile(
    const Netlist& nl, const StimulusSet& stim, const std::string& output_bus,
    const std::function<std::int64_t(std::uint64_t raw)>& decode,
    const std::function<std::int64_t(const std::vector<std::uint64_t>& row)>&
        expect);

}  // namespace aapx
