#include "core/error_sampling.hpp"

#include <cmath>
#include <stdexcept>

#include "gatesim/packedsim.hpp"
#include "util/stats.hpp"

namespace aapx {

SampledErrorProfile sample_error_profile(
    const Netlist& nl, const StimulusSet& stim, const std::string& output_bus,
    const std::function<std::int64_t(std::uint64_t raw)>& decode,
    const std::function<std::int64_t(const std::vector<std::uint64_t>& row)>&
        expect) {
  if (stim.vectors.empty()) {
    throw std::invalid_argument("sample_error_profile: empty stimulus");
  }
  for (const auto& row : stim.vectors) {
    if (row.size() != stim.buses.size()) {
      throw std::invalid_argument("sample_error_profile: ragged stimulus");
    }
  }
  const auto sim = make_wide_sim(nl);
  const std::size_t lanes = static_cast<std::size_t>(sim->lanes());
  const std::size_t n = stim.vectors.size();
  std::size_t wrong = 0;
  RunningStats abs_err;
  double max_abs = 0.0;
  std::vector<std::uint64_t> lane_values;
  // Lane readout stays in stimulus order, so the RunningStats stream — and
  // with it the reported mean — is independent of the backend's lane width.
  for (std::size_t first = 0; first < n; first += lanes) {
    const std::size_t count = std::min(lanes, n - first);
    lane_values.resize(count);
    for (std::size_t b = 0; b < stim.buses.size(); ++b) {
      for (std::size_t i = 0; i < count; ++i) {
        lane_values[i] = stim.vectors[first + i][b];
      }
      sim->set_bus(stim.buses[b], lane_values);
    }
    sim->eval();
    for (std::size_t i = 0; i < count; ++i) {
      const std::int64_t got =
          decode(sim->bus_value(output_bus, static_cast<int>(i)));
      const std::int64_t want = expect(stim.vectors[first + i]);
      if (got != want) {
        ++wrong;
        const double e = std::abs(static_cast<double>(got - want));
        abs_err.add(e);
        max_abs = std::max(max_abs, e);
      }
    }
  }
  return {static_cast<double>(wrong) / static_cast<double>(n), abs_err.mean(),
          max_abs};
}

}  // namespace aapx
