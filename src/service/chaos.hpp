// Chaos harness for the `aapx serve` robustness contract.
//
// Each scenario abuses a live server the way real deployments get abused —
// dropped connections mid-frame, slow-loris byte trickles, malformed and
// hostile frames, request storms past the queue limit, SIGKILL mid-snapshot
// — and then checks the invariants that define "fault-tolerant" here:
//
//   1. every response that completes is bit-identical to the same request
//      computed cold, single-threaded, in-process;
//   2. the server keeps serving other clients while one misbehaves;
//   3. a killed server's store file always reopens — cold at worst, never
//      corrupt (atomic snapshot writes make torn files impossible);
//   4. overload and deadlines produce typed responses, never hangs.
//
// Scenarios run via `aapx servesim --scenario <name>` and as tier-1 ctest
// entries (tests/service/). They are deliberately library code so the tests
// can also call them in-process.
#pragma once

#include <string>
#include <vector>

namespace aapx::service {

struct ChaosOptions {
  /// Scratch directory for sockets, stores and logs (must exist).
  std::string work_dir = ".";
  /// Path to the aapx binary, for scenarios that spawn a real server
  /// process to SIGKILL (empty skips those process-level checks).
  std::string self_exe;
  bool verbose = false;
};

/// All scenario names, in documentation order.
std::vector<std::string> chaos_scenarios();

/// Runs one scenario; returns 0 on pass, 1 on an invariant violation
/// (details on stderr). Unknown names throw std::runtime_error.
int run_chaos_scenario(const std::string& name, const ChaosOptions& options);

}  // namespace aapx::service
