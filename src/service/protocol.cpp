#include "service/protocol.hpp"

#include <cstring>

#include "engine/binio.hpp"
#include "util/hash.hpp"

namespace aapx::service {
namespace {

using engine::BinReader;
using engine::BinWriter;

[[noreturn]] void malformed(const std::string& what) {
  throw ProtocolError(what);
}

/// Re-throws a codec bounds-check failure as a ProtocolError so the server
/// answers it with a typed error frame instead of treating it as internal.
template <typename Fn>
auto decode_guard(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    malformed(std::string(what) + ": " + e.what());
  }
}

std::int32_t checked_enum(std::int64_t v, std::int64_t max_inclusive,
                          const char* what) {
  if (v < 0 || v > max_inclusive) {
    malformed(std::string("bad ") + what + " value " + std::to_string(v));
  }
  return static_cast<std::int32_t>(v);
}

void encode_spec(BinWriter& w, const ComponentSpec& spec) {
  w.i32(static_cast<std::int32_t>(spec.kind));
  w.i32(spec.width);
  w.i32(spec.truncated_bits);
  w.i32(static_cast<std::int32_t>(spec.adder_arch));
  w.i32(static_cast<std::int32_t>(spec.mult_arch));
  w.i32(static_cast<std::int32_t>(spec.technique));
}

ComponentSpec decode_spec(BinReader& r) {
  ComponentSpec spec;
  spec.kind = static_cast<ComponentKind>(
      checked_enum(r.i32(), static_cast<std::int32_t>(ComponentKind::clamp),
                   "ComponentKind"));
  spec.width = r.i32();
  spec.truncated_bits = r.i32();
  spec.adder_arch = static_cast<AdderArch>(checked_enum(
      r.i32(), static_cast<std::int32_t>(AdderArch::kogge_stone), "AdderArch"));
  spec.mult_arch = static_cast<MultArch>(checked_enum(
      r.i32(), static_cast<std::int32_t>(MultArch::wallace), "MultArch"));
  spec.technique = static_cast<ApproxTechnique>(checked_enum(
      r.i32(), static_cast<std::int32_t>(ApproxTechnique::pp_truncation),
      "ApproxTechnique"));
  if (spec.width < 1 || spec.width > 64) {
    malformed("spec width out of [1, 64]: " + std::to_string(spec.width));
  }
  if (spec.truncated_bits < 0 || spec.truncated_bits >= spec.width) {
    malformed("spec truncated_bits out of [0, width)");
  }
  return spec;
}

StressMode decode_stress_mode(BinReader& r) {
  // measured mode is stimulus-dependent — a remote client cannot ship the
  // simulation traces it would need, so the service rejects it at decode.
  const auto mode = static_cast<StressMode>(checked_enum(
      r.i32(), static_cast<std::int32_t>(StressMode::measured), "StressMode"));
  if (mode == StressMode::measured) {
    malformed("measured stress mode is not servable (stimulus-dependent)");
  }
  return mode;
}

void encode_sta(BinWriter& w, const StaOptions& sta) {
  w.f64(sta.primary_input_slew);
  w.f64(sta.primary_output_load);
}

StaOptions decode_sta(BinReader& r) {
  StaOptions sta;
  sta.primary_input_slew = r.f64();
  sta.primary_output_load = r.f64();
  if (!(sta.primary_input_slew > 0.0) || !(sta.primary_output_load >= 0.0)) {
    malformed("bad StaOptions");
  }
  return sta;
}

double decode_years(BinReader& r) {
  const double years = r.f64();
  // A finite-range check, not just >= 0: NaN years would poison every
  // downstream key comparison, and 1e6 "years" is a hostile CPU sink.
  if (!(years >= 0.0 && years <= 1000.0)) {
    malformed("scenario years out of [0, 1000]");
  }
  return years;
}

Hasher& hash_spec(Hasher& h, const ComponentSpec& spec) {
  h.i32(static_cast<std::int32_t>(spec.kind))
      .i32(spec.width)
      .i32(spec.truncated_bits)
      .i32(static_cast<std::int32_t>(spec.adder_arch))
      .i32(static_cast<std::int32_t>(spec.mult_arch))
      .i32(static_cast<std::int32_t>(spec.technique));
  return h;
}

}  // namespace

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::ping: return "ping";
    case MsgType::characterize: return "characterize";
    case MsgType::aged_delay: return "aged_delay";
    case MsgType::library_query: return "library_query";
    case MsgType::stats: return "stats";
    case MsgType::pong: return "pong";
    case MsgType::ok_surface: return "ok_surface";
    case MsgType::ok_delay: return "ok_delay";
    case MsgType::ok_surfaces: return "ok_surfaces";
    case MsgType::ok_stats: return "ok_stats";
    case MsgType::error: return "error";
    case MsgType::retry_later: return "retry_later";
    case MsgType::cancelled: return "cancelled";
  }
  return "unknown";
}

bool is_request(MsgType type) {
  switch (type) {
    case MsgType::ping:
    case MsgType::characterize:
    case MsgType::aged_delay:
    case MsgType::library_query:
    case MsgType::stats:
      return true;
    default:
      return false;
  }
}

std::string encode_frame(const Frame& frame) {
  BinWriter w;
  w.u32(kFrameMagic);
  w.u32(static_cast<std::uint32_t>(frame.type));
  w.u64(frame.request_id);
  w.u64(frame.trace_id);
  w.u64(frame.payload.size());
  std::string out = w.take();
  out += frame.payload;
  return out;
}

void FrameReader::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
}

void FrameReader::compact() {
  if (pos_ == 0) return;
  buf_.erase(0, pos_);
  pos_ = 0;
}

std::optional<Frame> FrameReader::next() {
  if (buf_.size() - pos_ < kFrameHeaderSize) {
    compact();
    return std::nullopt;
  }
  BinReader r(std::string_view(buf_).substr(pos_));
  const std::uint32_t magic = r.u32();
  if (magic != kFrameMagic) malformed("bad frame magic");
  const std::uint32_t raw_type = r.u32();
  const std::uint64_t request_id = r.u64();
  const std::uint64_t trace_id = r.u64();
  const std::uint64_t payload_size = r.u64();
  // The ceiling check happens here, while only the 32 header bytes are
  // buffered — a hostile 2^60 length prefix is rejected before it can
  // drive any allocation or make us wait for bytes that never come.
  if (payload_size > max_payload_) {
    malformed("frame payload " + std::to_string(payload_size) +
              " exceeds limit " + std::to_string(max_payload_));
  }
  const char* name = to_string(static_cast<MsgType>(raw_type));
  if (std::strcmp(name, "unknown") == 0) {
    malformed("unknown message type " + std::to_string(raw_type));
  }
  if (buf_.size() - pos_ < kFrameHeaderSize + payload_size) {
    compact();
    return std::nullopt;  // header validated; wait for the payload bytes
  }
  Frame frame;
  frame.type = static_cast<MsgType>(raw_type);
  frame.request_id = request_id;
  frame.trace_id = trace_id;
  frame.payload = buf_.substr(pos_ + kFrameHeaderSize,
                              static_cast<std::size_t>(payload_size));
  pos_ += kFrameHeaderSize + static_cast<std::size_t>(payload_size);
  // Amortized-O(1) mid-stream compaction: once the consumed prefix is at
  // least as large as the live tail, erasing it moves fewer bytes than it
  // frees — a connection streaming back-to-back frames stays bounded by
  // one frame plus one recv chunk instead of accreting every answered one.
  if (pos_ >= buf_.size() - pos_) compact();
  return frame;
}

// --- characterize -----------------------------------------------------------

std::string encode_request(const CharacterizeRequest& req) {
  BinWriter w;
  encode_spec(w, req.spec);
  w.u64(req.scenarios.size());
  for (const AgingScenario& s : req.scenarios) {
    w.i32(static_cast<std::int32_t>(s.mode));
    w.f64(s.years);
  }
  w.i32(req.min_precision);
  w.i32(req.precision_step);
  encode_sta(w, req.sta);
  w.u32(req.deadline_ms);
  return w.take();
}

CharacterizeRequest decode_characterize_request(const std::string& payload) {
  return decode_guard("characterize request", [&] {
    BinReader r(payload);
    CharacterizeRequest req;
    req.spec = decode_spec(r);
    if (req.spec.truncated_bits != 0) {
      malformed("characterize base spec must be full precision");
    }
    const std::uint64_t n = r.count(r.u64(), 12);  // i32 mode + f64 years
    if (n > 64) malformed("too many scenarios: " + std::to_string(n));
    req.scenarios.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      AgingScenario s;
      s.mode = decode_stress_mode(r);
      s.years = decode_years(r);
      req.scenarios.push_back(s);
    }
    req.min_precision = r.i32();
    req.precision_step = r.i32();
    if (req.min_precision < 1 || req.min_precision > req.spec.width) {
      malformed("min_precision out of [1, width]");
    }
    if (req.precision_step < 1 || req.precision_step > req.spec.width) {
      malformed("precision_step out of [1, width]");
    }
    req.sta = decode_sta(r);
    req.deadline_ms = r.u32();
    r.expect_end();
    return req;
  });
}

std::uint64_t CharacterizeRequest::dedup_key() const {
  Hasher h;
  h.str("serve.characterize");
  hash_spec(h, spec);
  h.u64(scenarios.size());
  for (const AgingScenario& s : scenarios) {
    h.i32(static_cast<std::int32_t>(s.mode)).f64(s.years);
  }
  h.i32(min_precision).i32(precision_step);
  h.f64(sta.primary_input_slew).f64(sta.primary_output_load);
  // deadline_ms deliberately excluded: identical work under different
  // deadlines dedups onto one computation.
  return h.digest();
}

// --- aged_delay -------------------------------------------------------------

std::string encode_request(const AgedDelayRequest& req) {
  BinWriter w;
  encode_spec(w, req.spec);
  w.i32(static_cast<std::int32_t>(req.mode));
  w.f64(req.years);
  encode_sta(w, req.sta);
  w.u32(req.deadline_ms);
  return w.take();
}

AgedDelayRequest decode_aged_delay_request(const std::string& payload) {
  return decode_guard("aged_delay request", [&] {
    BinReader r(payload);
    AgedDelayRequest req;
    req.spec = decode_spec(r);
    req.mode = decode_stress_mode(r);
    req.years = decode_years(r);
    req.sta = decode_sta(r);
    req.deadline_ms = r.u32();
    r.expect_end();
    return req;
  });
}

std::uint64_t AgedDelayRequest::dedup_key() const {
  Hasher h;
  h.str("serve.aged_delay");
  hash_spec(h, spec);
  h.i32(static_cast<std::int32_t>(mode)).f64(years);
  h.f64(sta.primary_input_slew).f64(sta.primary_output_load);
  return h.digest();
}

// --- library_query ----------------------------------------------------------

std::string encode_request(const LibraryQueryRequest& req) {
  BinWriter w;
  w.i32(req.kind);
  w.i32(req.width);
  return w.take();
}

LibraryQueryRequest decode_library_query_request(const std::string& payload) {
  return decode_guard("library_query request", [&] {
    BinReader r(payload);
    LibraryQueryRequest req;
    req.kind = r.i32();
    if (req.kind < -1 ||
        req.kind > static_cast<std::int32_t>(ComponentKind::clamp)) {
      malformed("bad ComponentKind filter");
    }
    req.width = r.i32();
    if (req.width < 0 || req.width > 64) malformed("bad width filter");
    r.expect_end();
    return req;
  });
}

// --- responses --------------------------------------------------------------

std::string encode_surface_response(const engine::SurfacePayload& p) {
  return engine::encode_surface_payload(p);
}

engine::SurfacePayload decode_surface_response(const std::string& payload) {
  return decode_guard("surface response",
                      [&] { return engine::decode_surface_payload(payload); });
}

std::string encode_surfaces_response(
    const std::vector<engine::SurfacePayload>& surfaces) {
  BinWriter w;
  w.u64(surfaces.size());
  for (const engine::SurfacePayload& p : surfaces) {
    w.str(engine::encode_surface_payload(p));
  }
  return w.take();
}

std::vector<engine::SurfacePayload> decode_surfaces_response(
    const std::string& payload) {
  return decode_guard("surfaces response", [&] {
    BinReader r(payload);
    const std::uint64_t n = r.count(r.u64(), 8);
    std::vector<engine::SurfacePayload> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      out.push_back(engine::decode_surface_payload(r.str()));
    }
    r.expect_end();
    return out;
  });
}

std::string encode_delay_response(const DelayResponse& resp) {
  BinWriter w;
  w.f64(resp.delay_ps);
  return w.take();
}

DelayResponse decode_delay_response(const std::string& payload) {
  return decode_guard("delay response", [&] {
    BinReader r(payload);
    DelayResponse resp;
    resp.delay_ps = r.f64();
    r.expect_end();
    return resp;
  });
}

std::string encode_error_response(const ErrorResponse& resp) {
  BinWriter w;
  w.str(resp.message);
  return w.take();
}

ErrorResponse decode_error_response(const std::string& payload) {
  return decode_guard("error response", [&] {
    BinReader r(payload);
    ErrorResponse resp;
    resp.message = r.str();
    r.expect_end();
    return resp;
  });
}

std::string encode_retry_later_response(const RetryLaterResponse& resp) {
  BinWriter w;
  w.u32(resp.retry_after_ms);
  return w.take();
}

RetryLaterResponse decode_retry_later_response(const std::string& payload) {
  return decode_guard("retry_later response", [&] {
    BinReader r(payload);
    RetryLaterResponse resp;
    resp.retry_after_ms = r.u32();
    r.expect_end();
    return resp;
  });
}

std::string encode_cancelled_response(const CancelledResponse& resp) {
  BinWriter w;
  w.str(resp.reason);
  return w.take();
}

CancelledResponse decode_cancelled_response(const std::string& payload) {
  return decode_guard("cancelled response", [&] {
    BinReader r(payload);
    CancelledResponse resp;
    resp.reason = r.str();
    r.expect_end();
    return resp;
  });
}

// --- stats ------------------------------------------------------------------

std::string encode_stats_response(const StatsResponse& resp) {
  BinWriter w;
  w.u64(resp.connections);
  w.u64(resp.live_connections);
  w.u64(resp.requests);
  w.u64(resp.completed);
  w.u64(resp.shed);
  w.u64(resp.deduped);
  w.u64(resp.cancelled);
  w.u64(resp.protocol_errors);
  w.u64(resp.snapshots);
  w.u64(resp.queue_depth);
  w.u64(resp.inflight);
  w.f64(resp.uptime_s);
  w.f64(resp.snapshot_age_s);
  w.u64(resp.ops.size());
  for (const StatsResponse::OpLatency& op : resp.ops) {
    w.u32(op.op);
    w.u64(op.count);
    w.f64(op.sum_us);
    w.f64(op.min_us);
    w.f64(op.max_us);
    w.u64(op.buckets.size());
    for (const auto& [index, n] : op.buckets) {
      w.i32(index);
      w.u64(n);
    }
  }
  w.u64(resp.slow.size());
  for (const StatsResponse::SlowRequest& s : resp.slow) {
    w.u64(s.seq);
    w.u32(s.op);
    w.u64(s.trace_id);
    w.f64(s.latency_us);
  }
  w.u64(resp.counters.size());
  for (const auto& [name, value] : resp.counters) {
    w.str(name);
    w.u64(value);
  }
  return w.take();
}

StatsResponse decode_stats_response(const std::string& payload) {
  return decode_guard("stats response", [&] {
    BinReader r(payload);
    StatsResponse resp;
    resp.connections = r.u64();
    resp.live_connections = r.u64();
    resp.requests = r.u64();
    resp.completed = r.u64();
    resp.shed = r.u64();
    resp.deduped = r.u64();
    resp.cancelled = r.u64();
    resp.protocol_errors = r.u64();
    resp.snapshots = r.u64();
    resp.queue_depth = r.u64();
    resp.inflight = r.u64();
    resp.uptime_s = r.f64();
    resp.snapshot_age_s = r.f64();
    const std::uint64_t n_ops = r.count(r.u64(), 40);
    if (n_ops > 32) malformed("too many op histograms");
    resp.ops.reserve(n_ops);
    for (std::uint64_t i = 0; i < n_ops; ++i) {
      StatsResponse::OpLatency op;
      op.op = r.u32();
      op.count = r.u64();
      op.sum_us = r.f64();
      op.min_us = r.f64();
      op.max_us = r.f64();
      const std::uint64_t n_buckets = r.count(r.u64(), 12);
      if (n_buckets > 64) malformed("too many histogram buckets");
      op.buckets.reserve(n_buckets);
      std::int32_t prev = -1;
      for (std::uint64_t b = 0; b < n_buckets; ++b) {
        const std::int32_t index = r.i32();
        if (index <= prev || index >= 64) {
          malformed("histogram bucket indices must be ascending in [0, 64)");
        }
        prev = index;
        op.buckets.emplace_back(index, r.u64());
      }
      resp.ops.push_back(std::move(op));
    }
    const std::uint64_t n_slow = r.count(r.u64(), 28);
    if (n_slow > 256) malformed("too many slow-request entries");
    resp.slow.reserve(n_slow);
    for (std::uint64_t i = 0; i < n_slow; ++i) {
      StatsResponse::SlowRequest s;
      s.seq = r.u64();
      s.op = r.u32();
      s.trace_id = r.u64();
      s.latency_us = r.f64();
      resp.slow.push_back(s);
    }
    const std::uint64_t n_counters = r.count(r.u64(), 12);
    if (n_counters > 4096) malformed("too many registry counters");
    resp.counters.reserve(n_counters);
    for (std::uint64_t i = 0; i < n_counters; ++i) {
      std::string name = r.str();
      const std::uint64_t value = r.u64();
      resp.counters.emplace_back(std::move(name), value);
    }
    r.expect_end();
    return resp;
  });
}

}  // namespace aapx::service
