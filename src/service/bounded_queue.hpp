// Bounded MPMC work queue — the server's explicit backpressure point.
//
// The capacity is a hard admission limit, not a hint: try_push() never
// blocks and never grows the queue, it simply refuses when full, and the
// caller (a connection reader) turns that refusal into a typed retry_later
// response. An overloaded server therefore answers every request — with
// work, or with "not now, back off N ms" — and can never wedge a client on
// an unbounded internal backlog. pop() blocks; close() wakes every popper,
// and already-queued items still drain after close (the graceful-shutdown
// path wants queued requests finished, not dropped).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace aapx::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission. False when full or closed — the caller sheds
  /// the load explicitly instead of waiting.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the next item. nullopt once the queue is closed *and*
  /// drained — workers exit only after finishing the backlog.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace aapx::service
