#include "service/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace aapx::service {
namespace {

constexpr std::string_view kUnixPrefix = "unix:";
constexpr std::string_view kTcpPrefix = "tcp:";

bool parse_tcp_port(std::string_view text, int* port, std::string* err) {
  if (text.empty() || text.size() > 5) {
    if (err != nullptr) *err = "bad tcp port '" + std::string(text) + "'";
    return false;
  }
  int value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      if (err != nullptr) *err = "bad tcp port '" + std::string(text) + "'";
      return false;
    }
    value = value * 10 + (c - '0');
  }
  if (value > 65535) {
    if (err != nullptr) *err = "tcp port out of range";
    return false;
  }
  *port = value;
  return true;
}

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

int make_unix_addr(const std::string& path, sockaddr_un* addr,
                   std::string* err) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    if (err != nullptr) *err = "unix socket path empty or too long";
    return -1;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return 0;
}

}  // namespace

bool valid_endpoint(const std::string& spec, std::string* err) {
  if (spec.rfind(kUnixPrefix, 0) == 0) {
    sockaddr_un addr;
    return make_unix_addr(spec.substr(kUnixPrefix.size()), &addr, err) == 0;
  }
  if (spec.rfind(kTcpPrefix, 0) == 0) {
    int port = 0;
    return parse_tcp_port(spec.substr(kTcpPrefix.size()), &port, err);
  }
  if (err != nullptr) {
    *err = "endpoint must be unix:<path> or tcp:<port>, got '" + spec + "'";
  }
  return false;
}

int listen_endpoint(const std::string& spec, std::string* resolved,
                    std::string* err) {
  if (spec.rfind(kUnixPrefix, 0) == 0) {
    const std::string path = spec.substr(kUnixPrefix.size());
    sockaddr_un addr;
    if (make_unix_addr(path, &addr, err) != 0) return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      if (err != nullptr) *err = errno_string("socket");
      return -1;
    }
    // A stale socket file from a SIGKILLed predecessor would make bind fail
    // forever; connect() on it distinguishes live from stale, but for a
    // path the caller chose we take the simple route the chaos harness
    // needs: remove and rebind.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 64) != 0) {
      if (err != nullptr) *err = errno_string("bind/listen");
      ::close(fd);
      return -1;
    }
    if (resolved != nullptr) *resolved = spec;
    return fd;
  }
  if (spec.rfind(kTcpPrefix, 0) == 0) {
    int port = 0;
    if (!parse_tcp_port(spec.substr(kTcpPrefix.size()), &port, err)) return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (err != nullptr) *err = errno_string("socket");
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 64) != 0) {
      if (err != nullptr) *err = errno_string("bind/listen");
      ::close(fd);
      return -1;
    }
    if (resolved != nullptr) {
      socklen_t len = sizeof(addr);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
        *resolved = "tcp:" + std::to_string(ntohs(addr.sin_port));
      } else {
        *resolved = spec;
      }
    }
    return fd;
  }
  if (err != nullptr) {
    *err = "endpoint must be unix:<path> or tcp:<port>, got '" + spec + "'";
  }
  return -1;
}

int connect_endpoint(const std::string& spec, std::string* err) {
  if (spec.rfind(kUnixPrefix, 0) == 0) {
    sockaddr_un addr;
    if (make_unix_addr(spec.substr(kUnixPrefix.size()), &addr, err) != 0) {
      return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      if (err != nullptr) *err = errno_string("socket");
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (err != nullptr) *err = errno_string("connect");
      ::close(fd);
      return -1;
    }
    return fd;
  }
  if (spec.rfind(kTcpPrefix, 0) == 0) {
    int port = 0;
    if (!parse_tcp_port(spec.substr(kTcpPrefix.size()), &port, err)) return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (err != nullptr) *err = errno_string("socket");
      return -1;
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (err != nullptr) *err = errno_string("connect");
      ::close(fd);
      return -1;
    }
    return fd;
  }
  if (err != nullptr) {
    *err = "endpoint must be unix:<path> or tcp:<port>, got '" + spec + "'";
  }
  return -1;
}

bool send_all(int fd, std::string_view bytes, int timeout_ms) {
  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const auto n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                          MSG_NOSIGNAL | (bounded ? MSG_DONTWAIT : 0));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (bounded && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // The peer's buffer is full: wait for writability, but only up to
        // the remaining budget — a non-draining peer is an error, not a
        // reason to block a writer thread forever.
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return false;
        const int remaining_ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count() +
            1);
        pollfd pfd{fd, POLLOUT, 0};
        const int rc = ::poll(&pfd, 1, remaining_ms);
        if (rc < 0 && errno == EINTR) continue;
        if (rc <= 0) return false;  // timeout or poll error
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

long recv_some(int fd, char* buf, std::size_t n) {
  while (true) {
    const auto got = ::recv(fd, buf, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return static_cast<long>(got);
  }
}

int wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

void unlink_endpoint(const std::string& spec) {
  if (spec.rfind(kUnixPrefix, 0) == 0) {
    ::unlink(spec.c_str() + kUnixPrefix.size());
  }
}

}  // namespace aapx::service
