// Client side of the `aapx serve` protocol — both the `aapx client` CLI and
// the in-process tests/benches speak through this class.
//
// Fault-tolerance contract: one call() is a *reliable* request —
//   * transport failure (server restarting, connection dropped mid-frame)
//     reconnects and resends after an exponential backoff with
//     deterministic jitter,
//   * a retry_later response (server backpressure) backs off by at least
//     the server's hint before resending,
//   * error / cancelled responses are terminal: the server made a decision,
//     retrying wouldn't change it, so the outcome is reported to the
//     caller instead,
//   * a wedged server (accepts, never answers) is bounded by a response
//     timeout — deadline_ms + deadline_margin_ms for deadline-carrying
//     requests, response_timeout_ms otherwise — and treated as a transport
//     failure eligible for retry.
// Retries are bounded by max_attempts; the final failure reason is always
// a human-readable string, never a hang.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/persist.hpp"
#include "service/protocol.hpp"

namespace aapx::service {

struct ClientOptions {
  int max_attempts = 8;
  std::uint32_t base_backoff_ms = 10;
  std::uint32_t max_backoff_ms = 2000;
  /// Jitter stream seed — deterministic, so test schedules reproduce.
  std::uint64_t jitter_seed = 1;
  /// Ceiling on one attempt's wait for a response when the request carries
  /// no deadline; 0 = wait forever. Expiry is a retryable transport
  /// failure, so a wedged server cannot hang the client indefinitely.
  std::uint32_t response_timeout_ms = 60000;
  /// Slack added to a request's deadline_ms for its attempt timeout: the
  /// server should answer `cancelled` by then, so anything later means the
  /// server is wedged, not slow.
  std::uint32_t deadline_margin_ms = 2000;
};

/// Outcome of one reliable call. `ok` with the payload frame, or a terminal
/// failure (`cancelled` true when the server answered `cancelled`).
struct CallResult {
  bool ok = false;
  bool cancelled = false;
  std::string error;  ///< terminal reason when !ok
  Frame frame;        ///< the ok_* response when ok
};

class ServiceClient {
 public:
  explicit ServiceClient(std::string endpoint, ClientOptions options = {});
  ~ServiceClient();
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// One reliable request/response round trip (see contract above).
  /// `deadline_ms` is the request's server-side budget when it carries one
  /// (0 = none); it sizes the per-attempt response timeout.
  CallResult call(MsgType type, const std::string& payload,
                  std::uint32_t deadline_ms = 0);

  bool ping(std::string* err = nullptr);

  /// Characterize via the service; nullopt with `err` filled on terminal
  /// failure. The returned payload is the store codec verbatim, so a
  /// decoded surface is bit-identical to a locally computed one.
  std::optional<engine::SurfacePayload> characterize(
      const CharacterizeRequest& req, std::string* err = nullptr);

  std::optional<double> aged_delay(const AgedDelayRequest& req,
                                   std::string* err = nullptr);

  std::optional<std::vector<engine::SurfacePayload>> library_query(
      const LibraryQueryRequest& req, std::string* err = nullptr);

  /// The server's operational stats snapshot (the in-band scrape).
  std::optional<StatsResponse> stats(std::string* err = nullptr);

  /// Attempts beyond the first across all calls (retry observability).
  std::uint64_t retries() const noexcept { return retries_; }

  /// Forces the trace id stamped on subsequent calls (0 = back to the
  /// default: one deterministic id per logical call, shared by all of the
  /// call's retry attempts, so server-side spans of every attempt join
  /// under one id).
  void set_trace_id(std::uint64_t id) noexcept { forced_trace_id_ = id; }
  /// The trace id the most recent call() stamped (0 = none yet).
  std::uint64_t last_trace_id() const noexcept { return last_trace_id_; }

  void disconnect();

 private:
  bool ensure_connected(std::string* err);
  /// Sends `frame` and reads frames until the response with its id arrives
  /// or `timeout_ms` elapses (0 = no bound). False on transport failure or
  /// timeout (caller reconnects and retries).
  bool roundtrip(const Frame& frame, Frame* response, std::uint32_t timeout_ms,
                 std::string* err);
  std::uint32_t next_backoff_ms(int attempt, std::uint32_t server_hint_ms);

  std::string endpoint_;
  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t jitter_state_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t forced_trace_id_ = 0;
  std::uint64_t last_trace_id_ = 0;
  std::uint64_t trace_counter_ = 0;
};

}  // namespace aapx::service
