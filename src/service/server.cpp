#include "service/server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "core/characterizer.hpp"
#include "engine/design_store.hpp"
#include "engine/persist.hpp"
#include "obs/expo.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/runlog.hpp"
#include "obs/trace.hpp"
#include "service/bounded_queue.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"

namespace aapx::service {
namespace {

/// One accepted client. The reader thread and any worker finishing a job
/// for this client both write frames; the mutex serializes them so frames
/// never interleave. shutdown() (not close()) tears the socket down while
/// references remain — the fd itself closes with the last shared_ptr, so a
/// worker can never write into a recycled descriptor.
struct Connection {
  Connection(int fd_in, int write_timeout_ms_in)
      : fd(fd_in), write_timeout_ms(write_timeout_ms_in) {}
  ~Connection() { close_fd(fd); }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool send_frame(const Frame& frame) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (!alive.load(std::memory_order_relaxed)) return false;
    if (!send_all(fd, encode_frame(frame), write_timeout_ms)) {
      // Peer vanished mid-response or stopped draining its socket (the
      // chaos harness does both on purpose): mark dead so later responses
      // stop trying, and shut the socket down so the reader thread wakes
      // and the connection can be reaped.
      alive.store(false, std::memory_order_relaxed);
      ::shutdown(fd, SHUT_RDWR);
      return false;
    }
    return true;
  }

  const int fd;
  const int write_timeout_ms;
  std::mutex write_mutex;
  std::atomic<bool> alive{true};
  /// Set by the reader thread on exit; the acceptor reaps done connections.
  std::atomic<bool> reader_done{false};
};

using ConnPtr = std::shared_ptr<Connection>;

/// Streams completed request span trees to a Chrome trace file in the JSON
/// *array* format — `[\n{event},\n{event},...` — which Perfetto and
/// chrome://tracing accept without a closing bracket, so the file is valid
/// at every instant and rotation is a plain rename. Each span becomes one
/// 'X' (complete) event on tid = request sequence, carrying the client's
/// trace id in args — load the client-side trace next to this file and the
/// shared ids join retry attempts to the server work they caused.
class RequestTraceWriter {
 public:
  bool open(const std::string& path, std::size_t rotate_bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    path_ = path;
    rotate_bytes_ = std::max<std::size_t>(rotate_bytes, 4096);
    return open_locked();
  }

  bool active() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return os_.has_value();
  }

  void append(std::uint64_t seq, std::uint64_t trace_id, const char* op,
              double start_us, double latency_us,
              const std::vector<obs::CapturedSpan>& spans) {
    std::ostringstream line;
    const std::string args = ",\"args\":{\"trace\":" + std::to_string(trace_id) +
                             ",\"seq\":" + std::to_string(seq) + "}";
    const std::string tid = std::to_string(seq);
    line << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
         << ",\"ts\":" << obs::json_num(start_us)
         << ",\"dur\":" << obs::json_num(latency_us) << ",\"name\":\""
         << op << "\"" << args << "},\n";
    for (const obs::CapturedSpan& s : spans) {
      if (s.dur_us < 0.0) continue;  // sink died mid-span; cannot happen here
      line << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
           << ",\"ts\":" << obs::json_num(start_us + s.start_us)
           << ",\"dur\":" << obs::json_num(s.dur_us) << ",\"name\":\""
           << obs::json_escape(s.name) << "\"" << args << "},\n";
    }
    const std::string text = line.str();
    std::lock_guard<std::mutex> lock(mutex_);
    if (!os_.has_value()) return;
    *os_ << text;
    bytes_ += text.size();
    if (bytes_ >= rotate_bytes_) {
      os_->flush();
      os_.reset();
      std::rename(path_.c_str(), (path_ + ".1").c_str());
      open_locked();
    }
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (os_.has_value()) os_->flush();
    os_.reset();
  }

 private:
  bool open_locked() {
    os_.emplace(path_, std::ios::trunc);
    if (!*os_) {
      os_.reset();
      return false;
    }
    *os_ << "[\n";
    bytes_ = 2;
    return true;
  }

  mutable std::mutex mutex_;
  std::optional<std::ofstream> os_;
  std::string path_;
  std::size_t rotate_bytes_ = 0;
  std::size_t bytes_ = 0;
};

/// A live connection plus its reader thread, owned by Impl::conns until the
/// reader exits and the acceptor reaps the entry. Workers holding the
/// ConnPtr through a Waiter keep the fd open past reaping, so a drained
/// job's response can never hit a recycled descriptor.
struct ConnEntry {
  ConnPtr conn;
  std::thread reader;
};

struct Waiter {
  ConnPtr conn;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;  ///< echoed on this waiter's response frame
};

/// One admitted unit of work. Deduped requests attach as extra waiters; the
/// job's CancelToken deadline always reflects the *laxest* waiter, so a
/// tight-deadline duplicate can never cancel work a patient client wants.
struct Job {
  MsgType type = MsgType::characterize;
  CharacterizeRequest characterize;
  AgedDelayRequest aged_delay;
  std::uint64_t dedup = 0;
  std::uint64_t seq = 0;  ///< server-wide sequence, names the request log
  std::uint64_t trace_id = 0;  ///< first waiter's correlation id
  std::chrono::steady_clock::time_point received_at{};
  CancelToken token;
  // Waiters and deadline bookkeeping are guarded by the server's inflight
  // mutex (never touched by the executing worker until it takes the job
  // out of the inflight map).
  std::vector<Waiter> waiters;
  bool no_deadline = false;
  std::chrono::steady_clock::time_point laxest_deadline{};
};

using JobPtr = std::shared_ptr<Job>;

}  // namespace

struct Server::Impl {
  Impl(const Context& root, ServerOptions opts)
      : options(std::move(opts)),
        root(&root),
        lib(make_nangate45_like()),
        model(AgingModel{}),
        queue(std::max<std::size_t>(1, options.queue_capacity)),
        lat_characterize(
            root.metrics().histogram("service.latency_us.characterize")),
        lat_aged_delay(
            root.metrics().histogram("service.latency_us.aged_delay")),
        lat_library_query(
            root.metrics().histogram("service.latency_us.library_query")),
        queue_wait(root.metrics().histogram("service.queue_wait_us")),
        queue_depth_gauge(root.metrics().gauge("service.queue.depth")),
        deadline_slack_gauge(
            root.metrics().gauge("service.deadline.slack_ms")) {
    options.workers = std::max(1, options.workers);
    lib_fp = root.store().fingerprint(lib);
  }

  ServerOptions options;
  const Context* root;
  const CellLibrary lib;
  const AgingModel model;
  std::uint64_t lib_fp = 0;

  int listen_fd = -1;
  int admin_fd = -1;
  std::atomic<bool> stopping{false};
  std::atomic<bool> started{false};

  BoundedQueue<JobPtr> queue;
  std::mutex inflight_mutex;
  std::map<std::uint64_t, JobPtr> inflight;
  std::atomic<std::uint64_t> next_seq{0};

  std::thread acceptor;
  std::thread admin;
  std::vector<std::thread> workers;
  std::thread snapshotter;
  std::mutex snapshot_mutex;  // wait_for + final save
  std::condition_variable snapshot_cv;

  std::mutex conns_mutex;
  std::vector<ConnEntry> conns;

  std::atomic<std::uint64_t> n_connections{0}, n_requests{0}, n_completed{0},
      n_shed{0}, n_deduped{0}, n_cancelled{0}, n_protocol_errors{0},
      n_snapshots{0};

  // --- telemetry state -------------------------------------------------------
  // Latency histograms and gauges live in the root Context's registry so
  // the admin /metrics exposition picks them up for free; references are
  // resolved once here (registry lookups are name-keyed and mutexed).
  obs::Histogram& lat_characterize;
  obs::Histogram& lat_aged_delay;
  obs::Histogram& lat_library_query;
  obs::Histogram& queue_wait;
  obs::Gauge& queue_depth_gauge;
  obs::Gauge& deadline_slack_gauge;

  const std::chrono::steady_clock::time_point start_time =
      std::chrono::steady_clock::now();
  /// Microseconds from start_time to the last successful snapshot; -1 =
  /// none yet.
  std::atomic<std::int64_t> last_snapshot_us{-1};

  /// Slowest requests, latency-descending, bounded at options.slow_ring.
  std::mutex slow_mutex;
  std::vector<StatsResponse::SlowRequest> slow;

  RequestTraceWriter trace_writer;

  double us_since_start(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double, std::micro>(tp - start_time).count();
  }

  obs::Histogram& latency_histogram(MsgType type) {
    switch (type) {
      case MsgType::aged_delay: return lat_aged_delay;
      case MsgType::library_query: return lat_library_query;
      default: return lat_characterize;
    }
  }

  /// Admission-to-response accounting shared by worker jobs and the inline
  /// library_query path: per-op histogram, slow-request ring.
  void record_latency(MsgType type, std::uint64_t seq, std::uint64_t trace_id,
                      double latency_us) {
    latency_histogram(type).observe(latency_us);
    if (options.slow_ring == 0) return;
    std::lock_guard<std::mutex> lock(slow_mutex);
    if (slow.size() >= options.slow_ring &&
        latency_us <= slow.back().latency_us) {
      return;
    }
    StatsResponse::SlowRequest entry;
    entry.seq = seq;
    entry.op = static_cast<std::uint32_t>(type);
    entry.trace_id = trace_id;
    entry.latency_us = latency_us;
    const auto it = std::upper_bound(
        slow.begin(), slow.end(), entry,
        [](const StatsResponse::SlowRequest& a,
           const StatsResponse::SlowRequest& b) {
          return a.latency_us > b.latency_us;
        });
    slow.insert(it, entry);
    if (slow.size() > options.slow_ring) slow.pop_back();
  }

  // --- admission (reader threads) -------------------------------------------

  void handle_request(const ConnPtr& conn, const Frame& frame) {
    if (frame.type == MsgType::ping) {
      conn->send_frame({MsgType::pong, frame.request_id, frame.trace_id, {}});
      return;
    }
    if (frame.type == MsgType::stats) {
      // Answered inline from atomics and registry snapshots, counted
      // nowhere: scraping must reconcile exactly against request tallies
      // and must never contend with the worker queue.
      conn->send_frame({MsgType::ok_stats, frame.request_id, frame.trace_id,
                        encode_stats_response(build_stats())});
      return;
    }
    if (!is_request(frame.type)) {
      throw ProtocolError("client sent a response-type frame");
    }
    try {
      if (frame.type == MsgType::library_query) {
        serve_library_query(conn, frame);
        return;
      }
      admit(conn, frame);
    } catch (const ProtocolError& e) {
      // A malformed *payload* gets a typed error and the connection lives
      // on; a malformed *frame* (bad magic/length, thrown from FrameReader
      // in the caller) is connection-fatal because resynchronization is
      // impossible.
      n_protocol_errors.fetch_add(1);
      conn->send_frame(
          {MsgType::error, frame.request_id, frame.trace_id,
           encode_error_response({e.what()})});
    }
  }

  void serve_library_query(const ConnPtr& conn, const Frame& frame) {
    const auto received_at = std::chrono::steady_clock::now();
    const LibraryQueryRequest req =
        decode_library_query_request(frame.payload);
    std::vector<engine::SurfacePayload> all = root->store().surface_snapshot();
    std::vector<engine::SurfacePayload> out;
    for (engine::SurfacePayload& p : all) {
      if (req.kind >= 0 &&
          static_cast<std::int32_t>(p.surface.base.kind) != req.kind) {
        continue;
      }
      if (req.width != 0 && p.surface.base.width != req.width) continue;
      out.push_back(std::move(p));
    }
    conn->send_frame({MsgType::ok_surfaces, frame.request_id, frame.trace_id,
                      encode_surfaces_response(out)});
    n_requests.fetch_add(1);
    n_completed.fetch_add(1);
    record_latency(MsgType::library_query, next_seq.fetch_add(1),
                   frame.trace_id,
                   std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - received_at)
                       .count());
  }

  void admit(const ConnPtr& conn, const Frame& frame) {
    JobPtr job = std::make_shared<Job>();
    job->type = frame.type;
    job->trace_id = frame.trace_id;
    job->received_at = std::chrono::steady_clock::now();
    std::uint32_t deadline_ms = 0;
    if (frame.type == MsgType::characterize) {
      job->characterize = decode_characterize_request(frame.payload);
      job->dedup = job->characterize.dedup_key();
      deadline_ms = job->characterize.deadline_ms;
    } else {
      job->aged_delay = decode_aged_delay_request(frame.payload);
      job->dedup = job->aged_delay.dedup_key();
      deadline_ms = job->aged_delay.deadline_ms;
    }
    if (stopping.load()) {
      // Draining: shed instead of queueing, so the backlog only shrinks.
      n_shed.fetch_add(1);
      conn->send_frame({MsgType::retry_later, frame.request_id,
                        frame.trace_id,
                        encode_retry_later_response({options.retry_hint_ms})});
      return;
    }
    const Waiter waiter{conn, frame.request_id, frame.trace_id};
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(inflight_mutex);
      const auto it = inflight.find(job->dedup);
      if (it != inflight.end()) {
        // Identical work already in flight: attach, loosen its deadline to
        // the laxest waiter, pay nothing.
        JobPtr& running = it->second;
        running->waiters.push_back(waiter);
        loosen_deadline(*running, deadline_ms);
        n_requests.fetch_add(1);
        n_deduped.fetch_add(1);
        return;
      }
      job->seq = next_seq.fetch_add(1);
      job->waiters.push_back(waiter);
      if (deadline_ms == 0) {
        job->no_deadline = true;
      } else {
        job->laxest_deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(deadline_ms);
        job->token.set_deadline(job->laxest_deadline);
      }
      // Register before pushing, still under the lock: a worker that pops
      // the job immediately will block on this mutex in execute() until the
      // entry exists, so it can never erase a key we haven't added yet.
      inflight.emplace(job->dedup, job);
      if (!queue.try_push(job)) {
        inflight.erase(job->dedup);
        shed = true;
      }
    }
    if (shed) {
      // Backpressure: the queue refused, the client gets a typed hint —
      // sent strictly outside inflight_mutex, so a shed client that has
      // stopped draining its socket can never stall admission or workers.
      n_shed.fetch_add(1);
      conn->send_frame({MsgType::retry_later, frame.request_id,
                        frame.trace_id,
                        encode_retry_later_response({options.retry_hint_ms})});
      return;
    }
    n_requests.fetch_add(1);
    queue_depth_gauge.update_max(static_cast<double>(queue.size()));
  }

  /// Caller holds inflight_mutex.
  static void loosen_deadline(Job& job, std::uint32_t new_deadline_ms) {
    if (job.no_deadline) return;
    if (new_deadline_ms == 0) {
      job.no_deadline = true;
      job.token.clear_deadline();
      return;
    }
    const auto tp = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(new_deadline_ms);
    if (tp > job.laxest_deadline) {
      job.laxest_deadline = tp;
      job.token.set_deadline(tp);
    }
  }

  // --- execution (worker threads) -------------------------------------------

  void worker_loop() {
    while (auto job = queue.pop()) execute(**job);
  }

  void execute(Job& job) {
    const auto picked_up = std::chrono::steady_clock::now();
    queue_wait.observe(std::chrono::duration<double, std::micro>(
                           picked_up - job.received_at)
                           .count());
    queue_depth_gauge.set(static_cast<double>(queue.size()));
    obs::RunLog log;
    std::uint64_t first_id = 0;
    {
      // job.waiters and the deadline fields are guarded by inflight_mutex
      // until the job leaves the inflight map below (dedup joins may still
      // be appending / loosening).
      std::lock_guard<std::mutex> lock(inflight_mutex);
      if (!job.waiters.empty()) first_id = job.waiters.front().request_id;
      if (!job.no_deadline) {
        // Slack the moment work starts: negative means the deadline
        // already passed while queued (the sweep cancels at first check).
        deadline_slack_gauge.set(std::chrono::duration<double, std::milli>(
                                     job.laxest_deadline - picked_up)
                                     .count());
      }
    }
    if (!options.log_dir.empty()) {
      char name[32];
      std::snprintf(name, sizeof(name), "req_%06llu.jsonl",
                    static_cast<unsigned long long>(job.seq));
      if (log.open(options.log_dir + "/" + name)) {
        obs::JsonWriter m;
        m.field("command", "serve").field("msg", to_string(job.type));
        obs::emit_manifest(log, m);
        obs::JsonWriter r;
        r.field("msg", to_string(job.type)).field("request_id", first_id);
        log.emit("request", r);
      }
    }

    Frame response;
    // The capture sink records this worker thread's span tree for the
    // request-trace stream; it is installed only when request tracing is
    // on, so the steady-state cost stays one thread-local load per Span.
    std::optional<obs::SpanCapture> capture;
    if (trace_writer.active()) capture.emplace(256);
    try {
      response = compute(job, log);
    } catch (const CancelledError& e) {
      response = {MsgType::cancelled, 0, 0,
                  encode_cancelled_response(
                      {stopping.load() ? "shutdown" : "deadline"})};
      if (log.enabled()) {
        obs::JsonWriter w;
        w.field("where", e.what())
            .field("reason", stopping.load() ? "shutdown" : "deadline");
        log.emit("cancelled", w);
      }
    } catch (const std::exception& e) {
      response = {MsgType::error, 0, 0, encode_error_response({e.what()})};
    }
    if (log.enabled() && response.type != MsgType::cancelled) {
      obs::JsonWriter w;
      w.field("msg", to_string(response.type)).field("request_id", first_id);
      log.emit("response", w);
    }
    log.close();

    // Take the job out of flight *before* answering: a duplicate arriving
    // after this point starts a fresh job (probably a pure store hit)
    // instead of attaching to one that already answered.
    std::vector<Waiter> waiters;
    {
      std::lock_guard<std::mutex> lock(inflight_mutex);
      waiters = std::move(job.waiters);
      job.waiters.clear();
      inflight.erase(job.dedup);
    }
    // Latency stops here (send time to N waiters excluded) and is recorded
    // before any response leaves: a client that has the response in hand
    // must already see the whole request — counters AND histograms —
    // reflected in the server's stats, so scrape reconciliation is exact.
    const auto done = std::chrono::steady_clock::now();
    const double latency_us =
        std::chrono::duration<double, std::micro>(done - job.received_at)
            .count();
    record_latency(job.type, job.seq, job.trace_id, latency_us);
    for (const Waiter& w : waiters) {
      if (response.type == MsgType::cancelled) {
        n_cancelled.fetch_add(1);
      } else if (response.type != MsgType::error) {
        n_completed.fetch_add(1);
      }
      response.request_id = w.request_id;
      response.trace_id = w.trace_id;
      w.conn->send_frame(response);
    }
    if (capture.has_value()) {
      trace_writer.append(job.seq, job.trace_id, to_string(job.type),
                          us_since_start(job.received_at), latency_us,
                          capture->spans());
    }
  }

  Frame compute(Job& job, obs::RunLog& log) {
    // The per-request Context: borrows the shared store (every client warms
    // one cache), carries the job's CancelToken down into the sweep, and
    // routes the sweep's run-log records into this request's private file.
    Context::Options copt;
    copt.shared_store = &root->store();
    copt.cancel = &job.token;
    copt.threads = options.sweep_threads;
    copt.runlog = &log;
    const Context ctx(copt);

    if (job.type == MsgType::characterize) {
      const obs::Span span("serve.characterize");
      const CharacterizeRequest& req = job.characterize;
      CharacterizerOptions copts;
      copts.min_precision = req.min_precision;
      copts.precision_step = req.precision_step;
      copts.sta = req.sta;
      const ComponentCharacterizer ch(ctx, lib, model, copts);
      engine::SurfacePayload p;
      p.lib_fp = lib_fp;
      p.params = model.params();
      p.sta = req.sta;
      p.min_precision = req.min_precision;
      p.precision_step = req.precision_step;
      p.scenarios = req.scenarios;
      p.surface = ch.characterize(req.spec, req.scenarios);
      return {MsgType::ok_surface, 0, 0, encode_surface_response(p)};
    }
    const obs::Span span("serve.aged_delay");
    const AgedDelayRequest& req = job.aged_delay;
    ctx.check_cancelled("serve.aged_delay");
    const double delay = ctx.store().aged_sta_delay(lib, req.spec, model,
                                                    req.mode, req.years,
                                                    req.sta);
    return {MsgType::ok_delay, 0, 0, encode_delay_response({delay})};
  }

  // --- connection plumbing --------------------------------------------------

  void reader_loop(const ConnPtr& conn) {
    FrameReader reader(options.max_payload);
    char buf[4096];
    while (true) {
      const int ready = wait_readable(conn->fd, 200);
      if (ready < 0) {
        conn->alive.store(false, std::memory_order_relaxed);
        break;
      }
      if (ready == 0) {
        // Graceful drain: stop reading but leave the connection alive —
        // a worker finishing this client's queued job still delivers its
        // response before stop() tears the socket down.
        if (stopping.load()) break;
        continue;
      }
      const long n = recv_some(conn->fd, buf, sizeof(buf));
      if (n <= 0) {
        conn->alive.store(false, std::memory_order_relaxed);
        break;
      }
      try {
        reader.feed(buf, static_cast<std::size_t>(n));
        while (auto frame = reader.next()) handle_request(conn, *frame);
      } catch (const ProtocolError& e) {
        // Framing is broken and resync is impossible: one diagnostic
        // frame, then an active shutdown so the peer observes EOF (the
        // ConnPtr in `conns` would otherwise hold the fd open until
        // server stop, leaving the client staring at a dead socket).
        n_protocol_errors.fetch_add(1);
        conn->send_frame(
            {MsgType::error, 0, 0, encode_error_response({e.what()})});
        conn->alive.store(false, std::memory_order_relaxed);
        ::shutdown(conn->fd, SHUT_RDWR);
        break;
      }
    }
    // The fd itself closes with the last ConnPtr — a worker holding this
    // connection for a drained job can never write into a recycled fd.
    conn->reader_done.store(true, std::memory_order_release);
  }

  /// Joins exited reader threads and drops their ConnEntry, so a long-
  /// running daemon does not accrete one fd plus one thread stack per
  /// connection ever accepted. Workers delivering a late response still
  /// hold the ConnPtr through their Waiter, so reaping never closes an fd
  /// out from under them.
  void reap_connections() {
    std::lock_guard<std::mutex> lock(conns_mutex);
    auto it = conns.begin();
    while (it != conns.end()) {
      if (it->conn->reader_done.load(std::memory_order_acquire)) {
        it->reader.join();
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  }

  void acceptor_loop() {
    while (!stopping.load()) {
      reap_connections();
      const int ready = wait_readable(listen_fd, 200);
      if (ready <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      auto conn = std::make_shared<Connection>(fd, options.write_timeout_ms);
      n_connections.fetch_add(1);
      std::lock_guard<std::mutex> lock(conns_mutex);
      conns.push_back(
          {conn, std::thread([this, conn] { reader_loop(conn); })});
    }
  }

  void snapshot_loop() {
    std::unique_lock<std::mutex> lock(snapshot_mutex);
    const auto interval = std::chrono::duration<double>(
        options.snapshot_interval_s);
    while (!stopping.load()) {
      snapshot_cv.wait_for(lock, interval,
                           [&] { return stopping.load(); });
      if (stopping.load()) break;
      save_snapshot();
    }
  }

  void save_snapshot() {
    if (options.store_path.empty()) return;
    if (root->store().save(options.store_path)) {
      n_snapshots.fetch_add(1);
      last_snapshot_us.store(
          static_cast<std::int64_t>(
              us_since_start(std::chrono::steady_clock::now())),
          std::memory_order_relaxed);
    }
  }

  // --- telemetry (stats op + admin plane) -----------------------------------

  StatsResponse build_stats() {
    StatsResponse r;
    r.connections = n_connections.load();
    {
      std::lock_guard<std::mutex> lock(conns_mutex);
      r.live_connections = conns.size();
    }
    r.requests = n_requests.load();
    r.completed = n_completed.load();
    r.shed = n_shed.load();
    r.deduped = n_deduped.load();
    r.cancelled = n_cancelled.load();
    r.protocol_errors = n_protocol_errors.load();
    r.snapshots = n_snapshots.load();
    r.queue_depth = queue.size();
    {
      std::lock_guard<std::mutex> lock(inflight_mutex);
      r.inflight = inflight.size();
    }
    const auto now = std::chrono::steady_clock::now();
    r.uptime_s = us_since_start(now) / 1e6;
    const std::int64_t snap_us =
        last_snapshot_us.load(std::memory_order_relaxed);
    r.snapshot_age_s = snap_us < 0
                           ? -1.0
                           : (us_since_start(now) -
                              static_cast<double>(snap_us)) /
                                 1e6;
    const std::pair<MsgType, obs::Histogram&> hists[] = {
        {MsgType::characterize, lat_characterize},
        {MsgType::aged_delay, lat_aged_delay},
        {MsgType::library_query, lat_library_query},
    };
    for (const auto& [type, hist] : hists) {
      StatsResponse::OpLatency op;
      op.op = static_cast<std::uint32_t>(type);
      op.count = hist.count();
      if (op.count == 0) continue;
      op.sum_us = hist.sum();
      op.min_us = hist.min();
      op.max_us = hist.max();
      for (int i = 0; i < obs::Histogram::kBuckets; ++i) {
        const std::uint64_t n = hist.bucket(i);
        if (n > 0) op.buckets.emplace_back(i, n);
      }
      r.ops.push_back(std::move(op));
    }
    {
      std::lock_guard<std::mutex> lock(slow_mutex);
      r.slow = slow;
    }
    r.counters = root->metrics().snapshot().counters;
    return r;
  }

  /// The /metrics snapshot: the root registry plus the server's lifetime
  /// counters and instantaneous gauges as synthetic serve.* series, sorted
  /// back into name order so the exposition stays deterministic.
  obs::MetricsSnapshot admin_snapshot() {
    obs::MetricsSnapshot snap = root->metrics().snapshot();
    const StatsResponse s = build_stats();
    snap.counters.emplace_back("serve.connections", s.connections);
    snap.counters.emplace_back("serve.requests", s.requests);
    snap.counters.emplace_back("serve.completed", s.completed);
    snap.counters.emplace_back("serve.shed", s.shed);
    snap.counters.emplace_back("serve.deduped", s.deduped);
    snap.counters.emplace_back("serve.cancelled", s.cancelled);
    snap.counters.emplace_back("serve.protocol_errors", s.protocol_errors);
    snap.counters.emplace_back("serve.snapshots", s.snapshots);
    auto gauge = [&snap](const char* name, double v) {
      snap.gauges.emplace_back(name, std::make_pair(v, v));
    };
    gauge("serve.live_connections", static_cast<double>(s.live_connections));
    gauge("serve.queue_depth", static_cast<double>(s.queue_depth));
    gauge("serve.inflight", static_cast<double>(s.inflight));
    gauge("serve.uptime_s", s.uptime_s);
    gauge("serve.snapshot_age_s", s.snapshot_age_s);
    std::sort(snap.counters.begin(), snap.counters.end());
    std::sort(snap.gauges.begin(), snap.gauges.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return snap;
  }

  void admin_loop() {
    while (!stopping.load()) {
      const int ready = wait_readable(admin_fd, 200);
      if (ready <= 0) continue;
      const int fd = ::accept(admin_fd, nullptr, nullptr);
      if (fd < 0) continue;
      serve_admin(fd);
      close_fd(fd);
    }
  }

  /// One HTTP/1.0 exchange, served serially on the admin thread: read the
  /// request head (bounded bytes, bounded time), answer, close. Scrapers
  /// are trusted operators on a loopback/unix socket — a slow one delays
  /// the next scrape, never request traffic.
  void serve_admin(int fd) {
    std::string head;
    char buf[1024];
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(1000);
    while (head.find("\r\n") == std::string::npos &&
           head.size() < sizeof(buf)) {
      if (std::chrono::steady_clock::now() >= give_up) return;
      if (wait_readable(fd, 100) <= 0) continue;
      const long n = recv_some(fd, buf, sizeof(buf));
      if (n <= 0) break;
      head.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t eol = head.find("\r\n");
    if (eol == std::string::npos) return;
    const std::string request_line = head.substr(0, eol);
    std::string body, status = "200 OK", content_type = "text/plain";
    if (request_line.rfind("GET /metrics", 0) == 0) {
      const std::string info =
          "endpoint=\"" + obs::prometheus_label_escape(endpoint_for_info) +
          "\"";
      body = obs::prometheus_text(admin_snapshot(), info);
      content_type = "text/plain; version=0.0.4";
    } else if (request_line.rfind("GET /healthz", 0) == 0) {
      body = "ok\n";
    } else {
      status = "404 Not Found";
      body = "not found\n";
    }
    std::string resp = "HTTP/1.0 " + status +
                       "\r\nContent-Type: " + content_type +
                       "\r\nContent-Length: " + std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n" + body;
    send_all(fd, resp, options.write_timeout_ms);
  }

  std::string endpoint_for_info;  ///< resolved serve endpoint, for /metrics
};

Server::Server(const Context& root, ServerOptions options)
    : impl_(std::make_unique<Impl>(root, std::move(options))) {}

Server::~Server() { stop(); }

bool Server::start(std::string* err) {
  impl_->listen_fd = listen_endpoint(impl_->options.listen, &endpoint_, err);
  if (impl_->listen_fd < 0) return false;
  impl_->endpoint_for_info = endpoint_;
  if (!impl_->options.admin.empty()) {
    impl_->admin_fd =
        listen_endpoint(impl_->options.admin, &admin_endpoint_, err);
    if (impl_->admin_fd < 0) {
      close_fd(impl_->listen_fd);
      impl_->listen_fd = -1;
      unlink_endpoint(impl_->options.listen);
      return false;
    }
  }
  if (!impl_->options.request_trace_path.empty()) {
    impl_->trace_writer.open(impl_->options.request_trace_path,
                             impl_->options.request_trace_rotate_bytes);
  }
  impl_->started.store(true);
  impl_->acceptor = std::thread([this] { impl_->acceptor_loop(); });
  if (impl_->admin_fd >= 0) {
    impl_->admin = std::thread([this] { impl_->admin_loop(); });
  }
  for (int i = 0; i < impl_->options.workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
  if (!impl_->options.store_path.empty() &&
      impl_->options.snapshot_interval_s > 0.0) {
    impl_->snapshotter = std::thread([this] { impl_->snapshot_loop(); });
  }
  return true;
}

void Server::stop() {
  if (!impl_->started.exchange(false)) return;
  // 1. Close admission: readers shed new requests, the acceptor exits.
  impl_->stopping.store(true);
  impl_->snapshot_cv.notify_all();
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  if (impl_->admin.joinable()) impl_->admin.join();
  // 2. Drain: close() lets workers finish every queued job, then exit.
  impl_->queue.close();
  for (std::thread& w : impl_->workers) {
    if (w.joinable()) w.join();
  }
  impl_->workers.clear();
  if (impl_->snapshotter.joinable()) impl_->snapshotter.join();
  // 3. Tear down surviving connections (responses for drained jobs are
  // already out; the acceptor has exited, so no new entries can appear).
  std::vector<ConnEntry> entries;
  {
    std::lock_guard<std::mutex> lock(impl_->conns_mutex);
    entries.swap(impl_->conns);
  }
  for (const ConnEntry& e : entries) {
    e.conn->alive.store(false, std::memory_order_relaxed);
    ::shutdown(e.conn->fd, SHUT_RDWR);
  }
  for (ConnEntry& e : entries) {
    if (e.reader.joinable()) e.reader.join();
  }
  entries.clear();
  close_fd(impl_->listen_fd);
  impl_->listen_fd = -1;
  unlink_endpoint(impl_->options.listen);
  if (impl_->admin_fd >= 0) {
    close_fd(impl_->admin_fd);
    impl_->admin_fd = -1;
    unlink_endpoint(impl_->options.admin);
  }
  impl_->trace_writer.close();
  // 4. Final snapshot: the drained store's warmth survives the restart.
  impl_->save_snapshot();
}

void Server::serve_forever() {
  while (!stop_requested_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop();
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections = impl_->n_connections.load();
  {
    std::lock_guard<std::mutex> lock(impl_->conns_mutex);
    s.live_connections = impl_->conns.size();
  }
  s.requests = impl_->n_requests.load();
  s.completed = impl_->n_completed.load();
  s.shed = impl_->n_shed.load();
  s.deduped = impl_->n_deduped.load();
  s.cancelled = impl_->n_cancelled.load();
  s.protocol_errors = impl_->n_protocol_errors.load();
  s.snapshots = impl_->n_snapshots.load();
  return s;
}

StatsResponse Server::stats_response() const { return impl_->build_stats(); }

}  // namespace aapx::service
