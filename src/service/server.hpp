// `aapx serve` — characterization-as-a-service over the DesignStore.
//
// One Server owns one listening socket and one shared DesignStore (the root
// Context's). Each accepted connection gets a reader thread and — for its
// requests — per-request aapx::Contexts that *borrow* the shared store, so
// every client warms one cache and a repeated request is a pure hit. The
// paper's expensive artifact (the aging-induced approximation library) thus
// becomes a long-lived, incrementally-warmed service instead of a
// per-process recomputation.
//
// Failure-containment architecture (the robustness contract of this PR):
//
//   deadline    a request carries deadline_ms; the worker arms a CancelToken
//               the characterizer checks at precision-point grain. Expiry
//               throws CancelledError out of the sweep → typed `cancelled`
//               response. Store insertions are transactional (post-build
//               only), so a cancelled sweep leaves no partial records.
//   overload    admission goes through a BoundedQueue; a full queue is
//               answered with `retry_later` + backoff hint, never a hang.
//   dedup       identical in-flight work (semantic hash, deadline excluded)
//               attaches as a waiter to the running job — N identical
//               storms cost one computation, and the job's deadline loosens
//               to the laxest waiter's.
//   bad frames  FrameReader/decoders reject malformed input before
//               allocation; the connection gets one `error` frame, then
//               closes. Other connections are unaffected.
//   crash       the store snapshots atomically (temp + rename) every
//               snapshot_interval_s and again on graceful stop; a SIGKILL
//               between snapshots loses warmth, never integrity.
//   drain       stop() closes admission (new requests are shed with
//               retry_later), finishes the queued backlog, snapshots, then
//               joins every thread.
//
// Telemetry plane (ISSUE 8): a running server is observable without being
// perturbable. The in-band `stats` op and the optional `--admin` HTTP/1.0
// listener (GET /metrics Prometheus text, GET /healthz) are both answered
// from atomics and registry snapshots on threads that never touch the
// worker queue or any request counter — scraping mid-campaign leaves run
// logs byte-identical. Per-request admission-to-response latency lands in
// per-op log2 histograms, the slowest requests in a bounded top-K ring, and
// (when request tracing is on) each request's span tree streams to a
// rotating Chrome-trace file keyed by the client's trace id.
//
// See docs/ARCHITECTURE.md "Service layer" for the full failure matrix.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "aging/bti_model.hpp"
#include "cell/library.hpp"
#include "engine/context.hpp"
#include "service/protocol.hpp"

namespace aapx::service {

struct ServerOptions {
  /// unix:<path> or tcp:<port> (tcp:0 = ephemeral; see endpoint()).
  std::string listen = "tcp:0";
  /// Worker threads executing requests. >= 1.
  int workers = 2;
  /// Threads each worker's characterization sweep fans out to (per-request
  /// Context worker count). 0 = process default.
  int sweep_threads = 1;
  /// Admission limit: queued-but-unstarted requests beyond this are shed.
  std::size_t queue_capacity = 64;
  /// Backoff hint carried in retry_later responses.
  std::uint32_t retry_hint_ms = 50;
  /// Reject frames with payloads beyond this before buffering them.
  std::uint64_t max_payload = 16ull << 20;
  /// Bounded-time response writes: a peer whose socket buffer stays full
  /// for this long is marked dead and disconnected instead of blocking the
  /// writing thread (readers and workers both write). < 0 = block forever.
  int write_timeout_ms = 5000;
  /// Snapshot target for the shared store; empty = no snapshots.
  std::string store_path;
  /// Periodic snapshot interval; 0 = snapshot only on graceful stop.
  double snapshot_interval_s = 0.0;
  /// Per-request run-log directory (req_<seq>.jsonl); empty = no logs.
  std::string log_dir;
  /// Admin HTTP/1.0 endpoint (unix:<path> or tcp:<port>) answering GET
  /// /metrics (Prometheus text exposition of the root registry plus the
  /// server's own serve.* series) and GET /healthz. Empty = no admin plane.
  std::string admin;
  /// Streams completed request span trees (Chrome trace, JSON array
  /// format) to this path, rotating to <path>.1 at the size cap below.
  /// Empty = request tracing off.
  std::string request_trace_path;
  /// Size cap that triggers request-trace rotation.
  std::size_t request_trace_rotate_bytes = 8ull << 20;
  /// Capacity of the slowest-requests ring reported by the stats op.
  std::size_t slow_ring = 16;
};

class Server {
 public:
  /// `root` supplies the shared DesignStore and the metrics sink; the
  /// server builds against the default cell library and BTI model (the
  /// same configuration every CLI subcommand characterizes with, so served
  /// results are bit-identical to local ones).
  Server(const Context& root, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the acceptor/worker/snapshot threads.
  /// False (with `err` filled) on socket failure.
  bool start(std::string* err);

  /// The concrete endpoint after bind — for tcp:0, the resolved port.
  const std::string& endpoint() const noexcept { return endpoint_; }

  /// The concrete admin endpoint after bind; empty when no admin plane.
  const std::string& admin_endpoint() const noexcept {
    return admin_endpoint_;
  }

  /// Graceful drain: shed new work, finish the backlog, snapshot the
  /// store, join every thread. Idempotent; also runs from ~Server.
  void stop();

  /// Signal-handler hook: requests stop() without doing any of it inline
  /// (async-signal-safe — one atomic store). serve_forever() observes it.
  void request_stop() noexcept { stop_requested_.store(true); }

  /// Runs until request_stop() (i.e. SIGINT/SIGTERM) fires, then stop()s.
  void serve_forever();

  struct Stats {
    std::uint64_t connections = 0;     ///< ever accepted
    std::uint64_t live_connections = 0;  ///< tracked now (not yet reaped)
    std::uint64_t requests = 0;        ///< admitted (queued or deduped)
    std::uint64_t completed = 0;       ///< ok_* responses sent
    std::uint64_t shed = 0;            ///< retry_later responses sent
    std::uint64_t deduped = 0;         ///< waiters attached to in-flight jobs
    std::uint64_t cancelled = 0;       ///< cancelled responses sent
    std::uint64_t protocol_errors = 0; ///< malformed frames / payloads
    std::uint64_t snapshots = 0;       ///< successful store saves
  };
  Stats stats() const;

  /// The full operational snapshot the in-band stats op serves — lifetime
  /// counters, per-op latency histograms, the slow-request ring, registry
  /// counters. Built from atomics and snapshots only; callable any time
  /// between start() and stop() without perturbing request traffic.
  StatsResponse stats_response() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string endpoint_;
  std::string admin_endpoint_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace aapx::service
