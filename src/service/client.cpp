#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/trace.hpp"
#include "service/socket.hpp"
#include "util/hash.hpp"

namespace aapx::service {

ServiceClient::ServiceClient(std::string endpoint, ClientOptions options)
    : endpoint_(std::move(endpoint)),
      options_(options),
      jitter_state_(mix_seed(options.jitter_seed, 0x636c69656e74ULL)) {}

ServiceClient::~ServiceClient() { disconnect(); }

void ServiceClient::disconnect() {
  close_fd(fd_);
  fd_ = -1;
}

bool ServiceClient::ensure_connected(std::string* err) {
  if (fd_ >= 0) return true;
  fd_ = connect_endpoint(endpoint_, err);
  return fd_ >= 0;
}

bool ServiceClient::roundtrip(const Frame& frame, Frame* response,
                              std::uint32_t timeout_ms, std::string* err) {
  const bool bounded = timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  if (!send_all(fd_, encode_frame(frame),
                bounded ? static_cast<int>(timeout_ms) : -1)) {
    if (err != nullptr) *err = "send failed";
    return false;
  }
  FrameReader reader;
  char buf[4096];
  while (true) {
    int wait_ms = -1;
    if (bounded) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        // A wedged server is a transport failure, not a hang: the caller
        // reconnects and retries under backoff like any dropped link.
        if (err != nullptr) {
          *err = "no response within " + std::to_string(timeout_ms) + " ms";
        }
        return false;
      }
      wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count() +
          1);
    }
    const int ready = wait_readable(fd_, wait_ms);
    if (ready < 0) {
      if (err != nullptr) *err = "recv failed";
      return false;
    }
    if (ready == 0) continue;  // the loop head re-checks the deadline
    const long n = recv_some(fd_, buf, sizeof(buf));
    if (n <= 0) {
      if (err != nullptr) *err = n == 0 ? "server closed" : "recv failed";
      return false;
    }
    reader.feed(buf, static_cast<std::size_t>(n));
    while (auto got = reader.next()) {
      // Stale responses (an earlier attempt's id) are skipped, not errors:
      // a resend after a retry_later may race the original's response.
      if (got->request_id != frame.request_id) continue;
      *response = std::move(*got);
      return true;
    }
  }
}

std::uint32_t ServiceClient::next_backoff_ms(int attempt,
                                             std::uint32_t server_hint_ms) {
  // Exponential base_backoff * 2^attempt, capped, then full jitter (uniform
  // in [half, full]) from a deterministic xorshift stream, floored at the
  // server's hint: overlapping client storms decorrelate instead of
  // re-stampeding in lockstep.
  std::uint64_t exp = options_.base_backoff_ms;
  for (int i = 0; i < attempt && exp < options_.max_backoff_ms; ++i) exp *= 2;
  exp = std::min<std::uint64_t>(exp, options_.max_backoff_ms);
  jitter_state_ ^= jitter_state_ << 13;
  jitter_state_ ^= jitter_state_ >> 7;
  jitter_state_ ^= jitter_state_ << 17;
  const std::uint64_t jittered = exp / 2 + jitter_state_ % (exp / 2 + 1);
  return std::max<std::uint32_t>(static_cast<std::uint32_t>(jittered),
                                 server_hint_ms);
}

CallResult ServiceClient::call(MsgType type, const std::string& payload,
                               std::uint32_t deadline_ms) {
  // A deadline-carrying request is answered (`cancelled` at worst) within
  // its own budget by a healthy server, so anything past deadline + margin
  // means the server is wedged; deadline-free requests get the blanket
  // response timeout.
  const std::uint32_t timeout_ms =
      deadline_ms > 0 ? deadline_ms + options_.deadline_margin_ms
                      : options_.response_timeout_ms;
  // One trace id per logical call, shared by every retry attempt: the
  // server tags each attempt's span tree with it, so a Chrome trace shows
  // the retries of this call as one correlated family. Deterministic
  // (seed + call counter) so test schedules reproduce.
  std::uint64_t trace_id = forced_trace_id_ != 0
                               ? forced_trace_id_
                               : mix_seed(options_.jitter_seed ^
                                              0x74726163655f6964ULL,
                                          ++trace_counter_);
  if (trace_id == 0) trace_id = 1;  // 0 means "untraced" on the wire
  last_trace_id_ = trace_id;
  CallResult result;
  std::string last_error = "no attempts made";
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) ++retries_;
    std::uint32_t hint_ms = 0;
    if (ensure_connected(&last_error)) {
      const obs::Span span("client.attempt", trace_id);
      Frame request{type, next_request_id_++, trace_id, payload};
      Frame response;
      if (!roundtrip(request, &response, timeout_ms, &last_error)) {
        // Transport failure — the server may be mid-restart (the chaos
        // harness kills it on purpose). Reconnect fresh next attempt.
        disconnect();
      } else {
        switch (response.type) {
          case MsgType::error:
            result.error = decode_error_response(response.payload).message;
            return result;
          case MsgType::cancelled:
            result.cancelled = true;
            result.error = "cancelled: " +
                           decode_cancelled_response(response.payload).reason;
            return result;
          case MsgType::retry_later:
            hint_ms =
                decode_retry_later_response(response.payload).retry_after_ms;
            last_error = "server overloaded (retry_later)";
            break;
          default:
            result.ok = true;
            result.frame = std::move(response);
            return result;
        }
      }
    }
    if (attempt + 1 < options_.max_attempts) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(next_backoff_ms(attempt, hint_ms)));
    }
  }
  result.error = "gave up after " + std::to_string(options_.max_attempts) +
                 " attempts: " + last_error;
  return result;
}

bool ServiceClient::ping(std::string* err) {
  const CallResult r = call(MsgType::ping, {});
  if (!r.ok && err != nullptr) *err = r.error;
  return r.ok;
}

std::optional<engine::SurfacePayload> ServiceClient::characterize(
    const CharacterizeRequest& req, std::string* err) {
  const CallResult r =
      call(MsgType::characterize, encode_request(req), req.deadline_ms);
  if (!r.ok) {
    if (err != nullptr) *err = r.error;
    return std::nullopt;
  }
  try {
    return decode_surface_response(r.frame.payload);
  } catch (const ProtocolError& e) {
    if (err != nullptr) *err = e.what();
    return std::nullopt;
  }
}

std::optional<double> ServiceClient::aged_delay(const AgedDelayRequest& req,
                                                std::string* err) {
  const CallResult r =
      call(MsgType::aged_delay, encode_request(req), req.deadline_ms);
  if (!r.ok) {
    if (err != nullptr) *err = r.error;
    return std::nullopt;
  }
  try {
    return decode_delay_response(r.frame.payload).delay_ps;
  } catch (const ProtocolError& e) {
    if (err != nullptr) *err = e.what();
    return std::nullopt;
  }
}

std::optional<std::vector<engine::SurfacePayload>> ServiceClient::library_query(
    const LibraryQueryRequest& req, std::string* err) {
  const CallResult r = call(MsgType::library_query, encode_request(req));
  if (!r.ok) {
    if (err != nullptr) *err = r.error;
    return std::nullopt;
  }
  try {
    return decode_surfaces_response(r.frame.payload);
  } catch (const ProtocolError& e) {
    if (err != nullptr) *err = e.what();
    return std::nullopt;
  }
}

std::optional<StatsResponse> ServiceClient::stats(std::string* err) {
  const CallResult r = call(MsgType::stats, {});
  if (!r.ok) {
    if (err != nullptr) *err = r.error;
    return std::nullopt;
  }
  try {
    return decode_stats_response(r.frame.payload);
  } catch (const ProtocolError& e) {
    if (err != nullptr) *err = e.what();
    return std::nullopt;
  }
}

}  // namespace aapx::service
