#include "service/chaos.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "core/characterizer.hpp"
#include "engine/binio.hpp"
#include "engine/context.hpp"
#include "engine/design_store.hpp"
#include "engine/persist.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"

namespace aapx::service {
namespace {

/// An invariant violation; run_chaos_scenario turns it into exit code 1.
struct ChaosFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void require(bool ok, const std::string& what) {
  if (!ok) throw ChaosFailure(what);
}

void note(const ChaosOptions& opts, const std::string& msg) {
  if (opts.verbose) std::fprintf(stderr, "chaos: %s\n", msg.c_str());
}

/// The small, fast request every scenario reuses (4 precision points).
CharacterizeRequest small_request(int width = 6) {
  CharacterizeRequest req;
  req.spec.kind = ComponentKind::adder;
  req.spec.width = width;
  req.spec.adder_arch = AdderArch::ripple;
  req.scenarios = {{StressMode::worst, 10.0}};
  req.min_precision = std::max(1, width - 3);
  req.precision_step = 1;
  return req;
}

/// Invariant 1's reference: the same request computed cold, single-threaded,
/// in a private Context — no store warmth, no server, no concurrency.
ComponentCharacterization cold_surface(const CharacterizeRequest& req) {
  Context::Options copt;
  copt.threads = 1;
  const Context ctx(copt);
  const CellLibrary lib = make_nangate45_like();
  CharacterizerOptions ch_opt;
  ch_opt.min_precision = req.min_precision;
  ch_opt.precision_step = req.precision_step;
  ch_opt.sta = req.sta;
  const ComponentCharacterizer ch(ctx, lib, BtiModel{}, ch_opt);
  return ch.characterize(req.spec, req.scenarios);
}

/// Bit-identical comparison — doubles compared by value equality, which for
/// the determinism contract (same build, same inputs) means same bits.
void require_same_surface(const ComponentCharacterization& got,
                          const ComponentCharacterization& want,
                          const std::string& who) {
  require(got.base == want.base, who + ": base spec differs");
  require(got.points.size() == want.points.size(),
          who + ": point count differs");
  for (std::size_t i = 0; i < got.points.size(); ++i) {
    const PrecisionPoint& g = got.points[i];
    const PrecisionPoint& w = want.points[i];
    require(g.precision == w.precision && g.gates == w.gates &&
                g.fresh_delay == w.fresh_delay && g.area == w.area &&
                g.aged_delay == w.aged_delay,
            who + ": point " + std::to_string(i) +
                " not bit-identical to cold computation");
  }
}

struct TestServer {
  explicit TestServer(ServerOptions opts) : root(), server(root, opts) {
    std::string err;
    if (!server.start(&err)) {
      throw std::runtime_error("chaos: server start failed: " + err);
    }
  }
  Context root;
  Server server;
};

ServerOptions base_options() {
  ServerOptions opts;
  opts.listen = "tcp:0";
  opts.workers = 2;
  opts.sweep_threads = 1;
  return opts;
}

// --- scenario: drop ---------------------------------------------------------
// A client disappears mid-frame; another vanishes right after sending a
// full request (its response hits a dead socket). Well-behaved clients on
// the same server must be unaffected and get bit-identical results.

int scenario_drop(const ChaosOptions& opts) {
  TestServer ts(base_options());
  const CharacterizeRequest req = small_request();

  // Half a frame, then hang up.
  {
    std::string err;
    const int fd = connect_endpoint(ts.server.endpoint(), &err);
    require(fd >= 0, "connect: " + err);
    const std::string bytes =
        encode_frame({MsgType::characterize, 7, 0, encode_request(req)});
    send_all(fd, std::string_view(bytes).substr(0, bytes.size() / 2));
    close_fd(fd);
  }
  // A full request, then hang up before the response arrives.
  {
    std::string err;
    const int fd = connect_endpoint(ts.server.endpoint(), &err);
    require(fd >= 0, "connect: " + err);
    send_all(fd,
             encode_frame({MsgType::characterize, 8, 0, encode_request(req)}));
    close_fd(fd);
  }
  note(opts, "two connections dropped; querying through a healthy client");

  ServiceClient client(ts.server.endpoint());
  std::string err;
  const auto surface = client.characterize(req, &err);
  require(surface.has_value(), "healthy client failed: " + err);
  require_same_surface(surface->surface, cold_surface(req), "drop");
  ts.server.stop();
  return 0;
}

// --- scenario: slowloris ----------------------------------------------------
// One connection trickles a request a byte at a time. The server must keep
// serving everyone else at full speed, and still answer the slow client
// once its frame finally completes.

int scenario_slowloris(const ChaosOptions& opts) {
  TestServer ts(base_options());
  const CharacterizeRequest req = small_request();

  std::string err;
  const int slow_fd = connect_endpoint(ts.server.endpoint(), &err);
  require(slow_fd >= 0, "connect: " + err);
  const std::string slow_bytes = encode_frame({MsgType::ping, 42, 0, {}});

  std::thread trickler([&] {
    for (const char c : slow_bytes) {
      send_all(slow_fd, std::string_view(&c, 1));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Meanwhile: normal requests complete normally.
  ServiceClient client(ts.server.endpoint());
  const ComponentCharacterization want = cold_surface(req);
  for (int i = 0; i < 3; ++i) {
    const auto surface = client.characterize(req, &err);
    require(surface.has_value(), "fast client starved: " + err);
    require_same_surface(surface->surface, want, "slowloris");
  }
  note(opts, "fast client served while slow frame still trickling");

  trickler.join();
  // The slow client's ping must eventually be answered.
  char buf[64];
  FrameReader reader;
  bool got_pong = false;
  while (!got_pong) {
    require(wait_readable(slow_fd, 5000) == 1, "slow client never answered");
    const long n = recv_some(slow_fd, buf, sizeof(buf));
    require(n > 0, "slow client connection died");
    reader.feed(buf, static_cast<std::size_t>(n));
    while (auto frame = reader.next()) {
      require(frame->type == MsgType::pong && frame->request_id == 42,
              "slow client got a wrong response");
      got_pong = true;
    }
  }
  close_fd(slow_fd);
  ts.server.stop();
  return 0;
}

// --- scenario: malformed ----------------------------------------------------
// Hostile frames: garbage magic, an absurd length prefix, a well-framed but
// invalid payload. Framing damage is connection-fatal (one error frame);
// payload damage gets a typed error and the connection lives. The server
// must survive all of it and keep serving.

int scenario_malformed(const ChaosOptions& opts) {
  TestServer ts(base_options());

  const auto expect_error_then_close = [&](const std::string& bytes,
                                           const std::string& what) {
    std::string err;
    const int fd = connect_endpoint(ts.server.endpoint(), &err);
    require(fd >= 0, "connect: " + err);
    send_all(fd, bytes);
    FrameReader reader;
    char buf[512];
    bool got_error = false;
    bool closed = false;
    while (!closed) {
      require(wait_readable(fd, 5000) == 1, what + ": server hung");
      const long n = recv_some(fd, buf, sizeof(buf));
      if (n <= 0) {
        closed = true;
        break;
      }
      reader.feed(buf, static_cast<std::size_t>(n));
      while (auto frame = reader.next()) {
        require(frame->type == MsgType::error, what + ": expected error");
        got_error = true;
      }
    }
    require(got_error, what + ": no error frame before close");
    close_fd(fd);
  };

  expect_error_then_close(std::string(64, '\x5a'), "garbage magic");

  {
    // Valid magic and type, absurd payload length: must be rejected from
    // the 32 header bytes alone, never buffered or allocated.
    engine::BinWriter w;
    w.u32(kFrameMagic);
    w.u32(static_cast<std::uint32_t>(MsgType::characterize));
    w.u64(1);        // request_id
    w.u64(0);        // trace_id
    w.u64(1ull << 60);
    expect_error_then_close(w.take(), "hostile length prefix");
  }

  {
    // Well-framed, invalid payload (width 99): typed error, connection
    // survives and still answers a ping.
    CharacterizeRequest bad = small_request();
    bad.spec.width = 99;
    std::string payload = encode_request(bad);
    std::string err;
    const int fd = connect_endpoint(ts.server.endpoint(), &err);
    require(fd >= 0, "connect: " + err);
    send_all(fd, encode_frame({MsgType::characterize, 5, 0, payload}));
    send_all(fd, encode_frame({MsgType::ping, 6, 0, {}}));
    FrameReader reader;
    char buf[512];
    bool got_error = false;
    bool got_pong = false;
    while (!(got_error && got_pong)) {
      require(wait_readable(fd, 5000) == 1, "bad payload: server hung");
      const long n = recv_some(fd, buf, sizeof(buf));
      require(n > 0, "bad payload: connection closed early");
      reader.feed(buf, static_cast<std::size_t>(n));
      while (auto frame = reader.next()) {
        if (frame->request_id == 5) {
          require(frame->type == MsgType::error,
                  "bad payload: expected typed error");
          got_error = true;
        } else if (frame->request_id == 6) {
          require(frame->type == MsgType::pong, "bad payload: expected pong");
          got_pong = true;
        }
      }
    }
    close_fd(fd);
  }
  note(opts, "three hostile clients handled; verifying server still serves");

  ServiceClient client(ts.server.endpoint());
  const CharacterizeRequest req = small_request();
  std::string err;
  const auto surface = client.characterize(req, &err);
  require(surface.has_value(), "server damaged by malformed input: " + err);
  require_same_surface(surface->surface, cold_surface(req), "malformed");
  require(ts.server.stats().protocol_errors >= 3,
          "protocol errors not counted");
  ts.server.stop();
  return 0;
}

// --- scenario: storm --------------------------------------------------------
// Overload: a tiny queue, one worker, many concurrent clients. Distinct
// requests must shed with retry_later (and complete after client backoff);
// identical requests must dedup onto one computation. Every completed
// response must be bit-identical to its cold reference.

int scenario_storm(const ChaosOptions& opts) {
  ServerOptions sopts = base_options();
  sopts.workers = 1;
  sopts.queue_capacity = 2;
  sopts.retry_hint_ms = 20;
  TestServer ts(sopts);

  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kClients);
  std::vector<ComponentCharacterization> results(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      // Widths 4..9: all distinct, so dedup can't absorb the storm and the
      // 2-slot queue must shed.
      const CharacterizeRequest req = small_request(4 + i);
      ClientOptions copt;
      copt.max_attempts = 64;
      copt.jitter_seed = static_cast<std::uint64_t>(i + 1);
      ServiceClient client(ts.server.endpoint(), copt);
      std::string err;
      const auto surface = client.characterize(req, &err);
      if (!surface.has_value()) {
        errors[i] = err;
        return;
      }
      results[i] = surface->surface;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    require(errors[i].empty(),
            "storm client " + std::to_string(i) + ": " + errors[i]);
    require_same_surface(results[i], cold_surface(small_request(4 + i)),
                         "storm client " + std::to_string(i));
  }
  const Server::Stats mid = ts.server.stats();
  note(opts, "distinct storm done: shed=" + std::to_string(mid.shed));
  require(mid.shed > 0, "6 clients vs 2-slot queue never shed: backpressure "
                        "not exercised");

  // Identical storm: one request from many clients at once must compute
  // once and fan the result out. To make the overlap deterministic (not a
  // race against how fast one computation finishes), first park a slow
  // blocker on the single worker; the identical requests then all arrive
  // while their job is still queued behind it.
  CharacterizeRequest blocker = small_request(32);
  blocker.min_precision = 1;  // 32 points: reliably outlasts six connects
  std::string berr;
  const int blocker_fd = connect_endpoint(ts.server.endpoint(), &berr);
  require(blocker_fd >= 0, "blocker connect: " + berr);
  send_all(blocker_fd, encode_frame({MsgType::characterize, 999, 0,
                                     encode_request(blocker)}));
  // Brief pause so the worker has picked the blocker up — kept much
  // shorter than the blocker's compute time, so it is still running (and
  // the identical job still queued behind it) when the storm fires.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  const CharacterizeRequest same = small_request(10);
  threads.clear();
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ClientOptions copt;
      copt.max_attempts = 64;
      copt.jitter_seed = static_cast<std::uint64_t>(100 + i);
      ServiceClient client(ts.server.endpoint(), copt);
      std::string err;
      const auto surface = client.characterize(same, &err);
      if (!surface.has_value()) {
        errors[i] = err;
        return;
      }
      results[i] = surface->surface;
    });
  }
  for (std::thread& t : threads) t.join();
  const ComponentCharacterization want = cold_surface(same);
  for (int i = 0; i < kClients; ++i) {
    require(errors[i].empty(),
            "identical-storm client " + std::to_string(i) + ": " + errors[i]);
    require_same_surface(results[i], want,
                         "identical-storm client " + std::to_string(i));
  }
  require(ts.server.stats().deduped > 0,
          "identical storm never deduped onto one computation");
  close_fd(blocker_fd);
  ts.server.stop();
  return 0;
}

// --- scenario: kill ---------------------------------------------------------
// Process-level crash-safety: spawn a real `aapx serve` child snapshotting
// at a tight interval, feed it work, SIGKILL it at a different phase each
// round, and require its store file to reopen cleanly every time. Finishes
// with a warm restart: a fresh server on the survivor store still serves
// (and a retrying client rides across the restart gap).

int scenario_kill(const ChaosOptions& opts) {
  require(!opts.self_exe.empty(),
          "kill scenario needs --self-exe (path to the aapx binary)");
  const std::string store =
      opts.work_dir + "/chaos_kill_store.aapx";
  const std::string endpoint =
      "unix:" + opts.work_dir + "/chaos_kill.sock";
  std::filesystem::remove(store);

  const CharacterizeRequest req = small_request();
  constexpr int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    const pid_t pid = ::fork();
    require(pid >= 0, "fork failed");
    if (pid == 0) {
      // Child: immediately exec a real server (fork-without-exec would be
      // unsafe here — the parent has run multithreaded servers already).
      const int devnull = ::open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        ::dup2(devnull, 1);
        ::dup2(devnull, 2);
      }
      ::execl(opts.self_exe.c_str(), opts.self_exe.c_str(), "serve",
              "--listen", endpoint.c_str(), "--store", store.c_str(),
              "--snapshot-interval", "0.02", "--workers", "2",
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    // Wait for the child to listen, give it work, then kill it at a
    // different point in its snapshot cycle each round.
    ServiceClient client(endpoint, {.max_attempts = 40});
    std::string err;
    require(client.ping(&err), "child server never came up: " + err);
    (void)client.characterize(small_request(4 + round), &err);
    std::this_thread::sleep_for(std::chrono::milliseconds(10 + 17 * round));
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    require(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
            "child did not die by SIGKILL");

    // Invariant 3: whatever instant the kill hit, the store file is either
    // absent, the old snapshot or the new one — never torn.
    const engine::StoreFileData data = engine::load_store_file(store);
    if (data.file_found) {
      require(data.header_ok, "round " + std::to_string(round) +
                                  ": store header corrupt after SIGKILL");
      require(data.records_dropped == 0,
              "round " + std::to_string(round) +
                  ": torn records after SIGKILL");
    }
    note(opts, "round " + std::to_string(round) + ": store " +
                   (data.file_found ? "intact" : "absent") + " after SIGKILL");
  }

  // Warm restart: a fresh in-process server opens the survivor store (also
  // cleaning any stale .tmp the kill left) and serves bit-identically. A
  // retrying client issued before the server is up rides the backoff.
  Context::Options ropt;
  ropt.store_path = store;
  Context root(ropt);
  ServerOptions sopts = base_options();
  sopts.listen = endpoint;
  Server server(root, sopts);

  std::string result_err;
  std::optional<engine::SurfacePayload> late;
  std::thread early_client([&] {
    ServiceClient client(endpoint, {.max_attempts = 60});
    late = client.characterize(req, &result_err);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::string err;
  require(server.start(&err), "warm restart failed: " + err);
  early_client.join();
  require(late.has_value(), "client did not survive restart: " + result_err);
  require_same_surface(late->surface, cold_surface(req), "kill/warm-restart");
  require(!std::filesystem::exists(store + ".tmp"),
          "stale .tmp survived DesignStore::open");
  server.stop();
  return 0;
}

// --- scenario: scrape -------------------------------------------------------
// Observability under load: a server with the admin plane enabled takes a
// shedding storm of distinct requests while /metrics, /healthz and the
// in-band stats op are scraped in a tight loop the whole time. Scrape
// latency stays bounded, every completed surface is bit-identical to its
// cold (unscraped, local) reference, the final counters reconcile exactly
// with the client-side tallies through both scrape planes, and a real
// `aapx top --once` against the live server exits clean.

/// One blocking HTTP/1.0 GET against the admin endpoint; returns the whole
/// response (head + body) and the wall time it took.
std::string http_get(const std::string& endpoint, const std::string& path,
                     std::int64_t* latency_us) {
  std::string err;
  const auto t0 = std::chrono::steady_clock::now();
  const int fd = connect_endpoint(endpoint, &err);
  require(fd >= 0, "admin connect: " + err);
  require(send_all(fd, "GET " + path + " HTTP/1.0\r\n\r\n", 5000),
          "admin send failed");
  std::string response;
  char buf[4096];
  while (true) {
    const int ready = wait_readable(fd, 5000);
    require(ready == 1, "admin scrape hung on " + path);
    const long n = recv_some(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  close_fd(fd);
  if (latency_us != nullptr) {
    *latency_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  }
  return response;
}

int scenario_scrape(const ChaosOptions& opts) {
  require(!opts.self_exe.empty(),
          "scrape scenario needs --self-exe (path to the aapx binary)");
  ServerOptions sopts = base_options();
  sopts.workers = 1;
  sopts.queue_capacity = 2;  // small queue: the storm sheds while scraped
  sopts.retry_hint_ms = 20;
  sopts.admin = "tcp:0";
  TestServer ts(sopts);
  require(!ts.server.admin_endpoint().empty(), "admin endpoint not bound");

  // Scraper: hammer all three scrape planes until the storm is done. The
  // stats op is answered inline on the reader thread and the admin plane
  // never touches the worker queue, so none of this may block — each
  // round's latency must stay far below the storm's compute time.
  std::atomic<bool> done{false};
  std::string scrape_error;
  std::uint64_t scrapes = 0;
  std::int64_t worst_us = 0;
  std::thread scraper([&] {
    try {
      ServiceClient stats_client(ts.server.endpoint());
      while (!done.load(std::memory_order_relaxed)) {
        std::int64_t us = 0;
        const std::string metrics =
            http_get(ts.server.admin_endpoint(), "/metrics", &us);
        require(metrics.find("HTTP/1.0 200") != std::string::npos,
                "/metrics not 200");
        require(metrics.find("aapx_serve_requests") != std::string::npos,
                "/metrics missing serve counters");
        worst_us = std::max(worst_us, us);
        const std::string health =
            http_get(ts.server.admin_endpoint(), "/healthz", &us);
        require(health.find("HTTP/1.0 200") != std::string::npos,
                "/healthz not 200");
        worst_us = std::max(worst_us, us);
        const auto t0 = std::chrono::steady_clock::now();
        std::string err;
        const auto s = stats_client.stats(&err);
        require(s.has_value(), "stats op failed mid-storm: " + err);
        worst_us = std::max(
            worst_us, std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
        ++scrapes;
      }
    } catch (const std::exception& e) {
      scrape_error = e.what();
    }
  });

  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kClients);
  std::vector<ComponentCharacterization> results(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      const CharacterizeRequest req = small_request(4 + i);
      ClientOptions copt;
      copt.max_attempts = 64;
      copt.jitter_seed = static_cast<std::uint64_t>(i + 1);
      ServiceClient client(ts.server.endpoint(), copt);
      std::string err;
      const auto surface = client.characterize(req, &err);
      if (!surface.has_value()) {
        errors[i] = err;
        return;
      }
      results[i] = surface->surface;
    });
  }
  for (std::thread& t : threads) t.join();
  done.store(true);
  scraper.join();
  require(scrape_error.empty(), "scraper: " + scrape_error);
  require(scrapes > 0, "scraper never completed a round");
  // "Bounded" concretely: every round finished inside the socket waits'
  // 5 s budget; anything near it means a scrape plane queued behind work.
  require(worst_us < 5'000'000, "scrape latency unbounded: " +
                                    std::to_string(worst_us) + " us");
  note(opts, "scraped " + std::to_string(scrapes) + " rounds, worst " +
                 std::to_string(worst_us) + " us");

  // Scraping never perturbed the results: bit-identical to cold.
  for (int i = 0; i < kClients; ++i) {
    require(errors[i].empty(),
            "scrape-storm client " + std::to_string(i) + ": " + errors[i]);
    require_same_surface(results[i], cold_surface(small_request(4 + i)),
                         "scrape-storm client " + std::to_string(i));
  }

  // Exact reconciliation against the client-side tally. completed ticks on
  // the worker just after the response bytes go out, so give the last
  // increment a bounded moment to land before requiring exactness.
  StatsResponse fin;
  for (int spin = 0; spin < 200; ++spin) {
    fin = ts.server.stats_response();
    if (fin.completed >= kClients) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  require(fin.completed == kClients,
          "completed=" + std::to_string(fin.completed) + ", want " +
              std::to_string(kClients));
  require(fin.requests == kClients,
          "admitted=" + std::to_string(fin.requests) +
              " != client-side tally (shed re-sends must not re-count)");
  bool found_hist = false;
  for (const auto& op : fin.ops) {
    if (op.op == static_cast<std::uint32_t>(MsgType::characterize)) {
      found_hist = true;
      require(op.count == kClients,
              "latency histogram count " + std::to_string(op.count) +
                  " != completed " + std::to_string(kClients));
    }
  }
  require(found_hist, "no characterize latency histogram in stats");
  // The same exact count must show through the Prometheus plane.
  const std::string metrics =
      http_get(ts.server.admin_endpoint(), "/metrics", nullptr);
  require(metrics.find("aapx_serve_completed " + std::to_string(kClients)) !=
              std::string::npos,
          "/metrics aapx_serve_completed != client-side tally");
  require(
      metrics.find("aapx_service_latency_us_characterize_count " +
                   std::to_string(kClients)) != std::string::npos,
      "/metrics characterize histogram count != client-side tally");

  // A real `aapx top --once` against the live server renders and exits 0.
  const pid_t pid = ::fork();
  require(pid >= 0, "fork failed");
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, 1);
      ::dup2(devnull, 2);
    }
    ::execl(opts.self_exe.c_str(), opts.self_exe.c_str(), "top", "--connect",
            ts.server.endpoint().c_str(), "--once",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  require(WIFEXITED(status) && WEXITSTATUS(status) == 0,
          "`aapx top --once` did not exit clean");
  ts.server.stop();
  return 0;
}

}  // namespace

std::vector<std::string> chaos_scenarios() {
  return {"drop", "slowloris", "malformed", "storm", "kill", "scrape"};
}

int run_chaos_scenario(const std::string& name, const ChaosOptions& options) {
  // AAPX_CHAOS_ITERS repeats every scenario (the CI extended-fuzz job sets
  // it to 20): each repetition re-creates its server/store from scratch, so
  // the loop shakes out timing-dependent orderings a single pass can miss.
  long iters = 1;
  if (const char* env = std::getenv("AAPX_CHAOS_ITERS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 1) iters = parsed;
  }
  try {
    int rc = 0;
    for (long iter = 0; iter < iters && rc == 0; ++iter) {
      if (name == "drop") {
        rc = scenario_drop(options);
      } else if (name == "slowloris") {
        rc = scenario_slowloris(options);
      } else if (name == "malformed") {
        rc = scenario_malformed(options);
      } else if (name == "storm") {
        rc = scenario_storm(options);
      } else if (name == "kill") {
        rc = scenario_kill(options);
      } else if (name == "scrape") {
        rc = scenario_scrape(options);
      } else {
        throw std::runtime_error("unknown chaos scenario '" + name + "'");
      }
      if (rc == 0 && iters > 1) {
        std::fprintf(stderr, "chaos %s: iteration %ld/%ld ok\n", name.c_str(),
                     iter + 1, iters);
      }
    }
    if (rc == 0) std::fprintf(stderr, "chaos %s: PASS\n", name.c_str());
    return rc;
  } catch (const ChaosFailure& e) {
    std::fprintf(stderr, "chaos %s: FAIL: %s\n", name.c_str(), e.what());
    return 1;
  }
}

}  // namespace aapx::service
