// Wire protocol of `aapx serve` — length-prefixed binary frames carrying
// characterization / aged-STA / library-query requests and their typed
// responses, built on the same endianness-stable engine/binio.hpp codecs the
// persistent store uses (a served surface is byte-identical to a stored one).
//
// Frame layout (all integers little-endian):
//
//   magic u32 "APXF" | type u32 | request_id u64 | trace_id u64
//   | payload_size u64 | payload bytes
//
// request_id is chosen by the client and echoed verbatim on the response, so
// one connection can pipeline requests. trace_id is an opaque correlation
// id, also client-chosen and echoed: a client stamps the same trace_id on
// every retry attempt of one logical call, the server tags its per-request
// span tree and slow-request ring with it, and the streamed request-trace
// file carries it on every span — so one Chrome trace joins client attempts
// to the server-side work they caused. 0 means "untraced" and is always
// legal. The payload is a per-type record encoded below.
//
// Robustness contract (frames arrive from untrusted sockets):
//   * FrameReader validates the magic and rejects payload_size above the
//     configured ceiling *before* buffering, so a hostile length prefix
//     cannot drive an allocation — it throws ProtocolError, which the
//     server answers with one `error` frame and a connection close.
//   * Every payload decoder bounds-checks through BinReader, validates enum
//     ranges and numeric sanity, and requires the payload to be fully
//     consumed — trailing garbage is malformed, not ignored.
//   * Overload is a typed `retry_later` response carrying the server's
//     backoff hint; deadline expiry is a typed `cancelled` response. A
//     client never has to infer failure from a hang.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "aging/stress.hpp"
#include "engine/persist.hpp"
#include "sta/sta.hpp"
#include "synth/components.hpp"

namespace aapx::service {

inline constexpr std::uint32_t kFrameMagic = 0x46585041;  // "APXF" on the wire
inline constexpr std::size_t kFrameHeaderSize = 32;
/// Default payload ceiling. Surfaces are a few KiB; 16 MiB leaves room for
/// big library-query responses while bounding a hostile prefix's damage.
inline constexpr std::uint64_t kDefaultMaxPayload = 16ull << 20;

enum class MsgType : std::uint32_t {
  // requests
  ping = 1,
  characterize = 2,
  aged_delay = 3,
  library_query = 4,
  stats = 5,
  // responses
  pong = 16,
  ok_surface = 17,
  ok_delay = 18,
  ok_surfaces = 19,
  ok_stats = 20,
  error = 30,
  retry_later = 31,
  cancelled = 32,
};

const char* to_string(MsgType type);
bool is_request(MsgType type);

/// Malformed wire data: bad magic, oversized or short payload, unknown
/// message type, codec failure. Connection-fatal on the read path.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("protocol: " + what) {}
};

struct Frame {
  MsgType type = MsgType::ping;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;  ///< correlation id, echoed on responses
  std::string payload;
};

std::string encode_frame(const Frame& frame);

/// Incremental frame decoder over a byte stream. feed() appends received
/// bytes; next() pops one complete frame or nullopt if more bytes are
/// needed. Malformed input throws ProtocolError immediately — the header is
/// validated as soon as it is complete, so a hostile length prefix is
/// rejected before any payload buffering.
class FrameReader {
 public:
  explicit FrameReader(std::uint64_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(const char* data, std::size_t n);
  std::optional<Frame> next();
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }
  /// Total bytes held, including any not-yet-erased consumed prefix — lets
  /// tests assert the buffer stays bounded on a long-lived connection.
  std::size_t footprint() const noexcept { return buf_.size(); }

 private:
  /// Erases the consumed prefix. Called on every wait-for-more-bytes return
  /// and, amortized, after mid-buffer pops, so the buffer never retains
  /// already-answered frames across a long-lived connection.
  void compact();

  std::uint64_t max_payload_;
  std::string buf_;
  std::size_t pos_ = 0;
};

// --- request payloads -------------------------------------------------------
// Decoders validate enum ranges, numeric sanity and full consumption, and
// throw ProtocolError on any violation. `deadline_ms` is the client's
// per-request budget, measured by the server from frame receipt (0 = none);
// it is deliberately *excluded* from the dedup identity below, so the same
// logical work under different deadlines still computes once.

struct CharacterizeRequest {
  ComponentSpec spec;  ///< full precision (truncated_bits == 0)
  std::vector<AgingScenario> scenarios;
  int min_precision = 1;
  int precision_step = 1;
  StaOptions sta;
  std::uint32_t deadline_ms = 0;

  /// Semantic identity for in-flight dedup (deadline excluded).
  std::uint64_t dedup_key() const;
};
std::string encode_request(const CharacterizeRequest& req);
CharacterizeRequest decode_characterize_request(const std::string& payload);

struct AgedDelayRequest {
  ComponentSpec spec;
  /// `measured` is rejected: stimulus-dependent, not servable from a store.
  StressMode mode = StressMode::worst;
  double years = 0.0;
  StaOptions sta;
  std::uint32_t deadline_ms = 0;

  std::uint64_t dedup_key() const;
};
std::string encode_request(const AgedDelayRequest& req);
AgedDelayRequest decode_aged_delay_request(const std::string& payload);

struct LibraryQueryRequest {
  std::int32_t kind = -1;  ///< ComponentKind filter; -1 = any
  int width = 0;           ///< 0 = any
};
std::string encode_request(const LibraryQueryRequest& req);
LibraryQueryRequest decode_library_query_request(const std::string& payload);

// --- response payloads ------------------------------------------------------
// ok_surface carries one engine::SurfacePayload (the store codec, verbatim);
// ok_surfaces carries a count-prefixed sequence of them.

std::string encode_surface_response(const engine::SurfacePayload& p);
engine::SurfacePayload decode_surface_response(const std::string& payload);

std::string encode_surfaces_response(
    const std::vector<engine::SurfacePayload>& surfaces);
std::vector<engine::SurfacePayload> decode_surfaces_response(
    const std::string& payload);

struct DelayResponse {
  double delay_ps = 0.0;
};
std::string encode_delay_response(const DelayResponse& resp);
DelayResponse decode_delay_response(const std::string& payload);

struct ErrorResponse {
  std::string message;
};
std::string encode_error_response(const ErrorResponse& resp);
ErrorResponse decode_error_response(const std::string& payload);

struct RetryLaterResponse {
  std::uint32_t retry_after_ms = 0;  ///< server's backoff hint
};
std::string encode_retry_later_response(const RetryLaterResponse& resp);
RetryLaterResponse decode_retry_later_response(const std::string& payload);

struct CancelledResponse {
  std::string reason;  ///< "deadline" | "shutdown"
};
std::string encode_cancelled_response(const CancelledResponse& resp);
CancelledResponse decode_cancelled_response(const std::string& payload);

// --- stats ------------------------------------------------------------------
// The `stats` request carries an empty payload. The response is a
// point-in-time snapshot of the server's operational state: lifetime
// counters, per-op latency histograms (exact count/sum/min/max plus the
// non-empty log2 buckets — enough to recompute p50/p95/p99 client-side with
// obs::histogram_quantile), the slow-request ring, and the name-ordered
// counters of the server's metrics registry (store hit rates etc.).
// The server answers it on the reader thread without touching any request
// counter or the worker queue, so scraping never perturbs serving.

struct StatsResponse {
  // Lifetime counters (mirrors Server::Stats).
  std::uint64_t connections = 0;
  std::uint64_t live_connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t deduped = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t snapshots = 0;
  // Instantaneous state.
  std::uint64_t queue_depth = 0;
  std::uint64_t inflight = 0;
  double uptime_s = 0.0;
  double snapshot_age_s = -1.0;  ///< seconds since last snapshot; < 0 = never

  /// Admission-to-response latency histogram for one request op.
  struct OpLatency {
    std::uint32_t op = 0;  ///< MsgType of the request, as u32
    std::uint64_t count = 0;
    double sum_us = 0.0;
    double min_us = 0.0;
    double max_us = 0.0;
    /// (log2 bucket index, count), non-empty buckets only, index-ordered.
    std::vector<std::pair<std::int32_t, std::uint64_t>> buckets;
  };
  std::vector<OpLatency> ops;

  /// One entry of the bounded slowest-requests ring (top-K by latency).
  struct SlowRequest {
    std::uint64_t seq = 0;       ///< server-side admission sequence number
    std::uint32_t op = 0;        ///< MsgType of the request, as u32
    std::uint64_t trace_id = 0;  ///< client's correlation id (0 = untraced)
    double latency_us = 0.0;
  };
  std::vector<SlowRequest> slow;

  /// Registry counters of the server's root context, name-ordered.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};
std::string encode_stats_response(const StatsResponse& resp);
StatsResponse decode_stats_response(const std::string& payload);

}  // namespace aapx::service
