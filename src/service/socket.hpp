// Thin POSIX socket wrappers shared by the `aapx serve` server and client.
//
// Endpoints are spelled as strings so one CLI flag covers both transports:
//
//   unix:/path/to.sock   Unix-domain stream socket (default for local use)
//   tcp:PORT             TCP on 127.0.0.1; PORT 0 binds an ephemeral port
//                        and listen_endpoint() reports the resolved one
//
// All helpers return -1 / false and fill `err` instead of throwing — socket
// failure is an expected runtime condition for a fault-tolerant service,
// not an exceptional one. Writes use MSG_NOSIGNAL so a peer that vanished
// mid-response (the chaos harness does this on purpose) surfaces as an
// EPIPE return, never a process-killing SIGPIPE.
#pragma once

#include <string>
#include <string_view>

namespace aapx::service {

/// Validates `spec` ("unix:<path>" or "tcp:<port>"). Returns false and
/// fills `err` on a malformed spec.
bool valid_endpoint(const std::string& spec, std::string* err);

/// Binds and listens on `spec`. Returns the listening fd, or -1 with `err`
/// set. `resolved` (may alias `spec`'s value) receives the concrete
/// endpoint — identical to `spec` except that tcp:0 becomes the kernel-
/// assigned port, which is what tests use to avoid port races.
int listen_endpoint(const std::string& spec, std::string* resolved,
                    std::string* err);

/// Connects to `spec`. Returns the connected fd, or -1 with `err` set.
int connect_endpoint(const std::string& spec, std::string* err);

/// Writes all of `bytes`, retrying short writes. With `timeout_ms < 0` the
/// call blocks until the kernel accepts every byte; otherwise it waits for
/// writability (POLLOUT) at most `timeout_ms` total, so a peer that stops
/// draining its socket can never wedge a writer forever. False on any error
/// or timeout (the fd is left open; the caller owns closing it).
bool send_all(int fd, std::string_view bytes, int timeout_ms = -1);

/// One recv() of at most `n` bytes. Returns bytes read, 0 on orderly peer
/// close, -1 on error (EINTR is retried internally).
long recv_some(int fd, char* buf, std::size_t n);

/// Waits up to `timeout_ms` for `fd` to become readable. Returns 1 when
/// readable, 0 on timeout, -1 on error.
int wait_readable(int fd, int timeout_ms);

void close_fd(int fd);

/// Removes a unix-domain socket file if `spec` is a unix endpoint (listener
/// cleanup; ignores errors — the path may never have been created).
void unlink_endpoint(const std::string& spec);

}  // namespace aapx::service
