#include "aging/lifetime.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace aapx {
namespace {

constexpr double kBoltzmannEv = 8.617333262e-5;  // eV / K

double arrhenius(double activation_ev, double t_ref_kelvin,
                 double temp_kelvin) {
  return std::exp(activation_ev / kBoltzmannEv *
                  (1.0 / t_ref_kelvin - 1.0 / temp_kelvin));
}

/// One drift power law V(t) = a_eff * (t / t_ref)^n with the environment and
/// per-die scatter folded into a_eff. Drift accumulated in earlier phases is
/// carried across a phase boundary by equivalent age: the time at which this
/// phase's law would have produced the inherited V.
struct DriftLaw {
  double a_eff = 0.0;
  double n = 1.0;
  double t_ref = 1.0;

  double value(double t) const {
    if (a_eff <= 0.0 || t <= 0.0) return 0.0;
    return a_eff * std::pow(t / t_ref, n);
  }
  double equivalent_age(double v) const {
    if (v <= 0.0 || a_eff <= 0.0) return 0.0;
    return t_ref * std::pow(v / a_eff, 1.0 / n);
  }
};

/// Hard-failure mechanism state: Weibull with a phase-dependent scale. The
/// cumulative hazard inherited from earlier phases is carried by the same
/// equivalent-age trick (H is continuous across the boundary).
struct HazardState {
  double beta = 1.0;
  double accumulated = 0.0;  ///< H at the current phase boundary
  double threshold = 0.0;    ///< fail when H reaches this (-ln u)

  /// Advances through one phase of length `d` under scale `eta`. Returns the
  /// failure time *within* the phase, or a negative value if the mechanism
  /// survives it.
  double advance(double eta, double d) {
    if (!std::isfinite(eta) || eta <= 0.0) return -1.0;
    const double t0 = eta * std::pow(accumulated, 1.0 / beta);
    const double end = std::pow((t0 + d) / eta, beta);
    if (end >= threshold) {
      const double cross = eta * std::pow(threshold, 1.0 / beta) - t0;
      return cross < 0.0 ? 0.0 : cross;
    }
    accumulated = end;
    return -1.0;
  }
};

enum class Cause : std::uint8_t { censored = 0, drift = 1, hard = 2 };

struct DieFate {
  double years = 0.0;
  Cause cause = Cause::censored;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v, int bytes = 8) {
  for (int i = 0; i < bytes; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

LifetimeResult simulate_lifetime(const AgingModel& model,
                                 const std::vector<WorkloadPhase>& phases,
                                 const LifetimeOptions& options) {
  if (phases.empty()) {
    throw std::invalid_argument("simulate_lifetime: empty phase trace");
  }
  for (const WorkloadPhase& p : phases) {
    if (!(p.duration_years > 0.0)) {
      throw std::invalid_argument(
          "simulate_lifetime: phase duration must be positive");
    }
    if (p.duty < 0.0 || p.duty > 1.0) {
      throw std::invalid_argument(
          "simulate_lifetime: phase duty must be in [0, 1]");
    }
    if (p.activity < 0.0) {
      throw std::invalid_argument(
          "simulate_lifetime: phase activity must be non-negative");
    }
    if (!(p.temp_kelvin > 0.0)) {
      throw std::invalid_argument(
          "simulate_lifetime: phase temperature must be positive");
    }
  }
  if (options.dies <= 0) {
    throw std::invalid_argument("simulate_lifetime: dies must be positive");
  }
  if (!(options.tolerable_delay_factor >= 1.0)) {
    throw std::invalid_argument(
        "simulate_lifetime: tolerable_delay_factor must be >= 1");
  }
  if (options.param_sigma < 0.0) {
    throw std::invalid_argument(
        "simulate_lifetime: param_sigma must be non-negative");
  }

  const AgingParams& params = model.params();
  const BtiParams& bp = params.bti;
  const bool has_bti = model.has(MechanismKind::bti);
  const bool has_hci = model.has(MechanismKind::hci);
  const bool has_em = model.has(MechanismKind::em);
  const bool has_tddb = model.has(MechanismKind::tddb);

  // Invert the alpha-power delay law once: the drift budget in volts that
  // the tolerable delay factor corresponds to.
  const double overdrive0 = bp.vdd - bp.vth0;
  const double dvth_target =
      overdrive0 *
      (1.0 - std::pow(options.tolerable_delay_factor, -1.0 / bp.alpha));

  double horizon = 0.0;
  for (const WorkloadPhase& p : phases) horizon += p.duration_years;

  std::vector<DieFate> fates(static_cast<std::size_t>(options.dies));

  // Shared read-only mechanism instances (validated once, used by all dies).
  std::optional<EmMechanism> em_mech;
  std::optional<TddbMechanism> tddb_mech;
  if (has_em) em_mech.emplace(params.em);
  if (has_tddb) tddb_mech.emplace(params.tddb, bp.vdd);

  const auto run_die = [&](std::size_t die) {
    // Per-die stream: a function of (seed, die index) only, so slot `die`
    // is identical at any thread count. Draws happen in a fixed order
    // regardless of the enabled mechanism set.
    Rng rng(options.seed + 0x9e3779b97f4a7c15ull * (die + 1));
    const double s_bti = std::exp(options.param_sigma * rng.next_normal());
    const double s_hci = std::exp(options.param_sigma * rng.next_normal());
    const double s_em = std::exp(options.param_sigma * rng.next_normal());
    const double s_tddb = std::exp(options.param_sigma * rng.next_normal());
    const double u_em = rng.next_double();
    const double u_tddb = rng.next_double();

    HazardState em_state{params.em.beta, 0.0, -std::log1p(-u_em)};
    HazardState tddb_state{params.tddb.beta, 0.0, -std::log1p(-u_tddb)};

    // Accumulated drift per (path, mechanism): pull-up path sees pMOS BTI;
    // pull-down path sees nMOS BTI plus HCI. Either path crossing the
    // budget is a drift failure.
    double v_bti_p = 0.0;
    double v_bti_n = 0.0;
    double v_hci = 0.0;

    DieFate fate{horizon, Cause::censored};
    double elapsed = 0.0;
    for (const WorkloadPhase& phase : phases) {
      const double d = phase.duration_years;
      GateEnv env;
      env.stress_pmos = phase.duty;
      env.stress_nmos = 1.0 - phase.duty;
      env.activity = phase.activity;
      env.load = options.load;
      env.temp_kelvin = phase.temp_kelvin;

      // --- hard failures (competing risks, independent samples) ---
      double hard_at = -1.0;
      if (has_em) {
        const double cross =
            em_state.advance(em_mech->eta_years(env) * s_em, d);
        if (cross >= 0.0 && (hard_at < 0.0 || cross < hard_at)) {
          hard_at = cross;
        }
      }
      if (has_tddb) {
        const double cross =
            tddb_state.advance(tddb_mech->eta_years(env) * s_tddb, d);
        if (cross >= 0.0 && (hard_at < 0.0 || cross < hard_at)) {
          hard_at = cross;
        }
      }

      // --- drift (phase-local laws, inherited drift via equivalent age) ---
      const double thermal_bti =
          arrhenius(bp.activation_ev, bp.t_ref_kelvin, env.temp_kelvin);
      DriftLaw bti_p, bti_n, hci;
      if (has_bti) {
        bti_p = {s_bti * bp.a_pmos * thermal_bti *
                     (env.stress_pmos > 0.0
                          ? std::pow(env.stress_pmos, bp.stress_exponent)
                          : 0.0),
                 bp.time_exponent, bp.t_ref_years};
        bti_n = {s_bti * bp.a_nmos * thermal_bti *
                     (env.stress_nmos > 0.0
                          ? std::pow(env.stress_nmos, bp.stress_exponent)
                          : 0.0),
                 bp.time_exponent, bp.t_ref_years};
      }
      if (has_hci) {
        const HciParams& hp = params.hci;
        hci = {s_hci * hp.a_hci *
                   arrhenius(hp.activation_ev, hp.t_ref_kelvin,
                             env.temp_kelvin) *
                   (env.activity > 0.0
                        ? std::pow(env.activity, hp.activity_exponent)
                        : 0.0),
               hp.time_exponent, hp.t_ref_years};
      }
      const double age_p = bti_p.equivalent_age(v_bti_p);
      const double age_n = bti_n.equivalent_age(v_bti_n);
      const double age_h = hci.equivalent_age(v_hci);
      const auto worst_path = [&](double t) {
        const double up = bti_p.value(age_p + t);
        const double down = bti_n.value(age_n + t) + hci.value(age_h + t);
        return up > down ? up : down;
      };

      double drift_at = -1.0;
      if (dvth_target <= 0.0 && worst_path(d) > 0.0) {
        drift_at = 0.0;
      } else if (worst_path(d) >= dvth_target && dvth_target > 0.0) {
        // Monotone in t: bisect for the earliest crossing. A fixed
        // iteration count keeps the result a pure function of the inputs.
        double lo = 0.0;
        double hi = d;
        for (int i = 0; i < 64; ++i) {
          const double mid = 0.5 * (lo + hi);
          (worst_path(mid) >= dvth_target ? hi : lo) = mid;
        }
        drift_at = hi;
      }

      if (hard_at >= 0.0 || drift_at >= 0.0) {
        if (drift_at >= 0.0 && (hard_at < 0.0 || drift_at <= hard_at)) {
          fate = {elapsed + drift_at, Cause::drift};
        } else {
          fate = {elapsed + hard_at, Cause::hard};
        }
        break;
      }

      v_bti_p = bti_p.value(age_p + d);
      v_bti_n = bti_n.value(age_n + d);
      v_hci = hci.value(age_h + d);
      elapsed += d;
    }
    fates[die] = fate;
  };

  parallel_for(fates.size(), run_die, options.threads);

  LifetimeResult result;
  result.dies = options.dies;
  result.phases = static_cast<int>(phases.size());
  result.horizon_years = horizon;
  double sum = 0.0;
  std::uint64_t checksum = 14695981039346656037ull;
  for (const DieFate& fate : fates) {
    sum += fate.years;
    switch (fate.cause) {
      case Cause::drift:
        ++result.drift_failures;
        break;
      case Cause::hard:
        ++result.hard_failures;
        break;
      case Cause::censored:
        ++result.censored;
        break;
    }
    checksum = fnv1a(checksum, std::bit_cast<std::uint64_t>(fate.years));
    checksum = fnv1a(checksum, static_cast<std::uint64_t>(fate.cause), 1);
  }
  result.mttf_years = sum / static_cast<double>(options.dies);
  result.checksum = checksum;

  obs::metrics()
      .counter("aging.lifetime.dies")
      .add(static_cast<std::uint64_t>(options.dies));
  if (has_em) {
    obs::metrics()
        .counter("aging.mechanism.em.hazard_evals")
        .add(static_cast<std::uint64_t>(options.dies) * phases.size());
  }
  if (has_tddb) {
    obs::metrics()
        .counter("aging.mechanism.tddb.hazard_evals")
        .add(static_cast<std::uint64_t>(options.dies) * phases.size());
  }
  return result;
}

}  // namespace aapx
