// Stress-factor abstractions.
//
// A gate's pull-up pMOS network is under NBTI stress while it conducts, i.e.
// while the gate output is logic 1; its pull-down nMOS network is under PBTI
// stress while the output is logic 0.  The per-gate stress pair is therefore
// derived from the output duty cycle (fraction of lifetime spent high):
//
//   S_pmos = duty_high,   S_nmos = 1 - duty_high.
//
// The paper evaluates three stress regimes (Secs. II and IV):
//   * worst    — every transistor at S = 100% (conservative upper bound),
//   * balanced — S = 50% (typical),
//   * measured — per-gate duty cycles extracted from gate-level simulation
//                of a concrete stimulus set ("actual-case aging").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace aapx {

/// Duty-based stress of one gate's pull-up / pull-down networks, each in [0,1].
struct StressPair {
  double pmos = 1.0;
  double nmos = 1.0;
};

inline constexpr StressPair kWorstCaseStress{1.0, 1.0};
inline constexpr StressPair kBalancedStress{0.5, 0.5};

/// Converts an output duty cycle (fraction of time at logic 1) to stress.
StressPair stress_from_duty(double duty_high);

enum class StressMode { worst, balanced, measured };

std::string to_string(StressMode mode);

/// Per-gate stress annotation of a netlist ("netlist indexing" in paper
/// Fig. 3b). For worst/balanced modes every gate shares the same pair; for
/// measured mode the vector carries one entry per gate.
///
/// A profile may additionally carry per-gate *toggle activity* (output
/// transitions per cycle), the input of the activity-driven mechanisms (HCI
/// drift, EM current density). Duty answers "how long does the output sit
/// high"; activity answers "how often does it switch" — a clock buffer has
/// duty 0.5 and activity 1, a stuck control net duty 1 and activity 0.
/// Unannotated profiles fall back to a mode-derived default, so worst /
/// balanced sweeps need no simulation.
class StressProfile {
 public:
  /// Uniform profile (worst or balanced case).
  static StressProfile uniform(StressMode mode, std::size_t gate_count);
  /// Measured profile from per-gate output duty cycles.
  static StressProfile measured(const std::vector<double>& duty_high);

  StressMode mode() const noexcept { return mode_; }
  std::size_t gate_count() const noexcept { return per_gate_.size(); }
  const StressPair& gate(std::size_t index) const;
  const std::vector<StressPair>& all() const noexcept { return per_gate_; }

  /// Returns a copy annotated with measured per-gate toggle activities
  /// (size must equal gate_count(); entries must be non-negative).
  StressProfile with_activity(std::vector<double> activity) const;
  bool has_activity() const noexcept { return !activity_.empty(); }
  /// Raw annotations; empty when the profile is unannotated.
  const std::vector<double>& activity() const noexcept { return activity_; }
  /// Toggle activity of one gate: the annotation when present, otherwise a
  /// mode default — worst 1.0, balanced 0.5, and for measured profiles the
  /// random-sampling estimate 2*p*(1-p) from the gate's duty.
  double gate_activity(std::size_t index) const;

 private:
  StressProfile(StressMode mode, std::vector<StressPair> per_gate);

  StressMode mode_;
  std::vector<StressPair> per_gate_;
  std::vector<double> activity_;  ///< per gate; empty = unannotated
};

/// An aging scenario bundles the stress regime with the lifetime, e.g.
/// "10 years of worst-case aging" — the unit every bench sweeps over.
struct AgingScenario {
  StressMode mode = StressMode::worst;
  double years = 10.0;

  static AgingScenario fresh() { return {StressMode::worst, 0.0}; }
  bool is_fresh() const noexcept { return years == 0.0; }
  std::string label() const;
};

}  // namespace aapx
