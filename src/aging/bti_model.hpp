// Bias Temperature Instability (BTI) aging model.
//
// Implements the paper's first-order aging chain (paper Eq. 1):
//
//   stress S, time t  ->  dVth(S, t)  ->  gate delay factor
//
// dVth follows the standard long-term reaction-diffusion / capture-emission
// power law  dVth = A * S^gamma * (t/t_ref)^n,  where the stress factor
// S in [0, 1] is the fraction of lifetime the transistor spends under stress
// (paper Sec. IV: ratio of stress to recovery time).  pMOS devices suffer
// NBTI; nMOS devices suffer the weaker PBTI (smaller prefactor).
//
// The delay impact uses the alpha-power law the paper cites from BSIM [3]:
//
//   t_gate  ~  1 / (Vdd - Vth - dVth)^alpha
//
// so the *delay degradation factor* relative to the fresh gate is
//
//   k(S, t) = ((Vdd - Vth0) / (Vdd - Vth0 - dVth(S, t)))^alpha  >= 1.
//
// Calibration (see DESIGN.md Sec. 5): with the defaults below a pMOS under
// 100% stress for 10 years yields k ~= 1.15 (about +15% gate delay), and
// ~+10% after 1 year, matching the guardband magnitudes in paper Figs. 4/7/8a.
#pragma once

namespace aapx {

enum class TransistorType { nMos, pMos };

struct BtiParams {
  double vdd = 1.1;    ///< Supply voltage [V] (NanGate 45nm operating point).
  double vth0 = 0.45;  ///< Fresh threshold voltage [V].

  double a_pmos = 0.0458;  ///< NBTI dVth prefactor [V] at S=1, t=t_ref.
  double a_nmos = 0.0275;  ///< PBTI dVth prefactor [V] (weaker than NBTI).

  double time_exponent = 0.16;   ///< n: long-term BTI time power law.
  double stress_exponent = 0.5;  ///< gamma: dVth ~ S^gamma.
  double alpha = 1.3;            ///< alpha-power delay-law exponent.
  double t_ref_years = 1.0;      ///< Reference time for the prefactors.

  /// Operating temperature [K]. BTI is thermally activated (Arrhenius):
  /// dVth scales by exp(Ea/k * (1/T_ref - 1/T)). The prefactors are
  /// characterized at t_ref_kelvin (85 C, the usual reliability corner), so
  /// the default changes nothing.
  double temp_kelvin = 358.15;
  double t_ref_kelvin = 358.15;
  double activation_ev = 0.08;   ///< effective BTI activation energy [eV]
};

class BtiModel {
 public:
  explicit BtiModel(BtiParams params = {});

  const BtiParams& params() const noexcept { return params_; }

  /// Threshold-voltage shift [V] after `years` of operation at stress factor
  /// `stress` in [0, 1]. stress == 0 means permanent recovery (no shift).
  double delta_vth(TransistorType type, double stress, double years) const;

  /// Delay degradation factor k >= 1 for a transition driven by a transistor
  /// of the given type (rising output -> pMOS pull-up, falling -> nMOS).
  double delay_factor(TransistorType type, double stress, double years) const;

  /// Delay factor from an explicit dVth, exposed for the cell-library
  /// generator and for unit tests.
  double delay_factor_from_dvth(double dvth) const;

 private:
  BtiParams params_;
};

}  // namespace aapx
