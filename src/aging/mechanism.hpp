// Pluggable aging-mechanism interface.
//
// The paper's aging chain (Eq. 1) is BTI-only; real silicon degrades through
// several mechanisms with different *consequences*:
//
//   * drift mechanisms (BTI, HCI) shift Vth and slow gates down — the
//     runtime can compensate by stepping precision down (the paper's
//     aging-induced approximation), and
//   * wear-out mechanisms (EM, TDDB) kill a driver or an oxide outright —
//     no precision step helps; the control loop must fail over instead.
//
// Every mechanism implements one narrow contract: a threshold-voltage drift
// contribution (zero for hard-failure mechanisms) plus a hazard rate for
// hard failure (zero for drift mechanisms). The composite AgingModel
// (aging_model.hpp) owns an ordered set of mechanisms and presents the same
// numeric surface BtiModel always had — the default BTI-only composite is
// bit-identical to the historic model by construction, because the BTI math
// still runs through the very same BtiModel code path.
#pragma once

#include <string>

#include "aging/bti_model.hpp"

namespace aapx {

enum class MechanismKind { bti = 0, hci = 1, em = 2, tddb = 3 };

std::string to_string(MechanismKind kind);
/// Parses "bti" | "hci" | "em" | "tddb"; throws std::invalid_argument on
/// anything else (the CLI turns that into a one-line diagnostic).
MechanismKind mechanism_from_string(const std::string& name);

/// Per-gate operating environment a mechanism evaluates against. The duty
/// pair feeds BTI, the toggle activity feeds HCI and EM (switching current),
/// the normalized load scales the driver's current density, and the
/// temperature drives every Arrhenius term.
struct GateEnv {
  double stress_pmos = 1.0;  ///< pull-up duty stress in [0, 1] (NBTI)
  double stress_nmos = 1.0;  ///< pull-down duty stress in [0, 1] (PBTI)
  double activity = 0.0;     ///< output toggles per cycle (transition density)
  double load = 1.0;         ///< normalized output load (current-density proxy)
  double temp_kelvin = 358.15;
};

/// Hot-carrier injection: drift driven by switching events, not by static
/// bias — dVth grows with the toggle activity of the gate output. HCI has a
/// steeper time exponent than BTI and (unlike BTI) worsens slightly at *low*
/// temperature, hence the negative default activation energy.
struct HciParams {
  double a_hci = 0.006;            ///< dVth prefactor [V] at activity=1, t=t_ref
  double activity_exponent = 0.7;  ///< dVth ~ activity^m
  double time_exponent = 0.45;     ///< n: HCI time power law (steeper than BTI)
  double t_ref_years = 1.0;
  double activation_ev = -0.05;    ///< negative: worse when cold
  double t_ref_kelvin = 358.15;
};

/// Electromigration: hard failure of a driver/wire from momentum transfer at
/// high current density. Weibull life with a Black's-equation scale,
///   eta = eta_ref * (j_ref / j)^n * exp(Ea/k * (1/T - 1/T_ref)),
/// where the normalized current density j = activity * load (switching
/// charge through the driver per cycle). Zero activity means zero hazard.
struct EmParams {
  double beta = 2.0;             ///< Weibull shape
  double eta_ref_years = 500.0;  ///< Weibull scale at j == j_ref, T == T_ref
  double j_ref = 1.0;            ///< reference normalized current density
  double current_exponent = 2.0; ///< Black's-equation n
  double activation_ev = 0.9;
  double t_ref_kelvin = 358.15;
};

/// Time-dependent dielectric breakdown: hard failure of the gate oxide under
/// field stress — present whenever the part is powered, independent of
/// activity. Weibull life with a voltage power-law scale,
///   eta = eta_ref * (vdd_ref / vdd)^gamma * exp(Ea/k * (1/T - 1/T_ref)).
struct TddbParams {
  double beta = 1.5;              ///< Weibull shape
  double eta_ref_years = 800.0;   ///< Weibull scale at vdd_ref, T_ref
  double vdd_ref = 1.1;           ///< reference supply [V]
  double voltage_exponent = 30.0; ///< field-acceleration power-law exponent
  double activation_ev = 0.6;
  double t_ref_kelvin = 358.15;
};

/// One aging mechanism. Drift mechanisms implement delta_vth and return zero
/// hazard; hard-failure mechanisms implement the hazard pair and return zero
/// drift. Both kinds are total functions over (env, years >= 0).
class AgingMechanism {
 public:
  virtual ~AgingMechanism() = default;

  virtual MechanismKind kind() const noexcept = 0;
  /// True for wear-out mechanisms (EM, TDDB) whose consequence is a dead
  /// device; false for drift mechanisms (BTI, HCI) whose consequence is a
  /// delay factor the precision-fallback path can absorb.
  virtual bool hard_failure() const noexcept = 0;

  /// Threshold-voltage shift [V] after `years` in this environment. Zero for
  /// hard-failure mechanisms.
  virtual double delta_vth(TransistorType type, const GateEnv& env,
                           double years) const = 0;
  /// Instantaneous hazard rate [1/years]. Zero for drift mechanisms.
  virtual double hazard_rate(const GateEnv& env, double years) const = 0;
  /// Cumulative hazard H(t) = integral of the rate; the device survival
  /// probability is exp(-H). Zero for drift mechanisms.
  virtual double cumulative_hazard(const GateEnv& env, double years) const = 0;
};

/// BTI as a mechanism: wraps the historic BtiModel so the numerics are the
/// exact same code path the pre-mechanism engine ran (bit-identity).
class BtiMechanism final : public AgingMechanism {
 public:
  explicit BtiMechanism(const BtiParams& params) : model_(params) {}

  MechanismKind kind() const noexcept override { return MechanismKind::bti; }
  bool hard_failure() const noexcept override { return false; }
  double delta_vth(TransistorType type, const GateEnv& env,
                   double years) const override;
  double hazard_rate(const GateEnv&, double) const override { return 0.0; }
  double cumulative_hazard(const GateEnv&, double) const override {
    return 0.0;
  }

  const BtiModel& model() const noexcept { return model_; }

 private:
  BtiModel model_;
};

class HciMechanism final : public AgingMechanism {
 public:
  explicit HciMechanism(const HciParams& params);

  MechanismKind kind() const noexcept override { return MechanismKind::hci; }
  bool hard_failure() const noexcept override { return false; }
  double delta_vth(TransistorType type, const GateEnv& env,
                   double years) const override;
  double hazard_rate(const GateEnv&, double) const override { return 0.0; }
  double cumulative_hazard(const GateEnv&, double) const override {
    return 0.0;
  }

 private:
  HciParams params_;
};

class EmMechanism final : public AgingMechanism {
 public:
  explicit EmMechanism(const EmParams& params);

  MechanismKind kind() const noexcept override { return MechanismKind::em; }
  bool hard_failure() const noexcept override { return true; }
  double delta_vth(TransistorType, const GateEnv&, double) const override {
    return 0.0;
  }
  double hazard_rate(const GateEnv& env, double years) const override;
  double cumulative_hazard(const GateEnv& env, double years) const override;

  /// Weibull scale [years] in this environment; +inf when j <= 0.
  double eta_years(const GateEnv& env) const;

 private:
  EmParams params_;
};

class TddbMechanism final : public AgingMechanism {
 public:
  /// `vdd` is the actual operating supply (the electrical operating point
  /// lives in BtiParams; the composite model passes it through).
  TddbMechanism(const TddbParams& params, double vdd);

  MechanismKind kind() const noexcept override { return MechanismKind::tddb; }
  bool hard_failure() const noexcept override { return true; }
  double delta_vth(TransistorType, const GateEnv&, double) const override {
    return 0.0;
  }
  double hazard_rate(const GateEnv& env, double years) const override;
  double cumulative_hazard(const GateEnv& env, double years) const override;

  /// Weibull scale [years] in this environment.
  double eta_years(const GateEnv& env) const;

 private:
  TddbParams params_;
  double vdd_;
};

}  // namespace aapx
