#include "aging/stress.hpp"

#include <sstream>
#include <stdexcept>

namespace aapx {

StressPair stress_from_duty(double duty_high) {
  if (duty_high < 0.0 || duty_high > 1.0) {
    throw std::invalid_argument("stress_from_duty: duty must be in [0, 1]");
  }
  return {duty_high, 1.0 - duty_high};
}

std::string to_string(StressMode mode) {
  switch (mode) {
    case StressMode::worst: return "worst";
    case StressMode::balanced: return "balanced";
    case StressMode::measured: return "measured";
  }
  return "unknown";
}

StressProfile::StressProfile(StressMode mode, std::vector<StressPair> per_gate)
    : mode_(mode), per_gate_(std::move(per_gate)) {}

StressProfile StressProfile::uniform(StressMode mode, std::size_t gate_count) {
  if (mode == StressMode::measured) {
    throw std::invalid_argument(
        "StressProfile::uniform: measured profiles need duty cycles");
  }
  const StressPair pair = mode == StressMode::worst ? kWorstCaseStress
                                                    : kBalancedStress;
  return StressProfile(mode, std::vector<StressPair>(gate_count, pair));
}

StressProfile StressProfile::measured(const std::vector<double>& duty_high) {
  std::vector<StressPair> per_gate;
  per_gate.reserve(duty_high.size());
  for (const double d : duty_high) per_gate.push_back(stress_from_duty(d));
  return StressProfile(StressMode::measured, std::move(per_gate));
}

const StressPair& StressProfile::gate(std::size_t index) const {
  if (index >= per_gate_.size()) {
    throw std::out_of_range("StressProfile::gate");
  }
  return per_gate_[index];
}

StressProfile StressProfile::with_activity(std::vector<double> activity) const {
  if (activity.size() != per_gate_.size()) {
    throw std::invalid_argument(
        "StressProfile::with_activity: one activity per gate required");
  }
  for (const double a : activity) {
    if (a < 0.0) {
      throw std::invalid_argument(
          "StressProfile::with_activity: negative activity");
    }
  }
  StressProfile annotated(mode_, per_gate_);
  annotated.activity_ = std::move(activity);
  return annotated;
}

double StressProfile::gate_activity(std::size_t index) const {
  if (index >= per_gate_.size()) {
    throw std::out_of_range("StressProfile::gate_activity");
  }
  if (!activity_.empty()) return activity_[index];
  switch (mode_) {
    case StressMode::worst:
      return 1.0;
    case StressMode::balanced:
      return 0.5;
    case StressMode::measured:
      // Toggle estimate for independently sampled cycles at duty p.
      return 2.0 * per_gate_[index].pmos * per_gate_[index].nmos;
  }
  return 0.0;
}

std::string AgingScenario::label() const {
  if (is_fresh()) return "noAging";
  std::ostringstream os;
  os << years << "Y(" << to_string(mode) << ")";
  return os.str();
}

}  // namespace aapx
