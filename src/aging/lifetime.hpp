// Lifetime Monte-Carlo over workload phase traces.
//
// Samples per-die mechanism-parameter scatter (lognormal on the drift
// prefactors and Weibull scales) and evaluates, per die, the earliest of
//
//   * drift failure — the combined BTI+HCI delay-degradation factor crossing
//     the caller's tolerable factor (what the speed margin, or the extra
//     margin bought by aging-induced approximation, can absorb), and
//   * hard failure — EM/TDDB wear-out, sampled from each mechanism's
//     cumulative hazard over the phase trace (competing risks),
//
// censored at the end of the trace. The mean over dies is the reported MTTF.
// Phases carry their own duty / toggle activity / temperature, so the trace
// expresses workload-dependent aging (idle vs burst vs thermal-soak phases).
//
// Determinism contract: every die's random stream is seeded from (seed, die
// index) only and dies are written into preallocated slots, so the result —
// including the FNV checksum over the per-die failure-time bit patterns —
// is byte-identical at any parallel_for thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "aging/aging_model.hpp"

namespace aapx {

/// One phase of the workload trace.
struct WorkloadPhase {
  double duration_years = 1.0;
  double duty = 0.5;         ///< output duty cycle (BTI stress via 1-duty/duty)
  double activity = 0.5;     ///< output toggles per cycle (HCI, EM)
  double temp_kelvin = 358.15;
};

struct LifetimeOptions {
  int dies = 256;
  std::uint64_t seed = 1;
  /// Drift-failure criterion: the die fails when the worst-path delay factor
  /// reaches this value. A larger factor models the extra timing slack that
  /// aging-induced approximation (precision fallback) buys. Must be >= 1.
  double tolerable_delay_factor = 1.10;
  /// Lognormal sigma of the per-die parameter scatter (drift prefactors and
  /// Weibull scales). 0 collapses the MC to a corner analysis.
  double param_sigma = 0.15;
  double load = 1.0;  ///< normalized driver load (EM current density)
  int threads = 0;    ///< parallel_for width; never affects the result
};

struct LifetimeResult {
  int dies = 0;
  int phases = 0;
  double horizon_years = 0.0;  ///< total trace duration (censoring point)
  double mttf_years = 0.0;     ///< mean failure time over dies (censored)
  std::uint64_t drift_failures = 0;
  std::uint64_t hard_failures = 0;
  std::uint64_t censored = 0;
  /// FNV-1a over per-die (failure-time bit pattern, cause) in die order.
  std::uint64_t checksum = 0;
};

/// Runs the Monte-Carlo. Throws std::invalid_argument on an empty trace,
/// non-positive durations, duty outside [0, 1], negative activity or a
/// tolerable factor below 1.
LifetimeResult simulate_lifetime(const AgingModel& model,
                                 const std::vector<WorkloadPhase>& phases,
                                 const LifetimeOptions& options);

}  // namespace aapx
