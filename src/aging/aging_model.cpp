#include "aging/aging_model.hpp"

#include <stdexcept>

namespace aapx {

AgingModel::AgingModel(const BtiModel& bti) : params_(), bti_(bti) {
  params_.bti = bti.params();
  rebuild();
}

AgingModel::AgingModel(const BtiParams& bti) : params_(), bti_(bti) {
  params_.bti = bti;
  rebuild();
}

AgingModel::AgingModel(AgingParams params)
    : params_(std::move(params)), bti_(params_.bti) {
  rebuild();
}

AgingModel::AgingModel(const AgingModel& other)
    : params_(other.params_), bti_(other.bti_) {
  rebuild();
}

AgingModel& AgingModel::operator=(const AgingModel& other) {
  if (this != &other) {
    params_ = other.params_;
    bti_ = other.bti_;
    rebuild();
  }
  return *this;
}

void AgingModel::rebuild() {
  if (params_.mechanisms.empty()) {
    throw std::invalid_argument("AgingModel: mechanism set must be non-empty");
  }
  mechanisms_.clear();
  hci_ = nullptr;
  has_bti_ = false;
  has_hard_failure_ = false;
  for (std::size_t i = 0; i < params_.mechanisms.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (params_.mechanisms[j] == params_.mechanisms[i]) {
        throw std::invalid_argument("AgingModel: duplicate mechanism '" +
                                    to_string(params_.mechanisms[i]) + "'");
      }
    }
    switch (params_.mechanisms[i]) {
      case MechanismKind::bti:
        mechanisms_.push_back(std::make_unique<BtiMechanism>(params_.bti));
        has_bti_ = true;
        break;
      case MechanismKind::hci:
        mechanisms_.push_back(std::make_unique<HciMechanism>(params_.hci));
        hci_ = static_cast<const HciMechanism*>(mechanisms_.back().get());
        break;
      case MechanismKind::em:
        mechanisms_.push_back(std::make_unique<EmMechanism>(params_.em));
        has_hard_failure_ = true;
        break;
      case MechanismKind::tddb:
        mechanisms_.push_back(
            std::make_unique<TddbMechanism>(params_.tddb, params_.bti.vdd));
        has_hard_failure_ = true;
        break;
    }
  }
}

double AgingModel::delta_vth(TransistorType type, double stress,
                             double years) const {
  // With BTI enabled this *is* the historic code path (bit-identity with
  // BtiModel); without it the duty-based grids degenerate to identity.
  return has_bti_ ? bti_.delta_vth(type, stress, years) : 0.0;
}

double AgingModel::delay_factor(TransistorType type, double stress,
                                double years) const {
  return delay_factor_from_dvth(delta_vth(type, stress, years));
}

double AgingModel::delay_factor_from_dvth(double dvth) const {
  return bti_.delay_factor_from_dvth(dvth);
}

double AgingModel::hci_delta_vth(double activity, double years) const {
  if (hci_ == nullptr) return 0.0;
  GateEnv env;
  env.activity = activity;
  env.temp_kelvin = params_.bti.temp_kelvin;
  return hci_->delta_vth(TransistorType::nMos, env, years);
}

double AgingModel::hazard_rate(const GateEnv& env, double years) const {
  double h = 0.0;
  for (const auto& m : mechanisms_) {
    if (m->hard_failure()) h += m->hazard_rate(env, years);
  }
  return h;
}

double AgingModel::cumulative_hazard(const GateEnv& env, double years) const {
  double h = 0.0;
  for (const auto& m : mechanisms_) {
    if (m->hard_failure()) h += m->cumulative_hazard(env, years);
  }
  return h;
}

}  // namespace aapx
