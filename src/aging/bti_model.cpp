#include "aging/bti_model.hpp"

#include <cmath>
#include <stdexcept>

namespace aapx {

BtiModel::BtiModel(BtiParams params) : params_(params) {
  if (params_.vdd <= params_.vth0) {
    throw std::invalid_argument("BtiModel: vdd must exceed vth0");
  }
  if (params_.a_pmos < 0.0 || params_.a_nmos < 0.0) {
    throw std::invalid_argument("BtiModel: negative dVth prefactor");
  }
  if (params_.t_ref_years <= 0.0) {
    throw std::invalid_argument("BtiModel: t_ref_years must be positive");
  }
  if (params_.temp_kelvin <= 0.0 || params_.t_ref_kelvin <= 0.0) {
    throw std::invalid_argument("BtiModel: temperatures must be positive");
  }
}

double BtiModel::delta_vth(TransistorType type, double stress,
                           double years) const {
  if (stress < 0.0 || stress > 1.0) {
    throw std::invalid_argument("BtiModel: stress must be in [0, 1]");
  }
  if (years < 0.0) throw std::invalid_argument("BtiModel: negative lifetime");
  if (stress == 0.0 || years == 0.0) return 0.0;
  const double a = type == TransistorType::pMos ? params_.a_pmos : params_.a_nmos;
  // Arrhenius temperature acceleration relative to the characterization
  // corner (identity at T == T_ref).
  constexpr double kBoltzmannEv = 8.617333262e-5;  // eV / K
  const double thermal =
      std::exp(params_.activation_ev / kBoltzmannEv *
               (1.0 / params_.t_ref_kelvin - 1.0 / params_.temp_kelvin));
  return a * thermal * std::pow(stress, params_.stress_exponent) *
         std::pow(years / params_.t_ref_years, params_.time_exponent);
}

double BtiModel::delay_factor_from_dvth(double dvth) const {
  const double overdrive0 = params_.vdd - params_.vth0;
  const double overdrive = overdrive0 - dvth;
  if (overdrive <= 0.0) {
    throw std::domain_error("BtiModel: dVth consumed the full gate overdrive");
  }
  return std::pow(overdrive0 / overdrive, params_.alpha);
}

double BtiModel::delay_factor(TransistorType type, double stress,
                              double years) const {
  return delay_factor_from_dvth(delta_vth(type, stress, years));
}

}  // namespace aapx
