#include "aging/mechanism.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace aapx {
namespace {

constexpr double kBoltzmannEv = 8.617333262e-5;  // eV / K

/// Arrhenius acceleration relative to a characterization corner: identity at
/// T == T_ref, > 1 when the mechanism is faster at T than at T_ref.
double arrhenius(double activation_ev, double t_ref_kelvin,
                 double temp_kelvin) {
  return std::exp(activation_ev / kBoltzmannEv *
                  (1.0 / t_ref_kelvin - 1.0 / temp_kelvin));
}

/// Weibull cumulative hazard H(t) = (t / eta)^beta; eta == +inf means the
/// environment exerts no stress at all (e.g. EM with zero activity).
double weibull_cumulative(double eta, double beta, double years) {
  if (years <= 0.0 || !std::isfinite(eta)) return 0.0;
  return std::pow(years / eta, beta);
}

double weibull_rate(double eta, double beta, double years) {
  if (years <= 0.0 || !std::isfinite(eta)) return 0.0;
  return beta / eta * std::pow(years / eta, beta - 1.0);
}

void require_positive(double v, const char* what) {
  if (!(v > 0.0)) {
    throw std::invalid_argument(std::string("AgingMechanism: ") + what +
                                " must be positive");
  }
}

}  // namespace

std::string to_string(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::bti:
      return "bti";
    case MechanismKind::hci:
      return "hci";
    case MechanismKind::em:
      return "em";
    case MechanismKind::tddb:
      return "tddb";
  }
  return "?";
}

MechanismKind mechanism_from_string(const std::string& name) {
  if (name == "bti") return MechanismKind::bti;
  if (name == "hci") return MechanismKind::hci;
  if (name == "em") return MechanismKind::em;
  if (name == "tddb") return MechanismKind::tddb;
  throw std::invalid_argument("unknown aging mechanism '" + name +
                              "' (bti|hci|em|tddb)");
}

// --- BTI --------------------------------------------------------------------

double BtiMechanism::delta_vth(TransistorType type, const GateEnv& env,
                               double years) const {
  const double stress =
      type == TransistorType::pMos ? env.stress_pmos : env.stress_nmos;
  const double base = model_.delta_vth(type, stress, years);
  // The wrapped model evaluates at its own params().temp_kelvin; retarget
  // the Arrhenius term to the environment's temperature without rebuilding
  // the model (identity when they agree).
  const BtiParams& p = model_.params();
  if (env.temp_kelvin == p.temp_kelvin) return base;
  require_positive(env.temp_kelvin, "temp_kelvin");
  return base *
         arrhenius(p.activation_ev, p.temp_kelvin, env.temp_kelvin);
}

// --- HCI --------------------------------------------------------------------

HciMechanism::HciMechanism(const HciParams& params) : params_(params) {
  if (params_.a_hci < 0.0) {
    throw std::invalid_argument("HciMechanism: negative dVth prefactor");
  }
  require_positive(params_.t_ref_years, "hci t_ref_years");
  require_positive(params_.t_ref_kelvin, "hci t_ref_kelvin");
}

double HciMechanism::delta_vth(TransistorType type, const GateEnv& env,
                               double years) const {
  // Hot carriers are injected during output transitions, which discharge
  // through the nMOS pull-down — classic HCI damages the nMOS device.
  if (type != TransistorType::nMos) return 0.0;
  if (env.activity < 0.0) {
    throw std::invalid_argument("HciMechanism: negative activity");
  }
  if (years < 0.0) {
    throw std::invalid_argument("HciMechanism: negative lifetime");
  }
  if (env.activity == 0.0 || years == 0.0) return 0.0;
  require_positive(env.temp_kelvin, "temp_kelvin");
  return params_.a_hci *
         arrhenius(params_.activation_ev, params_.t_ref_kelvin,
                   env.temp_kelvin) *
         std::pow(env.activity, params_.activity_exponent) *
         std::pow(years / params_.t_ref_years, params_.time_exponent);
}

// --- EM ---------------------------------------------------------------------

EmMechanism::EmMechanism(const EmParams& params) : params_(params) {
  require_positive(params_.beta, "em beta");
  require_positive(params_.eta_ref_years, "em eta_ref_years");
  require_positive(params_.j_ref, "em j_ref");
  require_positive(params_.t_ref_kelvin, "em t_ref_kelvin");
}

double EmMechanism::eta_years(const GateEnv& env) const {
  const double j = env.activity * env.load;  // switching charge per cycle
  if (j <= 0.0) return std::numeric_limits<double>::infinity();
  require_positive(env.temp_kelvin, "temp_kelvin");
  // Black's equation: life ~ j^-n * exp(Ea / kT). Expressed relative to the
  // characterization corner so eta(j_ref, T_ref) == eta_ref.
  return params_.eta_ref_years *
         std::pow(params_.j_ref / j, params_.current_exponent) /
         arrhenius(params_.activation_ev, params_.t_ref_kelvin,
                   env.temp_kelvin);
}

double EmMechanism::hazard_rate(const GateEnv& env, double years) const {
  return weibull_rate(eta_years(env), params_.beta, years);
}

double EmMechanism::cumulative_hazard(const GateEnv& env, double years) const {
  return weibull_cumulative(eta_years(env), params_.beta, years);
}

// --- TDDB -------------------------------------------------------------------

TddbMechanism::TddbMechanism(const TddbParams& params, double vdd)
    : params_(params), vdd_(vdd) {
  require_positive(params_.beta, "tddb beta");
  require_positive(params_.eta_ref_years, "tddb eta_ref_years");
  require_positive(params_.vdd_ref, "tddb vdd_ref");
  require_positive(params_.t_ref_kelvin, "tddb t_ref_kelvin");
  require_positive(vdd_, "vdd");
}

double TddbMechanism::eta_years(const GateEnv& env) const {
  require_positive(env.temp_kelvin, "temp_kelvin");
  // Voltage power law: life ~ V^-gamma, thermally accelerated. The oxide is
  // under field stress whenever the part is powered — no activity term.
  return params_.eta_ref_years *
         std::pow(params_.vdd_ref / vdd_, params_.voltage_exponent) /
         arrhenius(params_.activation_ev, params_.t_ref_kelvin,
                   env.temp_kelvin);
}

double TddbMechanism::hazard_rate(const GateEnv& env, double years) const {
  return weibull_rate(eta_years(env), params_.beta, years);
}

double TddbMechanism::cumulative_hazard(const GateEnv& env,
                                        double years) const {
  return weibull_cumulative(eta_years(env), params_.beta, years);
}

}  // namespace aapx
