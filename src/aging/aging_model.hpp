// Composite aging model: an ordered set of AgingMechanism instances plus the
// superset parameter record, presenting the numeric surface the engine has
// always consumed from BtiModel.
//
// Back-compat contract (engine/key.hpp and persist.cpp depend on it):
//
//   * The default AgingParams enables exactly {bti} with default BtiParams.
//     In that configuration every public method delegates to the *same*
//     BtiModel code path the pre-mechanism engine ran, so results — and the
//     DesignStore key digests derived from them — are bit-identical to the
//     historic BTI-only engine. Existing warm stores stay warm.
//   * Any non-default mechanism set keys under a new digest family
//     (key.cpp), so extended models can never alias a BTI-only store entry.
//
// AgingModel is implicitly constructible from BtiModel / BtiParams so the
// twenty-odd historic call sites that pass a BtiModel keep compiling (and
// keep meaning exactly what they meant).
#pragma once

#include <memory>
#include <vector>

#include "aging/mechanism.hpp"

namespace aapx {

/// Superset parameter record: one block per mechanism plus the ordered set
/// of enabled mechanisms. The electrical operating point (vdd, vth0) lives
/// in the BTI block and is shared by every mechanism that needs it.
struct AgingParams {
  BtiParams bti;
  HciParams hci;
  EmParams em;
  TddbParams tddb;
  /// Enabled mechanisms, in evaluation order. Must be non-empty and free of
  /// duplicates (AgingModel validates).
  std::vector<MechanismKind> mechanisms = {MechanismKind::bti};

  /// True for the historic default — exactly one mechanism, BTI. This is the
  /// predicate key.cpp and persist.cpp use to stay on the legacy digest and
  /// byte layouts.
  bool bti_only() const noexcept {
    return mechanisms.size() == 1 && mechanisms.front() == MechanismKind::bti;
  }
  bool has(MechanismKind kind) const noexcept {
    for (const MechanismKind m : mechanisms) {
      if (m == kind) return true;
    }
    return false;
  }
};

class AgingModel {
 public:
  /// Implicit on purpose: every historic `f(ctx, lib, BtiModel{}, ...)` call
  /// site converts to the BTI-only composite with identical numerics.
  AgingModel(const BtiModel& bti);    // NOLINT(google-explicit-constructor)
  AgingModel(const BtiParams& bti);   // NOLINT(google-explicit-constructor)
  explicit AgingModel(AgingParams params = {});

  /// Copyable: mechanisms are rebuilt from the params (cheap, validation
  /// already passed once).
  AgingModel(const AgingModel& other);
  AgingModel& operator=(const AgingModel& other);
  AgingModel(AgingModel&&) noexcept = default;
  AgingModel& operator=(AgingModel&&) noexcept = default;

  const AgingParams& params() const noexcept { return params_; }
  /// The BTI-block model (always constructed — it carries the electrical
  /// operating point even when BTI drift itself is disabled).
  const BtiModel& bti() const noexcept { return bti_; }

  bool has(MechanismKind kind) const noexcept { return params_.has(kind); }
  bool has_hci() const noexcept { return hci_ != nullptr; }
  /// True when any enabled mechanism is a hard-failure mechanism (EM/TDDB).
  bool has_hard_failure() const noexcept { return has_hard_failure_; }
  const std::vector<std::unique_ptr<AgingMechanism>>& mechanisms()
      const noexcept {
    return mechanisms_;
  }

  // --- BtiModel-compatible drift surface ------------------------------------
  // These are the calls the degradation grids, sensor and fault injector
  // always made. With BTI enabled they are the BtiModel code path verbatim;
  // with BTI disabled delta_vth is identically zero (identity grids).

  double delta_vth(TransistorType type, double stress, double years) const;
  double delay_factor(TransistorType type, double stress, double years) const;
  double delay_factor_from_dvth(double dvth) const;

  // --- HCI drift ------------------------------------------------------------

  /// nMOS threshold drift from toggle activity (zero when HCI is disabled).
  /// The STA layer applies this to falling-transition delays on top of the
  /// duty-based BTI grids.
  double hci_delta_vth(double activity, double years) const;

  // --- hard failure ---------------------------------------------------------

  /// Summed instantaneous hazard rate [1/years] over the enabled
  /// hard-failure mechanisms (competing risks; zero when none are enabled).
  double hazard_rate(const GateEnv& env, double years) const;
  /// Summed cumulative hazard; device survival is exp(-H).
  double cumulative_hazard(const GateEnv& env, double years) const;

 private:
  void rebuild();

  AgingParams params_;
  BtiModel bti_;
  std::vector<std::unique_ptr<AgingMechanism>> mechanisms_;
  // Borrowed views into mechanisms_, refreshed by rebuild().
  const HciMechanism* hci_ = nullptr;
  bool has_bti_ = false;
  bool has_hard_failure_ = false;
};

}  // namespace aapx
