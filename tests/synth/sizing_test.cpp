#include "synth/sizing.hpp"

#include <gtest/gtest.h>

#include "gatesim/funcsim.hpp"
#include "netlist/stats.hpp"
#include "synth/components.hpp"
#include "util/rng.hpp"

namespace aapx {
namespace {

class SizingTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_nangate45_like();
  BtiModel model_;
};

TEST_F(SizingTest, MeetsFreshTargetUnderAging) {
  // Sizing compensates the multiplier's ~12% worst-case 10-year aging; the
  // CLA adder's ~30% is beyond what drive upsizing alone can recover, which
  // is exactly why the paper trades precision instead.
  const Netlist nl = make_component(
      lib_, {ComponentKind::multiplier, 12, 0, AdderArch::cla4, MultArch::array});
  const Sta sta(nl);
  const double target = sta.run_fresh().max_delay;
  const DegradationAwareLibrary aged(lib_, model_, 10.0);
  const StressProfile stress = StressProfile::uniform(StressMode::worst,
                                                      nl.num_gates());
  const SizingResult res = size_for_aging(nl, aged, stress, target);
  EXPECT_TRUE(res.met);
  EXPECT_LE(res.aged_delay, target + 1e-9);
  EXPECT_GT(res.upsized_gates, 0);
}

TEST_F(SizingTest, CostsArea) {
  const Netlist nl = make_component(
      lib_, {ComponentKind::multiplier, 12, 0, AdderArch::cla4, MultArch::array});
  const Sta sta(nl);
  const double target = sta.run_fresh().max_delay;
  const DegradationAwareLibrary aged(lib_, model_, 10.0);
  const StressProfile stress = StressProfile::uniform(StressMode::worst,
                                                      nl.num_gates());
  const SizingResult res = size_for_aging(nl, aged, stress, target);
  EXPECT_GT(compute_stats(res.netlist).cell_area, compute_stats(nl).cell_area);
}

TEST_F(SizingTest, PreservesFunction) {
  const Netlist nl = make_component(
      lib_, {ComponentKind::adder, 12, 0, AdderArch::cla4, MultArch::array});
  const Sta sta(nl);
  const DegradationAwareLibrary aged(lib_, model_, 10.0);
  const StressProfile stress = StressProfile::uniform(StressMode::worst,
                                                      nl.num_gates());
  const SizingResult res =
      size_for_aging(nl, aged, stress, sta.run_fresh().max_delay);

  FuncSim sa(nl);
  FuncSim sb(res.netlist);
  Rng rng(3);
  const std::uint64_t mask = (std::uint64_t{1} << 12) - 1;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_u64() & mask;
    const std::uint64_t b = rng.next_u64() & mask;
    sa.set_bus("a", a);
    sa.set_bus("b", b);
    sa.eval();
    sb.set_bus("a", a);
    sb.set_bus("b", b);
    sb.eval();
    ASSERT_EQ(sa.bus_value("y"), sb.bus_value("y"));
  }
}

TEST_F(SizingTest, TrivialTargetNeedsNoChanges) {
  const Netlist nl = make_component(
      lib_, {ComponentKind::adder, 8, 0, AdderArch::ripple, MultArch::array});
  const DegradationAwareLibrary aged(lib_, model_, 1.0);
  const StressProfile stress = StressProfile::uniform(StressMode::balanced,
                                                      nl.num_gates());
  const SizingResult res = size_for_aging(nl, aged, stress, 1e9);
  EXPECT_TRUE(res.met);
  EXPECT_EQ(res.upsized_gates, 0);
}

TEST_F(SizingTest, ImpossibleTargetReportsNotMet) {
  const Netlist nl = make_component(
      lib_, {ComponentKind::adder, 16, 0, AdderArch::cla4, MultArch::array});
  const DegradationAwareLibrary aged(lib_, model_, 10.0);
  const StressProfile stress = StressProfile::uniform(StressMode::worst,
                                                      nl.num_gates());
  const SizingResult res = size_for_aging(nl, aged, stress, 1.0);  // 1 ps
  EXPECT_FALSE(res.met);
  EXPECT_GT(res.aged_delay, 1.0);
}

}  // namespace
}  // namespace aapx
