#include "synth/components.hpp"

#include <gtest/gtest.h>

#include "approx/error_bounds.hpp"
#include "gatesim/funcsim.hpp"
#include "netlist/stats.hpp"
#include "rtl/backend.hpp"
#include "util/rng.hpp"

namespace aapx {
namespace {

class ComponentsTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_nangate45_like();
};

TEST_F(ComponentsTest, SpecNames) {
  ComponentSpec s{ComponentKind::adder, 32, 0, AdderArch::cla4, MultArch::array};
  EXPECT_EQ(s.name(), "adder32_cla4");
  s.kind = ComponentKind::multiplier;
  EXPECT_EQ(s.name(), "multiplier32_array");
  s.truncated_bits = 3;
  EXPECT_EQ(s.name(), "multiplier32_array_k29");
  EXPECT_EQ(s.precision(), 29);
  s.kind = ComponentKind::mac;
  s.truncated_bits = 0;
  EXPECT_EQ(s.name(), "mac32_array_cla4");
}

TEST_F(ComponentsTest, SpecValidation) {
  EXPECT_THROW(
      make_component(lib_, {ComponentKind::adder, 0, 0, AdderArch::cla4,
                            MultArch::array}),
      std::invalid_argument);
  EXPECT_THROW(
      make_component(lib_, {ComponentKind::adder, 8, 8, AdderArch::cla4,
                            MultArch::array}),
      std::invalid_argument);
  EXPECT_THROW(
      make_component(lib_, {ComponentKind::adder, 8, -1, AdderArch::cla4,
                            MultArch::array}),
      std::invalid_argument);
  EXPECT_THROW(
      make_component(lib_, {ComponentKind::clamp, 8, 0, AdderArch::cla4,
                            MultArch::array}),
      std::invalid_argument);  // clamp needs >= 9 bits
}

TEST_F(ComponentsTest, TruncationPreservesInterface) {
  for (const int k : {0, 3, 8}) {
    const Netlist nl = make_component(
        lib_, {ComponentKind::adder, 16, k, AdderArch::cla4, MultArch::array});
    EXPECT_EQ(nl.input_bus("a").size(), 16u);
    EXPECT_EQ(nl.input_bus("b").size(), 16u);
    EXPECT_EQ(nl.output_bus("y").size(), 17u);
  }
}

TEST_F(ComponentsTest, TruncationShrinksAreaAndGateCount) {
  std::size_t prev_gates = SIZE_MAX;
  double prev_area = 1e18;
  for (const int k : {0, 2, 4, 8}) {
    const Netlist nl = make_component(
        lib_, {ComponentKind::multiplier, 12, k, AdderArch::cla4, MultArch::array});
    const NetlistStats stats = compute_stats(nl);
    EXPECT_LT(stats.gates, prev_gates);
    EXPECT_LT(stats.cell_area, prev_area);
    prev_gates = stats.gates;
    prev_area = stats.cell_area;
  }
}

TEST_F(ComponentsTest, TruncatedAdderMatchesTruncatedArithmetic) {
  const int width = 16;
  const int k = 4;
  const Netlist nl = make_component(
      lib_, {ComponentKind::adder, width, k, AdderArch::ripple, MultArch::array});
  FuncSim sim(nl);
  Rng rng(17);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t a = rng.next_u64() & mask;
    const std::uint64_t b = rng.next_u64() & mask;
    sim.set_bus("a", a);
    sim.set_bus("b", b);
    sim.eval();
    const std::uint64_t ta = a & ~((std::uint64_t{1} << k) - 1);
    const std::uint64_t tb = b & ~((std::uint64_t{1} << k) - 1);
    EXPECT_EQ(sim.bus_value("y"), (ta + tb) & ((mask << 1) | 1));
  }
}

TEST_F(ComponentsTest, TruncatedMultiplierErrorWithinBound) {
  const int width = 10;
  const int k = 3;
  const Netlist exact = make_component(
      lib_, {ComponentKind::multiplier, width, 0, AdderArch::cla4, MultArch::array});
  const Netlist approx = make_component(
      lib_, {ComponentKind::multiplier, width, k, AdderArch::cla4, MultArch::array});
  FuncSim se(exact);
  FuncSim sa(approx);
  Rng rng(23);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  const std::int64_t bound = multiplier_error_bound(width, k);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t a = rng.next_u64() & mask;
    const std::uint64_t b = rng.next_u64() & mask;
    se.set_bus("a", a);
    se.set_bus("b", b);
    se.eval();
    sa.set_bus("a", a);
    sa.set_bus("b", b);
    sa.eval();
    const std::int64_t ye =
        wrap_signed(static_cast<std::int64_t>(se.bus_value("y")), 2 * width);
    const std::int64_t ya =
        wrap_signed(static_cast<std::int64_t>(sa.bus_value("y")), 2 * width);
    EXPECT_LE(std::abs(ye - ya), bound);
  }
}

TEST_F(ComponentsTest, MacComputesMultiplyAccumulate) {
  const int width = 8;
  const Netlist nl = make_component(
      lib_, {ComponentKind::mac, width, 0, AdderArch::ripple, MultArch::array});
  FuncSim sim(nl);
  Rng rng(29);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  const std::uint64_t mask2 = (std::uint64_t{1} << (2 * width)) - 1;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t a = wrap_signed(static_cast<std::int64_t>(rng.next_u64()), width);
    const std::int64_t b = wrap_signed(static_cast<std::int64_t>(rng.next_u64()), width);
    const std::int64_t acc =
        wrap_signed(static_cast<std::int64_t>(rng.next_u64()), 2 * width);
    sim.set_bus("a", static_cast<std::uint64_t>(a) & mask);
    sim.set_bus("b", static_cast<std::uint64_t>(b) & mask);
    sim.set_bus("acc", static_cast<std::uint64_t>(acc) & mask2);
    sim.eval();
    const std::int64_t y =
        wrap_signed(static_cast<std::int64_t>(sim.bus_value("y")), 2 * width);
    EXPECT_EQ(y, wrap_signed(a * b + acc, 2 * width));
  }
}

TEST_F(ComponentsTest, ClampSaturates) {
  const Netlist nl = make_component(
      lib_, {ComponentKind::clamp, 12, 0, AdderArch::cla4, MultArch::array});
  FuncSim sim(nl);
  const std::uint64_t mask = (std::uint64_t{1} << 12) - 1;
  const std::int64_t cases[] = {0, 1, 100, 255, 256, 300, 2047, -1, -5, -2048};
  for (const std::int64_t x : cases) {
    sim.set_bus("x", static_cast<std::uint64_t>(x) & mask);
    sim.eval();
    const std::int64_t expect = x < 0 ? 0 : (x > 255 ? 255 : x);
    EXPECT_EQ(sim.bus_value("y"), static_cast<std::uint64_t>(expect)) << "x=" << x;
  }
}

TEST_F(ComponentsTest, NoDeadGatesAfterOptimize) {
  const Netlist nl = make_component(
      lib_, {ComponentKind::adder, 12, 4, AdderArch::cla4, MultArch::array});
  // Every gate output must reach a primary output.
  std::vector<char> live(nl.num_nets(), 0);
  std::vector<NetId> stack(nl.outputs().begin(), nl.outputs().end());
  for (const NetId o : stack) live[o] = 1;
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    const GateId d = nl.driver(n);
    if (d == kInvalidGate) continue;
    for (int p = 0; p < nl.gate_num_inputs(d); ++p) {
      const NetId in = nl.gate(d).fanin[static_cast<std::size_t>(p)];
      if (!live[in]) {
        live[in] = 1;
        stack.push_back(in);
      }
    }
  }
  for (std::size_t g = 0; g < nl.num_gates(); ++g) {
    EXPECT_TRUE(live[nl.gate(static_cast<GateId>(g)).fanout]) << "dead gate " << g;
  }
}

}  // namespace
}  // namespace aapx
