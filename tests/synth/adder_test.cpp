#include <gtest/gtest.h>

#include "gatesim/funcsim.hpp"
#include "synth/arith.hpp"
#include "util/rng.hpp"

namespace aapx {
namespace {

struct AdderParam {
  int width;
  AdderArch arch;
};

class AdderTest : public ::testing::TestWithParam<AdderParam> {
 protected:
  CellLibrary lib_ = make_nangate45_like();
};

TEST_P(AdderTest, MatchesReferenceOnRandomVectors) {
  const auto [width, arch] = GetParam();
  Netlist nl(lib_);
  const Word a = nl.add_input_bus("a", width);
  const Word b = nl.add_input_bus("b", width);
  const Word y = build_adder(nl, a, b, nl.const0(), arch);
  ASSERT_EQ(y.size(), static_cast<std::size_t>(width) + 1);
  nl.mark_output_bus(y, "y");

  FuncSim sim(nl);
  Rng rng(99);
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t va = rng.next_u64() & mask;
    const std::uint64_t vb = rng.next_u64() & mask;
    sim.set_bus("a", va);
    sim.set_bus("b", vb);
    sim.eval();
    const std::uint64_t expect = (va + vb) & ((mask << 1) | 1);
    EXPECT_EQ(sim.bus_value("y"), expect) << "a=" << va << " b=" << vb;
  }
}

TEST_P(AdderTest, CarryInWorks) {
  const auto [width, arch] = GetParam();
  Netlist nl(lib_);
  const Word a = nl.add_input_bus("a", width);
  const Word b = nl.add_input_bus("b", width);
  const Word y = build_adder(nl, a, b, nl.const1(), arch);
  nl.mark_output_bus(y, "y");
  FuncSim sim(nl);
  Rng rng(7);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t va = rng.next_u64() & mask;
    const std::uint64_t vb = rng.next_u64() & mask;
    sim.set_bus("a", va);
    sim.set_bus("b", vb);
    sim.eval();
    EXPECT_EQ(sim.bus_value("y"), (va + vb + 1) & ((mask << 1) | 1));
  }
}

TEST_P(AdderTest, EdgeVectors) {
  const auto [width, arch] = GetParam();
  Netlist nl(lib_);
  const Word a = nl.add_input_bus("a", width);
  const Word b = nl.add_input_bus("b", width);
  nl.mark_output_bus(build_adder(nl, a, b, nl.const0(), arch), "y");
  FuncSim sim(nl);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  const std::uint64_t cases[][2] = {
      {0, 0}, {mask, 1}, {mask, mask}, {1, mask}, {mask >> 1, mask >> 1}};
  for (const auto& c : cases) {
    sim.set_bus("a", c[0]);
    sim.set_bus("b", c[1]);
    sim.eval();
    EXPECT_EQ(sim.bus_value("y"), (c[0] + c[1]) & ((mask << 1) | 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndArchs, AdderTest,
    ::testing::Values(AdderParam{4, AdderArch::ripple},
                      AdderParam{8, AdderArch::ripple},
                      AdderParam{17, AdderArch::ripple},
                      AdderParam{32, AdderArch::ripple},
                      AdderParam{4, AdderArch::cla4},
                      AdderParam{8, AdderArch::cla4},
                      AdderParam{13, AdderArch::cla4},
                      AdderParam{32, AdderArch::cla4},
                      AdderParam{4, AdderArch::kogge_stone},
                      AdderParam{8, AdderArch::kogge_stone},
                      AdderParam{19, AdderArch::kogge_stone},
                      AdderParam{32, AdderArch::kogge_stone}),
    [](const ::testing::TestParamInfo<AdderParam>& info) {
      std::string name = to_string(info.param.arch) + "_w" +
                         std::to_string(info.param.width);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(AdderStructureTest, ExhaustiveFourBit) {
  const CellLibrary lib = make_nangate45_like();
  for (const AdderArch arch :
       {AdderArch::ripple, AdderArch::cla4, AdderArch::kogge_stone}) {
    Netlist nl(lib);
    const Word a = nl.add_input_bus("a", 4);
    const Word b = nl.add_input_bus("b", 4);
    nl.mark_output_bus(build_adder(nl, a, b, nl.const0(), arch), "y");
    FuncSim sim(nl);
    for (unsigned va = 0; va < 16; ++va) {
      for (unsigned vb = 0; vb < 16; ++vb) {
        sim.set_bus("a", va);
        sim.set_bus("b", vb);
        sim.eval();
        ASSERT_EQ(sim.bus_value("y"), va + vb) << to_string(arch);
      }
    }
  }
}

TEST(AdderStructureTest, WidthMismatchThrows) {
  const CellLibrary lib = make_nangate45_like();
  Netlist nl(lib);
  const Word a = nl.add_input_bus("a", 4);
  const Word b = nl.add_input_bus("b", 5);
  EXPECT_THROW(build_adder(nl, a, b, nl.const0(), AdderArch::ripple),
               std::invalid_argument);
}

TEST(AdderStructureTest, FullAdderTruthTable) {
  const CellLibrary lib = make_nangate45_like();
  Netlist nl(lib);
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const SumCarry sc = build_full_adder(nl, a, b, c);
  nl.mark_output(sc.sum, "s");
  nl.mark_output(sc.carry, "co");
  FuncSim sim(nl);
  for (unsigned m = 0; m < 8; ++m) {
    sim.set_input(a, m & 1);
    sim.set_input(b, (m >> 1) & 1);
    sim.set_input(c, (m >> 2) & 1);
    sim.eval();
    const int total = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    EXPECT_EQ(sim.value(sc.sum), total % 2 == 1);
    EXPECT_EQ(sim.value(sc.carry), total >= 2);
  }
}

TEST(AdderStructureTest, ResizeSignedExtendsAndTruncates) {
  const CellLibrary lib = make_nangate45_like();
  Netlist nl(lib);
  const Word a = nl.add_input_bus("a", 4);
  const Word ext = resize_signed(nl, a, 8);
  ASSERT_EQ(ext.size(), 8u);
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(ext[i], a[3]);
  const Word cut = resize_signed(nl, a, 2);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_EQ(cut[1], a[1]);
}

}  // namespace
}  // namespace aapx
