// Alternative approximation techniques (paper Sec. III: the flow supports
// any technique that trades accuracy for delay).
#include <gtest/gtest.h>

#include "gatesim/funcsim.hpp"
#include "netlist/stats.hpp"
#include "rtl/backend.hpp"
#include "sta/sta.hpp"
#include "synth/components.hpp"
#include "util/rng.hpp"

namespace aapx {
namespace {

class TechniquesTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_nangate45_like();
};

TEST_F(TechniquesTest, WindowedAdderExactWithFullWindow) {
  Netlist nl(lib_);
  const Word a = nl.add_input_bus("a", 12);
  const Word b = nl.add_input_bus("b", 12);
  nl.mark_output_bus(build_windowed_adder(nl, a, b, 12), "y");
  FuncSim sim(nl);
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t va = rng.next_u64() & 0xFFF;
    const std::uint64_t vb = rng.next_u64() & 0xFFF;
    sim.set_bus("a", va);
    sim.set_bus("b", vb);
    sim.eval();
    ASSERT_EQ(sim.bus_value("y"), va + vb);
  }
}

TEST_F(TechniquesTest, WindowedAdderErrsOnlyOnLongCarryChains) {
  const int width = 16;
  const int window = 6;
  Netlist nl(lib_);
  const Word a = nl.add_input_bus("a", width);
  const Word b = nl.add_input_bus("b", width);
  nl.mark_output_bus(build_windowed_adder(nl, a, b, window), "y");
  FuncSim sim(nl);
  Rng rng(2);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  int wrong = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t va = rng.next_u64() & mask;
    const std::uint64_t vb = rng.next_u64() & mask;
    sim.set_bus("a", va);
    sim.set_bus("b", vb);
    sim.eval();
    const std::uint64_t got = sim.bus_value("y");
    const std::uint64_t expect = (va + vb) & ((mask << 1) | 1);
    if (got != expect) {
      ++wrong;
      // An error requires a real carry chain longer than the window: verify
      // there exists a position whose true carry was generated more than
      // `window` bits below.
      bool long_chain = false;
      std::uint64_t carry = 0;
      std::vector<int> born(width + 1, -1);
      for (int bit = 0; bit < width; ++bit) {
        const std::uint64_t ai = (va >> bit) & 1;
        const std::uint64_t bi = (vb >> bit) & 1;
        const std::uint64_t gen = ai & bi;
        const std::uint64_t prop = ai ^ bi;
        const std::uint64_t next = gen | (prop & carry);
        int origin = -1;
        if (gen) {
          origin = bit;
        } else if (prop && carry) {
          origin = born[bit];
        }
        born[bit + 1] = origin;
        if (next && origin >= 0 && bit + 1 - origin > window) long_chain = true;
        carry = next;
      }
      EXPECT_TRUE(long_chain) << "a=" << va << " b=" << vb;
    }
  }
  // Errors are rare under random stimulus but must exist for a small window.
  EXPECT_GT(wrong, 0);
  EXPECT_LT(wrong, 600);
}

TEST_F(TechniquesTest, WindowedAdderShorterCriticalPath) {
  auto delay_of = [&](int window) {
    Netlist nl(lib_);
    const Word a = nl.add_input_bus("a", 32);
    const Word b = nl.add_input_bus("b", 32);
    nl.mark_output_bus(build_windowed_adder(nl, a, b, window), "y");
    return Sta(nl).run_fresh().max_delay;
  };
  EXPECT_LT(delay_of(4), delay_of(8));
  EXPECT_LT(delay_of(8), delay_of(16));
}

TEST_F(TechniquesTest, PpTruncatedMultiplierBoundedError) {
  const int width = 10;
  for (const int k : {2, 4, 6}) {
    Netlist nl(lib_);
    const Word a = nl.add_input_bus("a", width);
    const Word b = nl.add_input_bus("b", width);
    nl.mark_output_bus(
        build_pp_truncated_multiplier(nl, a, b, MultArch::array, k), "y");
    FuncSim sim(nl);
    Rng rng(3);
    const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
    // Dropped columns c < k each hold at most c+1 partial products plus the
    // Baugh-Wooley correction constant; their total weight bounds the error.
    std::int64_t bound = 0;
    for (int c = 0; c < k; ++c) bound += (c + 2) * (std::int64_t{1} << c);
    for (int i = 0; i < 500; ++i) {
      const std::int64_t va =
          wrap_signed(static_cast<std::int64_t>(rng.next_u64()), width);
      const std::int64_t vb =
          wrap_signed(static_cast<std::int64_t>(rng.next_u64()), width);
      sim.set_bus("a", static_cast<std::uint64_t>(va) & mask);
      sim.set_bus("b", static_cast<std::uint64_t>(vb) & mask);
      sim.eval();
      const std::int64_t got =
          wrap_signed(static_cast<std::int64_t>(sim.bus_value("y")), 2 * width);
      EXPECT_LE(std::llabs(got - va * vb), bound)
          << "k=" << k << " a=" << va << " b=" << vb;
    }
  }
}

TEST_F(TechniquesTest, PpTruncationShrinksNetlist) {
  const ComponentSpec exact{ComponentKind::multiplier, 12, 0, AdderArch::cla4,
                            MultArch::array, ApproxTechnique::pp_truncation};
  ComponentSpec dropped = exact;
  dropped.truncated_bits = 6;
  const Netlist full = make_component(lib_, exact);
  const Netlist trunc = make_component(lib_, dropped);
  EXPECT_LT(compute_stats(trunc).cell_area, compute_stats(full).cell_area);
  EXPECT_LT(Sta(trunc).run_fresh().max_delay, Sta(full).run_fresh().max_delay);
}

TEST_F(TechniquesTest, SpecNamesEncodeTechnique) {
  ComponentSpec s{ComponentKind::adder, 16, 4, AdderArch::cla4, MultArch::array,
                  ApproxTechnique::carry_window};
  EXPECT_EQ(s.name(), "adder16_cla4_window_k12");
  s.technique = ApproxTechnique::pp_truncation;
  s.kind = ComponentKind::multiplier;
  EXPECT_EQ(s.name(), "multiplier16_array_pp_k12");
}

TEST_F(TechniquesTest, TechniqueKindValidation) {
  EXPECT_THROW(
      make_component(lib_, {ComponentKind::multiplier, 8, 0, AdderArch::cla4,
                            MultArch::array, ApproxTechnique::carry_window}),
      std::invalid_argument);
  EXPECT_THROW(
      make_component(lib_, {ComponentKind::adder, 8, 0, AdderArch::cla4,
                            MultArch::array, ApproxTechnique::pp_truncation}),
      std::invalid_argument);
}

TEST_F(TechniquesTest, WindowedComponentThroughMakeComponent) {
  const ComponentSpec spec{ComponentKind::adder, 16, 8, AdderArch::cla4,
                           MultArch::array, ApproxTechnique::carry_window};
  const Netlist nl = make_component(lib_, spec);  // window = 8
  EXPECT_EQ(nl.input_bus("a").size(), 16u);
  EXPECT_EQ(nl.output_bus("y").size(), 17u);
  // Small-magnitude additions never exceed the window: exact.
  FuncSim sim(nl);
  for (std::uint64_t va = 0; va < 32; va += 3) {
    for (std::uint64_t vb = 0; vb < 32; vb += 5) {
      sim.set_bus("a", va);
      sim.set_bus("b", vb);
      sim.eval();
      EXPECT_EQ(sim.bus_value("y"), va + vb);
    }
  }
}

}  // namespace
}  // namespace aapx
